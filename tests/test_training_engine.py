"""Cross-cutting tests of the vectorized training engine.

Covers the pieces that cooperate across modules (see
``docs/TRAINING_ENGINE.md``):

* :class:`~repro.core.regression.RegressionGramPool` — the sufficient-
  statistics fit path must agree with the direct design-matrix fit,
  including when a cluster's statistics are served by *downdating* a
  seeded full-suite sum;
* :func:`~repro.core.clustering.resolve_warm_medoids` — projecting a
  reference clustering's medoids onto a training subset;
* warm-started training through :meth:`AdaptiveModel.train` — records
  and cluster partitions must not depend on the warm start;
* ``REPRO_NJOBS`` — the environment default for every ``n_jobs`` knob.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveModel,
    ClusteringResult,
    RegressionGramPool,
    characterize_kernel,
    cluster_kernels,
    fit_cluster_models,
    resolve_warm_medoids,
)
from repro.evaluation.loocv import resolve_n_jobs
from repro.hardware import Device, NoiseModel, TrinityAPU
from repro.profiling import CharacterizationStore, ProfilingLibrary
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def characterizations():
    library = ProfilingLibrary(
        TrinityAPU(noise=NoiseModel.exact(), seed=0), seed=0
    )
    suite = build_suite()
    kernels = suite.for_benchmark("CoMD")[:6]
    return [characterize_kernel(library, k) for k in kernels]


def _assert_cluster_models_close(a, b):
    # The pool accumulates per-kernel Gram blocks and sums them, so the
    # two paths differ only by floating-point reassociation: ≤1e-9
    # relative on every coefficient and diagnostic.
    for device in ("cpu", "gpu"):
        da, db = getattr(a, device), getattr(b, device)
        for attr in ("perf_ratio", "power"):
            ma, mb = getattr(da, attr), getattr(db, attr)
            np.testing.assert_allclose(ma.coef, mb.coef, rtol=1e-9, atol=1e-9)
            assert ma.r_squared == pytest.approx(mb.r_squared, abs=1e-9)
            np.testing.assert_allclose(
                ma.std_errors, mb.std_errors,
                rtol=1e-6, atol=1e-9, equal_nan=True,
            )
            assert ma.n_obs == mb.n_obs
            assert ma.rank == mb.rank


class TestRegressionGramPool:
    @pytest.mark.parametrize("power_anchor", [True, False])
    def test_pool_fit_matches_direct_fit(self, characterizations, power_anchor):
        pool = RegressionGramPool(power_anchor=power_anchor)
        direct = fit_cluster_models(
            characterizations, power_anchor=power_anchor
        )
        via_pool = fit_cluster_models(
            characterizations, power_anchor=power_anchor, gram_pool=pool
        )
        _assert_cluster_models_close(via_pool, direct)

    def test_pool_blocks_are_cached_across_fits(self, characterizations):
        pool = RegressionGramPool()
        fit_cluster_models(characterizations, gram_pool=pool)
        before = dict(pool.stats())
        fit_cluster_models(characterizations, gram_pool=pool)
        after = pool.stats()
        assert after["blocks"] == before["blocks"]  # nothing rebuilt

    def test_downdate_path_matches_direct_fit(self, characterizations):
        pool = RegressionGramPool()
        chars_by_uid = {c.kernel_uid: c for c in characterizations}
        pool.seed_cluster_sums([list(chars_by_uid)], chars_by_uid)
        # A strict subset: served by downdating the seeded sum.  The
        # subtraction cancels accumulated digits, so agreement is a few
        # orders looser than the pure-sum path (still ~1e-8 relative;
        # the end-to-end record-identity test pins that selections
        # never change).
        subset = characterizations[:-2]
        direct = fit_cluster_models(subset)
        via_pool = fit_cluster_models(subset, gram_pool=pool)
        for device in ("cpu", "gpu"):
            da, db = getattr(via_pool, device), getattr(direct, device)
            for attr in ("perf_ratio", "power"):
                ma, mb = getattr(da, attr), getattr(db, attr)
                np.testing.assert_allclose(ma.coef, mb.coef, rtol=1e-6)
                assert ma.r_squared == pytest.approx(mb.r_squared, abs=1e-9)

    def test_ridge_through_pool_matches_direct(self, characterizations):
        pool = RegressionGramPool()
        direct = fit_cluster_models(characterizations, ridge=0.3)
        via_pool = fit_cluster_models(
            characterizations, ridge=0.3, gram_pool=pool
        )
        _assert_cluster_models_close(via_pool, direct)

    def test_mismatched_pool_settings_rejected(self, characterizations):
        pool = RegressionGramPool(transform="log")
        with pytest.raises(ValueError):
            fit_cluster_models(
                characterizations, transform="none", gram_pool=pool
            )
        pool2 = RegressionGramPool(power_anchor=False)
        with pytest.raises(ValueError):
            fit_cluster_models(
                characterizations, power_anchor=True, gram_pool=pool2
            )

    def test_store_pools_are_per_setting_singletons(self):
        store = CharacterizationStore(seed=0)
        assert store.gram_pool() is store.gram_pool()
        assert store.gram_pool() is not store.gram_pool(transform="log")
        assert store.gram_pool() is not store.gram_pool(power_anchor=False)


class TestResolveWarmMedoids:
    @staticmethod
    def _reference():
        uids = [f"k{i}" for i in range(6)]
        labels = {"k0": 0, "k1": 0, "k2": 1, "k3": 1, "k4": 1, "k5": 0}
        ref = ClusteringResult(
            labels=labels,
            n_clusters=2,
            silhouette=0.5,
            medoid_uids=("k1", "k3"),
            method="pam",
        )
        rng = np.random.default_rng(0)
        M = rng.uniform(size=(6, 6))
        D = (M + M.T) / 2.0
        np.fill_diagonal(D, 0.0)
        return ref, uids, D

    def test_all_medoids_present_are_kept(self):
        ref, uids, D = self._reference()
        seeds = resolve_warm_medoids(ref, uids, D, set(uids))
        assert seeds == ("k1", "k3")

    def test_held_out_medoid_replaced_by_best_present_member(self):
        ref, uids, D = self._reference()
        present = {"k0", "k2", "k4", "k5"}  # both medoids held out
        seeds = resolve_warm_medoids(ref, uids, D, present)
        assert seeds is not None
        # Cluster 0 survivors: k0, k5; cluster 1 survivors: k2, k4.
        assert seeds[0] in {"k0", "k5"} and seeds[1] in {"k2", "k4"}

    def test_emptied_cluster_returns_none(self):
        ref, uids, D = self._reference()
        seeds = resolve_warm_medoids(ref, uids, D, {"k0", "k1", "k5"})
        assert seeds is None  # cluster 1 lost every member

    def test_cluster_kernels_ignores_invalid_seeds(self):
        ref, uids, D = self._reference()
        # Stale uid in the seeding: clustering silently falls back to
        # the cold BUILD phase instead of failing.
        cold = cluster_kernels(uids, n_clusters=2, dissimilarity=D)
        seeded = cluster_kernels(
            uids,
            n_clusters=2,
            dissimilarity=D,
            initial_medoid_uids=("k1", "gone"),
        )
        assert seeded.labels == cold.labels


class TestWarmTrainingInvariance:
    def test_warm_started_training_selects_same_partition(self):
        suite = build_suite()
        store = CharacterizationStore(seed=0)
        kernels = [k for k in suite if k.benchmark != "LU"]
        chars = store.characterize(kernels)
        D = store.dissimilarity_submatrix(kernels)

        all_kernels = list(suite)
        store.characterize(all_kernels)
        full_D = store.dissimilarity_submatrix(all_kernels)
        full = cluster_kernels(
            [k.uid for k in all_kernels], n_clusters=5, dissimilarity=full_D
        )
        seeds = resolve_warm_medoids(
            full, [k.uid for k in all_kernels], full_D,
            {k.uid for k in kernels},
        )
        assert seeds is not None

        cold = AdaptiveModel.train(chars, dissimilarity=D)
        warm = AdaptiveModel.train(
            chars,
            dissimilarity=D,
            initial_medoid_uids=seeds,
            gram_pool=store.gram_pool(),
        )

        def partition(clustering):
            groups = {}
            for uid, c in clustering.labels.items():
                groups.setdefault(c, set()).add(uid)
            return sorted(map(sorted, groups.values()))

        assert partition(warm.clustering) == partition(cold.clustering)
        assert set(warm.clustering.medoid_uids) == set(
            cold.clustering.medoid_uids
        )
        # Identical partitions must classify test kernels identically
        # (the tree's tie-break is label-permutation covariant).
        inv = {c: i for i, c in enumerate(sorted(
            map(tuple, map(sorted, (
                warm.clustering.members(c)
                for c in range(warm.clustering.n_clusters)
            )))
        ))}

        def canonical(model, uid_cluster):
            members = tuple(sorted(model.clustering.members(uid_cluster)))
            return inv[members]

        online = ProfilingLibrary(store.apu, seed=1)
        from repro.core import CPU_SAMPLE, GPU_SAMPLE

        for kernel in suite.for_benchmark("LU"):
            cpu = online.profile(kernel, CPU_SAMPLE).measurement
            gpu = online.profile(kernel, GPU_SAMPLE).measurement
            pc = warm.predict_kernel(cpu, gpu, kernel_uid=kernel.uid)
            pd = cold.predict_kernel(cpu, gpu, kernel_uid=kernel.uid)
            assert canonical(warm, pc.cluster) == canonical(cold, pd.cluster)
            # Gram-path regression differs only by reassociation ulps.
            np.testing.assert_allclose(
                pc.power_array, pd.power_array, rtol=1e-9
            )
            np.testing.assert_allclose(
                pc.performance_array, pd.performance_array, rtol=1e-9
            )


class TestNJobsEnvDefault:
    def test_unset_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_NJOBS", raising=False)
        assert resolve_n_jobs(None) == 1

    def test_env_value_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NJOBS", "3")
        assert resolve_n_jobs(None) == 3

    def test_env_minus_one_means_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_NJOBS", "-1")
        assert resolve_n_jobs(None) >= 1

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NJOBS", "7")
        assert resolve_n_jobs(2) == 2

    def test_blank_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NJOBS", "  ")
        assert resolve_n_jobs(None) == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NJOBS", "lots")
        with pytest.raises(ValueError):
            resolve_n_jobs(None)

    def test_invalid_argument_raises(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)
