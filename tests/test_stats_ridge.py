"""Tests for ridge regularization in the OLS substrate and its plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import characterize_kernel, fit_cluster_models, AdaptiveModel
from repro.hardware import Configuration, NoiseModel, TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.stats import fit_ols
from repro.workloads import build_suite


class TestRidgeOLS:
    def test_zero_ridge_equals_plain_ols(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        a = fit_ols(X, y, ridge=0.0)
        b = fit_ols(X, y)
        np.testing.assert_allclose(a.coef, b.coef)

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 4))
        y = X @ np.array([3.0, -2.0, 1.0, 0.5]) + rng.normal(scale=0.1, size=40)
        plain = fit_ols(X, y, intercept=False)
        shrunk = fit_ols(X, y, intercept=False, ridge=50.0)
        assert np.linalg.norm(shrunk.coef) < np.linalg.norm(plain.coef)

    def test_intercept_not_penalized(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 1))
        y = 100.0 + 0.1 * X[:, 0] + rng.normal(scale=0.01, size=200)
        heavy = fit_ols(X, y, ridge=1e4)
        # Slope crushed toward 0; intercept still recovers the mean.
        assert abs(heavy.coef[1]) < 0.05
        assert heavy.coef[0] == pytest.approx(100.0, abs=1.0)

    def test_ridge_stabilizes_collinear_design(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=60)
        X = np.column_stack([x, x + rng.normal(scale=1e-8, size=60)])
        y = x + rng.normal(scale=0.1, size=60)
        shrunk = fit_ols(X, y, intercept=False, ridge=1.0)
        # Penalized solution splits weight between the twins instead of
        # exploding in opposite directions.
        assert np.all(np.abs(shrunk.coef) < 2.0)

    def test_negative_ridge_rejected(self):
        with pytest.raises(ValueError):
            fit_ols(np.ones((3, 1)), np.ones(3), ridge=-1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_property_ridge_monotone_shrinkage(self, lam, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(25, 2))
        y = rng.normal(size=25)
        base = np.linalg.norm(fit_ols(X, y, intercept=False).coef)
        shrunk = np.linalg.norm(
            fit_ols(X, y, intercept=False, ridge=lam).coef
        )
        assert shrunk <= base + 1e-9


class TestRidgePlumbing:
    @pytest.fixture(scope="class")
    def chars(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        return [
            characterize_kernel(library, k)
            for k in suite.for_benchmark("LU")
        ]

    def test_cluster_models_accept_ridge(self, chars):
        plain = fit_cluster_models(chars)
        shrunk = fit_cluster_models(chars, ridge=5.0)
        assert np.linalg.norm(shrunk.cpu.perf_ratio.coef) < np.linalg.norm(
            plain.cpu.perf_ratio.coef
        ) + 1e-9
        # Predictions still sane.
        p = shrunk.cpu.predict_power(Configuration.cpu(2.4, 2), 25.0)
        assert 5.0 < p < 60.0

    def test_adaptive_model_accepts_ridge(self, chars):
        model = AdaptiveModel.train(chars, n_clusters=1, ridge=2.0)
        assert model.clustering.n_clusters == 1
