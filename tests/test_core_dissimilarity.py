"""Tests for repro.core.dissimilarity and repro.core.clustering."""

import numpy as np
import pytest

from repro.core import (
    ParetoFrontier,
    cluster_kernels,
    dissimilarity_matrix,
    frontier_dissimilarity,
)
from repro.core.frontier import FrontierPoint
from repro.hardware import NoiseModel, TrinityAPU
from repro.workloads import build_suite


def _frontier(points):
    """points: list of (config, power, perf)."""
    return ParetoFrontier(
        FrontierPoint(config=c, power_w=pw, performance=pf) for c, pw, pf in points
    )


@pytest.fixture(scope="module")
def space():
    return list(TrinityAPU().config_space)


def test_identical_frontiers_zero_dissimilarity(space):
    f = _frontier([(space[0], 10, 1), (space[1], 20, 2), (space[2], 30, 3)])
    assert frontier_dissimilarity(f, f) == pytest.approx(0.0)


def test_reversed_shared_order_max_order_term(space):
    a = _frontier([(space[0], 10, 1), (space[1], 20, 2)])
    b = _frontier([(space[1], 10, 1), (space[0], 20, 2)])
    # Same composition (jaccard term 0), reversed order (order term 1).
    assert frontier_dissimilarity(a, b, composition_weight=0.5) == pytest.approx(0.5)
    assert frontier_dissimilarity(a, b, composition_weight=0.0) == pytest.approx(1.0)


def test_disjoint_composition_max_dissimilarity(space):
    a = _frontier([(space[0], 10, 1), (space[1], 20, 2)])
    b = _frontier([(space[2], 10, 1), (space[3], 20, 2)])
    assert frontier_dissimilarity(a, b) == pytest.approx(1.0)


def test_single_shared_config_carries_no_order_info(space):
    a = _frontier([(space[0], 10, 1), (space[1], 20, 2)])
    b = _frontier([(space[0], 10, 1), (space[2], 20, 2)])
    # Jaccard = 1/3, order term = 1 (too few shared).
    expected = 0.5 * (1 - 1 / 3) + 0.5 * 1.0
    assert frontier_dissimilarity(a, b) == pytest.approx(expected)


def test_composition_weight_validation(space):
    f = _frontier([(space[0], 10, 1)])
    with pytest.raises(ValueError):
        frontier_dissimilarity(f, f, composition_weight=1.5)


def test_dissimilarity_symmetric_and_bounded():
    apu = TrinityAPU(noise=NoiseModel.exact())
    suite = build_suite()
    frontiers = {}
    for k in list(suite)[:10]:
        frontiers[k.uid] = ParetoFrontier.from_measurements(apu.run_all_configs(k))
    D = dissimilarity_matrix(frontiers)
    assert D.shape == (10, 10)
    np.testing.assert_allclose(D, D.T)
    assert np.all((D >= 0) & (D <= 1))
    np.testing.assert_allclose(np.diag(D), 0.0)


def test_vectorized_matrix_matches_scalar_pairwise():
    """The all-pairs matrix equals the scalar frontier_dissimilarity
    applied pair by pair, at every composition weight."""
    apu = TrinityAPU(noise=NoiseModel.exact())
    suite = list(build_suite())[:12]
    frontiers = {
        k.uid: ParetoFrontier.from_measurements(apu.run_all_configs(k))
        for k in suite
    }
    uids = list(frontiers)
    for w in (0.0, 0.25, 0.5, 1.0):
        D = dissimilarity_matrix(frontiers, composition_weight=w)
        for i, a in enumerate(uids):
            for j, b in enumerate(uids):
                expected = frontier_dissimilarity(
                    frontiers[a], frontiers[b], composition_weight=w
                )
                assert D[i, j] == pytest.approx(expected, abs=1e-12)


def test_dissimilarity_cache_submatrix_slices():
    from repro.core import DissimilarityCache

    apu = TrinityAPU(noise=NoiseModel.exact())
    suite = list(build_suite())[:10]
    frontiers = {
        k.uid: ParetoFrontier.from_measurements(apu.run_all_configs(k))
        for k in suite
    }
    cache = DissimilarityCache()
    for uid, f in frontiers.items():
        cache.add(uid, f)
    uids = list(frontiers)
    full = dissimilarity_matrix(frontiers, composition_weight=0.5)
    np.testing.assert_allclose(
        cache.submatrix(uids, composition_weight=0.5), full, atol=1e-12
    )
    subset = [uids[7], uids[2], uids[5]]
    idx = [uids.index(u) for u in subset]
    np.testing.assert_allclose(
        cache.submatrix(subset, composition_weight=0.5),
        full[np.ix_(idx, idx)],
        atol=1e-12,
    )
    with pytest.raises(KeyError):
        cache.submatrix(["unregistered/kernel"])


def test_dissimilarity_matrix_empty_rejected():
    with pytest.raises(ValueError):
        dissimilarity_matrix([])


def test_dissimilarity_accepts_sequence(space):
    a = _frontier([(space[0], 10, 1), (space[1], 20, 2)])
    D = dissimilarity_matrix([a, a])
    assert D[0, 1] == pytest.approx(0.0)


class TestClustering:
    @pytest.fixture(scope="class")
    def frontiers(self):
        apu = TrinityAPU(noise=NoiseModel.exact())
        suite = build_suite()
        return {
            k.uid: ParetoFrontier.from_measurements(apu.run_all_configs(k))
            for k in suite
        }

    def test_default_five_clusters(self, frontiers):
        result = cluster_kernels(frontiers)
        assert result.n_clusters == 5
        assert set(result.labels.values()) == set(range(5))
        assert sum(result.sizes()) == len(frontiers)

    def test_clusters_nonempty_and_reasonably_balanced(self, frontiers):
        result = cluster_kernels(frontiers)
        sizes = result.sizes()
        assert min(sizes) >= 1
        assert max(sizes) < len(frontiers)  # no single giant cluster

    def test_silhouette_positive(self, frontiers):
        # A meaningful clustering: structure, not noise.
        assert cluster_kernels(frontiers).silhouette > 0.1

    def test_clusters_span_benchmarks(self, frontiers):
        """Paper: each cluster contains kernels from at least three of
        the five benchmark/input groups (we require >= 2 benchmarks for
        the larger clusters)."""
        result = cluster_kernels(frontiers)
        for c in range(result.n_clusters):
            members = result.members(c)
            if len(members) >= 6:
                benchmarks = {uid.split("/")[0] for uid in members}
                assert len(benchmarks) >= 2

    def test_medoids_are_members(self, frontiers):
        result = cluster_kernels(frontiers)
        assert len(result.medoid_uids) == 5
        for c, uid in enumerate(result.medoid_uids):
            assert result.labels[uid] == c

    def test_average_linkage_method(self, frontiers):
        result = cluster_kernels(frontiers, method="average")
        assert result.method == "average"
        assert result.medoid_uids == ()
        assert sum(result.sizes()) == len(frontiers)

    def test_invalid_arguments(self, frontiers):
        with pytest.raises(ValueError):
            cluster_kernels(frontiers, n_clusters=0)
        with pytest.raises(ValueError):
            cluster_kernels(frontiers, n_clusters=len(frontiers) + 1)
        with pytest.raises(ValueError):
            cluster_kernels(frontiers, method="spectral")

    def test_deterministic(self, frontiers):
        a = cluster_kernels(frontiers)
        b = cluster_kernels(frontiers)
        assert a.labels == b.labels

    def test_choose_n_clusters_in_range(self, frontiers):
        from repro.core import choose_n_clusters

        k = choose_n_clusters(frontiers, k_range=(2, 6))
        assert 2 <= k <= 6
        # Determinism.
        assert k == choose_n_clusters(frontiers, k_range=(2, 6))

    def test_choose_n_clusters_validation(self, frontiers):
        from repro.core import choose_n_clusters

        with pytest.raises(ValueError):
            choose_n_clusters(frontiers, k_range=(1, 5))
        with pytest.raises(ValueError):
            choose_n_clusters(frontiers, k_range=(5, 3))
        small = dict(list(frontiers.items())[:2])
        with pytest.raises(ValueError):
            choose_n_clusters(small, k_range=(2, 8))
