"""Tests for repro.search.space and the hardware batch path."""

import numpy as np
import pytest

from repro import telemetry
from repro.hardware import NoiseModel, TrinityAPU
from repro.hardware.batch import (
    batch_cpu_time_s,
    batch_gpu_time_s,
    batch_total_power_w,
    batch_true_rate_power,
)
from repro.hardware.config import Configuration, Device
from repro.hardware.kernelmodel import cpu_time_s, gpu_time_s
from repro.hardware.power import power_w
from repro.methods.oracle import Oracle
from repro.search.space import (
    ENUMERATION_LIMIT,
    FactorAxis,
    GeneratedConfig,
    SpaceTooLargeError,
    demo_space,
    paper_space,
)
from repro.workloads import build_suite

from .conftest import make_kernel


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def kernel(suite):
    return suite.get("LU/Small/LUDecomposition")


# ---------------------------------------------------------------------------
# FactorAxis / GeneratedConfig
# ---------------------------------------------------------------------------


class TestFactorAxis:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="no levels"):
            FactorAxis("f", ())
        with pytest.raises(ValueError, match="duplicate"):
            FactorAxis("f", (1.0, 1.0))
        with pytest.raises(ValueError, match="non-finite"):
            FactorAxis("f", (1.0, float("nan")))

    def test_len(self):
        assert len(FactorAxis("f", (1.0, 2.0, 3.0))) == 3


class TestGeneratedConfig:
    def test_label_and_factors(self):
        cfg = GeneratedConfig(
            space="s", names=("a", "b"), values=(1.5, 2.0)
        )
        assert cfg.label() == "s[a=1.5,b=2]"
        assert cfg.factors() == {"a": 1.5, "b": 2.0}
        assert hash(cfg) == hash(
            GeneratedConfig(space="s", names=("a", "b"), values=(1.5, 2.0))
        )


# ---------------------------------------------------------------------------
# Batch evaluation path: bit-identical to the scalar models
# ---------------------------------------------------------------------------


class TestBatchBitIdentity:
    def _all_configs(self):
        return list(TrinityAPU().config_space)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_scalar_over_whole_space(self, seed):
        rng = np.random.default_rng(seed)
        k = make_kernel(
            work_s=float(rng.uniform(0.1, 5.0)),
            parallel_fraction=float(rng.uniform(0.3, 0.99)),
            mem_fraction=float(rng.uniform(0.0, 0.9)),
            gpu_affinity=float(rng.uniform(0.2, 10.0)),
            gpu_mem_fraction=float(rng.uniform(0.0, 0.9)),
            dram_intensity=float(rng.uniform(0.0, 1.0)),
        )
        cfgs = self._all_configs()
        is_gpu = np.array([c.device is Device.GPU for c in cfgs])
        f = np.array([c.cpu_freq_ghz for c in cfgs])
        n = np.array([float(c.n_threads) for c in cfgs])
        g = np.array([c.gpu_freq_ghz for c in cfgs])
        rates, powers = batch_true_rate_power(k, is_gpu, f, n, g)
        for i, c in enumerate(cfgs):
            t = (
                gpu_time_s(k, c.gpu_freq_ghz, c.cpu_freq_ghz)
                if c.device is Device.GPU
                else cpu_time_s(k, c.cpu_freq_ghz, c.n_threads)
            )
            assert rates[i] == 1.0 / t  # bit-identical, not approx
            assert powers[i] == power_w(k, c).total_w

    def test_component_kernels_match(self):
        k = make_kernel()
        f = np.array([1.4, 3.7])
        n = np.array([1.0, 4.0])
        g = np.array([0.311, 0.819])
        assert batch_cpu_time_s(k, f, n)[0] == cpu_time_s(k, 1.4, 1)
        assert batch_gpu_time_s(k, g, f)[1] == gpu_time_s(k, 0.819, 3.7)
        got = batch_total_power_w(
            k, np.array([False, True]), f, n, g
        )
        assert got[0] == power_w(k, Configuration.cpu(1.4, 1)).total_w
        assert got[1] == power_w(k, Configuration.gpu(0.819, 3.7)).total_w


# ---------------------------------------------------------------------------
# The paper space
# ---------------------------------------------------------------------------


class TestPaperSpace:
    def test_shape(self):
        sp = paper_space()
        assert sp.size == 2 * 6 * 4 * 3
        assert sp.n_axes == 4
        assert list(sp.radices) == [2, 6, 4, 3]

    def test_canonicalize_collapses_dont_care_axes(self):
        sp = paper_space()
        g = np.array([[1, 2, 3, 1], [0, 2, 3, 2]])
        canon = sp.canonicalize(g)
        assert canon[0, 2] == 0  # GPU row: one host thread
        assert canon[1, 3] == 0  # CPU row: GPU parked at min P-state
        assert np.array_equal(sp.canonicalize(canon), canon)  # idempotent

    def test_canonical_genomes_cover_the_42_valid_configs(self):
        sp = paper_space()
        payloads = sp.payloads(sp.all_genomes())
        assert all(isinstance(c, Configuration) for c in payloads)
        assert len(set(payloads)) == 42

    def test_sample_genomes_in_bounds_and_canonical(self, kernel):
        sp = paper_space()
        g = sp.sample_genomes(np.random.default_rng(0), 200)
        assert g.shape == (200, 4)
        assert g.min() >= 0 and np.all(g < sp.radices)
        assert np.array_equal(sp.canonicalize(g), g)

    def test_exact_frontier_equals_oracle_frontier(self, suite):
        sp = paper_space()
        oracle = Oracle(TrinityAPU(noise=NoiseModel.exact(), seed=0))
        for k in list(suite)[:8]:
            mine = sp.exact_frontier(k)
            ref = oracle.true_frontier(k)
            assert np.array_equal(mine.powers, ref.powers)
            assert np.array_equal(mine.performances, ref.performances)

    def test_exact_frontier_memoized_with_counters(self, kernel):
        sp = paper_space()
        hits = telemetry.counter("cache.search_space.hits")
        misses = telemetry.counter("cache.search_space.misses")
        first = sp.exact_frontier(kernel)
        h0, m0 = hits.value, misses.value
        again = sp.exact_frontier(kernel)
        assert again is first
        assert hits.value == h0 + 1 and misses.value == m0
        # A structurally-equal space hits the same memo entry.
        assert paper_space().exact_frontier(kernel) is first

    def test_validate_genomes_rejects_bad_shapes(self):
        sp = paper_space()
        with pytest.raises(ValueError, match="must be"):
            sp.validate_genomes(np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="out of axis bounds"):
            sp.validate_genomes(np.array([[0, 9, 0, 0]]))


# ---------------------------------------------------------------------------
# The demo space
# ---------------------------------------------------------------------------


class TestDemoSpace:
    def test_is_combinatorial_and_gated(self):
        dm = demo_space()
        assert dm.size >= 1_000_000
        assert dm.size > ENUMERATION_LIMIT
        with pytest.raises(SpaceTooLargeError, match="enumeration is gated"):
            dm.all_genomes()
        with pytest.raises(SpaceTooLargeError):
            dm.exact_frontier(make_kernel())

    def test_evaluation_is_finite_and_positive(self, kernel):
        dm = demo_space()
        g = dm.sample_genomes(np.random.default_rng(1), 5000)
        rates, powers = dm.evaluate(kernel, g)
        assert rates.shape == powers.shape == (5000,)
        assert np.all(np.isfinite(rates)) and np.all(rates > 0)
        assert np.all(np.isfinite(powers)) and np.all(powers > 0)

    def test_parallel_evaluation_matches_serial(self, kernel):
        dm = demo_space()
        g = dm.sample_genomes(np.random.default_rng(2), 40_000)
        serial = dm.evaluate(kernel, g, n_jobs=1)
        threaded = dm.evaluate(kernel, g, n_jobs=4)
        assert np.array_equal(serial[0], threaded[0])
        assert np.array_equal(serial[1], threaded[1])

    def test_payloads_are_generated_configs(self):
        dm = demo_space()
        g = dm.sample_genomes(np.random.default_rng(3), 4)
        payloads = dm.payloads(g)
        assert all(isinstance(p, GeneratedConfig) for p in payloads)
        assert payloads[0].space == dm.name
        assert set(payloads[0].factors()) == {a.name for a in dm.axes}
