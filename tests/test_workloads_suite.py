"""Tests for the workload substrate: suite composition and determinism."""

import numpy as np
import pytest

from repro.workloads import (
    CharacteristicRanges,
    InputScaling,
    Kernel,
    build_suite,
    sample_characteristics,
    stable_seed,
)
from repro.workloads._build import KernelSpec, build_benchmark
from tests.conftest import make_kernel


class TestSuiteComposition:
    def test_paper_counts(self):
        suite = build_suite()
        assert len(suite) == 65  # benchmark/input combinations
        assert suite.distinct_kernel_count() == 36  # distinct kernels

    def test_benchmark_breakdown(self):
        suite = build_suite()
        assert len(suite.for_benchmark("LULESH")) == 40
        assert len(suite.for_benchmark("CoMD")) == 14
        assert len(suite.for_benchmark("SMC")) == 8
        assert len(suite.for_benchmark("LU")) == 3

    def test_benchmarks_and_groups(self):
        suite = build_suite()
        assert suite.benchmarks() == ["LULESH", "CoMD", "SMC", "LU"]
        groups = suite.groups()
        assert "LULESH Small" in groups and "LU Large" in groups
        assert len(groups) == 8  # 2+2+1+3

    def test_uids_unique(self):
        suite = build_suite()
        uids = [k.uid for k in suite]
        assert len(set(uids)) == len(uids)

    def test_get_by_uid(self):
        suite = build_suite()
        k = suite.get("LULESH/Small/CalcFBHourglassForce")
        assert k.benchmark == "LULESH" and k.input_size == "Small"
        with pytest.raises(KeyError):
            suite.get("Nope/Nope/Nope")

    def test_unknown_benchmark_and_group_raise(self):
        suite = build_suite()
        with pytest.raises(KeyError):
            suite.for_benchmark("SPEC")
        with pytest.raises(KeyError):
            suite.for_group("SPEC Ref")

    def test_weights_sum_to_one_per_group(self):
        suite = build_suite()
        for group in suite.groups():
            total = sum(k.time_weight for k in suite.for_group(group))
            assert total == pytest.approx(1.0)


class TestDeterminism:
    def test_suite_identical_across_builds(self):
        s1, s2 = build_suite(), build_suite()
        for a, b in zip(s1, s2):
            assert a == b

    def test_stable_seed_is_stable(self):
        assert stable_seed("LULESH", "k1") == stable_seed("LULESH", "k1")
        assert stable_seed("LULESH", "k1") != stable_seed("LULESH", "k2")
        assert stable_seed("a", "bc") != stable_seed("ab", "c")  # separator works

    def test_same_kernel_different_inputs_share_flavour(self):
        suite = build_suite()
        small = suite.get("LULESH/Small/CalcFBHourglassForce").characteristics
        large = suite.get("LULESH/Large/CalcFBHourglassForce").characteristics
        # Input scaling changes work and memory pressure, not e.g. branchiness.
        assert small.branch_rate == pytest.approx(large.branch_rate)
        assert small.gpu_affinity == pytest.approx(large.gpu_affinity)
        assert large.work_s > small.work_s
        assert large.mem_fraction > small.mem_fraction


class TestDiversity:
    """The suite must reproduce the paper's reported kernel variance."""

    def test_gpu_affinity_spans_both_devices(self):
        suite = build_suite()
        affs = [k.characteristics.gpu_affinity for k in suite]
        assert min(affs) < 1.0  # some kernels prefer the CPU
        assert max(affs) > 6.0  # some kernels strongly prefer the GPU

    def test_memory_boundedness_varies(self):
        suite = build_suite()
        betas = [k.characteristics.mem_fraction for k in suite]
        assert min(betas) < 0.2 and max(betas) > 0.7

    def test_activity_varies_for_power_spread(self):
        suite = build_suite()
        acts = [k.characteristics.activity for k in suite]
        assert max(acts) / min(acts) > 2.0


class TestKernelType:
    def test_kernel_validation(self):
        chars = make_kernel()
        with pytest.raises(ValueError):
            Kernel(name="", benchmark="B", input_size="S", characteristics=chars)
        with pytest.raises(ValueError):
            Kernel(
                name="k", benchmark="B", input_size="S",
                characteristics=chars, time_weight=0.0,
            )

    def test_uid_and_group(self):
        k = Kernel(
            name="k", benchmark="B", input_size="S",
            characteristics=make_kernel(),
        )
        assert k.uid == "B/S/k"
        assert k.group == "B S"

    def test_with_context(self):
        k = Kernel(
            name="k", benchmark="B", input_size="S",
            characteristics=make_kernel(),
        )
        ctx = k.with_context("solver")
        assert ctx.uid == "B/S/k@solver"
        assert ctx.characteristics == k.characteristics
        with pytest.raises(ValueError):
            k.with_context("")
        with pytest.raises(ValueError):
            ctx.with_context("again")  # no nested contexts


class TestBuildHelpers:
    def test_build_benchmark_validation(self):
        base = CharacteristicRanges()
        inputs = {"Ref": InputScaling()}
        with pytest.raises(ValueError):
            build_benchmark("B", [], base, inputs)
        with pytest.raises(ValueError):
            build_benchmark("B", [KernelSpec("k")], base, {})
        with pytest.raises(ValueError):
            build_benchmark(
                "B", [KernelSpec("k"), KernelSpec("k")], base, inputs
            )
        with pytest.raises(ValueError):
            KernelSpec("k", rel_weight=0.0)

    def test_sample_characteristics_within_ranges(self):
        ranges = CharacteristicRanges(mem_fraction=(0.3, 0.31))
        rng = np.random.default_rng(0)
        for _ in range(10):
            c = sample_characteristics(ranges, rng)
            assert 0.3 <= c.mem_fraction <= 0.31

    def test_sample_characteristics_inverted_range_rejected(self):
        ranges = CharacteristicRanges(mem_fraction=(0.8, 0.2))
        with pytest.raises(ValueError):
            sample_characteristics(ranges, np.random.default_rng(0))

    def test_input_scaling_clamps(self):
        chars = make_kernel(mem_fraction=0.95)
        scaled = InputScaling(mem_shift=0.2).apply(chars)
        assert scaled.mem_fraction <= 0.97

    def test_degenerate_range_returns_constant(self):
        ranges = CharacteristicRanges(work_s=(1.0, 1.0))
        c = sample_characteristics(ranges, np.random.default_rng(0))
        assert c.work_s == 1.0
