"""Conformance suite every registered hardware backend must pass.

The pipeline above :mod:`repro.hardware.backend` (characterization,
clustering, regression, scheduling, the evaluation harness) is written
against the :class:`~repro.hardware.backend.HardwareBackend` contract,
not against Trinity.  This suite pins that contract for all registered
backends:

* configuration enumeration is deterministic and duplicate-free;
* ground truth is positive and finite for every (kernel, config);
* the vectorized batch path matches the scalar path bit for bit;
* the frontier built from the true table is mutually non-dominated and
  dominates the rest of the space;
* attaching an *empty* fault plan leaves measurements bit-identical.

Plus regression tests for the descriptor indirections that replaced
Trinity-specific assumptions (sample anchors, counters, presets).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.frontier import ParetoFrontier
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE, sample_configs_for
from repro.faults import FaultPlan
from repro.hardware.backend import (
    backend_names,
    create_backend,
    descriptor_for,
    descriptor_of_config,
)
from repro.hardware.config import ConfigSpace
from repro.workloads import build_suite

BACKENDS = ("trinity", "biglittle", "mpsoc")


@pytest.fixture(scope="module")
def kernels():
    suite = build_suite()
    # A cross-section of the suite: different benchmarks and sizes.
    return [suite.get(uid) for uid in (
        "LU/Small/LUDecomposition",
        "CoMD/Large/AdvanceVelocity",
        "LULESH/Small/CalcFBHourglassForce",
    )]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return create_backend(request.param, seed=0)


def test_registry_contains_all_builtin_backends():
    assert set(BACKENDS) <= set(backend_names())


class TestEnumeration:
    def test_enumeration_is_deterministic(self, backend):
        a = tuple(backend.config_space)
        b = tuple(create_backend(backend.name, seed=1).config_space)
        assert a == b

    def test_enumeration_is_duplicate_free(self, backend):
        configs = tuple(backend.config_space)
        assert len(configs) == len(set(configs))

    def test_every_config_validates_against_its_descriptor(self, backend):
        descriptor = descriptor_for(backend.name)
        for cfg in backend.config_space:
            descriptor.validate(cfg)

    def test_space_has_both_device_blocks(self, backend):
        configs = tuple(backend.config_space)
        assert any(c.is_gpu for c in configs)
        assert any(not c.is_gpu for c in configs)


class TestGroundTruth:
    def test_truth_is_positive_and_finite_everywhere(self, backend, kernels):
        for kernel in kernels:
            for cfg, (power_w, perf) in backend.true_table(kernel).items():
                assert math.isfinite(power_w) and power_w > 0, cfg.label()
                assert math.isfinite(perf) and perf > 0, cfg.label()

    def test_true_table_covers_the_whole_space(self, backend, kernels):
        table = backend.true_table(kernels[0])
        assert set(table) == set(backend.config_space)

    def test_batch_matches_scalar_bit_for_bit(self, backend, kernels):
        configs = tuple(backend.config_space)
        is_gpu = np.array([c.is_gpu for c in configs])
        f = np.array([c.cpu_freq_ghz for c in configs])
        n = np.array([float(c.n_threads) for c in configs])
        g = np.array([c.gpu_freq_ghz for c in configs])
        for kernel in kernels:
            rates, powers = backend.batch_rate_power(kernel, is_gpu, f, n, g)
            table = backend.true_table(kernel)
            for i, cfg in enumerate(configs):
                power_w, perf = table[cfg]
                assert rates[i] == perf, cfg.label()
                assert powers[i] == power_w, cfg.label()

    def test_true_frontier_is_non_dominated(self, backend, kernels):
        for kernel in kernels:
            table = backend.true_table(kernel)
            configs = list(table)
            powers = np.array([table[c][0] for c in configs])
            perfs = np.array([table[c][1] for c in configs])
            frontier = ParetoFrontier.from_arrays(configs, powers, perfs)
            f_pw = np.asarray(frontier.powers)
            f_pf = np.asarray(frontier.performances)
            # Mutually non-dominated: strictly increasing in both axes.
            assert np.all(np.diff(f_pw) > 0)
            assert np.all(np.diff(f_pf) > 0)
            # And dominating: no space point beats a frontier point on
            # both axes.
            for pw, pf in zip(powers, perfs):
                dominated = (f_pw <= pw) & (f_pf >= pf)
                assert dominated.any(), "space point escapes the frontier"


class TestMeasurement:
    def test_measurements_are_deterministic_per_seed(self, backend, kernels):
        twin = create_backend(backend.name, seed=0)
        cfg = tuple(backend.config_space)[0]
        a = backend.run(kernels[0], cfg)
        b = twin.run(kernels[0], cfg)
        assert a == b

    def test_empty_fault_plan_is_bit_identical(self, backend, kernels):
        faulty = create_backend(backend.name, seed=0)
        faulty.inject_faults(FaultPlan(name="empty"))
        for kernel in kernels:
            for cfg in tuple(backend.config_space)[:5]:
                clean = backend.run(kernel, cfg)
                injected = faulty.run(kernel, cfg)
                assert clean == injected

    def test_measurements_carry_counters(self, backend, kernels):
        m = backend.run(kernels[0], tuple(backend.config_space)[0])
        assert m.counters and all(
            math.isfinite(v) for v in m.counters.values()
        )


class TestDescriptorDispatch:
    """Regressions for the Trinity-specific assumptions that moved
    behind backend descriptors."""

    def test_sample_configs_for_trinity_is_table_ii(self):
        assert sample_configs_for(ConfigSpace()) == (CPU_SAMPLE, GPU_SAMPLE)

    def test_sample_configs_are_in_space_and_one_per_block(self, backend):
        space = backend.config_space
        cpu_sample, gpu_sample = sample_configs_for(space)
        configs = set(space)
        assert cpu_sample in configs and gpu_sample in configs
        assert not cpu_sample.is_gpu and gpu_sample.is_gpu

    def test_trinity_configspace_exposes_its_descriptor(self):
        space = ConfigSpace()
        assert space.descriptor is descriptor_for("trinity")

    def test_descriptor_of_config_round_trips(self, backend):
        for cfg in tuple(backend.config_space)[:3]:
            descriptor = descriptor_of_config(cfg)
            assert descriptor is descriptor_for(backend.name)

    def test_design_rows_share_the_portable_convention(self, backend):
        from repro.core.features import design_row, power_design_row

        cpu_sample, gpu_sample = sample_configs_for(backend.config_space)
        assert design_row(cpu_sample).shape == (3,)
        assert design_row(gpu_sample).shape == (3,)
        assert power_design_row(cpu_sample).shape == (5,)
        assert power_design_row(gpu_sample).shape == (6,)

    def test_counters_dispatch_to_descriptor_maxima(self, backend):
        from repro.hardware.counters import synthesize_counters
        from repro.workloads import build_suite

        kernel = build_suite().get("LU/Small/LUDecomposition")
        cpu_sample, _ = sample_configs_for(backend.config_space)
        counters = synthesize_counters(kernel.characteristics, cpu_sample)
        assert counters and all(
            math.isfinite(v) for v in counters.values()
        )

    def test_presets_include_registered_backends(self):
        from repro.hardware.presets import create_machine, machine_preset_names

        names = machine_preset_names()
        assert set(BACKENDS) <= set(names)
        machine = create_machine("biglittle", seed=3)
        assert machine.name == "biglittle"
        # Preset names keep their historical meaning on collision.
        assert create_machine("trinity", seed=0).name == "trinity"
