"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_all_commands(self):
        p = build_parser()
        assert p.parse_args(["suite"]).command == "suite"
        assert p.parse_args(["frontier", "a/b/c"]).kernel == "a/b/c"
        args = p.parse_args(["train", "-o", "m.json", "--n-clusters", "3"])
        assert args.output == "m.json" and args.n_clusters == 3
        args = p.parse_args(["predict", "-m", "m.json", "a/b/c", "--cap", "20"])
        assert args.cap == 20.0
        assert p.parse_args(["evaluate"]).command == "evaluate"
        assert p.parse_args(["eval"]).command == "eval"
        assert p.parse_args(["telemetry", "t.json"]).path == "t.json"

    def test_parses_logging_flags(self):
        p = build_parser()
        args = p.parse_args(["--log-level", "debug", "--log-json", "-q", "suite"])
        assert args.log_level == "debug"
        assert args.log_json is True
        assert args.quiet is True


class TestSuiteCommand:
    def test_lists_kernels(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "65 benchmark/input kernels" in out
        assert "LULESH/Small/CalcFBHourglassForce" in out
        assert "LU Large" in out


class TestFrontierCommand:
    def test_prints_frontier(self, capsys):
        assert main(["frontier", "LU/Small/LUDecomposition"]) == 0
        out = capsys.readouterr().out
        assert "Frontier of LU/Small/LUDecomposition" in out
        assert "Normalized performance" in out

    def test_unknown_kernel_fails_cleanly(self, capsys):
        assert main(["frontier", "No/Such/Kernel"]) == 2
        assert "error" in capsys.readouterr().err


class TestTrainPredictRoundtrip:
    def test_train_then_predict(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        # Train on a small slice for speed: hold out everything but CoMD
        # by excluding nothing and trusting the full run? No - train on
        # all but LU (the prediction target's benchmark).
        rc = main(
            [
                "train",
                "-o",
                str(model_path),
                "--exclude-benchmark",
                "LU",
            ]
        )
        assert rc == 0
        assert model_path.exists()
        out = capsys.readouterr().out
        assert "Model saved" in out

        rc = main(
            [
                "predict",
                "-m",
                str(model_path),
                "LU/Small/LUDecomposition",
                "--cap",
                "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster" in out
        assert "At 20.0 W" in out
        assert "ground truth" in out

    def test_train_excluding_everything_fails(self, tmp_path, capsys):
        # An exclusion that empties the suite is rejected... no single
        # benchmark empties it, so simulate with a bogus name: that
        # excludes nothing and must succeed instead.
        model_path = tmp_path / "m.json"
        rc = main(
            ["train", "-o", str(model_path), "--n-clusters", "2",
             "--exclude-benchmark", "LULESH"]
        )
        assert rc == 0


class TestEvaluateCommand:
    def test_evaluate_without_baselines(self, capsys):
        assert main(["evaluate", "--no-freq-limiting"]) == 0
        out = capsys.readouterr().out
        assert "Model" in out and "Model+FL" in out
        assert "% Under" in out

    def test_eval_alias_with_telemetry_out(self, tmp_path, capsys):
        out_path = tmp_path / "telemetry.json"
        rc = main(
            ["eval", "--no-freq-limiting", "--telemetry-out", str(out_path)]
        )
        assert rc == 0
        assert "% Under" in capsys.readouterr().out
        data = json.loads(out_path.read_text())
        span_names = {n["name"] for n in data["spans"]}
        assert "loocv" in span_names
        counters = data["metrics"]["counters"]
        assert "cache.profile.misses" in counters
        assert "scheduler.selections" in counters

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        assert main(["evaluate", "--no-freq-limiting"]) == 0
        captured = capsys.readouterr()
        # stdout is machine-readable results only; progress events land
        # on stderr through the structured logger.
        assert "loocv-start" not in captured.out
        assert "loocv-start" in captured.err

    def test_quiet_silences_progress(self, capsys):
        assert main(["-q", "evaluate", "--no-freq-limiting"]) == 0
        captured = capsys.readouterr()
        assert "loocv-start" not in captured.err
        assert "% Under" in captured.out


class TestTelemetryCommand:
    def test_pretty_prints_saved_report(self, tmp_path, capsys):
        out_path = tmp_path / "telemetry.json"
        assert main(
            ["eval", "--no-freq-limiting", "--telemetry-out", str(out_path)]
        ) == 0
        capsys.readouterr()
        assert main(["telemetry", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry report" in out
        assert "loocv" in out
        assert "Counters:" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["telemetry", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_compares_two_reports(self, tmp_path, capsys):
        import repro.telemetry as telemetry

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        telemetry.counter("cli.diff.c").inc(3)
        telemetry.write_telemetry(a)
        telemetry.counter("cli.diff.c").inc(4)
        telemetry.write_telemetry(b)
        assert main(["telemetry", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry diff" in out
        assert "cli.diff.c" in out
        assert "3 -> 7" in out

    def test_path_and_diff_are_mutually_exclusive(self, tmp_path, capsys):
        assert main(["telemetry"]) == 2
        assert "error" in capsys.readouterr().err


class TestTopCommand:
    def test_renders_saved_monitor_dump(self, tmp_path, capsys):
        import repro.telemetry as telemetry
        from repro.telemetry.monitor import Monitor

        clock_t = [0.0]
        telemetry.counter("cli.top.c")
        mon = Monitor(clock=lambda: clock_t[0])
        try:
            for _ in range(3):
                telemetry.counter("cli.top.c").inc(10)
                clock_t[0] += 1.0
                mon.tick()
            dump_path = mon.write_dump(tmp_path / "mon.json")
        finally:
            mon.close()
        assert main(["top", "--dump", str(dump_path)]) == 0
        out = capsys.readouterr().out
        assert "repro monitor" in out
        assert "cli.top.c" in out

    def test_scrape_unreachable_target_fails_cleanly(self, capsys):
        assert main(["top", "127.0.0.1:1"]) == 2
        assert "cannot scrape" in capsys.readouterr().err

    def test_cluster_demo_fires_and_clears_over_budget(self, capsys):
        assert main(["top", "--cluster", "--epochs", "6"]) == 0
        out = capsys.readouterr().out
        assert "cluster-over-budget" in out
        assert "fired=1, cleared=1" in out
        assert "budget compliance" in out

    def test_cluster_demo_rejects_short_runs(self, capsys):
        assert main(["top", "--cluster", "--epochs", "3"]) == 2
        assert "epochs" in capsys.readouterr().err


class TestRuntimeCommand:
    def test_runtime_prints_timeline(self, capsys):
        assert main(["runtime", "LU Small", "--cap", "20", "--timesteps", "4"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "t0" in out and "t3" in out
        assert "timesteps" in out  # the summary line

    def test_unknown_group_fails_cleanly(self, capsys):
        assert main(["runtime", "No Such Group"]) == 2
        assert "error" in capsys.readouterr().err


class TestAccuracyCommand:
    def test_accuracy_prints_summary(self, capsys):
        assert main(["accuracy"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out and "rank tau" in out


class TestReportCommand:
    def test_report_writes_all_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["report", "-o", str(out_dir)]) == 0
        names = {p.name for p in out_dir.glob("*.txt")}
        assert names == {
            "fig2_table1.txt",
            "fig3.txt",
            "fig7.txt",
            "table3.txt",
            "fig4.txt",
            "fig5.txt",
            "fig6.txt",
            "fig8.txt",
            "fig9.txt",
        }
        table3 = (out_dir / "table3.txt").read_text()
        assert "% Under" in table3


class TestClusterCommand:
    def test_parses_cluster_args(self):
        p = build_parser()
        args = p.parse_args(
            ["cluster", "--policy", "maxmin", "--n-nodes", "64",
             "--epochs", "2", "--churn", "4", "--tree"]
        )
        assert args.command == "cluster"
        assert args.policy == "maxmin"
        assert args.n_nodes == 64 and args.epochs == 2 and args.churn == 4
        assert args.tree is True

    def test_prints_epoch_table(self, capsys):
        assert main(["-q", "cluster", "--n-nodes", "32", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "32 synthesized nodes" in out
        assert "epoch" in out and "alloc_ms" in out
        assert len(out.strip().splitlines()) == 4  # header + title + 2 epochs

    def test_tree_churn_and_telemetry_out(self, tmp_path, capsys):
        out_path = tmp_path / "cluster-telemetry.json"
        rc = main(
            ["-q", "cluster", "--n-nodes", "64", "--epochs", "2",
             "--churn", "4", "--tree", "--telemetry-out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchical split" in out
        assert "4 nodes departed" in out
        data = json.loads(out_path.read_text())
        counters = data["metrics"]["counters"]
        assert counters.get("cluster.alloc.tree.calls", 0) >= 2
        assert counters.get("cluster.alloc.steps_taken", 0) > 0
        spans = {n["name"] for n in data["spans"]}
        assert "cluster/tree_allocate" in spans


class TestServeCommand:
    def test_parses_serve_args(self):
        p = build_parser()
        args = p.parse_args(
            ["serve", "--requests", "500", "--rate", "5000",
             "--max-batch", "64", "--max-delay-us", "100",
             "--telemetry-out", "t.json"]
        )
        assert args.command == "serve"
        assert args.requests == 500 and args.rate == 5000.0
        assert args.max_batch == 64 and args.max_delay_us == 100.0
        assert args.telemetry_out == "t.json"

    def test_serves_and_writes_telemetry(self, tmp_path, capsys):
        out_path = tmp_path / "server-telemetry.json"
        rc = main(
            ["-q", "serve", "--requests", "600", "--rate", "20000",
             "--telemetry-out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 600 decisions" in out
        assert "latency p50" in out
        assert "batching:" in out
        data = json.loads(out_path.read_text())
        counters = data["metrics"]["counters"]
        assert counters["server.requests"] >= 600
        assert 0 < counters["server.batches"] < counters["server.requests"]
        spans = {n["name"] for n in data["spans"]}
        assert "server/batch" in spans and "server/warm" in spans

    def test_bad_arguments_fail_cleanly(self, capsys):
        assert main(["-q", "serve", "--requests", "0"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["-q", "serve", "--rate", "-5"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchServeCommand:
    def test_admission_table_and_json(self, tmp_path, capsys):
        out_path = tmp_path / "bench_serve.json"
        rc = main(
            ["-q", "bench-serve", "--rates", "4000,20000",
             "--duration", "0.15", "-o", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered/s" in out and "p99 us" in out
        assert len(out.strip().splitlines()) >= 3  # header + 2 rates
        data = json.loads(out_path.read_text())
        assert [r["offered_rps"] for r in data["loads"]] == [4000.0, 20000.0]
        assert all(r["completed"] > 0 for r in data["loads"])
        assert data["config"]["max_batch"] >= 1

    def test_bad_rates_fail_cleanly(self, capsys):
        assert main(["-q", "bench-serve", "--rates", "fast"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["-q", "bench-serve", "--rates", "-3"]) == 2
        assert "error" in capsys.readouterr().err


class TestSearchCommand:
    def test_parser_accepts_search_args(self):
        p = build_parser()
        args = p.parse_args(
            [
                "search",
                "--space",
                "paper",
                "--population",
                "32",
                "--generations",
                "10",
                "--epsilon",
                "0",
                "--baseline-budget",
                "500",
                "--n-jobs",
                "2",
            ]
        )
        assert args.command == "search"
        assert args.space == "paper"
        assert args.population == 32 and args.generations == 10
        assert args.epsilon == 0.0
        assert args.baseline_budget == 500
        assert args.n_jobs == 2
        assert p.parse_args(["search"]).space == "demo"

    def test_paper_space_search_validates_against_exact(self, capsys):
        assert (
            main(
                [
                    "-q",
                    "search",
                    "--space",
                    "paper",
                    "--population",
                    "48",
                    "--generations",
                    "25",
                    "--epsilon",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "space trinity: 144 points" in out
        assert "vs exact enumeration" in out
        assert "hypervolume ratio 1.0000" in out

    def test_demo_space_with_baseline_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "search.json"
        telemetry_path = tmp_path / "telemetry.json"
        assert (
            main(
                [
                    "-q",
                    "search",
                    "--space",
                    "demo",
                    "--population",
                    "32",
                    "--generations",
                    "5",
                    "--baseline-budget",
                    "200",
                    "--json",
                    str(json_path),
                    "--telemetry-out",
                    str(telemetry_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "space bigiron-demo: 1179648 points" in out
        assert "random baseline: 200 evaluations" in out

        summary = json.loads(json_path.read_text())
        assert summary["space"] == "bigiron-demo"
        assert summary["evaluations"] == 32 * 6
        assert summary["baseline"]["evaluations"] == 200
        powers = [p["power_w"] for p in summary["frontier"]]
        assert powers == sorted(powers)

        telemetry_doc = json.loads(telemetry_path.read_text())
        metrics = telemetry_doc["metrics"]
        assert metrics["counters"]["search.evaluations"] >= 32 * 6 + 200
        assert "search.archive_size" in metrics["gauges"]
        span_names = {s["name"] for s in telemetry_doc["spans"]}
        assert "search/run" in span_names

    def test_unknown_kernel_fails_cleanly(self, capsys):
        assert main(["-q", "search", "--kernel", "no/such/kernel"]) != 0
