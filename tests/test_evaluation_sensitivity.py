"""Tests for repro.evaluation.sensitivity (on a reduced suite)."""

import pytest

from repro.evaluation import render_sweep, sweep_hyperparameter
from repro.evaluation.sensitivity import SensitivityPoint
from repro.workloads import Suite, build_suite


@pytest.fixture(scope="module")
def mini_suite():
    full = build_suite()
    return Suite(
        kernels=tuple(k for k in full if k.benchmark in ("CoMD", "LU"))
    )


class TestSweep:
    def test_sweep_produces_point_per_value(self, mini_suite):
        points = sweep_hyperparameter(
            "n_clusters", [2, 3], suite=mini_suite, seed=0
        )
        assert [p.value for p in points] == [2, 3]
        for p in points:
            assert p.parameter == "n_clusters"
            assert 0.0 <= p.pct_under_limit <= 100.0
            assert p.under_perf_pct > 0.0

    def test_fixed_parameters_forwarded(self, mini_suite):
        points = sweep_hyperparameter(
            "ridge", [0.0, 5.0], suite=mini_suite, seed=0, n_clusters=2
        )
        assert len(points) == 2

    def test_validation(self, mini_suite):
        with pytest.raises(ValueError):
            sweep_hyperparameter("learning_rate", [0.1], suite=mini_suite)
        with pytest.raises(ValueError):
            sweep_hyperparameter("ridge", [], suite=mini_suite)
        with pytest.raises(ValueError):
            sweep_hyperparameter(
                "ridge", [0.0], suite=mini_suite, ridge=1.0
            )
        with pytest.raises(ValueError):
            sweep_hyperparameter(
                "ridge", [0.0], suite=mini_suite, bogus=1
            )

    def test_deterministic(self, mini_suite):
        a = sweep_hyperparameter("n_clusters", [2], suite=mini_suite, seed=1)
        b = sweep_hyperparameter("n_clusters", [2], suite=mini_suite, seed=1)
        assert a == b


class TestRenderSweep:
    def test_render(self):
        points = [
            SensitivityPoint("ridge", 0.0, 90.0, 85.0),
            SensitivityPoint("ridge", 5.0, 92.0, 84.0),
        ]
        text = render_sweep(points, title="Sweep")
        assert "Sweep" in text and "ridge" in text
        assert "90.0" in text and "92.0" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_sweep([])
