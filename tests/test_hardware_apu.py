"""Tests for repro.hardware.apu, counters, and noise."""

import numpy as np
import pytest

from repro.hardware import (
    COUNTER_NAMES,
    Configuration,
    Measurement,
    NoiseModel,
    TrinityAPU,
    synthesize_counters,
)
from tests.conftest import make_kernel


def test_measurement_derived_quantities():
    m = Measurement(
        config=Configuration.cpu(2.4, 2),
        time_s=0.5,
        cpu_plane_w=10.0,
        nbgpu_plane_w=5.0,
    )
    assert m.total_power_w == pytest.approx(15.0)
    assert m.performance == pytest.approx(2.0)
    assert m.energy_j == pytest.approx(7.5)


def test_exact_apu_measurements_equal_ground_truth(exact_apu, kernel):
    cfg = Configuration.cpu(2.4, 3)
    m = exact_apu.run(kernel, cfg)
    assert m.time_s == pytest.approx(exact_apu.true_time_s(kernel, cfg))
    assert m.total_power_w == pytest.approx(
        exact_apu.true_total_power_w(kernel, cfg)
    )


def test_noisy_measurements_differ_but_are_close(kernel):
    apu = TrinityAPU(seed=42)
    cfg = Configuration.cpu(2.4, 3)
    truth = apu.true_time_s(kernel, cfg)
    samples = [apu.run(kernel, cfg).time_s for _ in range(50)]
    assert any(abs(s - truth) > 1e-9 for s in samples)
    assert np.mean(samples) == pytest.approx(truth, rel=0.02)
    assert all(abs(s - truth) / truth < 0.15 for s in samples)


def test_noise_is_reproducible_from_seed(kernel):
    cfg = Configuration.gpu(0.649, 1.9)
    a = TrinityAPU(seed=7).run(kernel, cfg)
    b = TrinityAPU(seed=7).run(kernel, cfg)
    assert a.time_s == b.time_s
    assert a.cpu_plane_w == b.cpu_plane_w
    assert a.counters == b.counters


def test_run_rejects_foreign_config(exact_apu, kernel):
    with pytest.raises(ValueError):
        exact_apu.run(kernel, None)  # type: ignore[arg-type]


def test_run_accepts_wrapper_objects(exact_apu, kernel):
    class Wrapper:
        characteristics = kernel

    cfg = Configuration.cpu(1.4, 1)
    assert exact_apu.run(Wrapper(), cfg).time_s == pytest.approx(
        exact_apu.run(kernel, cfg).time_s
    )


def test_run_rejects_non_kernel(exact_apu):
    with pytest.raises(TypeError):
        exact_apu.run("not a kernel", Configuration.cpu(1.4, 1))


def test_run_all_configs_covers_space(exact_apu, kernel):
    ms = exact_apu.run_all_configs(kernel)
    assert len(ms) == 42
    assert len({m.config for m in ms}) == 42


def test_counters_complete_and_finite(kernel):
    for cfg in (Configuration.cpu(2.4, 4), Configuration.gpu(0.819, 1.4)):
        c = synthesize_counters(kernel, cfg)
        assert set(c) == set(COUNTER_NAMES)
        assert all(np.isfinite(v) and v >= 0 for v in c.values())


def test_counters_reflect_memory_boundedness():
    mem = make_kernel(mem_fraction=0.9)
    comp = make_kernel(mem_fraction=0.05)
    cfg = Configuration.cpu(3.7, 4)
    assert (
        synthesize_counters(mem, cfg)["stall_frac"]
        > synthesize_counters(comp, cfg)["stall_frac"]
    )
    assert (
        synthesize_counters(mem, cfg)["ipc"] < synthesize_counters(comp, cfg)["ipc"]
    )


def test_counters_l2_rises_with_thread_sharing(kernel):
    one = synthesize_counters(kernel, Configuration.cpu(2.4, 1))
    four = synthesize_counters(kernel, Configuration.cpu(2.4, 4))
    assert four["l2_miss_per_inst"] > one["l2_miss_per_inst"]


def test_counters_distinguish_devices(kernel):
    cpu = synthesize_counters(kernel, Configuration.cpu(3.7, 1))
    gpu = synthesize_counters(kernel, Configuration.gpu(0.819, 3.7))
    assert gpu["vector_per_inst"] < cpu["vector_per_inst"]
    assert gpu["interrupts_per_mcycle"] > cpu["interrupts_per_mcycle"]


def test_noise_model_validation():
    with pytest.raises(ValueError):
        NoiseModel(time_rel=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(power_rel=0.9)


def test_noise_model_exact_passthrough(kernel):
    nm = NoiseModel.exact()
    rng = np.random.default_rng(0)
    assert nm.perturb_time(1.23, rng) == 1.23
    assert nm.perturb_power(45.6, rng) == 45.6
    assert nm.perturb_counters({"a": 1.0}, rng) == {"a": 1.0}


def test_noise_model_unbiased():
    nm = NoiseModel(time_rel=0.05)
    rng = np.random.default_rng(1)
    draws = [nm.perturb_time(10.0, rng) for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(10.0, rel=0.01)
    assert np.std(draws) == pytest.approx(0.5, rel=0.15)
