"""Golden-record regression: ``run_loocv(seed=0)`` is bit-frozen.

The digest committed at ``tests/golden/loocv_seed0.sha256`` is the
SHA-256 of the canonicalized record sequence (floats rendered via
``float.hex``, so a match means every bit of every float is identical).
Any change that perturbs the pipeline's numerical results — noise
stream, frontier construction, method decisions, record ordering —
fails here instead of slipping through unnoticed.

To re-freeze after an *intentional* behavioural change::

    PYTHONPATH=src python -c "
    from repro.evaluation import records_digest, run_loocv
    print(records_digest(run_loocv(seed=0).records))
    " > tests/golden/loocv_seed0.sha256

and explain the perturbation in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.evaluation import canonical_record, record_lines, records_digest, run_loocv
from repro.faults import FaultPlan

GOLDEN_PATH = Path(__file__).parent / "golden" / "loocv_seed0.sha256"


def golden_digest() -> str:
    return GOLDEN_PATH.read_text().strip()


@pytest.fixture(scope="module")
def seed0_records():
    return run_loocv(seed=0).records


class TestCanonicalization:
    def test_canonical_record_is_json_safe(self, seed0_records) -> None:
        payload = canonical_record(seed0_records[0])
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload

    def test_record_lines_are_order_sensitive(self, seed0_records) -> None:
        forward = record_lines(seed0_records[:4])
        assert forward == record_lines(seed0_records[:4])
        reversed_digest = records_digest(reversed(seed0_records[:4]))
        assert reversed_digest != records_digest(seed0_records[:4])

    def test_digest_sensitive_to_single_bit(self, seed0_records) -> None:
        import dataclasses

        base = seed0_records[:4]
        nudged = list(base)
        record = nudged[0]
        nudged[0] = dataclasses.replace(
            record, power_w=record.power_w + record.power_w * 2.0**-52
        )
        assert records_digest(nudged) != records_digest(base)


class TestGoldenRecord:
    def test_golden_file_is_a_sha256(self) -> None:
        digest = golden_digest()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_seed0_matches_golden(self, seed0_records) -> None:
        assert records_digest(seed0_records) == golden_digest()

    def test_empty_fault_plan_matches_golden(self) -> None:
        report = run_loocv(seed=0, fault_plan=FaultPlan(name="empty"))
        assert records_digest(report.records) == golden_digest()
