"""Property-based tests (hypothesis) for the hardware backend zoo.

Physical invariants the analytical machine models must satisfy for
*arbitrary* kernels and knob settings, not just the suite's 65:

* DVFS power monotonicity — raising a block's frequency (voltage rises
  with it along the ladder) never lowers true power, on any backend;
* big.LITTLE migration cost is never negative, for any kernel and any
  valid calibration constants;
* lumos technology-node scaling is *uniform* per node, so it preserves
  Pareto dominance between any two configurations exactly.
"""

from __future__ import annotations

import math
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.backend import characteristics_of, create_backend
from repro.hardware.biglittle import HMPConstants, migration_cost_s
from repro.hardware.mpsoc import TECH_NODES_NM, MPSoC, dvfs_bounds
from repro.workloads import build_suite

BACKENDS = ("trinity", "biglittle", "mpsoc")

_SUITE = list(build_suite())
_MACHINES = {name: create_backend(name, seed=0) for name in BACKENDS}
_MPSOC_NODES = {nm: MPSoC(tech_nm=nm, seed=0) for nm in TECH_NODES_NM}

kernels = st.sampled_from(_SUITE)


def _ladder_neighbors(backend, kernel, data):
    """Draw one config and the same config one frequency step up."""
    descriptor = backend.descriptor
    configs = tuple(backend.config_space)
    cfg = data.draw(st.sampled_from(configs), label="config")
    block = descriptor.secondary if cfg.is_gpu else descriptor.primary
    freqs = block.freqs_ghz
    freq = cfg.gpu_freq_ghz if cfg.is_gpu else cfg.cpu_freq_ghz
    i = block.index(freq)
    if i + 1 >= len(freqs):
        return None
    if cfg.is_gpu:
        faster = [
            c
            for c in configs
            if c.is_gpu
            and c.n_threads == cfg.n_threads
            and c.cpu_freq_ghz == cfg.cpu_freq_ghz
            and block.index(c.gpu_freq_ghz) == i + 1
        ]
    else:
        faster = [
            c
            for c in configs
            if not c.is_gpu
            and c.n_threads == cfg.n_threads
            and c.gpu_freq_ghz == cfg.gpu_freq_ghz
            and block.index(c.cpu_freq_ghz) == i + 1
        ]
    if not faster:
        return None
    return cfg, faster[0]


@settings(max_examples=60, deadline=None)
@given(name=st.sampled_from(BACKENDS), kernel=kernels, data=st.data())
def test_dvfs_power_is_monotone_in_frequency(name, kernel, data):
    """One ladder step up (frequency and voltage rise together) never
    lowers true power, at fixed thread count on the same block."""
    backend = _MACHINES[name]
    pair = _ladder_neighbors(backend, kernel, data)
    if pair is None:
        return
    slow, fast = pair
    table = backend.true_table(kernel)
    assert table[fast][0] >= table[slow][0], (
        f"{name}: power dropped stepping {slow.label()} -> {fast.label()}"
    )


@settings(max_examples=100, deadline=None)
@given(
    kernel=kernels,
    base_s=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    scale=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_migration_cost_is_never_negative(kernel, base_s, scale):
    constants = HMPConstants(
        migration_base_s=base_s, migration_launch_scale=scale
    )
    cost = migration_cost_s(characteristics_of(kernel), constants)
    assert math.isfinite(cost)
    assert cost >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    kernel=kernels,
    nodes=st.tuples(
        st.sampled_from(TECH_NODES_NM), st.sampled_from(TECH_NODES_NM)
    ),
    data=st.data(),
)
def test_node_scaling_preserves_pareto_dominance(kernel, nodes, data):
    """If config A dominates config B at one technology node, the same
    ladder positions dominate at every other node — node scaling
    multiplies every time by one constant and every power by another,
    which cannot reorder either axis."""
    nm_a, nm_b = nodes
    m_a, m_b = _MPSOC_NODES[nm_a], _MPSOC_NODES[nm_b]
    table_a = list(m_a.true_table(kernel).values())
    table_b = list(m_b.true_table(kernel).values())
    n = len(table_a)
    assert n == len(table_b)
    i = data.draw(st.integers(min_value=0, max_value=n - 1), label="i")
    j = data.draw(st.integers(min_value=0, max_value=n - 1), label="j")
    (pw_ai, pf_ai), (pw_aj, pf_aj) = table_a[i], table_a[j]
    (pw_bi, pf_bi), (pw_bj, pf_bj) = table_b[i], table_b[j]
    if pw_ai <= pw_aj and pf_ai >= pf_aj:
        assert pw_bi <= pw_bj and pf_bi >= pf_bj


@settings(max_examples=40, deadline=None)
@given(nm=st.sampled_from(TECH_NODES_NM))
def test_node_ladders_respect_dvfs_bounds(nm):
    """Every relative DVFS point of a node's ladders sits inside the
    node's (near-threshold, boost) voltage-scaling bounds."""
    machine = _MPSOC_NODES[nm]
    lo, hi = dvfs_bounds(nm)
    for rel in machine._rel_serial.values():
        assert lo <= rel <= hi
    for rel in machine._rel_tput.values():
        assert lo <= rel <= hi


@settings(max_examples=50, deadline=None)
@given(
    kernel=kernels,
    launch=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
)
def test_migration_cost_scales_with_launch_overhead(kernel, launch):
    """The migration cost is monotone in the kernel's launch overhead
    (a heavier context costs at least as much to migrate)."""
    base = replace(characteristics_of(kernel), launch_overhead_s=launch)
    heavier = replace(base, launch_overhead_s=launch + 0.01)
    c = HMPConstants()
    assert migration_cost_s(heavier, c) >= migration_cost_s(base, c)
