"""Equivalence tests for the array-backed prediction engine.

The vectorized engine — :class:`repro.core.configspace.ConfigTable`,
the argsort/running-max :class:`~repro.core.frontier.ParetoFrontier`,
and :meth:`Scheduler.select_many` — replaced per-``Configuration`` dict
loops.  These tests pin the new code to the legacy scalar semantics:
same frontier points in the same order under ties, same
``best_under_cap``/``dominates`` answers, and decisions identical to
per-cap :meth:`Scheduler.select` across the paper's fig5/fig6 cap
sweep, including the risk-averse branch.  The reference implementations
below are verbatim ports of the pre-vectorization code.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPU_SAMPLE, GPU_SAMPLE, Scheduler, train_model
from repro.core.frontier import ParetoFrontier
from repro.core.scheduler import SchedulerDecision, _objective
from repro.hardware import ConfigSpace, NoiseModel, TrinityAPU
from repro.methods import Oracle
from repro.profiling import ProfilingLibrary
from repro.workloads import build_suite

_SPACE = list(ConfigSpace())


# -- legacy reference implementations (pre-vectorization, verbatim) -----------


def _legacy_frontier(points):
    """The legacy loop: sort by (power, -perf), keep strictly improving
    performance.  Returns (config, power, perf) triples in order."""
    candidates = sorted(points, key=lambda p: (p[1], -p[2]))
    frontier = []
    best_perf = 0.0
    for p in candidates:
        if p[2] > best_perf:
            frontier.append(p)
            best_perf = p[2]
    return frontier


def _legacy_dominates(frontier_points, power_w, performance):
    """The legacy linear scan replaced by the bisect in
    :meth:`ParetoFrontier.dominates`."""
    for _, pw, perf in frontier_points:
        if pw > power_w:
            break
        if perf >= performance and (pw < power_w or perf > performance):
            return True
    return False


def _legacy_select(
    scheduler,
    prediction,
    power_cap_w,
    *,
    risk_averse=False,
    confidence_z=1.0,
):
    """The legacy scalar selection loop (dict iteration, first-wins
    ties) replaced by the vectorized :meth:`Scheduler.select`."""
    effective_cap = power_cap_w * (1.0 - scheduler.risk_margin)
    best = None
    fallback = None
    for cfg, (pw, perf) in prediction.predictions.items():
        pw_bound, perf_bound = pw, perf
        if risk_averse:
            pw_std, perf_std = prediction.uncertainties[cfg]
            if not math.isnan(pw_std):
                pw_bound = pw + confidence_z * pw_std
            if not math.isnan(perf_std):
                perf_bound = max(perf - confidence_z * perf_std, 1e-9)
        decision = SchedulerDecision(
            config=cfg,
            predicted_power_w=pw,
            predicted_performance=perf,
            predicted_feasible=pw_bound <= effective_cap,
        )
        if decision.predicted_feasible:
            score = _objective(scheduler.goal, pw_bound, perf_bound)
            if best is None or score > best[0]:
                best = (score, decision)
        fb_score = -pw_bound
        if fallback is None or fb_score > fallback[0]:
            fallback = (fb_score, decision)
    return best[1] if best is not None else fallback[1]


# -- frontier property tests ---------------------------------------------------


@st.composite
def frontier_points(draw):
    """Random (config, power, perf) sets over distinct configurations.

    Values come from coarse grids so duplicated powers and performances
    — the tie cases that distinguish sort stabilities — are common.
    """
    n = draw(st.integers(min_value=1, max_value=len(_SPACE)))
    powers = draw(
        st.lists(
            st.integers(min_value=1, max_value=12).map(lambda v: v * 5.5),
            min_size=n,
            max_size=n,
        )
    )
    perfs = draw(
        st.lists(
            st.integers(min_value=1, max_value=12).map(lambda v: v * 0.25),
            min_size=n,
            max_size=n,
        )
    )
    return [(_SPACE[i], powers[i], perfs[i]) for i in range(n)]


class TestFrontierMatchesLegacyLoop:
    @given(points=frontier_points())
    @settings(max_examples=300, deadline=None)
    def test_same_points_same_order_same_ties(self, points):
        expected = _legacy_frontier(points)
        frontier = ParetoFrontier.from_predictions(
            {cfg: (pw, perf) for cfg, pw, perf in points}
        )
        got = [(p.config, p.power_w, p.performance) for p in frontier]
        assert got == expected

    @given(points=frontier_points(), cap_step=st.integers(0, 13))
    @settings(max_examples=300, deadline=None)
    def test_best_under_cap_matches_legacy_scan(self, points, cap_step):
        cap = cap_step * 5.5 + 0.1  # straddles the power grid
        expected_points = _legacy_frontier(points)
        legacy_best = None
        for p in expected_points:  # legacy semantics: last point under cap
            if p[1] <= cap:
                legacy_best = p
            else:
                break
        frontier = ParetoFrontier.from_predictions(
            {cfg: (pw, perf) for cfg, pw, perf in points}
        )
        best = frontier.best_under_cap(cap)
        if legacy_best is None:
            assert best is None
        else:
            assert (best.config, best.power_w, best.performance) == legacy_best

    @given(
        points=frontier_points(),
        q_power=st.integers(1, 13),
        q_perf=st.integers(1, 13),
    )
    @settings(max_examples=300, deadline=None)
    def test_dominates_matches_legacy_scan(self, points, q_power, q_perf):
        power_w = q_power * 5.5
        performance = q_perf * 0.25
        frontier = ParetoFrontier.from_predictions(
            {cfg: (pw, perf) for cfg, pw, perf in points}
        )
        expected = _legacy_dominates(_legacy_frontier(points), power_w, performance)
        assert frontier.dominates(power_w, performance) == expected


# -- scheduler equivalence over the fig5/fig6 sweep ---------------------------


@pytest.fixture(scope="module")
def sweep():
    """Predictions (with uncertainty) and oracle caps for every kernel
    of one held-out benchmark — the paper's fig5/fig6 protocol."""
    apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
    suite = build_suite()
    library = ProfilingLibrary(apu, seed=0)
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_model(library, train)
    oracle = Oracle(apu)
    cases = []
    for kernel in suite.for_benchmark("LU"):
        cpu_m = apu.run(kernel, CPU_SAMPLE)
        gpu_m = apu.run(kernel, GPU_SAMPLE)
        prediction = model.predict_kernel(
            cpu_m, gpu_m, kernel_uid=kernel.uid, with_uncertainty=True
        )
        cases.append((prediction, oracle.caps_for(kernel)))
    return cases


class TestSelectManyMatchesPerCapSelect:
    def test_fig5_fig6_sweep_identical(self, sweep):
        scheduler = Scheduler()
        for prediction, caps in sweep:
            batched = scheduler.select_many(prediction, caps)
            for cap, got in zip(caps, batched):
                assert got == scheduler.select(prediction, cap)

    def test_sweep_identical_with_risk_margin(self, sweep):
        scheduler = Scheduler(risk_margin=0.1)
        for prediction, caps in sweep:
            batched = scheduler.select_many(prediction, caps)
            for cap, got in zip(caps, batched):
                assert got == scheduler.select(prediction, cap)

    @pytest.mark.parametrize("goal", ["performance", "energy", "edp"])
    def test_sweep_identical_across_goals(self, sweep, goal):
        scheduler = Scheduler(goal)
        prediction, caps = sweep[0]
        batched = scheduler.select_many(prediction, caps)
        for cap, got in zip(caps, batched):
            assert got == scheduler.select(prediction, cap)


class TestVectorizedSelectMatchesLegacyScalar:
    @pytest.mark.parametrize("goal", ["performance", "energy", "edp"])
    def test_plain_select_pins_to_legacy(self, sweep, goal):
        scheduler = Scheduler(goal)
        for prediction, caps in sweep:
            for cap in caps:
                assert scheduler.select(prediction, cap) == _legacy_select(
                    scheduler, prediction, cap
                )

    @pytest.mark.parametrize("confidence_z", [0.0, 1.0, 2.0])
    def test_risk_averse_select_pins_to_legacy(self, sweep, confidence_z):
        scheduler = Scheduler()
        for prediction, caps in sweep:
            for cap in caps:
                got = scheduler.select(
                    prediction, cap, risk_averse=True, confidence_z=confidence_z
                )
                expected = _legacy_select(
                    scheduler,
                    prediction,
                    cap,
                    risk_averse=True,
                    confidence_z=confidence_z,
                )
                assert got == expected

    def test_risk_averse_select_many_matches_per_cap(self, sweep):
        scheduler = Scheduler()
        for prediction, caps in sweep:
            batched = scheduler.select_many(
                prediction, caps, risk_averse=True, confidence_z=1.5
            )
            for cap, got in zip(caps, batched):
                assert got == scheduler.select(
                    prediction, cap, risk_averse=True, confidence_z=1.5
                )
