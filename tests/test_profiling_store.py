"""Tests for the profile-once characterization store and the
order-independent noise streams it depends on.

The load-bearing guarantee: serving characterizations from a shared
store changes wall-clock time, never results.  That requires the
profiling library's noise to be a pure function of
``(seed, kernel, configuration, repetition)`` — independent of the
order in which runs are requested — which is pinned here alongside the
store's caching, slicing, and registry behavior and an end-to-end
determinism regression on :func:`run_loocv`.
"""

import numpy as np
import pytest

from repro.core.characterization import characterize_kernel
from repro.core.dissimilarity import dissimilarity_matrix
from repro.evaluation import run_loocv
from repro.hardware import TrinityAPU
from repro.profiling import CharacterizationStore, ProfilingLibrary, suite_fingerprint
from repro.profiling.store import _STORE_STREAM_TAG
from repro.workloads import build_suite


@pytest.fixture(autouse=True)
def _isolated_registry():
    CharacterizationStore.clear_shared()
    yield
    CharacterizationStore.clear_shared()


def _profile_key(profile):
    m = profile.measurement
    return (
        m.time_s,
        m.cpu_plane_w,
        m.nbgpu_plane_w,
        tuple(sorted(m.counters.items())),
    )


class TestOrderIndependentNoise:
    def test_profiles_identical_in_any_order(self):
        kernels = list(build_suite())[:3]
        apu = TrinityAPU(seed=0)
        configs = list(apu.config_space)[:4]

        runs = [(k, c) for k in kernels for c in configs]
        forward = ProfilingLibrary(apu, seed=7)
        backward = ProfilingLibrary(apu, seed=7)
        a = {(k.uid, c): _profile_key(forward.profile(k, c)) for k, c in runs}
        b = {
            (k.uid, c): _profile_key(backward.profile(k, c))
            for k, c in reversed(runs)
        }
        assert a == b

    def test_repetition_draws_fresh_noise(self):
        kernel = next(iter(build_suite()))
        apu = TrinityAPU(seed=0)
        lib = ProfilingLibrary(apu, seed=7)
        cfg = list(apu.config_space)[0]
        first = lib.profile(kernel, cfg)
        second = lib.profile(kernel, cfg)
        assert _profile_key(first) != _profile_key(second)

    def test_different_seeds_differ(self):
        kernel = next(iter(build_suite()))
        apu = TrinityAPU(seed=0)
        cfg = list(apu.config_space)[0]
        p7 = ProfilingLibrary(apu, seed=7).profile(kernel, cfg)
        p8 = ProfilingLibrary(apu, seed=8).profile(kernel, cfg)
        assert _profile_key(p7) != _profile_key(p8)


class TestCharacterizationStore:
    def test_store_equals_from_scratch_characterization(self):
        kernels = list(build_suite())[:5]
        store = CharacterizationStore(seed=3)
        fresh_lib = ProfilingLibrary(
            TrinityAPU(seed=3),
            seed=np.random.SeedSequence([3, _STORE_STREAM_TAG]),
        )
        for k in kernels:
            served = store.characterization(k)
            scratch = characterize_kernel(fresh_lib, k)
            assert served.measurements == scratch.measurements

    def test_characterization_cached(self):
        kernel = next(iter(build_suite()))
        store = CharacterizationStore(seed=0)
        first = store.characterization(kernel)
        again = store.characterization(kernel)
        assert first is again
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1

    def test_uid_conflict_raises(self):
        k0, k1 = list(build_suite())[:2]
        store = CharacterizationStore(seed=0)
        store.characterization(k0)

        class Imposter:
            uid = k0.uid
            characteristics = k1.characteristics

        with pytest.raises(ValueError, match="conflicts"):
            store.characterization(Imposter())

    def test_dissimilarity_submatrix_matches_direct(self):
        kernels = list(build_suite())[:8]
        store = CharacterizationStore(seed=0)
        sub = store.dissimilarity_submatrix(kernels, composition_weight=0.5)
        frontiers = {k.uid: store.frontier(k) for k in kernels}
        direct = dissimilarity_matrix(frontiers, composition_weight=0.5)
        np.testing.assert_allclose(sub, direct, atol=1e-12)
        # A permuted subset slices consistently from the same cache.
        subset = list(reversed(kernels[2:6]))
        sub2 = store.dissimilarity_submatrix(subset, composition_weight=0.5)
        uids = [k.uid for k in kernels]
        idx = [uids.index(k.uid) for k in subset]
        np.testing.assert_allclose(sub2, direct[np.ix_(idx, idx)], atol=1e-12)

    def test_shared_registry_identity(self):
        suite = build_suite()
        s1 = CharacterizationStore.shared(suite, seed=0)
        s2 = CharacterizationStore.shared(list(suite), seed=0)
        assert s1 is s2
        assert CharacterizationStore.shared(suite, seed=1) is not s1
        micro = list(suite)[:3]
        assert CharacterizationStore.shared(micro, seed=0) is not s1

    def test_fingerprint_order_insensitive(self):
        kernels = list(build_suite())[:6]
        assert suite_fingerprint(kernels) == suite_fingerprint(
            list(reversed(kernels))
        )


class TestLOOCVDeterminism:
    def test_run_loocv_identical_with_store_and_from_scratch(self):
        # Shared-store run (registry cold, then warm) vs an explicit
        # fresh private store: all three must agree exactly.
        r_cold = run_loocv(seed=0, include_freq_limiting=False)
        r_warm = run_loocv(seed=0, include_freq_limiting=False)
        r_scratch = run_loocv(
            seed=0,
            include_freq_limiting=False,
            store=CharacterizationStore(seed=0),
        )
        assert r_cold.records == r_warm.records
        assert r_cold.records == r_scratch.records

    def test_run_loocv_parallel_identical(self):
        serial = run_loocv(seed=1, include_freq_limiting=False)
        parallel = run_loocv(seed=1, include_freq_limiting=False, n_jobs=4)
        assert serial.records == parallel.records
        assert set(serial.fold_models) == set(parallel.fold_models)

    def test_timings_recorded(self):
        report = run_loocv(seed=0, include_freq_limiting=False)
        t = report.timings
        assert t.wall_s > 0
        assert t.profile_s >= 0 and t.train_s > 0 and t.evaluate_s > 0
        assert t.n_jobs == 1
