"""Cross-architecture transfer harness (repro.evaluation.transfer)."""

from __future__ import annotations

import math

import pytest

from repro.evaluation.transfer import (
    DEFAULT_KS,
    TransferReport,
    _lsq_gain,
    recalibration_configs,
    run_transfer,
)
from repro.hardware.backend import create_backend
from repro.telemetry import counter
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def small_suite():
    suite = build_suite()
    return [suite.get(uid) for uid in (
        "LU/Small/LUDecomposition",
        "LU/Large/LUDecomposition",
        "CoMD/Small/LJForce",
        "CoMD/Large/EAMForce",
        "LULESH/Small/CalcFBHourglassForce",
        "SMC/Ref/UpdateRK3",
    )]


@pytest.fixture(scope="module")
def report(small_suite):
    return run_transfer("trinity", "biglittle", seed=0, suite=small_suite)


class TestRecalibrationConfigs:
    def test_zero_budget_picks_nothing(self):
        space = create_backend("biglittle").config_space
        assert recalibration_configs(space, 0) == ((), ())

    def test_picks_k_per_block_excluding_samples(self):
        from repro.core.sample_configs import sample_configs_for

        space = create_backend("biglittle").config_space
        samples = set(sample_configs_for(space))
        for k in (1, 3, 5):
            cpu_cfgs, gpu_cfgs = recalibration_configs(space, k)
            assert len(cpu_cfgs) == k and len(gpu_cfgs) == k
            assert not (set(cpu_cfgs) | set(gpu_cfgs)) & samples
            assert all(not c.is_gpu for c in cpu_cfgs)
            assert all(c.is_gpu for c in gpu_cfgs)

    def test_selection_is_deterministic(self):
        space = create_backend("mpsoc").config_space
        assert recalibration_configs(space, 3) == recalibration_configs(
            space, 3
        )

    def test_budget_clamps_to_block_size(self):
        space = create_backend("mpsoc").config_space
        cpu_cfgs, gpu_cfgs = recalibration_configs(space, 1000)
        assert len(cpu_cfgs) < 1000 and len(gpu_cfgs) < 1000
        assert len(set(cpu_cfgs)) == len(cpu_cfgs)

    def test_negative_budget_rejected(self):
        space = create_backend("mpsoc").config_space
        with pytest.raises(ValueError):
            recalibration_configs(space, -1)


class TestLsqGain:
    def test_exact_scale_recovered(self):
        assert _lsq_gain([1.0, 2.0, 3.0], [2.0, 4.0, 6.0]) == pytest.approx(2.0)

    def test_degenerate_predictions_fall_back_to_identity(self):
        assert _lsq_gain([0.0, 0.0], [5.0, 6.0]) == 1.0

    def test_negative_gain_falls_back_to_identity(self):
        assert _lsq_gain([1.0, 1.0], [-5.0, -6.0]) == 1.0


class TestRunTransfer:
    def test_report_shape(self, report):
        assert isinstance(report, TransferReport)
        assert report.ks == DEFAULT_KS
        assert tuple(p.k for p in report.transferred) == DEFAULT_KS
        assert report.native.k is None
        assert report.point(0).recalibration_runs == 0

    def test_recalibration_improves_power_accuracy(self, report):
        zero_shot = report.point(0)
        recalibrated = report.point(max(report.ks))
        assert recalibrated.power_mape < zero_shot.power_mape

    def test_native_model_beats_transfer(self, report):
        best = min(p.power_mape for p in report.transferred)
        assert report.native.power_mape < best
        assert report.native.pct_under_limit >= max(
            p.pct_under_limit for p in report.transferred
        )

    def test_metrics_are_finite_and_bounded(self, report):
        for p in (*report.transferred, report.native):
            assert math.isfinite(p.power_mape) and p.power_mape >= 0
            assert math.isfinite(p.perf_mape) and p.perf_mape >= 0
            assert -1.0 <= p.perf_rank_tau <= 1.0
            assert 0.0 <= p.pct_under_limit <= 100.0
            assert p.n_cases > 0

    def test_recalibration_runs_counted(self, small_suite):
        before = counter("transfer.recalibration_samples").value
        r = run_transfer(
            "trinity", "mpsoc", ks=(2,), seed=0, suite=small_suite
        )
        delta = counter("transfer.recalibration_samples").value - before
        # 2 per block x 2 blocks x kernels, all on the telemetry counter.
        assert delta == 4 * len(small_suite)
        assert r.point(2).recalibration_runs == delta

    def test_same_backend_rejected(self):
        with pytest.raises(ValueError):
            run_transfer("trinity", "trinity")

    def test_to_dict_round_trips(self, report):
        d = report.to_dict()
        assert d["train_backend"] == "trinity"
        assert d["eval_backend"] == "biglittle"
        assert len(d["transferred"]) == len(report.transferred)
        assert d["native"]["k"] is None

    def test_deterministic_given_seed(self, small_suite):
        a = run_transfer("trinity", "mpsoc", ks=(0, 1), seed=3, suite=small_suite)
        b = run_transfer("trinity", "mpsoc", ks=(0, 1), seed=3, suite=small_suite)
        assert a.to_dict() == b.to_dict()
