"""Unit and property tests for repro.stats.cart (CART classification tree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import ClassificationTree


def test_single_threshold_problem():
    X = np.array([[0.1], [0.2], [0.3], [0.7], [0.8], [0.9]])
    y = np.array([0, 0, 0, 1, 1, 1])
    tree = ClassificationTree().fit(X, y)
    np.testing.assert_array_equal(tree.predict(X), y)
    assert tree.depth() == 1
    assert tree.n_leaves() == 2


def test_two_feature_problem():
    # Class determined by x0 > 0.5 XOR-free: quadrant split needs depth 2.
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(200, 2))
    y = (X[:, 0] > 0.5).astype(int) * 2 + (X[:, 1] > 0.5).astype(int)
    tree = ClassificationTree(max_depth=4).fit(X, y)
    acc = np.mean(tree.predict(X) == y)
    assert acc > 0.95


def test_arbitrary_labels_roundtrip():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array(["alpha", "alpha", "beta", "beta"])
    tree = ClassificationTree().fit(X, y)
    assert tree.predict(np.array([0.5])) == "alpha"
    assert tree.predict(np.array([2.5])) == "beta"


def test_pure_node_is_leaf():
    X = np.arange(5, dtype=float).reshape(-1, 1)
    y = np.zeros(5, dtype=int)
    tree = ClassificationTree().fit(X, y)
    assert tree.root.is_leaf
    assert tree.n_leaves() == 1


def test_max_depth_zero_gives_majority_stump():
    X = np.arange(10, dtype=float).reshape(-1, 1)
    y = np.array([0] * 7 + [1] * 3)
    tree = ClassificationTree(max_depth=0).fit(X, y)
    assert tree.root.is_leaf
    assert np.all(tree.predict(X) == 0)


def test_min_samples_leaf_respected():
    X = np.arange(10, dtype=float).reshape(-1, 1)
    y = np.array([0] * 9 + [1])
    tree = ClassificationTree(min_samples_leaf=3).fit(X, y)

    def check(node):
        if node.is_leaf:
            assert node.n_samples >= 3 or node.depth == 0
        else:
            check(node.left)
            check(node.right)

    check(tree.root)


def test_identical_features_cannot_split():
    X = np.ones((6, 2))
    y = np.array([0, 1, 0, 1, 0, 1])
    tree = ClassificationTree().fit(X, y)
    assert tree.root.is_leaf  # no valid threshold exists


def test_render_mentions_feature_names_and_clusters():
    X = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
    y = np.array([0, 0, 1, 1])
    tree = ClassificationTree(feature_names=("l2_miss_rate", "power")).fit(X, y)
    text = tree.render()
    assert "l2_miss_rate" in text
    assert "cluster" in text
    assert "yes:" in text and "no:" in text


def test_unfitted_tree_raises():
    tree = ClassificationTree()
    with pytest.raises(RuntimeError):
        tree.predict(np.zeros((1, 1)))
    with pytest.raises(RuntimeError):
        tree.render()


def test_invalid_hyperparameters():
    with pytest.raises(ValueError):
        ClassificationTree(max_depth=-1)
    with pytest.raises(ValueError):
        ClassificationTree(min_samples_split=1)
    with pytest.raises(ValueError):
        ClassificationTree(min_samples_leaf=0)


def test_invalid_fit_inputs():
    tree = ClassificationTree()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3,)), np.zeros(3))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        tree.fit(np.array([[np.inf]]), np.array([0]))


def test_predict_feature_width_check():
    tree = ClassificationTree().fit(np.zeros((2, 3)), np.array([0, 1]))
    with pytest.raises(ValueError):
        tree.predict(np.zeros((1, 2)))


def test_deterministic_fit():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(60, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    t1 = ClassificationTree(max_depth=5).fit(X, y)
    t2 = ClassificationTree(max_depth=5).fit(X, y)
    assert t1.render() == t2.render()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_training_accuracy_with_unbounded_depth(n, p, k, seed):
    """With distinct rows and no depth cap, CART fits training data exactly."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    # Perturb to guarantee distinct values in feature 0.
    X[:, 0] += np.arange(n) * 1e-3
    y = rng.integers(0, k, size=n)
    tree = ClassificationTree(max_depth=64).fit(X, y)
    np.testing.assert_array_equal(tree.predict(X), y)


class TestPruning:
    def test_useless_splits_collapse_at_alpha_zero(self):
        # Pure-noise labels: the tree overfits; alpha=0 keeps only
        # splits that reduce training error, and collapsing a split
        # that doesn't must shrink the tree.
        rng = np.random.default_rng(5)
        X = rng.normal(size=(40, 2))
        y = np.array([0] * 36 + [1] * 4)
        tree = ClassificationTree(max_depth=8).fit(X, rng.permutation(y))
        before = tree.n_leaves()
        # Noise splits isolate single samples: one error saved per extra
        # leaf (g = 1), so alpha = 1 collapses them.
        tree.prune(alpha=1.0)
        assert tree.n_leaves() < before

    def test_informative_split_survives(self):
        X = np.array([[0.1], [0.2], [0.3], [0.7], [0.8], [0.9]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = ClassificationTree().fit(X, y).prune(alpha=0.5)
        assert not tree.root.is_leaf  # the perfect split stays
        np.testing.assert_array_equal(tree.predict(X), y)

    def test_huge_alpha_prunes_to_stump(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(60, 3))
        y = (X[:, 0] > 0).astype(int)
        tree = ClassificationTree(max_depth=6).fit(X, y).prune(alpha=1e9)
        assert tree.root.is_leaf

    def test_prune_validation(self):
        tree = ClassificationTree()
        with pytest.raises(RuntimeError):
            tree.prune(0.0)
        tree.fit(np.zeros((2, 1)), np.array([0, 1]))
        with pytest.raises(ValueError):
            tree.prune(-1.0)

    def test_pruned_tree_still_predicts(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(80, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        tree = ClassificationTree(max_depth=6).fit(X, y).prune(alpha=1.0)
        acc = np.mean(tree.predict(X) == y)
        assert acc > 0.8  # pruning trades little training accuracy

    def test_training_error_monotone_in_alpha(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, size=100)

        def train_error(alpha):
            t = ClassificationTree(max_depth=10).fit(X, y).prune(alpha)
            return np.mean(t.predict(X) != y)

        errs = [train_error(a) for a in (0.0, 0.5, 2.0, 1e9)]
        assert all(errs[i] <= errs[i + 1] + 1e-12 for i in range(len(errs) - 1))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_predictions_are_training_labels(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(30, 2))
    y = rng.integers(0, 3, size=30)
    tree = ClassificationTree(max_depth=3).fit(X, y)
    preds = tree.predict(rng.normal(size=(20, 2)))
    assert set(np.unique(preds)).issubset(set(np.unique(y)))


# -- vectorized split search vs the retained reference loop --------------------

from repro.stats.cart import _best_split_reference  # noqa: E402


def _reference_structure(X, y, *, max_depth, min_samples_split, min_samples_leaf):
    """Grow a tree with the reference split search; return its shape as
    nested ``(feature, threshold, left, right)`` tuples (leaves are the
    majority count vector as a tuple)."""
    classes, y_enc = np.unique(y, return_inverse=True)
    n_classes = classes.shape[0]

    def grow(idx, depth):
        counts = np.bincount(y_enc[idx], minlength=n_classes)
        gini = 1.0 - np.sum((counts / counts.sum()) ** 2)
        if depth >= max_depth or idx.shape[0] < min_samples_split or gini == 0.0:
            return tuple(counts)
        split = _best_split_reference(
            X[idx], y_enc[idx], counts,
            n_classes=n_classes, min_samples_leaf=min_samples_leaf,
        )
        if split is None:
            return tuple(counts)
        f, thr = split
        left = idx[X[idx, f] <= thr]
        right = idx[X[idx, f] > thr]
        return (f, thr, grow(left, depth + 1), grow(right, depth + 1))

    return grow(np.arange(X.shape[0]), 0)


def _fitted_structure(tree):
    def walk(node):
        if node.is_leaf:
            return tuple(node.class_counts)
        return (node.feature, node.threshold, walk(node.left), walk(node.right))

    return walk(tree.root)


def test_split_matches_reference_on_tied_and_duplicated_columns():
    # Adversarial design: duplicated feature columns (identical split
    # candidates in two features → lowest feature index must win), runs
    # of duplicated values (no split between equals), and a constant
    # column (never splittable).
    X = np.array(
        [
            [0.0, 0.0, 7.0],
            [0.0, 0.0, 7.0],
            [1.0, 1.0, 7.0],
            [1.0, 1.0, 7.0],
            [2.0, 2.0, 7.0],
            [2.0, 2.0, 7.0],
            [3.0, 3.0, 7.0],
            [3.0, 3.0, 7.0],
        ]
    )
    y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    for leaf in (1, 2):
        tree = ClassificationTree(min_samples_leaf=leaf).fit(X, y)
        assert _fitted_structure(tree) == _reference_structure(
            X, y, max_depth=6, min_samples_split=2, min_samples_leaf=leaf
        )
        # The duplicated column tie must resolve to the lower index.
        assert tree.root.feature == 0


def test_split_matches_reference_on_equal_gini_thresholds():
    # Symmetric data: two thresholds achieve the same weighted Gini; the
    # reference's lexicographic key takes the lowest threshold.
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0, 1, 0, 1])
    tree = ClassificationTree().fit(X, y)
    assert _fitted_structure(tree) == _reference_structure(
        X, y, max_depth=6, min_samples_split=2, min_samples_leaf=1
    )


@settings(max_examples=80, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_tree_identical_to_reference_growth(
    n, p, k, n_values, min_leaf, seed
):
    """The vectorized fit grows the identical tree — same splits, same
    thresholds, same leaf counts — as reference-loop growth, including
    on heavily tied (few distinct values) feature columns."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, n_values, size=(n, p)).astype(float)
    y = rng.integers(0, k, size=n)
    tree = ClassificationTree(max_depth=4, min_samples_leaf=min_leaf).fit(X, y)
    assert _fitted_structure(tree) == _reference_structure(
        X, y, max_depth=4, min_samples_split=2, min_samples_leaf=min_leaf
    )


def test_leaf_tie_break_is_label_permutation_covariant():
    # One unsplittable node with tied class counts: constant features.
    X = np.zeros((4, 2))
    y = np.array([2, 0, 0, 2])
    tree = ClassificationTree().fit(X, y)
    # Tie between classes 0 and 2; the earliest sample (index 0) has
    # class 2, so the covariant rule predicts 2 — not the lowest id.
    assert tree.predict(np.zeros(2)) == 2

    # Relabeling the classes relabels the prediction identically.
    perm = {0: 1, 2: 0}
    y_perm = np.array([perm[c] for c in y])
    tree_perm = ClassificationTree().fit(X, y_perm)
    assert tree_perm.predict(np.zeros(2)) == perm[2]


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=4, max_value=30),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_predictions_label_permutation_covariant(n, k, seed):
    """Permuting class ids permutes every prediction identically, even
    through tied leaves (the warm-started-PAM invariance the evaluation
    driver relies on; see docs/TRAINING_ENGINE.md)."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 3, size=(n, 2)).astype(float)
    y = rng.integers(0, k, size=n)
    perm = rng.permutation(k)
    tree = ClassificationTree(max_depth=3).fit(X, y)
    tree_perm = ClassificationTree(max_depth=3).fit(X, perm[y])
    np.testing.assert_array_equal(perm[tree.predict(X)], tree_perm.predict(X))
