"""Property tests: kendall_tau variants vs scipy on tie-heavy inputs.

The vectorized pair-sign implementation must agree with
:func:`scipy.stats.kendalltau` everywhere we can compare:

* variant ``"b"`` is exactly scipy's tie-corrected tau-b, so it is
  checked on independently drawn integer sequences — a small value
  range forces many ties in both arguments;
* variant ``"a"`` has no scipy twin under ties, so it is checked two
  ways: against scipy on tie-free permutations (where tau-a == tau-b)
  and against a brute-force O(n^2) pair count on tied inputs.
"""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import kendall_tau

# Small integer range => ties are the common case, not the edge case.
_tied_values = st.integers(min_value=0, max_value=6)


def _paired_lists(min_size=2, max_size=30):
    return st.lists(
        st.tuples(_tied_values, _tied_values),
        min_size=min_size,
        max_size=max_size,
    )


@settings(max_examples=200, deadline=None)
@given(_paired_lists())
def test_tau_b_matches_scipy_under_ties(pairs):
    x = np.array([p[0] for p in pairs], dtype=float)
    y = np.array([p[1] for p in pairs], dtype=float)
    ours = kendall_tau(x, y, variant="b")
    theirs = scipy.stats.kendalltau(x, y).statistic
    if np.isnan(theirs):
        assert np.isnan(ours)
    else:
        assert ours == pytest.approx(theirs, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(st.permutations(list(range(10))), st.permutations(list(range(10))))
def test_tau_a_matches_scipy_on_tie_free_permutations(x, y):
    # Without ties the tie correction vanishes: tau-a == tau-b == scipy.
    ours = kendall_tau(x, y, variant="a")
    theirs = scipy.stats.kendalltau(x, y).statistic
    assert ours == pytest.approx(theirs, abs=1e-12)


def _brute_force_tau_a(x, y):
    n = len(x)
    cmd = sum(
        np.sign(x[i] - x[j]) * np.sign(y[i] - y[j])
        for i in range(n)
        for j in range(i + 1, n)
    )
    return cmd / (n * (n - 1) / 2)


@settings(max_examples=150, deadline=None)
@given(_paired_lists(max_size=20))
def test_tau_a_matches_brute_force_under_ties(pairs):
    x = np.array([p[0] for p in pairs], dtype=float)
    y = np.array([p[1] for p in pairs], dtype=float)
    assert kendall_tau(x, y, variant="a") == pytest.approx(
        _brute_force_tau_a(x, y), abs=1e-12
    )


@settings(max_examples=150, deadline=None)
@given(_paired_lists())
def test_variants_agree_in_sign_and_tau_b_dominates(pairs):
    x = np.array([p[0] for p in pairs], dtype=float)
    y = np.array([p[1] for p in pairs], dtype=float)
    tau_a = kendall_tau(x, y, variant="a")
    tau_b = kendall_tau(x, y, variant="b")
    if np.isnan(tau_b):  # constant argument: tau-a is 0 by convention
        assert tau_a == pytest.approx(0.0)
        return
    # Tie correction only shrinks the denominator.
    assert abs(tau_b) >= abs(tau_a) - 1e-12
    assert tau_a * tau_b >= -1e-12
