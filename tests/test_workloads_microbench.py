"""Tests for the microbenchmark generator."""

import pytest

from repro.workloads import microbenchmark_suite


def test_default_grid_size():
    micro = microbenchmark_suite()
    assert len(micro) == 54  # 3 * 3 * 3 * 2


def test_names_unique_and_descriptive():
    micro = microbenchmark_suite()
    names = [k.name for k in micro]
    assert len(set(names)) == len(names)
    assert all(n.startswith("ub_mem") for n in names)


def test_deterministic():
    a = microbenchmark_suite()
    b = microbenchmark_suite()
    for ka, kb in zip(a, b):
        assert ka == kb


def test_grid_axes_swept():
    micro = microbenchmark_suite()
    mems = {k.characteristics.mem_fraction for k in micro}
    pars = {k.characteristics.parallel_fraction for k in micro}
    affs = {k.characteristics.gpu_affinity for k in micro}
    acts = {k.characteristics.activity for k in micro}
    assert len(mems) == 3 and len(pars) == 3 and len(affs) == 3 and len(acts) == 2


def test_custom_levels():
    micro = microbenchmark_suite(
        mem_levels=(0.5,),
        parallel_levels=(0.9,),
        gpu_affinity_levels=(1.0, 5.0),
        activity_levels=(0.8,),
    )
    assert len(micro) == 2


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        microbenchmark_suite(mem_levels=())


def test_weights_sum_to_one():
    micro = microbenchmark_suite()
    assert sum(k.time_weight for k in micro) == pytest.approx(1.0)


def test_characteristics_valid_and_benchmark_labelled():
    micro = microbenchmark_suite()
    for k in micro:
        assert k.benchmark == "Microbench"
        assert 0.0 <= k.characteristics.gpu_mem_fraction <= 0.95
        assert k.characteristics.work_s > 0
