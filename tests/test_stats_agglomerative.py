"""Tests for repro.stats.agglomerative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import average_linkage_labels


def _pairwise(points: np.ndarray) -> np.ndarray:
    diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def test_recovers_two_blobs():
    rng = np.random.default_rng(0)
    pts = np.vstack(
        [rng.normal(0, 0.3, size=(6, 2)), rng.normal(8, 0.3, size=(6, 2))]
    )
    labels = average_linkage_labels(_pairwise(pts), 2)
    assert len(np.unique(labels[:6])) == 1
    assert len(np.unique(labels[6:])) == 1
    assert labels[0] != labels[6]


def test_k_equals_n():
    D = _pairwise(np.arange(4, dtype=float).reshape(-1, 1))
    labels = average_linkage_labels(D, 4)
    assert sorted(labels.tolist()) == [0, 1, 2, 3]


def test_k_equals_one():
    D = _pairwise(np.arange(5, dtype=float).reshape(-1, 1))
    labels = average_linkage_labels(D, 1)
    assert np.all(labels == 0)


def test_labels_renumbered_in_first_appearance_order():
    rng = np.random.default_rng(1)
    pts = np.vstack(
        [rng.normal(0, 0.1, size=(3, 1)), rng.normal(10, 0.1, size=(3, 1))]
    )
    labels = average_linkage_labels(_pairwise(pts), 2)
    assert labels[0] == 0  # first point defines label 0


def test_invalid_inputs():
    D = np.zeros((3, 3))
    with pytest.raises(ValueError):
        average_linkage_labels(D, 0)
    with pytest.raises(ValueError):
        average_linkage_labels(D, 4)
    with pytest.raises(ValueError):
        average_linkage_labels(np.zeros((2, 3)), 1)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_produces_exactly_k_clusters(n, k, seed):
    k = min(k, n)
    rng = np.random.default_rng(seed)
    D = _pairwise(rng.normal(size=(n, 2)))
    labels = average_linkage_labels(D, k)
    assert labels.shape == (n,)
    assert len(np.unique(labels)) == k
    assert labels.min() == 0 and labels.max() == k - 1
