"""Calibration and invariant tests for repro.hardware.power.

These tests pin the power model to the paper's published observations:
Table I (CPU floor ~12.5 W, CPU 4x2.4 GHz ~24 W, GPU floor ~24 W, GPU
ceiling ~30 W) and Section III-B (best-config power spans roughly
19-55 W across kernels).  We assert tolerant ranges, not exact values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    CPU_FREQS_GHZ,
    GPU_FREQS_GHZ,
    Configuration,
    PowerModelConstants,
    power_w,
)
from tests.conftest import make_kernel


TYPICAL = make_kernel()


def total(k, cfg):
    return power_w(k, cfg).total_w


def test_cpu_floor_near_12_watts():
    p = total(TYPICAL, Configuration.cpu(1.4, 1))
    assert 9.0 <= p <= 15.0


def test_cpu_4threads_24ghz_near_24_watts():
    p = total(TYPICAL, Configuration.cpu(2.4, 4))
    assert 20.0 <= p <= 29.0


def test_gpu_floor_near_24_watts():
    p = total(TYPICAL, Configuration.gpu(0.311, 1.4))
    assert 19.0 <= p <= 27.0


def test_gpu_ceiling_below_40_watts():
    p = total(TYPICAL, Configuration.gpu(0.819, 3.7))
    assert 28.0 <= p <= 40.0


def test_gpu_floor_above_cpu_floor():
    """The key behavioural property behind Figures 6-9: the GPU-active
    power floor is far above the lowest CPU configurations, so
    GPU-resident strategies cannot meet low power caps."""
    gpu_floor = total(TYPICAL, Configuration.gpu(0.311, 1.4))
    cpu_floor = total(TYPICAL, Configuration.cpu(1.4, 1))
    assert gpu_floor > cpu_floor + 5.0


def test_hot_kernel_can_exceed_50_watts():
    hot = make_kernel(activity=1.5, vector_fraction=0.9, dram_intensity=0.9)
    assert total(hot, Configuration.cpu(3.7, 4)) > 45.0


def test_cool_kernel_best_config_below_25_watts():
    cool = make_kernel(activity=0.4, dram_intensity=0.1)
    assert total(cool, Configuration.cpu(3.7, 4)) < 30.0


def test_power_monotone_in_threads():
    powers = [total(TYPICAL, Configuration.cpu(2.4, n)) for n in range(1, 5)]
    assert powers == sorted(powers)


def test_power_monotone_in_cpu_frequency():
    for n in (1, 4):
        powers = [total(TYPICAL, Configuration.cpu(f, n)) for f in CPU_FREQS_GHZ]
        assert powers == sorted(powers)


def test_power_monotone_in_gpu_frequency():
    powers = [total(TYPICAL, Configuration.gpu(g, 1.4)) for g in GPU_FREQS_GHZ]
    assert powers == sorted(powers)


def test_host_frequency_adds_modest_power_on_gpu_configs():
    lo = total(TYPICAL, Configuration.gpu(0.649, 1.4))
    hi = total(TYPICAL, Configuration.gpu(0.649, 3.7))
    assert 1.0 < hi - lo < 8.0  # Table I: ~4.6 W across the host range


def test_memory_bound_gpu_kernel_has_flat_gpu_power_ladder():
    flat = make_kernel(gpu_mem_fraction=0.95)
    steep = make_kernel(gpu_mem_fraction=0.05)

    def spread(k):
        return total(k, Configuration.gpu(0.819, 1.4)) - total(
            k, Configuration.gpu(0.311, 1.4)
        )

    assert spread(flat) < spread(steep)


def test_both_planes_positive_and_breakdown_sums():
    pb = power_w(TYPICAL, Configuration.gpu(0.649, 2.4))
    assert pb.cpu_plane_w > 0 and pb.nbgpu_plane_w > 0
    assert pb.total_w == pytest.approx(pb.cpu_plane_w + pb.nbgpu_plane_w)


def test_custom_constants_respected():
    consts = PowerModelConstants(nb_static=10.0)
    base = power_w(TYPICAL, Configuration.cpu(1.4, 1)).nbgpu_plane_w
    raised = power_w(TYPICAL, Configuration.cpu(1.4, 1), consts).nbgpu_plane_w
    assert raised == pytest.approx(base + 7.5)  # default nb_static = 2.5


def test_gpu_idle_power_charged_on_cpu_configs():
    # NB+GPU plane on a CPU config includes the idle GPU.
    pb = power_w(make_kernel(dram_intensity=0.0), Configuration.cpu(1.4, 1))
    consts = PowerModelConstants()
    assert pb.nbgpu_plane_w == pytest.approx(consts.nb_static + consts.gpu_idle_w)


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1.5),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(CPU_FREQS_GHZ),
)
def test_property_power_positive_and_bounded(act, dram, n, f):
    k = make_kernel(activity=act, dram_intensity=dram)
    p = total(k, Configuration.cpu(f, n))
    assert 5.0 < p < 100.0


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1.5),
    st.floats(min_value=0.0, max_value=0.99),
    st.sampled_from(GPU_FREQS_GHZ),
    st.sampled_from(CPU_FREQS_GHZ),
)
def test_property_gpu_power_positive_and_bounded(act, beta_g, g, f):
    k = make_kernel(gpu_activity=act, gpu_mem_fraction=beta_g)
    p = total(k, Configuration.gpu(g, f))
    assert 10.0 < p < 70.0
