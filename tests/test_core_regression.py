"""Tests for repro.core.features, characterization, and regression."""

import numpy as np
import pytest

from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    KernelCharacterization,
    characterization_from_database,
    characterize_kernel,
    design_matrix,
    design_row,
    fit_cluster_models,
)
from repro.core.features import power_design_row
from repro.hardware import Configuration, Device, NoiseModel, TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def library():
    return ProfilingLibrary(TrinityAPU(noise=NoiseModel.exact(), seed=0), seed=0)


@pytest.fixture(scope="module")
def characterizations(library):
    suite = build_suite()
    kernels = suite.for_benchmark("CoMD")[:6]
    return [characterize_kernel(library, k) for k in kernels]


class TestFeatures:
    def test_cpu_design_row_normalized(self):
        row = design_row(Configuration.cpu(3.7, 4))
        np.testing.assert_allclose(row, [1.0, 1.0, 1.0])
        row = design_row(Configuration.cpu(1.4, 1))
        assert row[0] == pytest.approx(1.4 / 3.7)
        assert row[1] == pytest.approx(0.25)
        assert row[2] == pytest.approx(row[0] * row[1])

    def test_gpu_design_row(self):
        row = design_row(Configuration.gpu(0.819, 3.7))
        np.testing.assert_allclose(row, [1.0, 1.0, 1.0])
        row = design_row(Configuration.gpu(0.311, 1.4))
        assert row[0] == pytest.approx(0.311 / 0.819)

    def test_power_design_row_widths(self):
        assert power_design_row(Configuration.cpu(2.4, 2)).shape == (5,)
        assert power_design_row(Configuration.gpu(0.649, 2.4)).shape == (6,)

    def test_power_design_row_voltage_terms_max_one(self):
        row = power_design_row(Configuration.cpu(3.7, 4))
        np.testing.assert_allclose(row, np.ones(5))
        row = power_design_row(Configuration.gpu(0.819, 3.7))
        np.testing.assert_allclose(row, np.ones(6))

    def test_design_matrix_single_device_only(self):
        with pytest.raises(ValueError):
            design_matrix([Configuration.cpu(1.4, 1), Configuration.gpu(0.819, 1.4)])
        with pytest.raises(ValueError):
            design_matrix([])
        M = design_matrix([Configuration.cpu(1.4, 1), Configuration.cpu(3.7, 4)])
        assert M.shape == (2, 3)


class TestCharacterization:
    def test_covers_all_configs(self, characterizations):
        c = characterizations[0]
        assert len(c.measurements) == 42

    def test_sample_accessors(self, characterizations):
        c = characterizations[0]
        assert c.cpu_sample.config == CPU_SAMPLE
        assert c.gpu_sample.config == GPU_SAMPLE
        assert c.sample_for(Configuration.cpu(1.4, 1)) is c.cpu_sample
        assert c.sample_for(Configuration.gpu(0.311, 1.4)) is c.gpu_sample

    def test_frontier_derivable(self, characterizations):
        f = characterizations[0].frontier()
        assert len(f) >= 3

    def test_missing_samples_rejected(self, characterizations):
        c = characterizations[0]
        partial = {
            cfg: m for cfg, m in c.measurements.items() if cfg != CPU_SAMPLE
        }
        with pytest.raises(ValueError):
            KernelCharacterization(kernel_uid="x", measurements=partial)
        with pytest.raises(ValueError):
            KernelCharacterization(kernel_uid="x", measurements={})

    def test_roundtrip_from_database(self, library, characterizations):
        uid = characterizations[0].kernel_uid
        rebuilt = characterization_from_database(library.database, uid)
        assert len(rebuilt.measurements) == 42
        assert rebuilt.cpu_sample.time_s == pytest.approx(
            characterizations[0].cpu_sample.time_s
        )


class TestClusterModels:
    @pytest.fixture(scope="class")
    def models(self, characterizations):
        return fit_cluster_models(characterizations)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_cluster_models([])

    def test_fit_rejects_bad_transform(self, characterizations):
        with pytest.raises(ValueError):
            fit_cluster_models(characterizations, transform="sqrt")

    def test_perf_prediction_anchored_at_sample(self, models, characterizations):
        """At the sample configuration the predicted ratio should be
        near 1, so prediction ~ sample performance."""
        c = characterizations[0]
        pred = models.cpu.predict_performance(CPU_SAMPLE, c.cpu_sample.performance)
        assert pred == pytest.approx(c.cpu_sample.performance, rel=0.25)

    def test_power_prediction_accuracy(self, models, characterizations):
        """Trained-on kernels: power predictions within a few percent."""
        for c in characterizations:
            for cfg, m in c.measurements.items():
                s = c.sample_for(cfg).total_power_w
                pred = models.for_device(cfg.device).predict_power(cfg, s)
                assert pred == pytest.approx(m.total_power_w, rel=0.15)

    def test_perf_ranking_quality(self, models, characterizations):
        """The paper's goal: the linear models must *rank* configurations
        well.  Spearman-style check: predicted and true performance
        orderings agree strongly on CPU configurations."""
        from repro.stats import kendall_tau

        c = characterizations[0]
        cpu_cfgs = [cfg for cfg in c.measurements if cfg.device is Device.CPU]
        true = [c.measurements[cfg].performance for cfg in cpu_cfgs]
        pred = [
            models.cpu.predict_performance(cfg, c.cpu_sample.performance)
            for cfg in cpu_cfgs
        ]
        assert kendall_tau(true, pred) > 0.75

    def test_device_mismatch_rejected(self, models):
        with pytest.raises(ValueError):
            models.cpu.predict_performance(Configuration.gpu(0.819, 3.7), 1.0)
        with pytest.raises(ValueError):
            models.gpu.predict_power(Configuration.cpu(1.4, 1), 20.0)

    def test_predict_combined(self, models, characterizations):
        c = characterizations[0]
        cfg = Configuration.gpu(0.649, 2.4)
        pw, pf = models.predict(
            cfg,
            sample_perf_cpu=c.cpu_sample.performance,
            sample_perf_gpu=c.gpu_sample.performance,
            sample_power_cpu_w=c.cpu_sample.total_power_w,
            sample_power_gpu_w=c.gpu_sample.total_power_w,
        )
        assert pw > 0 and pf > 0
        assert pw == pytest.approx(c.measurements[cfg].total_power_w, rel=0.2)

    def test_log_transform_predictions_positive(self, characterizations):
        models = fit_cluster_models(characterizations, transform="log")
        for cfg in (Configuration.cpu(1.4, 1), Configuration.gpu(0.311, 1.4)):
            c = characterizations[0]
            pw, pf = models.predict(
                cfg,
                sample_perf_cpu=c.cpu_sample.performance,
                sample_perf_gpu=c.gpu_sample.performance,
                sample_power_cpu_w=c.cpu_sample.total_power_w,
                sample_power_gpu_w=c.gpu_sample.total_power_w,
            )
            assert pw > 0 and pf > 0

    def test_no_anchor_variant_fits(self, characterizations):
        models = fit_cluster_models(characterizations, power_anchor=False)
        pred = models.cpu.predict_power(Configuration.cpu(2.4, 2), 999.0)
        # Without anchoring, the sample power argument is ignored.
        also = models.cpu.predict_power(Configuration.cpu(2.4, 2), 1.0)
        assert pred == pytest.approx(also)
