"""Tests for repro.evaluation (harness, metrics, loocv, reporting)."""

import math

import numpy as np
import pytest

from repro.evaluation import (
    CapEvaluation,
    evaluate_kernel,
    render_fig4_scatter,
    render_frontier_table,
    render_group_bars,
    render_table3,
    run_loocv,
    summarize,
    summarize_by_group,
)
from repro.hardware import Configuration, NoiseModel, TrinityAPU
from repro.methods import CpuFrequencyLimiting, GpuFrequencyLimiting, Oracle
from repro.workloads import build_suite


def _record(
    method="M",
    kernel="b/i/k",
    cap=20.0,
    power=18.0,
    perf=1.0,
    o_power=20.0,
    o_perf=1.2,
    weight=1.0,
    group="b i",
):
    return CapEvaluation(
        kernel_uid=kernel,
        benchmark=group.split()[0],
        group=group,
        time_weight=weight,
        method=method,
        power_cap_w=cap,
        config=Configuration.cpu(1.4, 1),
        power_w=power,
        performance=perf,
        oracle_config=Configuration.cpu(1.4, 1),
        oracle_power_w=o_power,
        oracle_performance=o_perf,
    )


class TestCapEvaluation:
    def test_under_limit_boundary(self):
        assert _record(power=20.0, cap=20.0).under_limit
        assert not _record(power=20.1, cap=20.0).under_limit

    def test_ratios(self):
        r = _record(power=10.0, o_power=20.0, perf=0.6, o_perf=1.2)
        assert r.power_vs_oracle == pytest.approx(0.5)
        assert r.perf_vs_oracle == pytest.approx(0.5)


class TestHarness:
    @pytest.fixture(scope="class")
    def pieces(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        oracle = Oracle(apu)
        kernel = build_suite().get("CoMD/Small/LJForce")
        return apu, oracle, kernel

    def test_record_counts(self, pieces):
        apu, oracle, kernel = pieces
        methods = [CpuFrequencyLimiting(apu), GpuFrequencyLimiting(apu)]
        records = evaluate_kernel(apu, oracle, methods, kernel)
        n_caps = len(oracle.caps_for(kernel))
        assert len(records) == n_caps * 2
        assert {r.method for r in records} == {"CPU+FL", "GPU+FL"}

    def test_oracle_columns_consistent(self, pieces):
        apu, oracle, kernel = pieces
        records = evaluate_kernel(apu, oracle, [CpuFrequencyLimiting(apu)], kernel)
        for r in records:
            assert r.oracle_power_w == pytest.approx(
                apu.true_total_power_w(kernel, r.oracle_config)
            )
            assert r.oracle_power_w <= r.power_cap_w * (1 + 1e-9)

    def test_explicit_caps(self, pieces):
        apu, oracle, kernel = pieces
        records = evaluate_kernel(
            apu, oracle, [CpuFrequencyLimiting(apu)], kernel, caps=[15.0, 30.0]
        )
        assert sorted({r.power_cap_w for r in records}) == [15.0, 30.0]

    def test_empty_caps_rejected(self, pieces):
        apu, oracle, kernel = pieces
        with pytest.raises(ValueError):
            evaluate_kernel(apu, oracle, [], kernel, caps=[])


class TestMetrics:
    def test_simple_summary(self):
        records = [
            _record(power=18.0, cap=20.0, perf=1.0, o_perf=2.0),  # under, 50%
            _record(power=25.0, cap=20.0, perf=3.0, o_perf=2.0),  # over, 150%
        ]
        (s,) = summarize(records)
        assert s.pct_under_limit == pytest.approx(50.0)
        assert s.under_perf_pct == pytest.approx(50.0)
        assert s.over_perf_pct == pytest.approx(150.0)
        assert s.over_power_pct == pytest.approx(125.0)
        assert s.n_cases == 2

    def test_weighting_across_kernels(self):
        # Kernel A (weight 0.9) always under; kernel B (weight 0.1) never.
        records = [
            _record(kernel="b/i/A", weight=0.9, power=10.0, cap=20.0),
            _record(kernel="b/i/B", weight=0.1, power=30.0, cap=20.0),
        ]
        (s,) = summarize(records)
        assert s.pct_under_limit == pytest.approx(90.0)

    def test_nan_for_empty_subset(self):
        records = [_record(power=10.0, cap=20.0)]  # never over-limit
        (s,) = summarize(records)
        assert math.isnan(s.over_power_pct)
        assert math.isnan(s.over_perf_pct)

    def test_multiple_methods_sorted(self):
        records = [_record(method="Zeta"), _record(method="Alpha")]
        names = [s.method for s in summarize(records)]
        assert names == ["Alpha", "Zeta"]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            summarize([_record(method="A")], method="B")

    def test_by_group(self):
        records = [
            _record(group="LULESH Small", kernel="LULESH/Small/x"),
            _record(group="LU Small", kernel="LU/Small/y"),
        ]
        groups = summarize_by_group(records)
        assert list(groups) == ["LULESH Small", "LU Small"]

    def test_per_kernel_mean_before_weighting(self):
        # Kernel A: two caps, one under one over -> 50%.  Kernel B: one
        # cap, under -> 100%.  Equal weights -> 75%, not 2/3 (the naive
        # per-record mean).
        records = [
            _record(kernel="b/i/A", cap=20.0, power=10.0),
            _record(kernel="b/i/A", cap=20.0, power=30.0),
            _record(kernel="b/i/B", cap=20.0, power=10.0),
        ]
        (s,) = summarize(records)
        assert s.pct_under_limit == pytest.approx(75.0)


class TestReporting:
    def test_table3_renders_all_methods(self):
        records = [_record(method="Model"), _record(method="CPU+FL")]
        text = render_table3(summarize(records))
        assert "Model" in text and "CPU+FL" in text
        assert "% Under" in text

    def test_frontier_table_contains_rows(self):
        apu = TrinityAPU(noise=NoiseModel.exact())
        k = build_suite().get("LU/Small/LUDecomposition")
        from repro.core import ParetoFrontier

        f = ParetoFrontier.from_measurements(apu.run_all_configs(k))
        text = render_frontier_table(f, title="T")
        assert text.count("\n") >= len(f)
        assert "Normalized performance" in text

    def test_fig4_scatter_marks_methods(self):
        records = [_record(method="Model", power=10.0)]
        text = render_fig4_scatter(summarize(records), title="Fig4")
        assert "Model" in text and "under-limit" in text

    def test_group_bars_handles_nan_and_clipping(self):
        text = render_group_bars(
            {"G": {"A": float("nan"), "B": 250.0}}, bar_scale=100.0
        )
        assert "-" in text
        assert "+" in text  # clipped bar marker


class TestLOOCV:
    @pytest.fixture(scope="class")
    def report(self):
        # Full-suite LOOCV; ~10 s, shared across the class's tests.
        return run_loocv(seed=0)

    def test_every_benchmark_evaluated(self, report):
        benchmarks = {r.benchmark for r in report.records}
        assert benchmarks == {"LULESH", "CoMD", "SMC", "LU"}
        assert set(report.fold_models) == benchmarks

    def test_all_methods_present(self, report):
        assert {r.method for r in report.records} == {
            "Model",
            "Model+FL",
            "CPU+FL",
            "GPU+FL",
        }

    def test_paper_shape_model_fl_dominates(self, report):
        """The paper's headline: Model+FL achieves both high cap
        compliance and high under-limit performance."""
        by_name = {s.method: s for s in summarize(report.records)}
        mfl = by_name["Model+FL"]
        assert mfl.pct_under_limit > by_name["GPU+FL"].pct_under_limit
        assert mfl.pct_under_limit > by_name["CPU+FL"].pct_under_limit
        assert mfl.under_perf_pct > by_name["CPU+FL"].under_perf_pct
        assert mfl.under_perf_pct > 80.0
        assert mfl.pct_under_limit > 85.0

    def test_paper_shape_gpu_fl_violates_most(self, report):
        by_name = {s.method: s for s in summarize(report.records)}
        gpufl = by_name["GPU+FL"]
        assert gpufl.pct_under_limit == min(
            s.pct_under_limit for s in by_name.values()
        )
        # When over limit, GPU+FL massively overshoots both power & perf.
        assert gpufl.over_power_pct == max(
            s.over_power_pct for s in by_name.values()
        )
        assert gpufl.over_perf_pct > 150.0

    def test_paper_shape_cpu_fl_loses_performance(self, report):
        by_name = {s.method: s for s in summarize(report.records)}
        assert by_name["CPU+FL"].under_perf_pct == min(
            s.under_perf_pct for s in by_name.values()
        )
        assert by_name["CPU+FL"].under_perf_pct < 75.0

    def test_lu_gpu_fl_compliance_collapses(self, report):
        """Figure 6's LU stress case: GPU+FL meets barely half the caps."""
        groups = summarize_by_group(report.records)
        lu_small = {s.method: s for s in groups["LU Small"]}
        assert lu_small["GPU+FL"].pct_under_limit < 65.0

    def test_online_cost_two_iterations(self, report):
        """The paper's efficiency claim: the model needs only two kernel
        iterations to commit to a configuration."""
        model_records = [r for r in report.records if r.method == "Model"]
        assert all(r.online_runs == 2 for r in model_records)

    def test_without_freq_limiting_baselines(self):
        report = run_loocv(seed=1, include_freq_limiting=False)
        assert {r.method for r in report.records} == {"Model", "Model+FL"}

    def test_fold_integrity_no_leakage(self, report):
        """Each fold's model must have been trained without any kernel
        of the held-out benchmark (the paper's §V-C guarantee)."""
        for benchmark, model in report.fold_models.items():
            trained_on = set(model.clustering.labels)
            assert all(
                not uid.startswith(f"{benchmark}/") for uid in trained_on
            )
            # And it trained on everything else (62-57 kernels).
            assert len(trained_on) == 65 - len(
                [r for r in {x.kernel_uid for x in report.records
                             if x.benchmark == benchmark}]
            )
