"""Telemetry subsystem: registry, spans, logging, and pipeline wiring."""

import json
import logging
import pathlib
import threading

import pytest

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    configure_logging,
    counter,
    gauge,
    get_logger,
    get_registry,
    get_tracer,
    histogram,
    is_enabled,
    load_telemetry,
    log_event,
    render_telemetry,
    set_enabled,
    telemetry_snapshot,
    trace_span,
    write_telemetry,
)
from repro.workloads.suite import Suite, build_suite


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test starts and ends with empty, enabled telemetry."""
    telemetry.reset()
    set_enabled(True)
    yield
    telemetry.reset()
    set_enabled(True)


def small_suite(n_benchmarks: int = 3) -> Suite:
    full = build_suite()
    keep = sorted({k.benchmark for k in full})[:n_benchmarks]
    return Suite(kernels=tuple(k for k in full if k.benchmark in keep))


# -- registry -------------------------------------------------------------------


class TestRegistry:
    def test_counter_get_or_create_returns_same_object(self):
        assert counter("t.a") is counter("t.a")
        assert counter("t.a") is not counter("t.b")

    @pytest.mark.parametrize(
        "value,expected", [("0", False), ("false", False), ("off", False),
                           ("1", True), ("", True)]
    )
    def test_env_var_gates_initial_state(self, value, expected):
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_TELEMETRY=value)
        env["PYTHONPATH"] = str(REPO_SRC)
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.telemetry import is_enabled; print(is_enabled())"],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == str(expected)

    def test_counter_thread_safety_exact_total(self):
        c = counter("t.threads")
        n_threads, n_incs = 8, 5000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs

    def test_gauge_records_latest_value(self):
        g = gauge("t.gauge")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5

    def test_reset_hammer_no_lost_or_torn_observations(self):
        """Registry reset racing concurrent histogram updates: every
        observation lands in exactly one epoch (a drained reset summary
        or the final state), and no snapshot is ever torn."""
        h = histogram("t.hammer")
        c = counter("t.hammer.c")
        n_threads, n_obs = 4, 2000
        stop = threading.Event()
        drained_hist = 0
        drained_cnt = 0

        def writer():
            for _ in range(n_obs):
                h.observe(0.001)
                c.inc()

        def resetter():
            nonlocal drained_hist, drained_cnt
            while not stop.is_set():
                out = get_registry().reset()
                drained_hist += out["histograms"]["t.hammer"]["count"]
                drained_cnt += out["counters"]["t.hammer.c"]

        threads = [
            threading.Thread(target=writer) for _ in range(n_threads)
        ]
        hammer = threading.Thread(target=resetter)
        hammer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        hammer.join()
        final = get_registry().snapshot()
        total_h = drained_hist + final["histograms"]["t.hammer"]["count"]
        total_c = drained_cnt + final["counters"]["t.hammer.c"]
        assert total_h == n_threads * n_obs
        assert total_c == n_threads * n_obs

    def test_histogram_reset_swaps_state_atomically(self):
        """reset() returns the drained summary; the instrument object
        survives and starts from zero."""
        h = histogram("t.swap")
        for _ in range(5):
            h.observe(0.01)
        drained = h.reset()
        assert drained["count"] == 5
        assert h.count == 0
        h.observe(0.02)
        assert h.summary()["count"] == 1

    def test_snapshot_never_torn_by_concurrent_reset(self):
        """A snapshot taken during reset hammering reflects a single
        consistent epoch: histogram count and bucket sum always agree."""
        h = histogram("t.torn")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                h.observe(0.001)

        def resetter():
            while not stop.is_set():
                get_registry().reset()

        workers = [
            threading.Thread(target=writer),
            threading.Thread(target=resetter),
        ]
        for t in workers:
            t.start()
        try:
            for _ in range(300):
                s = get_registry().snapshot()["histograms"]["t.torn"]
                assert sum(s.get("buckets", {}).values()) == s["count"]
        finally:
            stop.set()
            for t in workers:
                t.join()

    def test_histogram_summary(self):
        h = histogram("t.hist")
        for v in (0.001, 0.01, 0.1, 1.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(1.0)
        assert s["sum"] == pytest.approx(1.111)
        assert sum(s["buckets"].values()) == 4

    def test_histogram_timer(self):
        h = histogram("t.timer")
        with h.time():
            pass
        assert h.count == 1
        assert h.summary()["max"] < 1.0

    def test_disabled_updates_are_noops(self):
        c, g, h = counter("t.off.c"), gauge("t.off.g"), histogram("t.off.h")
        set_enabled(False)
        assert not is_enabled()
        c.inc()
        g.set(9)
        h.observe(1.0)
        set_enabled(True)
        assert c.value == 0
        assert g.value == 0.0
        assert h.count == 0

    def test_snapshot_determinism(self):
        r = MetricsRegistry()
        # Create in non-sorted order; snapshots must serialize equally.
        r.counter("z.last").inc(2)
        r.counter("a.first").inc(1)
        r.gauge("m.middle").set(5)
        s1, s2 = r.snapshot(), r.snapshot()
        assert json.dumps(s1) == json.dumps(s2)
        assert list(s1["counters"]) == ["a.first", "z.last"]

    def test_reset_zeroes_instruments_in_place(self):
        c = counter("t.reset")
        c.inc(5)
        get_registry().reset()
        # The instrument stays registered (module-level references must
        # keep reporting into snapshots) but its value is zeroed.
        assert get_registry().snapshot()["counters"]["t.reset"] == 0
        c.inc()
        assert get_registry().snapshot()["counters"]["t.reset"] == 1


# -- spans ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_tree(self):
        with trace_span("outer"):
            with trace_span("inner"):
                pass
            with trace_span("inner"):
                pass
        snap = get_tracer().snapshot()
        assert len(snap) == 1
        outer = snap[0]
        assert outer["name"] == "outer"
        assert outer["count"] == 1
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert inner["count"] == 2
        assert inner["total_s"] <= outer["total_s"]

    def test_sibling_spans_aggregate_not_append(self):
        for _ in range(5):
            with trace_span("repeat"):
                pass
        snap = get_tracer().snapshot()
        assert len(snap) == 1
        assert snap[0]["count"] == 5

    def test_disabled_records_nothing(self):
        set_enabled(False)
        with trace_span("ghost"):
            pass
        set_enabled(True)
        assert get_tracer().snapshot() == []

    def test_fallback_parents_other_threads(self):
        tracer = get_tracer()
        with trace_span("driver") as root:
            tracer.set_fallback(root)
            try:

                def work():
                    with trace_span("worker"):
                        pass

                threads = [threading.Thread(target=work) for _ in range(3)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            finally:
                tracer.set_fallback(None)
        (driver,) = get_tracer().snapshot()
        (worker,) = driver["children"]
        assert worker["name"] == "worker"
        assert worker["count"] == 3

    def test_children_sorted_in_snapshot(self):
        with trace_span("p"):
            with trace_span("zeta"):
                pass
            with trace_span("alpha"):
                pass
        (p,) = get_tracer().snapshot()
        assert [c["name"] for c in p["children"]] == ["alpha", "zeta"]


# -- structured logging ---------------------------------------------------------


class TestLogging:
    def test_log_event_human_format(self, capsys):
        import io

        buf = io.StringIO()
        configure_logging(level="info", stream=buf)
        log = get_logger("repro.test")
        log_event(log, logging.INFO, "my-event", answer=42, label="x")
        assert "my-event answer=42 label=x" in buf.getvalue()

    def test_log_event_json_format(self):
        import io

        buf = io.StringIO()
        configure_logging(level="info", json_mode=True, stream=buf)
        log_event(get_logger("repro.test"), logging.INFO, "jev", k=1)
        record = json.loads(buf.getvalue().strip())
        assert record["event"] == "jev"
        assert record["k"] == 1
        assert record["level"] == "info"

    def test_quiet_suppresses_info(self):
        import io

        buf = io.StringIO()
        configure_logging(level="debug", quiet=True, stream=buf)
        log_event(get_logger("repro.test"), logging.INFO, "hidden")
        log_event(get_logger("repro.test"), logging.ERROR, "visible")
        out = buf.getvalue()
        assert "hidden" not in out
        assert "visible" in out

    def test_get_logger_roots_at_repro(self):
        assert get_logger("x.y").name == "repro.x.y"
        assert get_logger("repro.evaluation.loocv").name == "repro.evaluation.loocv"


# -- pipeline wiring ------------------------------------------------------------


class TestPipelineTelemetry:
    def test_loocv_span_tree_and_cache_counters(self, tmp_path):
        from repro.evaluation.loocv import run_loocv

        out = tmp_path / "telemetry.json"
        run_loocv(small_suite(), seed=20101, n_clusters=2, telemetry_out=out)
        data = load_telemetry(out)

        spans = {n["name"]: n for n in data["spans"]}
        assert "loocv" in spans
        children = {c["name"]: c for c in spans["loocv"]["children"]}
        assert "offline/characterize" in children
        assert "fold" in children
        fold_children = {c["name"] for c in children["fold"]["children"]}
        assert {
            "offline/dissimilarity",
            "offline/train",
            "online/evaluate",
        } <= fold_children
        train = next(
            c
            for c in children["fold"]["children"]
            if c["name"] == "offline/train"
        )
        # No offline/frontier child: folds train on a precomputed
        # dissimilarity slice, so frontier derivation happens under the
        # store's offline/dissimilarity span instead.
        assert {c["name"] for c in train["children"]} == {
            "offline/cluster",
            "offline/regression",
            "offline/cart",
        }
        evaluate = next(
            c
            for c in children["fold"]["children"]
            if c["name"] == "online/evaluate"
        )
        eval_children = {c["name"] for c in evaluate["children"]}
        assert {"online/sample", "online/predict", "online/select"} <= eval_children

        counters = data["metrics"]["counters"]
        for family in (
            "cache.truth_table",
            "cache.measurement_template",
            "cache.profile",
            "cache.oracle_frontier",
        ):
            assert f"{family}.hits" in counters
            assert f"{family}.misses" in counters
            assert counters[f"{family}.hits"] + counters[f"{family}.misses"] > 0
        assert counters["scheduler.selections"] > 0
        assert any(k.startswith("harness.records.") for k in counters)
        assert data["metrics"]["histograms"]["loocv.fold_s"]["count"] > 0

    def test_cache_counters_warm_vs_cold(self):
        from repro.evaluation.loocv import run_loocv

        suite = small_suite()
        registry = get_registry()
        run_loocv(suite, seed=20202, n_clusters=2)
        cold = registry.snapshot()["counters"]
        # A fresh seed's first run must take profile-cache misses.
        assert cold["cache.profile.misses"] > 0

        run_loocv(suite, seed=20202, n_clusters=2)
        warm = registry.snapshot()["counters"]
        # Second identical run: characterization comes from the shared
        # store (hits only), no new profile-cache misses.
        assert warm["cache.profile.misses"] == cold["cache.profile.misses"]
        assert (
            warm["store.characterization.hits"]
            > cold["store.characterization.hits"]
        )

    def test_records_bit_identical_with_telemetry_on_off(self):
        from repro.evaluation.loocv import run_loocv

        suite = small_suite()
        on = run_loocv(suite, seed=0, n_clusters=2)
        telemetry.reset()
        set_enabled(False)
        off = run_loocv(suite, seed=0, n_clusters=2)
        set_enabled(True)
        assert on.records == off.records
        # Disabled run collected nothing.
        assert get_tracer().snapshot() == []

    def test_harness_cap_violation_counters_match_records(self):
        from repro.evaluation.loocv import run_loocv

        report = run_loocv(small_suite(), seed=30303, n_clusters=2)
        counters = get_registry().snapshot()["counters"]
        by_method: dict[str, int] = {}
        totals: dict[str, int] = {}
        for r in report.records:
            totals[r.method] = totals.get(r.method, 0) + 1
            if not r.under_limit:
                by_method[r.method] = by_method.get(r.method, 0) + 1
        for method, total in totals.items():
            assert counters[f"harness.records.{method}"] == total
            assert (
                counters.get(f"harness.cap_violations.{method}", 0)
                == by_method.get(method, 0)
            )


# -- report artifact ------------------------------------------------------------


class TestReport:
    def test_snapshot_round_trip(self, tmp_path):
        counter("t.rt").inc(3)
        with trace_span("t.span"):
            pass
        path = tmp_path / "t.json"
        written = write_telemetry(path)
        loaded = load_telemetry(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["metrics"]["counters"]["t.rt"] == 3

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            load_telemetry(path)

    def test_render_smoke(self):
        counter("t.render").inc()
        gauge("t.render.size").set(4)
        histogram("t.render.h").observe(0.5)
        with trace_span("t.render.span"):
            pass
        text = render_telemetry(telemetry_snapshot())
        assert "t.render" in text
        assert "t.render.span" in text
        assert "Counters:" in text

    def test_render_empty(self):
        text = render_telemetry(telemetry_snapshot())
        assert "(no spans recorded)" in text

    def test_render_includes_percentiles(self):
        h = histogram("t.pct")
        for v in (0.001, 0.002, 0.004, 0.2):
            h.observe(v)
        text = render_telemetry(telemetry_snapshot())
        assert "p50=" in text and "p99=" in text


class TestDiff:
    def snapshot_pair(self):
        from repro.telemetry import diff_telemetry

        counter("t.d.reqs").inc(10)
        histogram("t.d.lat").observe(0.001)
        a = json.loads(json.dumps(telemetry_snapshot()))
        counter("t.d.reqs").inc(5)
        counter("t.d.new").inc(2)
        gauge("t.d.depth").set(3.0)
        for _ in range(10):
            histogram("t.d.lat").observe(0.1)
        b = json.loads(json.dumps(telemetry_snapshot()))
        return diff_telemetry(a, b)

    def test_counter_deltas_and_new_names(self):
        d = self.snapshot_pair()
        assert d["counters"]["t.d.reqs"] == {
            "a": 10, "b": 15, "delta": 5,
        }
        # Present only in B: treated as starting from zero.
        assert d["counters"]["t.d.new"]["delta"] == 2
        assert d["gauges"]["t.d.depth"]["delta"] == 3.0

    def test_histogram_shift(self):
        d = self.snapshot_pair()
        lat = d["histograms"]["t.d.lat"]
        assert lat["count"] == {"a": 1, "b": 11}
        assert lat["mean"]["b"] > lat["mean"]["a"]
        assert lat["p99"]["b"] > lat["p99"]["a"]

    def test_render_diff(self):
        from repro.telemetry import render_telemetry_diff

        text = render_telemetry_diff(self.snapshot_pair())
        assert "t.d.reqs" in text
        assert "10 -> 15" in text
        assert "(+5)" in text
        assert "t.d.lat" in text
        # Unchanged rows are hidden by default.
        assert "slo.evaluations" not in text
