"""Shared fixtures: representative kernels and machines."""

import pytest

from repro.hardware import KernelCharacteristics, NoiseModel, TrinityAPU


def make_kernel(**overrides) -> KernelCharacteristics:
    """A mid-of-the-road kernel; override any latent characteristic."""
    base = dict(
        work_s=1.0,
        parallel_fraction=0.95,
        mem_fraction=0.4,
        gpu_affinity=3.0,
        gpu_mem_fraction=0.6,
        launch_overhead_s=0.02,
        activity=0.8,
        gpu_activity=0.8,
        vector_fraction=0.3,
        branch_rate=0.1,
        l1_miss_rate=0.02,
        l2_miss_ratio=0.3,
        tlb_miss_rate=0.001,
        dram_intensity=0.4,
    )
    base.update(overrides)
    return KernelCharacteristics(**base)


@pytest.fixture
def kernel() -> KernelCharacteristics:
    return make_kernel()


@pytest.fixture
def compute_kernel() -> KernelCharacteristics:
    """Compute-bound, scales well with frequency and threads."""
    return make_kernel(mem_fraction=0.05, parallel_fraction=0.99, activity=1.2)


@pytest.fixture
def memory_kernel() -> KernelCharacteristics:
    """Memory-bound, nearly frequency-insensitive."""
    return make_kernel(mem_fraction=0.85, activity=0.5, dram_intensity=0.9)


@pytest.fixture
def gpu_friendly_kernel() -> KernelCharacteristics:
    """Large GPU speedup, as most LULESH kernels in the paper."""
    return make_kernel(gpu_affinity=8.0, gpu_mem_fraction=0.3)


@pytest.fixture
def cpu_friendly_kernel() -> KernelCharacteristics:
    """Poor GPU fit: divergent/serial code."""
    return make_kernel(gpu_affinity=0.6, parallel_fraction=0.7)


@pytest.fixture
def exact_apu() -> TrinityAPU:
    """Noise-free machine: measurements equal ground truth."""
    return TrinityAPU(noise=NoiseModel.exact(), seed=0)


@pytest.fixture
def noisy_apu() -> TrinityAPU:
    """Machine with realistic measurement noise."""
    return TrinityAPU(seed=0)
