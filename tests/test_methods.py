"""Tests for repro.methods (oracle, FL baselines, model methods)."""

import pytest

from repro.core import Scheduler, train_model
from repro.hardware import Device, NoiseModel, TrinityAPU
from repro.methods import (
    CpuFrequencyLimiting,
    GpuFrequencyLimiting,
    ModelMethod,
    ModelPlusFL,
    Oracle,
)
from repro.profiling import ProfilingLibrary
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def apu():
    return TrinityAPU(noise=NoiseModel.exact(), seed=0)


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def kernel(suite):
    return suite.get("LU/Small/LUDecomposition")


@pytest.fixture(scope="module")
def trained(apu, suite):
    """Model trained with LU held out, plus its online library."""
    library = ProfilingLibrary(apu, seed=0)
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_model(library, train)
    online = ProfilingLibrary(apu, seed=100)
    return model, online


class TestOracle:
    def test_caps_match_frontier_powers(self, apu, kernel):
        oracle = Oracle(apu)
        caps = oracle.caps_for(kernel)
        frontier = oracle.true_frontier(kernel)
        assert caps == [p.power_w for p in frontier]
        assert caps == sorted(caps)

    def test_oracle_meets_its_own_caps(self, apu, kernel):
        oracle = Oracle(apu)
        for cap in oracle.caps_for(kernel):
            cfg = oracle.decide(kernel, cap).config
            assert apu.true_total_power_w(kernel, cfg) <= cap * (1 + 1e-9)

    def test_oracle_optimal_under_cap(self, apu, kernel):
        oracle = Oracle(apu)
        cap = oracle.caps_for(kernel)[len(oracle.caps_for(kernel)) // 2]
        cfg = oracle.decide(kernel, cap).config
        best_perf = apu.true_performance(kernel, cfg)
        for other in apu.config_space:
            if apu.true_total_power_w(kernel, other) <= cap * (1 + 1e-9):
                assert apu.true_performance(kernel, other) <= best_perf + 1e-12

    def test_unreachable_cap_falls_back_to_min_power_frontier_point(
        self, apu, kernel
    ):
        oracle = Oracle(apu)
        cfg = oracle.decide(kernel, 0.001).config
        assert cfg == oracle.true_frontier(kernel)[0].config

    def test_frontier_cached(self, apu, kernel):
        oracle = Oracle(apu)
        assert oracle.true_frontier(kernel) is oracle.true_frontier(kernel)


class TestFrequencyLimitingMethods:
    def test_cpu_fl_structure(self, apu, kernel):
        method = CpuFrequencyLimiting(apu)
        decision = method.decide(kernel, power_cap_w=20.0)
        assert decision.config.device is Device.CPU
        assert decision.config.n_threads == 4  # cannot shed cores
        assert decision.online_runs >= 1

    def test_gpu_fl_structure(self, apu, kernel):
        method = GpuFrequencyLimiting(apu)
        decision = method.decide(kernel, power_cap_w=30.0)
        assert decision.config.device is Device.GPU

    def test_gpu_fl_violates_low_caps(self, apu, kernel):
        """The paper's central GPU+FL failure: caps below the GPU power
        floor cannot be met without switching device."""
        method = GpuFrequencyLimiting(apu)
        decision = method.decide(kernel, power_cap_w=12.0)
        assert apu.true_total_power_w(kernel, decision.config) > 12.0

    def test_cpu_fl_meets_moderate_caps(self, apu, kernel):
        method = CpuFrequencyLimiting(apu)
        decision = method.decide(kernel, power_cap_w=20.0)
        assert apu.true_total_power_w(kernel, decision.config) <= 20.0


class TestModelMethods:
    def test_prepare_runs_two_sample_iterations(self, trained, kernel):
        model, _ = trained
        online = ProfilingLibrary(TrinityAPU(seed=7), seed=7)
        method = ModelMethod(model, online)
        method.prepare(kernel)
        assert online.database.iterations(kernel.uid) == 2
        # Preparing again must not rerun the samples.
        method.prepare(kernel)
        assert online.database.iterations(kernel.uid) == 2

    def test_decide_caches_prediction_across_caps(self, trained, kernel):
        model, _ = trained
        online = ProfilingLibrary(TrinityAPU(seed=8), seed=8)
        method = ModelMethod(model, online)
        method.decide(kernel, 15.0)
        method.decide(kernel, 25.0)
        method.decide(kernel, 35.0)
        assert online.database.iterations(kernel.uid) == 2

    def test_model_picks_cpu_at_low_caps_gpu_at_high(self, trained, kernel):
        model, online = trained
        method = ModelMethod(model, online)
        low = method.decide(kernel, 13.0).config
        high = method.decide(kernel, 35.0).config
        assert low.device is Device.CPU
        assert high.device is Device.GPU  # LU loves the GPU when power allows

    def test_model_fl_limits_from_model_choice(self, trained, kernel):
        model, _ = trained
        online = ProfilingLibrary(TrinityAPU(seed=9), seed=9)
        method = ModelPlusFL(model, online, seed=9)
        decision = method.decide(kernel, power_cap_w=18.0)
        assert decision.online_runs >= 3  # 2 samples + >= 1 limiter step
        # The combination should usually respect a reachable cap.
        power = online.apu.true_total_power_w(kernel, decision.config)
        assert power <= 18.0 * 1.10

    def test_custom_scheduler_respected(self, trained, kernel):
        model, online = trained
        energy_method = ModelMethod(model, online, scheduler=Scheduler("energy"))
        perf_method = ModelMethod(model, online)
        e_cfg = energy_method.decide(kernel, 40.0).config
        p_cfg = perf_method.decide(kernel, 40.0).config
        apu = online.apu
        e_energy = apu.true_total_power_w(kernel, e_cfg) / apu.true_performance(
            kernel, e_cfg
        )
        p_energy = apu.true_total_power_w(kernel, p_cfg) / apu.true_performance(
            kernel, p_cfg
        )
        assert e_energy <= p_energy * 1.05
