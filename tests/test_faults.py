"""Chaos suite for the fault-injection & graceful-degradation layer.

Three layers of assurance:

* **unit** — fault plans validate, serialize, and replay
  deterministically; the injector's run clock, device scoping, P-state
  substitution, and sensor perturbations do exactly what
  ``docs/ROBUSTNESS.md`` says;
* **degradation** — each wired-in fallback fires and is visible in
  telemetry: runtime retries/failed invocations, corrupt-sample
  sanitization, stuck-P-state quarantine, limiter worst-case reads;
* **properties** (Hypothesis) — *any* valid fault plan leaves the
  pipeline crash-free; an empty plan is bit-identical to no plan;
  recoverable ``run_failure``-only plans never *improve* the reported
  timeline (monotone degradation).

The committed scenario files under ``tests/fault_plans/`` double as the
CI fault-matrix inputs; the LOOCV tests here replay each one end to end.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.telemetry as telemetry
from repro.core import CPU_SAMPLE, GPU_SAMPLE, Scheduler, train_model
from repro.evaluation import records_digest, run_loocv
from repro.faults import (
    FALLBACK_CPU_PLANE_W,
    FALLBACK_NBGPU_PLANE_W,
    FALLBACK_TIME_S,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    SampleRunError,
    conservative_measurement,
    measurement_is_finite,
    sanitize_measurement,
)
from repro.hardware import (
    Configuration,
    FrequencyLimiter,
    NoiseModel,
    TrinityAPU,
    pstates,
)
from repro.profiling import ProfilingLibrary
from repro.profiling.sampler import PowerSampler
from repro.runtime import AdaptiveRuntime, Application
from repro.workloads import build_suite
from tests.conftest import make_kernel

PLAN_DIR = Path(__file__).parent / "fault_plans"
CANNED_PLANS = sorted(PLAN_DIR.glob("*.json"))


def counter_value(name: str) -> int:
    return telemetry.counter(name).value


# ---------------------------------------------------------------------------
# Fault plans: validation, serialization, generators
# ---------------------------------------------------------------------------


class TestFaultEvent:
    def test_defaults_and_window(self):
        ev = FaultEvent(kind="power_dropout", start=5)
        assert ev.duration == 1
        assert ev.stop == 6
        assert not ev.active_at(4)
        assert ev.active_at(5)
        assert not ev.active_at(6)  # half-open window

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "meteor_strike", "start": 0},
            {"kind": "power_bias", "start": -1},
            {"kind": "power_bias", "start": 0, "duration": 0},
            {"kind": "power_bias", "start": 0, "device": "fpga"},
            {"kind": "power_bias", "start": 0, "magnitude": 0.0},
            {"kind": "power_bias", "start": 0, "magnitude": math.nan},
            {"kind": "pstate_stuck", "start": 0, "pstate_index": 6},
            {"kind": "pstate_stuck", "start": 0, "pstate_index": -1},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(**kwargs)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert len(plan) == 0
        assert plan.horizon == 0
        assert plan.active_events(0) == ()

    def test_horizon_and_active_events(self):
        a = FaultEvent(kind="counter_nan", start=2, duration=3)
        b = FaultEvent(kind="power_bias", start=4, duration=10)
        plan = FaultPlan(events=(a, b))
        assert plan.horizon == 14
        assert plan.active_events(1) == ()
        assert plan.active_events(2) == (a,)
        assert plan.active_events(4) == (a, b)  # plan order preserved
        assert plan.active_events(13) == (b,)

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan.random(11, n_events=5, name="round-trip")
        path = plan.to_file(tmp_path / "plan.json")
        assert FaultPlan.from_file(path) == plan

    def test_from_dict_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({"version": 99, "events": []})

    def test_random_is_deterministic(self):
        assert FaultPlan.random(3) == FaultPlan.random(3)
        assert FaultPlan.random(3) != FaultPlan.random(4)

    def test_random_respects_kind_subset(self):
        plan = FaultPlan.random(0, n_events=20, kinds=("run_failure",))
        assert len(plan) == 20
        assert all(ev.kind == "run_failure" for ev in plan)
        with pytest.raises(ValueError):
            FaultPlan.random(0, kinds=("nope",))

    def test_canned_plans_load(self):
        assert len(CANNED_PLANS) == 3
        for path in CANNED_PLANS:
            plan = FaultPlan.from_file(path)
            assert not plan.empty
            # CI's fault matrix asserts every scheduled event fires
            # during LOOCV, so windows must sit well inside the run
            # clock's reach.
            assert plan.horizon < 500


# ---------------------------------------------------------------------------
# Injector mechanics
# ---------------------------------------------------------------------------

CPU_MAX = Configuration.cpu(3.7, 4)
GPU_MAX = Configuration.gpu(0.819, 3.7)


class TestInjector:
    def test_clock_advances_per_run(self):
        inj = FaultInjector(FaultPlan())
        assert inj.runs_started == 0
        inj.begin_run(CPU_MAX)
        inj.begin_run(GPU_MAX)
        assert inj.runs_started == 2

    def test_empty_plan_context_is_clean(self):
        ctx = FaultInjector(FaultPlan()).begin_run(CPU_MAX)
        assert ctx.clean
        assert ctx.config is CPU_MAX
        sentinel = object()
        assert ctx.apply(sentinel) is sentinel  # bit-identical fast path

    def test_run_failure_raises(self):
        plan = FaultPlan(events=(FaultEvent(kind="run_failure", start=0),))
        inj = FaultInjector(plan)
        with pytest.raises(SampleRunError):
            inj.begin_run(CPU_MAX)
        # Window passed: the next run is clean.
        assert inj.begin_run(CPU_MAX).clean

    def test_gpu_scoped_event_skips_cpu_runs(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="run_failure", start=0, duration=2, device="gpu"),)
        )
        inj = FaultInjector(plan)
        assert inj.begin_run(CPU_MAX).clean  # not targeted
        with pytest.raises(SampleRunError):
            inj.begin_run(GPU_MAX)

    @pytest.mark.parametrize(
        "kind,index,requested,expected",
        [
            ("pstate_stuck", 0, CPU_MAX, Configuration.cpu(1.4, 4)),
            ("thermal_throttle", 2, CPU_MAX, Configuration.cpu(2.4, 4)),
            # Throttle never *raises* the frequency.
            ("thermal_throttle", 4, Configuration.cpu(1.9, 2), Configuration.cpu(1.9, 2)),
            # Unavailable state: governor falls back one state down.
            ("pstate_unavailable", 5, CPU_MAX, Configuration.cpu(3.3, 4)),
            # ... and up at the ladder floor.
            ("pstate_unavailable", 0, Configuration.cpu(1.4, 1), Configuration.cpu(1.9, 1)),
        ],
    )
    def test_cpu_pstate_substitution(self, kind, index, requested, expected):
        plan = FaultPlan(
            events=(
                FaultEvent(kind=kind, start=0, device="cpu", pstate_index=index),
            )
        )
        ctx = FaultInjector(plan).begin_run(requested)
        assert ctx.config == expected
        assert ctx.requested == requested

    def test_gpu_pstate_stuck_targets_gpu_ladder(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="pstate_stuck", start=0, device="gpu", pstate_index=0),
            )
        )
        ctx = FaultInjector(plan).begin_run(GPU_MAX)
        assert ctx.config == Configuration.gpu(pstates.GPU_FREQS_GHZ[0], 3.7)

    def test_cpu_scoped_stuck_hits_gpu_host_frequency(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="pstate_stuck", start=0, device="cpu", pstate_index=0),
            )
        )
        ctx = FaultInjector(plan).begin_run(GPU_MAX)
        assert ctx.config == Configuration.gpu(0.819, pstates.CPU_FREQS_GHZ[0])

    def test_sensor_bias_scoped_to_plane(self, exact_apu, kernel):
        m = exact_apu.run(kernel, CPU_MAX)
        plan = FaultPlan(
            events=(
                FaultEvent(kind="power_bias", start=0, device="cpu", magnitude=2.0),
            )
        )
        perturbed = FaultInjector(plan).begin_run(CPU_MAX).apply(m)
        assert perturbed.cpu_plane_w == pytest.approx(2.0 * m.cpu_plane_w)
        assert perturbed.nbgpu_plane_w == m.nbgpu_plane_w

    def test_sensor_dropout_and_counter_faults(self, exact_apu, kernel):
        m = exact_apu.run(kernel, CPU_MAX)
        plan = FaultPlan(
            events=(
                FaultEvent(kind="power_dropout", start=0),
                FaultEvent(kind="counter_nan", start=0),
            )
        )
        perturbed = FaultInjector(plan).begin_run(CPU_MAX).apply(m)
        assert math.isnan(perturbed.cpu_plane_w)
        assert math.isnan(perturbed.nbgpu_plane_w)
        assert perturbed.counters and all(
            math.isnan(v) for v in perturbed.counters.values()
        )
        assert not measurement_is_finite(perturbed)

    def test_activation_counters(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="counter_corrupt", start=0, duration=3),)
        )
        inj = FaultInjector(plan)
        before = counter_value("faults.injected.counter_corrupt")
        total_before = counter_value("faults.injected.total")
        for _ in range(5):
            inj.begin_run(CPU_MAX)
        assert counter_value("faults.injected.counter_corrupt") == before + 3
        assert counter_value("faults.injected.total") == total_before + 3


class TestMeasurementHygiene:
    def test_finite_measurement_passes_through(self, exact_apu, kernel):
        m = exact_apu.run(kernel, CPU_MAX)
        assert measurement_is_finite(m)
        assert sanitize_measurement(m) == m

    def test_sanitize_replaces_only_corrupt_fields(self, exact_apu, kernel):
        import dataclasses

        m = exact_apu.run(kernel, CPU_MAX)
        corrupt = dataclasses.replace(
            m,
            cpu_plane_w=math.nan,
            counters={**m.counters, "ipc": math.inf},
        )
        fixed = sanitize_measurement(corrupt)
        assert fixed.cpu_plane_w == FALLBACK_CPU_PLANE_W
        assert fixed.nbgpu_plane_w == m.nbgpu_plane_w  # untouched
        assert fixed.time_s == m.time_s
        assert fixed.counters["ipc"] == 0.0
        assert measurement_is_finite(fixed)

    def test_conservative_measurement_from_nothing(self):
        m = sanitize_measurement(None, CPU_MAX)
        assert m == conservative_measurement(CPU_MAX)
        assert m.time_s == FALLBACK_TIME_S
        assert m.nbgpu_plane_w == FALLBACK_NBGPU_PLANE_W
        assert measurement_is_finite(m)
        with pytest.raises(ValueError):
            sanitize_measurement(None)


# ---------------------------------------------------------------------------
# APU / profiling integration
# ---------------------------------------------------------------------------


class TestAPUIntegration:
    def test_inject_faults_accepts_plan_or_injector(self):
        apu = TrinityAPU(seed=0)
        inj = apu.inject_faults(FaultPlan(name="x"))
        assert isinstance(inj, FaultInjector)
        assert apu.fault_injector is inj
        same = FaultInjector(FaultPlan())
        assert apu.inject_faults(same) is same
        assert apu.inject_faults(None) is None
        assert apu.fault_injector is None

    def test_empty_plan_measurements_bit_identical(self, kernel):
        clean = TrinityAPU(seed=0)
        faulted = TrinityAPU(seed=0)
        faulted.inject_faults(FaultPlan(name="empty"))
        for cfg in (CPU_MAX, GPU_MAX, Configuration.cpu(1.4, 1)):
            assert faulted.run(kernel, cfg) == clean.run(kernel, cfg)

    def test_dropout_reaches_apu_measurement(self, kernel):
        apu = TrinityAPU(seed=0)
        apu.inject_faults(
            FaultPlan(events=(FaultEvent(kind="power_dropout", start=0, duration=99),))
        )
        m = apu.run(kernel, CPU_MAX)
        assert math.isnan(m.total_power_w)

    def test_ground_truth_is_never_perturbed(self, kernel):
        apu = TrinityAPU(seed=0)
        clean_time = apu.true_time_s(kernel, CPU_MAX)
        apu.inject_faults(
            FaultPlan(events=(FaultEvent(kind="run_failure", start=0, duration=500),))
        )
        assert apu.true_time_s(kernel, CPU_MAX) == clean_time

    def test_profile_retry_consumes_run_clock(self, kernel):
        apu = TrinityAPU(seed=0)
        inj = apu.inject_faults(
            FaultPlan(events=(FaultEvent(kind="run_failure", start=0, duration=2),))
        )
        library = ProfilingLibrary(apu, seed=0)
        with pytest.raises(SampleRunError):
            library.profile(kernel, CPU_MAX, kernel_uid="k")
        with pytest.raises(SampleRunError):
            library.profile(kernel, CPU_MAX, kernel_uid="k")
        # Window passed: the third attempt succeeds.
        profile = library.profile(kernel, CPU_MAX, kernel_uid="k")
        assert profile.measurement.config == CPU_MAX
        assert inj.runs_started == 3


# ---------------------------------------------------------------------------
# Runtime degradation (retry / failed / corrupt samples / quarantine)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def lu_app(suite):
    return Application.from_suite(suite, "LU Small")


@pytest.fixture(scope="module")
def trained(suite):
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    model = train_model(library, [k for k in suite if k.benchmark != "LU"])
    return model


def faulted_runtime(model, plan, **kwargs):
    """A runtime on a noiseless machine with ``plan`` injected.

    An exact noise model *and* a jitter-free power sampler make every
    profile a pure function of (kernel, configuration) — independent of
    the repetition count — so fault-free executions are bit-identical
    between a clean and a faulted run and the monotonicity properties
    below are exact, not statistical.
    """
    apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
    apu.inject_faults(plan)
    library = ProfilingLibrary(
        apu,
        sampler=PowerSampler(sample_noise_rel=0.0, fluctuation_rel=0.0),
        seed=0,
    )
    return AdaptiveRuntime(model, library, **kwargs)


class TestRuntimeDegradation:
    def test_transient_failure_is_retried(self, trained, lu_app):
        # Runs 0..1 are the samples; run 2 (first scheduled) fails twice.
        plan = FaultPlan(
            events=(FaultEvent(kind="run_failure", start=2, duration=2),)
        )
        runtime = faulted_runtime(trained, plan)
        retries_before = counter_value("faults.retries")
        trace = runtime.run(lu_app, 4, power_cap_w=100.0)
        assert counter_value("faults.retries") - retries_before == 2
        assert [e.phase for e in trace.executions] == [
            "sample-cpu",
            "sample-gpu",
            "scheduled",
            "scheduled",
        ]
        # The recovered invocation carries its backoff wait.
        clean = faulted_runtime(trained, FaultPlan()).run(
            lu_app, 4, power_cap_w=100.0
        )
        assert trace.executions[2].time_s > clean.executions[2].time_s
        assert trace.executions[2].power_w == clean.executions[2].power_w

    def test_exhausted_retries_record_failed_invocation(self, trained, lu_app):
        plan = FaultPlan(
            events=(FaultEvent(kind="run_failure", start=2, duration=50),)
        )
        runtime = faulted_runtime(trained, plan)
        failed_before = counter_value("faults.failed_invocations")
        trace = runtime.run(lu_app, 3, power_cap_w=100.0)
        failed = [e for e in trace.executions if e.phase == "failed"]
        assert failed  # at least the first scheduled invocation
        assert all(e.power_w == 0.0 for e in failed)
        assert all(e.time_s > 0.0 for e in failed)  # backoff is charged
        assert (
            counter_value("faults.failed_invocations") - failed_before
            == len(failed)
        )

    def test_corrupt_samples_fall_back_to_default_cluster(self, trained, lu_app):
        # Both sample runs report dropped-out power sensors.
        plan = FaultPlan(
            events=(FaultEvent(kind="power_dropout", start=0, duration=2),)
        )
        runtime = faulted_runtime(trained, plan)
        corrupt_before = counter_value("faults.corrupt_samples")
        trace = runtime.run(lu_app, 3, power_cap_w=100.0)
        assert counter_value("faults.corrupt_samples") - corrupt_before == 1
        assert len(trace) == 3
        kernel_uid = lu_app.kernels[0].uid
        prediction = runtime._predictions[kernel_uid]
        assert prediction.cluster == trained.default_cluster

    def test_stuck_pstate_quarantines_scheduled_config(self, trained, lu_app):
        # Every scheduled run executes at the CPU ladder floor regardless
        # of what the scheduler asked for.
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="pstate_stuck",
                    start=2,
                    duration=1,
                    device="cpu",
                    pstate_index=0,
                ),
            )
        )
        runtime = faulted_runtime(trained, plan)
        stuck_before = counter_value("faults.stuck_executions")
        quarantined_before = counter_value("faults.quarantined_configs")
        trace = runtime.run(lu_app, 4, power_cap_w=100.0)
        assert counter_value("faults.stuck_executions") - stuck_before == 1
        assert (
            counter_value("faults.quarantined_configs") - quarantined_before
            == 1
        )
        stuck_exec = trace.executions[2]
        assert runtime.scheduler.quarantined  # requested config is out
        # The next invocation re-selected a non-quarantined config.
        assert trace.executions[3].config not in runtime.scheduler.quarantined
        assert stuck_exec.config not in runtime.scheduler.quarantined

    def test_quarantine_can_be_disabled(self, trained, lu_app):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="pstate_stuck",
                    start=2,
                    duration=1,
                    device="cpu",
                    pstate_index=0,
                ),
            )
        )
        runtime = faulted_runtime(trained, plan, quarantine_stuck=False)
        runtime.run(lu_app, 4, power_cap_w=100.0)
        assert not runtime.scheduler.quarantined


class TestSchedulerQuarantine:
    def test_quarantine_masks_selection(self, trained, suite):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        k = suite.get("LU/Small/LUDecomposition")
        pred = trained.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        )
        scheduler = Scheduler()
        first = scheduler.select(pred, power_cap_w=40.0).config
        scheduler.quarantine(first)
        second = scheduler.select(pred, power_cap_w=40.0).config
        assert second != first
        assert first in scheduler.quarantined
        scheduler.clear_quarantine()
        assert scheduler.select(pred, power_cap_w=40.0).config == first

    def test_quarantining_everything_is_survivable(self, trained, suite):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        k = suite.get("LU/Small/LUDecomposition")
        pred = trained.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        )
        scheduler = Scheduler()
        for cfg in apu.config_space:
            scheduler.quarantine(cfg)
        # A fully-quarantined space must still schedule *something*.
        decision = scheduler.select(pred, power_cap_w=40.0)
        assert decision.config in apu.config_space

    def test_quarantine_is_idempotent(self):
        scheduler = Scheduler()
        before = counter_value("faults.quarantined_configs")
        scheduler.quarantine(CPU_MAX)
        scheduler.quarantine(CPU_MAX)
        assert counter_value("faults.quarantined_configs") == before + 1
        assert scheduler.quarantined == frozenset({CPU_MAX})


# ---------------------------------------------------------------------------
# Limiter degradation
# ---------------------------------------------------------------------------


class TestLimiterDegradation:
    def test_dropout_walks_to_floor_as_worst_case(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        apu.inject_faults(
            FaultPlan(
                events=(FaultEvent(kind="power_dropout", start=0, duration=99),)
            )
        )
        reads_before = counter_value("faults.limiter.worst_case_reads")
        result = FrequencyLimiter(apu).limit(make_kernel(), CPU_MAX, 30.0)
        assert result.final_config == Configuration.cpu(1.4, 4)  # floor
        assert not result.met_cap
        assert all(obs == math.inf for _, obs in result.trace)
        assert (
            counter_value("faults.limiter.worst_case_reads") - reads_before
            == len(result.trace)
        )

    def test_failed_final_run_yields_nan_placeholder(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        apu.inject_faults(
            FaultPlan(
                events=(FaultEvent(kind="run_failure", start=0, duration=99),)
            )
        )
        failed_before = counter_value("faults.limiter.failed_runs")
        result = FrequencyLimiter(apu).limit(make_kernel(), CPU_MAX, 30.0)
        assert not result.met_cap
        assert math.isnan(result.final_measurement.time_s)
        assert result.final_measurement.config == result.final_config
        assert (
            counter_value("faults.limiter.failed_runs") - failed_before
            == len(result.trace)
        )

    def test_transient_dropout_recovers(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        apu.inject_faults(
            FaultPlan(events=(FaultEvent(kind="power_dropout", start=0),))
        )
        result = FrequencyLimiter(apu).limit(make_kernel(), CPU_MAX, 100.0)
        # First reading drops out (inf) -> one step down; the second
        # reading is clean and meets the generous cap.
        assert result.met_cap
        assert result.trace[0][1] == math.inf
        assert math.isfinite(result.trace[-1][1])
        assert result.steps == 1


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

fault_events = st.builds(
    FaultEvent,
    kind=st.sampled_from(FAULT_KINDS),
    start=st.integers(min_value=0, max_value=40),
    duration=st.integers(min_value=1, max_value=8),
    device=st.sampled_from([None, "cpu", "gpu"]),
    magnitude=st.floats(min_value=0.25, max_value=4.0),
    pstate_index=st.integers(min_value=0, max_value=5),
)

fault_plans = st.builds(
    FaultPlan,
    events=st.lists(fault_events, max_size=5).map(tuple),
    name=st.just("hypothesis"),
)

recoverable_failure_plans = st.builds(
    FaultPlan,
    events=st.lists(
        st.builds(
            FaultEvent,
            kind=st.just("run_failure"),
            start=st.integers(min_value=0, max_value=30),
            duration=st.integers(min_value=1, max_value=4),
        ),
        max_size=4,
    ).map(tuple),
    name=st.just("run-failures"),
)


class TestChaosProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(plan=fault_plans)
    def test_any_plan_leaves_runtime_crash_free(self, trained, lu_app, plan):
        runtime = faulted_runtime(trained, plan, frequency_limiter=True)
        trace = runtime.run(lu_app, 6, power_cap_w=40.0)
        assert len(trace) == 6 * len(lu_app)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(plan=recoverable_failure_plans)
    def test_recoverable_failures_degrade_monotonically(
        self, trained, lu_app, plan
    ):
        """run_failure-only plans with an ample retry budget reproduce
        the clean timeline exactly, except each recovered invocation is
        strictly slower (its backoff wait): faults never *improve* the
        reported schedule."""
        budget = sum(ev.duration for ev in plan) + 1
        clean = faulted_runtime(
            trained, FaultPlan(), retry_limit=budget, quarantine_stuck=False
        ).run(lu_app, 8, power_cap_w=100.0)
        faulted = faulted_runtime(
            trained, plan, retry_limit=budget, quarantine_stuck=False
        ).run(lu_app, 8, power_cap_w=100.0)
        assert len(faulted) == len(clean)
        for got, want in zip(faulted.executions, clean.executions):
            assert got.phase == want.phase
            assert got.config == want.config
            assert got.power_w == want.power_w
            assert got.time_s >= want.time_s
        assert faulted.total_time_s >= clean.total_time_s

    @settings(max_examples=30, deadline=None)
    @given(plan=fault_plans, data=st.data())
    def test_injector_never_invents_configs(self, plan, data):
        apu = TrinityAPU(seed=0)
        space = tuple(apu.config_space)
        inj = FaultInjector(plan)
        for _ in range(12):
            cfg = data.draw(st.sampled_from(space))
            try:
                ctx = inj.begin_run(cfg)
            except SampleRunError:
                continue
            assert ctx.config in space
            assert ctx.requested == cfg

    @settings(max_examples=30, deadline=None)
    @given(plan=fault_plans)
    def test_plan_round_trips_through_dict(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan


# ---------------------------------------------------------------------------
# Full-pipeline chaos: LOOCV under the committed scenarios
# ---------------------------------------------------------------------------


class TestLOOCVUnderFaults:
    @pytest.mark.parametrize(
        "plan_path", CANNED_PLANS, ids=[p.stem for p in CANNED_PLANS]
    )
    def test_canned_plan_completes_with_visible_degradation(self, plan_path):
        plan = FaultPlan.from_file(plan_path)
        injected_before = counter_value("faults.injected.total")
        report = run_loocv(seed=0, fault_plan=plan_path)
        injected = counter_value("faults.injected.total") - injected_before
        assert len(report.records) == 5012
        # Every scheduled event's window is reached by the LOOCV run
        # clock, so at least one activation per event is guaranteed.
        assert injected >= len(plan.events)
        # Faults only touch measurements: the oracle columns are judged
        # on ground truth and stay exactly cap-compliant.
        from repro.constants import respects_cap

        assert all(
            respects_cap(r.oracle_power_w, r.power_cap_w)
            for r in report.records
        )

    def test_faulted_records_never_beat_oracle(self):
        plan = FaultPlan.from_file(CANNED_PLANS[0])
        report = run_loocv(seed=0, fault_plan=plan)
        eps = 1e-9
        for r in report.records:
            if r.under_limit:
                assert r.performance <= r.oracle_performance * (1.0 + eps)

    def test_fault_plan_forces_serial_execution(self):
        report = run_loocv(
            seed=0,
            fault_plan=FaultPlan(
                events=(FaultEvent(kind="counter_nan", start=0),)
            ),
            n_jobs=4,
        )
        assert report.timings.n_jobs == 1

    def test_empty_plan_digest_matches_clean(self):
        clean = run_loocv(seed=0)
        empty = run_loocv(seed=0, fault_plan=FaultPlan(name="empty"))
        assert records_digest(empty.records) == records_digest(clean.records)
