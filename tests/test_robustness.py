"""Robustness and failure-injection tests.

The modeling pipeline must degrade gracefully, not explode, when its
inputs get ugly: heavy measurement noise, tiny training sets, forced
misclassification, and pathological kernels.
"""

import numpy as np
import pytest

from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    AdaptiveModel,
    ParetoFrontier,
    Scheduler,
    characterize_kernel,
    frontier_dissimilarity,
    train_model,
)
from repro.core.frontier import FrontierPoint
from repro.hardware import (
    Configuration,
    FrequencyLimiter,
    NoiseModel,
    TrinityAPU,
)
from repro.profiling import ProfilingLibrary
from repro.stats import kendall_tau
from repro.workloads import build_suite
from tests.conftest import make_kernel


class TestHeavyNoise:
    """10x the default measurement noise: accuracy shrinks, nothing breaks."""

    @pytest.fixture(scope="class")
    def noisy_setup(self):
        noise = NoiseModel(time_rel=0.15, power_rel=0.15, counter_rel=0.2)
        apu = TrinityAPU(noise=noise, seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        train = [k for k in suite if k.benchmark != "LU"]
        model = train_model(library, train)
        return apu, library, suite, model

    def test_training_succeeds_under_heavy_noise(self, noisy_setup):
        _, _, _, model = noisy_setup
        assert model.clustering.n_clusters == 5
        assert set(model.cluster_models)  # non-empty

    def test_predictions_remain_usable_rankings(self, noisy_setup):
        apu, library, suite, model = noisy_setup
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m = apu.run(k, CPU_SAMPLE)
        gpu_m = apu.run(k, GPU_SAMPLE)
        pred = model.predict_kernel(cpu_m, gpu_m)
        cfgs = list(pred.predictions)
        predicted = [pred.predictions[c][1] for c in cfgs]
        true = [apu.true_performance(k, c) for c in cfgs]
        # Rankings survive even when magnitudes wobble.
        assert kendall_tau(predicted, true) > 0.5

    def test_scheduler_still_picks_sane_configs(self, noisy_setup):
        apu, library, suite, model = noisy_setup
        k = suite.get("LU/Small/LUDecomposition")
        pred = model.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        )
        decision = Scheduler().select(pred, power_cap_w=15.0)
        # Under a 15 W cap the pick must at least be a CPU config (the
        # GPU floor is far above 15 W even with noisy predictions).
        assert not decision.config.is_gpu


class TestTinyTrainingSet:
    def test_single_benchmark_training_works(self):
        apu = TrinityAPU(seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        model = train_model(
            library, suite.for_benchmark("CoMD"), n_clusters=3
        )
        k = suite.get("LU/Small/LUDecomposition")
        pred = model.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        )
        assert all(
            pw > 0 and pf > 0 for pw, pf in pred.predictions.values()
        )

    def test_two_kernel_training_minimum(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        kernels = suite.for_benchmark("LU")[:2]
        chars = [characterize_kernel(library, k) for k in kernels]
        model = AdaptiveModel.train(chars, n_clusters=1)
        assert model.clustering.n_clusters == 1


class TestForcedMisclassification:
    def test_wrong_cluster_predictions_remain_finite(self):
        """Even applying the *wrong* cluster's models (simulating a tree
        mistake) must produce positive, finite predictions — the
        scheduler can survive a bad cluster, not a NaN."""
        apu = TrinityAPU(seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        model = train_model(library, [k for k in suite if k.benchmark != "LU"])
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m, gpu_m = apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        for cluster_id, models in model.cluster_models.items():
            for cfg in apu.config_space:
                pw, pf = models.predict(
                    cfg,
                    sample_perf_cpu=cpu_m.performance,
                    sample_perf_gpu=gpu_m.performance,
                    sample_power_cpu_w=cpu_m.total_power_w,
                    sample_power_gpu_w=gpu_m.total_power_w,
                )
                assert np.isfinite(pw) and pw > 0
                assert np.isfinite(pf) and pf > 0


class TestPathologicalKernels:
    def test_extremely_serial_kernel(self):
        apu = TrinityAPU(noise=NoiseModel.exact())
        k = make_kernel(parallel_fraction=0.0, gpu_affinity=0.01)
        times = [apu.true_time_s(k, c) for c in apu.config_space]
        assert all(np.isfinite(t) and t > 0 for t in times)
        f = ParetoFrontier.from_measurements(apu.run_all_configs(k))
        # A CPU-only frontier: the GPU never wins for this kernel.
        assert all(not p.config.is_gpu for p in f)

    def test_fully_memory_bound_kernel_has_flat_frontier(self):
        apu = TrinityAPU(noise=NoiseModel.exact())
        k = make_kernel(mem_fraction=0.97, gpu_affinity=0.5)
        f = ParetoFrontier.from_measurements(apu.run_all_configs(k))
        span = f.max_performance / f[0].performance
        assert span < 4.0  # barely configuration-sensitive

    def test_single_point_frontier_dissimilarity(self):
        cfg = Configuration.cpu(1.4, 1)
        single = ParetoFrontier(
            [FrontierPoint(config=cfg, power_w=10.0, performance=1.0)]
        )
        # Against itself: identical composition, no order info.
        d = frontier_dissimilarity(single, single)
        assert 0.0 <= d <= 1.0


class TestLimiterUnderNoise:
    def test_limiter_converges_with_heavy_noise(self):
        noise = NoiseModel(time_rel=0.1, power_rel=0.2)
        apu = TrinityAPU(noise=noise, seed=1)
        fl = FrequencyLimiter(apu)
        k = make_kernel()
        for cap in (15.0, 20.0, 30.0):
            res = fl.limit_cpu_all_cores(k, cap)
            assert res.final_config in apu.config_space
            assert len(res.trace) <= 7  # at most the P-state ladder + 1

    def test_limiter_noise_can_cause_misjudgement_but_not_crash(self):
        noise = NoiseModel(power_rel=0.3)
        apu = TrinityAPU(noise=noise, seed=2)
        fl = FrequencyLimiter(apu)
        k = make_kernel()
        res = fl.limit(k, Configuration.gpu(0.819, 3.7), 25.0)
        assert res.final_config.device.value in ("cpu", "gpu")
