"""Robustness and failure-injection tests.

The modeling pipeline must degrade gracefully, not explode, when its
inputs get ugly: heavy measurement noise, tiny training sets, forced
misclassification, and pathological kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import respects_cap
from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    AdaptiveModel,
    ParetoFrontier,
    Scheduler,
    characterize_kernel,
    frontier_dissimilarity,
    train_model,
)
from repro.core.frontier import FrontierPoint
from repro.hardware import (
    Configuration,
    FrequencyLimiter,
    NoiseModel,
    TrinityAPU,
    pstates,
)
from repro.profiling import ProfilingLibrary
from repro.stats import kendall_tau
from repro.workloads import build_suite
from tests.conftest import make_kernel


class TestHeavyNoise:
    """10x the default measurement noise: accuracy shrinks, nothing breaks."""

    @pytest.fixture(scope="class")
    def noisy_setup(self):
        noise = NoiseModel(time_rel=0.15, power_rel=0.15, counter_rel=0.2)
        apu = TrinityAPU(noise=noise, seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        train = [k for k in suite if k.benchmark != "LU"]
        model = train_model(library, train)
        return apu, library, suite, model

    def test_training_succeeds_under_heavy_noise(self, noisy_setup):
        _, _, _, model = noisy_setup
        assert model.clustering.n_clusters == 5
        assert set(model.cluster_models)  # non-empty

    def test_predictions_remain_usable_rankings(self, noisy_setup):
        apu, library, suite, model = noisy_setup
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m = apu.run(k, CPU_SAMPLE)
        gpu_m = apu.run(k, GPU_SAMPLE)
        pred = model.predict_kernel(cpu_m, gpu_m)
        cfgs = list(pred.predictions)
        predicted = [pred.predictions[c][1] for c in cfgs]
        true = [apu.true_performance(k, c) for c in cfgs]
        # Rankings survive even when magnitudes wobble.
        assert kendall_tau(predicted, true) > 0.5

    def test_scheduler_still_picks_sane_configs(self, noisy_setup):
        apu, library, suite, model = noisy_setup
        k = suite.get("LU/Small/LUDecomposition")
        pred = model.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        )
        decision = Scheduler().select(pred, power_cap_w=15.0)
        # Under a 15 W cap the pick must at least be a CPU config (the
        # GPU floor is far above 15 W even with noisy predictions).
        assert not decision.config.is_gpu


class TestTinyTrainingSet:
    def test_single_benchmark_training_works(self):
        apu = TrinityAPU(seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        model = train_model(
            library, suite.for_benchmark("CoMD"), n_clusters=3
        )
        k = suite.get("LU/Small/LUDecomposition")
        pred = model.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        )
        assert all(
            pw > 0 and pf > 0 for pw, pf in pred.predictions.values()
        )

    def test_two_kernel_training_minimum(self):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        kernels = suite.for_benchmark("LU")[:2]
        chars = [characterize_kernel(library, k) for k in kernels]
        model = AdaptiveModel.train(chars, n_clusters=1)
        assert model.clustering.n_clusters == 1


class TestForcedMisclassification:
    def test_wrong_cluster_predictions_remain_finite(self):
        """Even applying the *wrong* cluster's models (simulating a tree
        mistake) must produce positive, finite predictions — the
        scheduler can survive a bad cluster, not a NaN."""
        apu = TrinityAPU(seed=0)
        library = ProfilingLibrary(apu, seed=0)
        suite = build_suite()
        model = train_model(library, [k for k in suite if k.benchmark != "LU"])
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m, gpu_m = apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        for cluster_id, models in model.cluster_models.items():
            for cfg in apu.config_space:
                pw, pf = models.predict(
                    cfg,
                    sample_perf_cpu=cpu_m.performance,
                    sample_perf_gpu=gpu_m.performance,
                    sample_power_cpu_w=cpu_m.total_power_w,
                    sample_power_gpu_w=gpu_m.total_power_w,
                )
                assert np.isfinite(pw) and pw > 0
                assert np.isfinite(pf) and pf > 0


class TestPathologicalKernels:
    def test_extremely_serial_kernel(self):
        apu = TrinityAPU(noise=NoiseModel.exact())
        k = make_kernel(parallel_fraction=0.0, gpu_affinity=0.01)
        times = [apu.true_time_s(k, c) for c in apu.config_space]
        assert all(np.isfinite(t) and t > 0 for t in times)
        f = ParetoFrontier.from_measurements(apu.run_all_configs(k))
        # A CPU-only frontier: the GPU never wins for this kernel.
        assert all(not p.config.is_gpu for p in f)

    def test_fully_memory_bound_kernel_has_flat_frontier(self):
        apu = TrinityAPU(noise=NoiseModel.exact())
        k = make_kernel(mem_fraction=0.97, gpu_affinity=0.5)
        f = ParetoFrontier.from_measurements(apu.run_all_configs(k))
        span = f.max_performance / f[0].performance
        assert span < 4.0  # barely configuration-sensitive

    def test_single_point_frontier_dissimilarity(self):
        cfg = Configuration.cpu(1.4, 1)
        single = ParetoFrontier(
            [FrontierPoint(config=cfg, power_w=10.0, performance=1.0)]
        )
        # Against itself: identical composition, no order info.
        d = frontier_dissimilarity(single, single)
        assert 0.0 <= d <= 1.0


class TestLimiterUnderNoise:
    def test_limiter_converges_with_heavy_noise(self):
        noise = NoiseModel(time_rel=0.1, power_rel=0.2)
        apu = TrinityAPU(noise=noise, seed=1)
        fl = FrequencyLimiter(apu)
        k = make_kernel()
        for cap in (15.0, 20.0, 30.0):
            res = fl.limit_cpu_all_cores(k, cap)
            assert res.final_config in apu.config_space
            assert len(res.trace) <= 7  # at most the P-state ladder + 1

    def test_limiter_noise_can_cause_misjudgement_but_not_crash(self):
        noise = NoiseModel(power_rel=0.3)
        apu = TrinityAPU(noise=noise, seed=2)
        fl = FrequencyLimiter(apu)
        k = make_kernel()
        res = fl.limit(k, Configuration.gpu(0.819, 3.7), 25.0)
        assert res.final_config.device.value in ("cpu", "gpu")


class TestLimiterProperties:
    """Hypothesis properties of the frequency-limiting control loop."""

    @settings(max_examples=40, deadline=None)
    @given(
        cap=st.floats(min_value=5.0, max_value=60.0),
        seed=st.integers(min_value=0, max_value=2**16),
        ci=st.integers(min_value=0, max_value=5),
        n_threads=st.integers(min_value=1, max_value=4),
    )
    def test_cpu_limit_terminates_within_ladder_depth(
        self, cap, seed, ci, n_threads
    ):
        """The loop can only walk *down* from the start P-state: at most
        ``ci`` steps, then it must stop — whatever the noise does."""
        apu = TrinityAPU(seed=0)
        start = Configuration.cpu(pstates.CPU_FREQS_GHZ[ci], n_threads)
        res = FrequencyLimiter(apu).limit(
            make_kernel(), start, cap, rng=np.random.default_rng(seed)
        )
        assert len(res.trace) <= 1 + ci
        assert res.final_config in apu.config_space
        assert not res.final_config.is_gpu  # never changes device

    @settings(max_examples=40, deadline=None)
    @given(
        cap=st.floats(min_value=5.0, max_value=60.0),
        seed=st.integers(min_value=0, max_value=2**16),
        gi=st.integers(min_value=0, max_value=2),
        ci=st.integers(min_value=0, max_value=5),
    )
    def test_gpu_limit_terminates_within_both_ladders(self, cap, seed, gi, ci):
        apu = TrinityAPU(seed=0)
        start = Configuration.gpu(
            pstates.GPU_FREQS_GHZ[gi], pstates.CPU_FREQS_GHZ[ci]
        )
        res = FrequencyLimiter(apu).limit(
            make_kernel(), start, cap, rng=np.random.default_rng(seed)
        )
        # GPU ladder first, then the host CPU ladder.
        assert len(res.trace) <= 1 + gi + ci
        assert res.final_config.is_gpu

    @settings(max_examples=30, deadline=None)
    @given(
        cap=st.floats(min_value=5.0, max_value=60.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_headroom_policy_bounded_by_ladder_sum(self, cap, seed):
        apu = TrinityAPU(seed=0)
        res = FrequencyLimiter(apu).limit_gpu_with_headroom(
            make_kernel(), cap, rng=np.random.default_rng(seed)
        )
        # Down both ladders (<= 8 readings), then the host steps back up
        # through at most the 5 remaining CPU states.
        assert len(res.trace) <= 13

    @settings(max_examples=40, deadline=None)
    @given(
        cap=st.floats(min_value=5.0, max_value=60.0),
        ci=st.integers(min_value=0, max_value=5),
        n_threads=st.integers(min_value=1, max_value=4),
    )
    def test_zero_noise_never_settles_above_cap(self, cap, ci, n_threads):
        """Under an exact noise model, observations equal ground truth,
        so ``met_cap`` means the settled configuration genuinely
        respects the cap — and a miss means the ladder floor."""
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        start = Configuration.cpu(pstates.CPU_FREQS_GHZ[ci], n_threads)
        res = FrequencyLimiter(apu).limit(make_kernel(), start, cap)
        if res.met_cap:
            assert respects_cap(res.final_measurement.total_power_w, cap)
        else:
            assert res.final_config.cpu_freq_ghz == pstates.CPU_FREQS_GHZ[0]

    @settings(max_examples=25, deadline=None)
    @given(
        cap=st.floats(min_value=5.0, max_value=60.0),
        seed=st.integers(min_value=0, max_value=2**16),
        ci=st.integers(min_value=0, max_value=5),
    )
    def test_deterministic_for_fixed_generator_seed(self, cap, seed, ci):
        k = make_kernel()
        start = Configuration.cpu(pstates.CPU_FREQS_GHZ[ci], 4)
        results = [
            FrequencyLimiter(TrinityAPU(seed=0)).limit(
                k, start, cap, rng=np.random.default_rng(seed)
            )
            for _ in range(2)
        ]
        assert results[0].trace == results[1].trace
        assert results[0].final_config == results[1].final_config
        assert results[0].met_cap == results[1].met_cap
