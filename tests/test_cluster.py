"""Tests for repro.cluster (nodes, allocation, manager)."""

import pytest

from repro.cluster import (
    ClusterNode,
    ClusterPowerManager,
    NodeFrontier,
    NodeFrontierPoint,
    allocation_summary,
    greedy_marginal_allocation,
    maxmin_allocation,
    uniform_allocation,
)
from repro.core import train_model
from repro.hardware import TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.runtime import Application
from repro.workloads import build_suite


def _frontier(points):
    return NodeFrontier([NodeFrontierPoint(*p) for p in points])


@pytest.fixture(scope="module")
def trained():
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()
    model = train_model(library, [k for k in suite if k.benchmark != "LU"])
    return suite, model


@pytest.fixture(scope="module")
def nodes(trained):
    suite, model = trained
    return [
        ClusterNode(
            "n0", Application.from_suite(suite, "LU Small"), model, seed=1
        ),
        ClusterNode(
            "n1", Application.from_suite(suite, "LU Large"), model, seed=2
        ),
        ClusterNode(
            "n2", Application.from_suite(suite, "CoMD Small"), model, seed=3
        ),
    ]


class TestNodeFrontier:
    def test_sorted_and_monotone(self):
        f = _frontier([(20.0, 19.0, 2.0), (10.0, 9.5, 1.0), (30.0, 28.0, 3.0)])
        caps = [p.cap_w for p in f]
        rates = [p.rate for p in f]
        assert caps == sorted(caps)
        assert rates == sorted(rates)

    def test_non_improving_points_dropped(self):
        f = _frontier([(10.0, 9.0, 1.0), (20.0, 19.0, 0.9), (30.0, 28.0, 2.0)])
        assert len(f) == 2

    def test_at_cap(self):
        f = _frontier([(10.0, 9.0, 1.0), (20.0, 19.0, 2.0)])
        assert f.at_cap(15.0).rate == 1.0
        assert f.at_cap(25.0).rate == 2.0
        assert f.at_cap(5.0).rate == 1.0  # floor: node cannot power off

    def test_steps(self):
        f = _frontier([(10.0, 9.0, 1.0), (20.0, 19.0, 2.0)])
        ((dp, dr, cap),) = f.steps()
        assert dp == pytest.approx(10.0)
        assert dr == pytest.approx(1.0)
        assert cap == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NodeFrontier([])

    def test_at_cap_matches_linear_scan(self):
        # Regression for the binary-search rewrite: pin equality to the
        # original O(n) feasibility scan, below-floor fallback included.
        from repro.constants import respects_cap

        def linear_scan(frontier, cap_w):
            best = None
            for p in frontier.points:
                if respects_cap(p.cap_w, cap_w):
                    best = p
            return best if best is not None else frontier.points[0]

        import numpy as np

        rng = np.random.default_rng(123)
        for _ in range(50):
            n_points = int(rng.integers(1, 8))
            caps = np.cumsum(rng.uniform(0.0, 6.0, n_points)) + rng.uniform(
                1.0, 10.0
            )
            rates = np.cumsum(rng.uniform(0.01, 1.0, n_points))
            f = NodeFrontier(
                [
                    NodeFrontierPoint(float(c), float(c) * 0.95, float(r))
                    for c, r in zip(caps, rates)
                ]
            )
            queries = [
                0.0,  # below floor
                float(caps[0]) - 1e-12,
                float(caps[0]),
                float(caps[-1]),
                float(caps[-1]) + 5.0,
                float(rng.uniform(0.0, caps[-1] + 2.0)),
            ]
            for q in queries:
                assert f.at_cap(q) is linear_scan(f, q), q


class TestAllocation:
    def _two_frontiers(self):
        # Node a: cheap performance (good marginal utility).
        fa = _frontier([(10.0, 10.0, 1.0), (15.0, 15.0, 3.0), (20.0, 20.0, 4.0)])
        # Node b: expensive performance.
        fb = _frontier([(10.0, 10.0, 1.0), (20.0, 20.0, 1.5)])
        return {"a": fa, "b": fb}

    def test_uniform_splits_evenly(self):
        caps = uniform_allocation(40.0, self._two_frontiers())
        assert caps == {"a": 20.0, "b": 20.0}

    def test_greedy_prefers_high_marginal_node(self):
        caps = greedy_marginal_allocation(30.0, self._two_frontiers())
        # 20 W go to the minima; the spare 10 W belong to node a, whose
        # steps buy 0.4 and 0.2 rate/W vs node b's 0.05.
        assert caps["a"] == pytest.approx(20.0)
        assert caps["b"] == pytest.approx(10.0)

    def test_greedy_respects_budget(self):
        fr = self._two_frontiers()
        for budget in (20.0, 25.0, 33.0, 40.0, 100.0):
            caps = greedy_marginal_allocation(budget, fr)
            assert sum(caps.values()) <= budget + 1e-9

    def test_greedy_beats_uniform_in_predicted_rate(self):
        fr = self._two_frontiers()
        budget = 30.0
        g = allocation_summary(greedy_marginal_allocation(budget, fr), fr, budget)
        u = allocation_summary(uniform_allocation(budget, fr), fr, budget)
        assert g["predicted_rate"] > u["predicted_rate"]

    def test_greedy_monotone_in_budget(self):
        fr = self._two_frontiers()
        rates = []
        for budget in (20.0, 25.0, 30.0, 35.0, 40.0):
            caps = greedy_marginal_allocation(budget, fr)
            rates.append(
                allocation_summary(caps, fr, budget)["predicted_rate"]
            )
        assert rates == sorted(rates)

    def test_infeasible_budget_scales_floors(self):
        fr = self._two_frontiers()
        caps = greedy_marginal_allocation(10.0, fr)  # floors need 20 W
        assert sum(caps.values()) == pytest.approx(10.0)
        assert caps["a"] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_allocation(10.0, {})
        with pytest.raises(ValueError):
            greedy_marginal_allocation(0.0, self._two_frontiers())
        with pytest.raises(ValueError):
            allocation_summary({"a": 1.0}, self._two_frontiers(), 10.0)

    def test_maxmin_lifts_the_slowest_node(self):
        fr = self._two_frontiers()
        caps = maxmin_allocation(35.0, fr)
        # Both floors give rate 1.0; tie breaks to 'a' (rate 3.0 at
        # 15 W); then 'b' is slowest and takes its 10 W step to rate
        # 1.5; the remaining 5W go to 'a' again (rate 4.0).
        assert caps["b"] == pytest.approx(20.0)
        assert caps["a"] == pytest.approx(15.0)

    def test_maxmin_respects_budget(self):
        fr = self._two_frontiers()
        for budget in (20.0, 25.0, 33.0, 50.0):
            caps = maxmin_allocation(budget, fr)
            assert sum(caps.values()) <= budget + 1e-9

    def test_maxmin_improves_worst_rate_over_greedy(self):
        fr = self._two_frontiers()
        budget = 35.0
        greedy = greedy_marginal_allocation(budget, fr)
        maxmin = maxmin_allocation(budget, fr)

        def worst_rate(caps):
            return min(fr[n].at_cap(c).rate for n, c in caps.items())

        assert worst_rate(maxmin) >= worst_rate(greedy)

    def test_maxmin_infeasible_budget_scales_floors(self):
        fr = self._two_frontiers()
        caps = maxmin_allocation(12.0, fr)
        assert sum(caps.values()) == pytest.approx(12.0)


class TestClusterNode:
    def test_warmup_runs_two_samples_per_kernel(self, trained):
        suite, model = trained
        node = ClusterNode(
            "n", Application.from_suite(suite, "LU Small"), model, seed=9
        )
        node.warm_up()
        for kernel in node.application.kernels:
            assert node.library.database.iterations(kernel.uid) == 2
        # Idempotent.
        node.warm_up()
        for kernel in node.application.kernels:
            assert node.library.database.iterations(kernel.uid) == 2

    def test_frontier_properties(self, nodes):
        f = nodes[0].frontier()
        assert len(f) >= 3
        rates = [p.rate for p in f]
        assert rates == sorted(rates)
        # Feasibility: predicted node power never exceeds the cap.
        for p in f:
            assert p.expected_power_w <= p.cap_w * (1 + 1e-9)

    def test_run_produces_trace(self, nodes):
        trace = nodes[0].run(n_timesteps=3, cap_w=22.0)
        assert trace.timesteps() == 3

    def test_name_validation(self, trained):
        suite, model = trained
        with pytest.raises(ValueError):
            ClusterNode("", Application.from_suite(suite, "LU Small"), model)


class TestClusterPowerManager:
    def test_validation(self, nodes):
        with pytest.raises(ValueError):
            ClusterPowerManager([])
        with pytest.raises(ValueError):
            ClusterPowerManager(nodes, policy="fair")
        with pytest.raises(ValueError):
            ClusterPowerManager([nodes[0], nodes[0]])

    def test_allocation_covers_all_nodes(self, nodes):
        mgr = ClusterPowerManager(nodes, policy="greedy")
        caps = mgr.allocate(75.0)
        assert set(caps) == {"n0", "n1", "n2"}
        assert sum(caps.values()) <= 75.0 + 1e-9

    def test_run_epochs(self, nodes):
        mgr = ClusterPowerManager(nodes, policy="greedy")
        report = mgr.run([70.0, 50.0], n_epochs=2, timesteps_per_epoch=3)
        assert len(report.epochs) == 2
        assert report.epochs[0].budget_w == 70.0
        assert report.total_time_s > 0
        assert 0.0 <= report.budget_compliance() <= 1.0

    def test_budget_function(self, nodes):
        mgr = ClusterPowerManager(nodes, policy="uniform")
        report = mgr.run(
            lambda e: 80.0 - 20.0 * e, n_epochs=2, timesteps_per_epoch=2
        )
        assert report.epochs[1].budget_w == 60.0

    def test_run_argument_validation(self, nodes):
        mgr = ClusterPowerManager(nodes)
        with pytest.raises(ValueError):
            mgr.run([50.0], n_epochs=2, timesteps_per_epoch=2)
        with pytest.raises(ValueError):
            mgr.run([50.0], n_epochs=0, timesteps_per_epoch=2)


class TestClusterFaults:
    def test_dead_node_dropped_and_budget_redistributed(self, nodes):
        from repro.cluster import ClusterFaultEvent, ClusterFaultPlan

        plan = ClusterFaultPlan(
            events=(
                ClusterFaultEvent(kind="node_dead", node="n1", start=0),
                ClusterFaultEvent(kind="node_dead", node="ghost", start=0),
            ),
            name="one-death",
        )
        mgr = ClusterPowerManager(nodes, policy="greedy", fault_plan=plan)
        healthy = ClusterPowerManager(nodes, policy="greedy")
        report = mgr.run([70.0, 70.0], n_epochs=2, timesteps_per_epoch=2)
        # Epoch 0: n1 is dead — no cap, no trace; survivors share 70 W.
        assert set(report.epochs[0].caps_w) == {"n0", "n2"}
        assert set(report.epochs[0].traces) == {"n0", "n2"}
        assert sum(report.epochs[0].caps_w.values()) <= 70.0 + 1e-9
        survivor_caps = {
            n: c
            for n, c in healthy.allocate(70.0).items()
            if n in ("n0", "n2")
        }
        assert (
            report.epochs[0].caps_w["n0"] + report.epochs[0].caps_w["n2"]
            >= survivor_caps["n0"] + survivor_caps["n2"]
        )
        # Epoch 1: the event expired; the node is back.
        assert set(report.epochs[1].traces) == {"n0", "n1", "n2"}

    def test_stale_frontier_pins_node_to_floor(self, nodes):
        from repro.cluster import ClusterFaultEvent, ClusterFaultPlan

        plan = ClusterFaultPlan(
            events=(
                ClusterFaultEvent(kind="stale_frontier", node="n0", start=0),
            ),
        )
        mgr = ClusterPowerManager(nodes, policy="greedy", fault_plan=plan)
        report = mgr.run([75.0], n_epochs=1, timesteps_per_epoch=2)
        floor = mgr.frontiers()["n0"].min_cap_w
        assert report.epochs[0].caps_w["n0"] == pytest.approx(floor)
        assert set(report.epochs[0].traces) == {"n0", "n1", "n2"}

    def test_all_nodes_dead_epoch_degrades_gracefully(self, nodes):
        from repro.cluster import ClusterFaultEvent, ClusterFaultPlan

        plan = ClusterFaultPlan(
            events=tuple(
                ClusterFaultEvent(kind="node_leave", node=n, start=0)
                for n in ("n0", "n1", "n2")
            ),
        )
        mgr = ClusterPowerManager(nodes, policy="greedy", fault_plan=plan)
        report = mgr.run([60.0], n_epochs=1, timesteps_per_epoch=2)
        assert report.epochs[0].traces == {}
        assert report.epochs[0].makespan_s == 0.0
        assert report.total_time_s == 0.0
        assert report.epochs[0].within_budget

    def test_fault_counters_increment(self, nodes):
        from repro.cluster import ClusterFaultEvent, ClusterFaultPlan
        from repro.telemetry import counter

        plan = ClusterFaultPlan(
            events=(
                ClusterFaultEvent(kind="node_dead", node="n1", start=0),
                ClusterFaultEvent(kind="stale_frontier", node="n2", start=0),
                ClusterFaultEvent(kind="node_leave", node="missing", start=0),
            ),
        )
        dead = counter("faults.cluster.node_dead")
        stale = counter("faults.cluster.stale_frontier")
        unknown = counter("faults.cluster.unknown_node")
        degraded = counter("faults.cluster.epochs_degraded")
        before = (dead.value, stale.value, unknown.value, degraded.value)
        mgr = ClusterPowerManager(nodes, fault_plan=plan)
        mgr.run([70.0], n_epochs=1, timesteps_per_epoch=2)
        assert dead.value == before[0] + 1
        assert stale.value == before[1] + 1
        assert unknown.value == before[2] + 1
        assert degraded.value == before[3] + 1
