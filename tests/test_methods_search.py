"""Tests for the search-based baselines (repro.methods.search)."""

import pytest

from repro.hardware import Device, NoiseModel, TrinityAPU
from repro.methods import ExhaustiveSearch, HillClimbing, Oracle
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def apu():
    return TrinityAPU(noise=NoiseModel.exact(), seed=0)


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def kernel(suite):
    return suite.get("LU/Small/LUDecomposition")


class TestExhaustiveSearch:
    def test_matches_oracle_without_noise(self, apu, kernel):
        """With exact measurements, exhaustive search IS the oracle."""
        method = ExhaustiveSearch(apu)
        oracle = Oracle(apu)
        for cap in oracle.caps_for(kernel):
            assert method.decide(kernel, cap).config == (
                oracle.decide(kernel, cap).config
            )

    def test_online_cost_charged_once(self, apu, kernel):
        method = ExhaustiveSearch(apu)
        first = method.decide(kernel, 20.0)
        second = method.decide(kernel, 30.0)
        assert first.online_runs == 42
        assert second.online_runs == 0

    def test_infeasible_cap_falls_back_to_min_power(self, apu, kernel):
        method = ExhaustiveSearch(apu)
        decision = method.decide(kernel, 1.0)
        table = method._tables[kernel.uid]
        assert table[decision.config][0] == min(p for p, _ in table.values())


class TestHillClimbing:
    def test_fewer_runs_than_exhaustive(self, apu, kernel):
        method = HillClimbing(apu)
        decision = method.decide(kernel, 25.0)
        assert 1 <= decision.online_runs < 42

    def test_respects_cap_when_reachable(self, apu, kernel):
        method = HillClimbing(apu)
        for cap in (14.0, 20.0, 28.0):
            decision = method.decide(kernel, cap)
            assert apu.true_total_power_w(kernel, decision.config) <= cap * 1.02

    def test_can_cross_devices_for_gpu_kernels(self, apu, suite):
        """From the CPU start, the device-switch edge lets the climber
        reach the GPU when power allows and the kernel wants it."""
        k = suite.get("LULESH/Large/CalcFBHourglassForce")
        method = HillClimbing(apu)
        decision = method.decide(k, 35.0)
        assert decision.config.device is Device.GPU

    def test_quality_between_model_and_random(self, apu, suite):
        """Hill climbing should recover a decent fraction of oracle
        performance on average, but lose cases to local optima."""
        oracle = Oracle(apu)
        method = HillClimbing(apu)
        ratios = []
        for k in suite.for_benchmark("CoMD")[:6]:
            for cap in oracle.caps_for(k)[::4]:
                cfg = method.decide(k, cap).config
                if apu.true_total_power_w(k, cfg) <= cap * 1.001:
                    o_cfg = oracle.decide(k, cap).config
                    ratios.append(
                        apu.true_performance(k, cfg)
                        / apu.true_performance(k, o_cfg)
                    )
        mean = sum(ratios) / len(ratios)
        assert 0.5 < mean <= 1.0 + 1e-9

    def test_measurement_cache_reused_across_caps(self, apu, kernel):
        method = HillClimbing(apu)
        first = method.decide(kernel, 20.0)
        second = method.decide(kernel, 20.0)
        assert second.online_runs <= first.online_runs
