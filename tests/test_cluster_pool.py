"""Tests for the fleet-scale allocation engine (pool, kernels, tree,
cluster faults)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    BudgetTree,
    ClusterFaultEvent,
    ClusterFaultPlan,
    FrontierPool,
    NodeFrontier,
    NodeFrontierPoint,
    allocate_pool,
    greedy_marginal_allocation,
    greedy_marginal_allocation_reference,
    maxmin_allocation,
    maxmin_allocation_reference,
    pool_allocation_summary,
)


def _frontier(points):
    return NodeFrontier([NodeFrontierPoint(*p) for p in points])


def _two_frontiers():
    fa = _frontier([(10.0, 10.0, 1.0), (15.0, 15.0, 3.0), (20.0, 20.0, 4.0)])
    fb = _frontier([(10.0, 10.0, 1.0), (20.0, 20.0, 1.5)])
    return {"a": fa, "b": fb}


# -- random frontier generators (shared by the property tests) ----------------


@st.composite
def frontier_dicts(draw):
    """A dict of 1-6 random node frontiers with 1-6 points each,
    including occasional zero-cost (equal-cap) steps."""
    n_nodes = draw(st.integers(1, 6))
    out = {}
    for i in range(n_nodes):
        n_points = draw(st.integers(1, 6))
        cap = draw(st.floats(1.0, 30.0))
        points = []
        rate = draw(st.floats(0.1, 2.0))
        for _ in range(n_points):
            points.append(NodeFrontierPoint(cap, cap * 0.95, rate))
            zero_cost = draw(st.booleans())
            cap = cap + (0.0 if zero_cost else draw(st.floats(0.1, 8.0)))
            rate = rate + draw(st.floats(0.05, 2.0))
        out[f"n{i:02d}"] = NodeFrontier(points)
    return out


class TestFrontierPool:
    def test_round_trip(self):
        fr = _two_frontiers()
        pool = FrontierPool.from_frontiers(fr)
        back = pool.to_frontiers()
        assert list(back) == ["a", "b"]
        for name in fr:
            assert [
                (p.cap_w, p.expected_power_w, p.rate) for p in fr[name]
            ] == [(p.cap_w, p.expected_power_w, p.rate) for p in back[name]]

    def test_counts(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        assert pool.n_nodes == 2
        assert pool.n_active == 2
        assert pool.n_points == 5
        assert len(pool) == 2
        assert "a" in pool and "missing" not in pool

    def test_validation(self):
        with pytest.raises(ValueError, match="unique"):
            FrontierPool(
                ["a", "a"],
                np.array([1.0, 2.0]),
                np.array([1.0, 2.0]),
                np.array([1.0, 2.0]),
                np.array([0, 1, 2]),
            )
        with pytest.raises(ValueError, match="offsets"):
            FrontierPool(
                ["a"],
                np.array([1.0]),
                np.array([1.0]),
                np.array([1.0]),
                np.array([0, 2]),
            )
        with pytest.raises(ValueError, match="at least one"):
            FrontierPool(
                ["a", "b"],
                np.array([1.0]),
                np.array([1.0]),
                np.array([1.0]),
                np.array([0, 0, 1]),
            )
        with pytest.raises(ValueError, match="finite"):
            FrontierPool(
                ["a"],
                np.array([np.inf]),
                np.array([1.0]),
                np.array([1.0]),
                np.array([0, 1]),
            )

    def test_synthesize_deterministic(self):
        p1 = FrontierPool.synthesize(50, seed=9)
        p2 = FrontierPool.synthesize(50, seed=9)
        assert p1.active_names() == p2.active_names()
        f1 = p1.floors()
        f2 = p2.floors()
        assert np.array_equal(f1, f2)
        # Names sort lexicographically in numeric order.
        names = p1.active_names()
        assert names == sorted(names)

    def test_at_caps_matches_scalar_at_cap(self):
        pool = FrontierPool.synthesize(200, seed=4)
        fr = pool.to_frontiers()
        rng = np.random.default_rng(0)
        queries = rng.uniform(0.0, 50.0, 200)
        queries[0] = np.nan  # scalar scan treats NaN as nothing-feasible
        point_caps, powers, rates = pool.at_caps(queries)
        for i, (name, q) in enumerate(zip(pool.active_names(), queries)):
            p = fr[name].at_cap(float(q))
            assert point_caps[i] == p.cap_w
            assert powers[i] == p.expected_power_w
            assert rates[i] == p.rate

    def test_membership_cycle(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        v0 = pool.version
        assert pool.deactivate(["b"]) == 1
        assert pool.version == v0 + 1
        assert pool.active_names() == ["a"]
        assert pool.deactivate(["b"]) == 0  # idempotent, no version bump
        assert pool.version == v0 + 1
        assert pool.activate(["b"]) == 1
        assert pool.active_names() == ["a", "b"]
        with pytest.raises(ValueError, match="unknown"):
            pool.deactivate(["nope"])

    def test_add_frontiers(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        pool.add_frontiers({"c": _frontier([(5.0, 4.8, 0.5)])})
        assert pool.n_nodes == 3
        assert pool.active_names() == ["a", "b", "c"]
        with pytest.raises(ValueError, match="already pooled"):
            pool.add_frontiers({"a": _frontier([(5.0, 4.8, 0.5)])})

    def test_view_cached_per_version(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        assert pool.view() is pool.view()
        v = pool.view()
        pool.deactivate(["b"])
        assert pool.view() is not v

    def test_subpool(self):
        pool = FrontierPool.synthesize(10, seed=1)
        names = pool.active_names()[3:6]
        sub = pool.subpool(names)
        assert sub.active_names() == names
        full = pool.to_frontiers()
        for name, f in sub.to_frontiers().items():
            assert [p.cap_w for p in f] == [p.cap_w for p in full[name]]


class TestAllocatePool:
    def test_matches_dict_frontend(self):
        fr = _two_frontiers()
        pool = FrontierPool.from_frontiers(fr)
        for policy, dict_fn in (
            ("greedy", greedy_marginal_allocation),
            ("maxmin", maxmin_allocation),
        ):
            caps = allocate_pool(pool, 33.0, policy)
            expect = dict_fn(33.0, fr)
            assert dict(zip(pool.active_names(), caps.tolist())) == expect

    def test_uniform(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        caps = allocate_pool(pool, 40.0, "uniform")
        assert caps.tolist() == [20.0, 20.0]

    def test_validation(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        with pytest.raises(ValueError):
            allocate_pool(pool, 0.0)
        with pytest.raises(ValueError):
            allocate_pool(pool, 10.0, "fair")

    def test_respects_membership(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        pool.deactivate(["a"])
        caps = allocate_pool(pool, 30.0, "greedy")
        assert caps.size == 1
        assert caps[0] == pytest.approx(20.0)  # b's own frontier maximum

    def test_floor_scaling_when_infeasible(self):
        pool = FrontierPool.from_frontiers(_two_frontiers())
        caps = allocate_pool(pool, 10.0, "greedy")  # floors need 20 W
        assert float(np.sum(caps)) == pytest.approx(10.0)
        assert caps[0] == pytest.approx(5.0)

    def test_zero_cost_steps_taken_immediately(self):
        # A zero-cost step (equal caps, better rate) must be granted
        # even when the leftover budget is zero.
        fr = {
            "a": _frontier([(10.0, 10.0, 1.0), (10.0, 10.0, 2.0)]),
            "b": _frontier([(10.0, 10.0, 1.0)]),
        }
        for budget in (20.0, 20.5):
            caps = greedy_marginal_allocation(budget, fr)
            assert caps == greedy_marginal_allocation_reference(budget, fr)
            summary = pool_allocation_summary(
                FrontierPool.from_frontiers(fr),
                np.array(list(caps.values())),
                budget,
            )
            assert summary["predicted_rate"] == pytest.approx(3.0)

    def test_single_node(self):
        fr = {"only": _frontier([(10.0, 9.5, 1.0), (14.0, 13.2, 2.0)])}
        for budget, expected in ((5.0, 5.0), (12.0, 10.0), (40.0, 14.0)):
            for fn in (greedy_marginal_allocation, maxmin_allocation):
                assert fn(budget, fr)["only"] == pytest.approx(expected)

    def test_pool_allocation_summary_matches_dict(self):
        fr = _two_frontiers()
        pool = FrontierPool.from_frontiers(fr)
        caps = allocate_pool(pool, 33.0, "greedy")
        from repro.cluster import allocation_summary

        s_pool = pool_allocation_summary(pool, caps, 33.0)
        s_dict = allocation_summary(
            dict(zip(pool.active_names(), caps.tolist())), fr, 33.0
        )
        for key in s_dict:
            assert s_pool[key] == pytest.approx(s_dict[key])

    @settings(max_examples=60, deadline=None)
    @given(frontier_dicts(), st.floats(0.5, 3.0), st.floats(0.0, 40.0))
    def test_property_vectorized_equals_reference(
        self, fr, floor_factor, extra
    ):
        floors = sum(f.min_cap_w for f in fr.values())
        budget = floors * floor_factor + extra
        greedy = greedy_marginal_allocation(budget, fr)
        assert greedy == greedy_marginal_allocation_reference(budget, fr)
        maxmin = maxmin_allocation(budget, fr)
        assert maxmin == maxmin_allocation_reference(budget, fr)
        # Neither policy ever exceeds the budget.
        assert sum(greedy.values()) <= budget + 1e-9
        assert sum(maxmin.values()) <= budget + 1e-9


class TestBudgetTree:
    def _tree(self, n=64, rack_size=8, racks_per_row=2, seed=2):
        pool = FrontierPool.synthesize(n, seed=seed)
        return pool, BudgetTree.regular(
            pool, rack_size=rack_size, racks_per_row=racks_per_row
        )

    def test_budget_respected_and_near_flat(self):
        pool, tree = self._tree()
        budget = float(np.sum(pool.floors())) * 1.4
        for policy in ("uniform", "greedy", "maxmin"):
            caps = tree.allocate(budget, policy)
            assert caps.shape == (pool.n_active,)
            assert float(np.sum(caps)) <= budget + 1e-6
        tree_rate = pool_allocation_summary(
            pool, tree.allocate(budget, "greedy"), budget
        )["predicted_rate"]
        flat_rate = pool_allocation_summary(
            pool, allocate_pool(pool, budget, "greedy"), budget
        )["predicted_rate"]
        assert tree_rate >= 0.95 * flat_rate

    def test_incremental_rebuild_on_membership_change(self):
        from repro.telemetry import counter

        pool, tree = self._tree()
        budget = float(np.sum(pool.floors())) * 1.3
        tree.allocate(budget)
        rebuilds = counter("cluster.alloc.tree.rack_rebuilds")
        before = rebuilds.value
        victim = pool.active_names()[0]
        pool.deactivate([victim])
        caps = tree.allocate(budget)
        assert caps.shape == (pool.n_active,)
        assert rebuilds.value - before == 1  # only the victim's rack

    def test_budget_shifts(self):
        pool, tree = self._tree()
        budget = float(np.sum(pool.floors())) * 1.3
        tree.allocate(budget)
        racks = sorted(tree.last_rack_budgets)
        baseline = dict(tree.last_rack_budgets)
        tree.shift_budget(racks[0], racks[1], 3.0)
        caps = tree.allocate(budget)
        assert float(np.sum(caps)) <= budget + 1e-6
        assert tree.last_rack_budgets[racks[0]] == pytest.approx(
            baseline[racks[0]] - 3.0
        )
        assert tree.last_rack_budgets[racks[1]] == pytest.approx(
            baseline[racks[1]] + 3.0
        )
        tree.clear_shifts()
        tree.allocate(budget)
        assert tree.last_rack_budgets[racks[0]] == pytest.approx(
            baseline[racks[0]]
        )

    def test_validation(self):
        pool = FrontierPool.synthesize(4, seed=0)
        names = pool.active_names()
        with pytest.raises(ValueError, match="without a rack"):
            BudgetTree(pool, {}, {})
        with pytest.raises(ValueError, match="without a row"):
            BudgetTree(pool, {n: "r0" for n in names}, {})
        tree = BudgetTree.regular(pool, rack_size=2, racks_per_row=1)
        with pytest.raises(ValueError, match="unknown rack"):
            tree.shift_budget("rack000000", "nope", 1.0)
        with pytest.raises(ValueError):
            tree.allocate(0.0)

    def test_extend_for_joining_nodes(self):
        pool, tree = self._tree(n=8, rack_size=4, racks_per_row=1)
        pool.add_frontiers({"late": _frontier([(9.0, 8.7, 0.7)])})
        with pytest.raises(ValueError, match="no rack"):
            tree.allocate(100.0)
        tree.extend(
            rack_of={"late": "rack-late"}, row_of={"rack-late": "row0000"}
        )
        budget = float(np.sum(pool.floors())) * 1.3
        caps = tree.allocate(budget)
        assert caps.shape == (pool.n_active,)


class TestClusterFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown cluster fault"):
            ClusterFaultEvent(kind="meteor", node="n0", start=0)
        with pytest.raises(ValueError, match="node"):
            ClusterFaultEvent(kind="node_dead", node="", start=0)
        with pytest.raises(ValueError, match="start"):
            ClusterFaultEvent(kind="node_dead", node="n0", start=-1)
        with pytest.raises(ValueError, match="duration"):
            ClusterFaultEvent(kind="node_dead", node="n0", start=0, duration=0)

    def test_windows(self):
        ev = ClusterFaultEvent(
            kind="node_dead", node="n0", start=2, duration=3
        )
        assert not ev.active_at(1)
        assert ev.active_at(2) and ev.active_at(4)
        assert not ev.active_at(5)
        plan = ClusterFaultPlan(events=(ev,), name="t")
        assert plan.horizon == 5
        assert plan.active_events(3) == (ev,)
        assert not plan.empty and len(plan) == 1

    def test_json_round_trip(self, tmp_path):
        plan = ClusterFaultPlan.random(7, ["n0", "n1", "n2"], n_events=5)
        path = plan.to_file(tmp_path / "plan.json")
        loaded = ClusterFaultPlan.from_file(path)
        assert loaded == plan
        with pytest.raises(ValueError, match="version"):
            ClusterFaultPlan.from_dict({"version": 99})

    def test_random_deterministic(self):
        a = ClusterFaultPlan.random(3, ["x", "y"])
        b = ClusterFaultPlan.random(3, ["x", "y"])
        assert a == b
