"""Tests for repro.hardware.kernelmodel (ground-truth timing model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CPU_FREQS_GHZ, GPU_FREQS_GHZ, Configuration
from repro.hardware import kernelmodel as km
from tests.conftest import make_kernel


def test_characteristics_range_validation():
    with pytest.raises(ValueError):
        make_kernel(parallel_fraction=1.5)
    with pytest.raises(ValueError):
        make_kernel(mem_fraction=-0.1)
    with pytest.raises(ValueError):
        make_kernel(gpu_affinity=0.0)
    with pytest.raises(ValueError):
        make_kernel(work_s=0.0)


def test_amdahl_limits():
    assert km.amdahl_speedup(1, 0.9) == pytest.approx(1.0)
    assert km.amdahl_speedup(4, 0.0) == pytest.approx(1.0)  # serial kernel
    assert km.amdahl_speedup(4, 1.0) == pytest.approx(4.0)  # perfect scaling
    # 90% parallel at 4 threads: 1/(0.1+0.225)
    assert km.amdahl_speedup(4, 0.9) == pytest.approx(1 / 0.325)


def test_amdahl_monotone_in_threads():
    sp = [km.amdahl_speedup(n, 0.95) for n in range(1, 5)]
    assert sp == sorted(sp)


def test_bandwidth_factor_saturates():
    bw = [km.memory_bandwidth_factor(n) for n in range(1, 5)]
    assert bw[0] == pytest.approx(1.0)
    assert bw == sorted(bw)  # monotone...
    gains = np.diff(bw)
    assert all(gains[i] >= gains[i + 1] for i in range(len(gains) - 1))  # ...concave
    assert bw[-1] < 4.0  # strictly sub-linear


def test_invalid_thread_counts():
    with pytest.raises(ValueError):
        km.amdahl_speedup(0, 0.5)
    with pytest.raises(ValueError):
        km.memory_bandwidth_factor(0)


def test_cpu_time_decreases_with_frequency_for_compute_kernel():
    k = make_kernel(mem_fraction=0.05)
    times = [km.cpu_time_s(k, f, 1) for f in CPU_FREQS_GHZ]
    assert times == sorted(times, reverse=True)
    # Nearly ideal frequency scaling.
    assert times[0] / times[-1] == pytest.approx(3.7 / 1.4, rel=0.1)


def test_memory_bound_kernel_nearly_frequency_insensitive():
    k = make_kernel(mem_fraction=0.9)
    t_low = km.cpu_time_s(k, 1.4, 4)
    t_high = km.cpu_time_s(k, 3.7, 4)
    assert t_low / t_high < 1.3  # far from the 2.64x frequency ratio


def test_cpu_time_decreases_with_threads():
    k = make_kernel(parallel_fraction=0.95, mem_fraction=0.3)
    times = [km.cpu_time_s(k, 2.4, n) for n in range(1, 5)]
    assert times == sorted(times, reverse=True)


def test_serial_kernel_ignores_threads():
    k = make_kernel(parallel_fraction=0.0, mem_fraction=0.0)
    assert km.cpu_time_s(k, 2.4, 1) == pytest.approx(km.cpu_time_s(k, 2.4, 4))


def test_reference_config_time_equals_work():
    k = make_kernel(mem_fraction=0.0)
    assert km.cpu_time_s(k, 3.7, 1) == pytest.approx(k.work_s)


def test_gpu_time_decreases_with_gpu_frequency():
    k = make_kernel()
    times = [km.gpu_time_s(k, g, 1.4) for g in GPU_FREQS_GHZ]
    assert times == sorted(times, reverse=True)


def test_gpu_memory_bound_flattens_frequency_scaling():
    flat = make_kernel(gpu_mem_fraction=0.9)
    steep = make_kernel(gpu_mem_fraction=0.05)

    def ratio(k):
        return km.gpu_time_s(k, 0.311, 3.7) / km.gpu_time_s(k, 0.819, 3.7)

    assert ratio(steep) > ratio(flat)
    assert ratio(steep) == pytest.approx(0.819 / 0.311, rel=0.15)


def test_launch_overhead_scales_with_host_frequency():
    k = make_kernel(launch_overhead_s=0.5, gpu_affinity=10.0)
    t_slow = km.gpu_time_s(k, 0.819, 1.4)
    t_fast = km.gpu_time_s(k, 0.819, 3.7)
    assert t_slow > t_fast  # Table I: GPU rows differ by CPU frequency
    overhead_delta = 0.5 * (3.7 / 1.4) - 0.5
    assert t_slow - t_fast == pytest.approx(overhead_delta, rel=1e-9)


def test_gpu_affinity_divides_device_time():
    fast = make_kernel(gpu_affinity=8.0, launch_overhead_s=0.0)
    slow = make_kernel(gpu_affinity=0.5, launch_overhead_s=0.0)
    assert km.gpu_time_s(slow, 0.819, 3.7) / km.gpu_time_s(fast, 0.819, 3.7) == (
        pytest.approx(16.0)
    )


def test_true_time_dispatches_by_device():
    k = make_kernel()
    c_cpu = Configuration.cpu(2.4, 2)
    c_gpu = Configuration.gpu(0.649, 2.4)
    assert km.true_time_s(k, c_cpu) == pytest.approx(km.cpu_time_s(k, 2.4, 2))
    assert km.true_time_s(k, c_gpu) == pytest.approx(km.gpu_time_s(k, 0.649, 2.4))


def test_gpu_busy_fraction_bounds():
    k = make_kernel(gpu_mem_fraction=0.6)
    for g in GPU_FREQS_GHZ:
        b = km.gpu_busy_fraction(k, g)
        assert 0.0 < b <= 1.0
    # Higher frequency -> more stalling -> lower busy fraction.
    assert km.gpu_busy_fraction(k, 0.311) > km.gpu_busy_fraction(k, 0.819)


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=0.99),
    st.integers(min_value=1, max_value=4),
)
def test_property_cpu_time_positive_and_freq_monotone(p, beta, n):
    k = make_kernel(parallel_fraction=p, mem_fraction=beta)
    times = [km.cpu_time_s(k, f, n) for f in CPU_FREQS_GHZ]
    assert all(t > 0 for t in times)
    assert all(times[i] >= times[i + 1] - 1e-12 for i in range(len(times) - 1))


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=20.0),
    st.floats(min_value=0.0, max_value=0.99),
)
def test_property_gpu_time_positive_and_monotone(aff, beta_g):
    k = make_kernel(gpu_affinity=aff, gpu_mem_fraction=beta_g)
    times = [km.gpu_time_s(k, g, 2.4) for g in GPU_FREQS_GHZ]
    assert all(t > 0 for t in times)
    assert all(times[i] >= times[i + 1] - 1e-12 for i in range(len(times) - 1))
