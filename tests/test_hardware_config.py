"""Tests for repro.hardware.pstates and repro.hardware.config."""

import pytest

from repro.hardware import (
    CPU_FREQS_GHZ,
    GPU_FREQS_GHZ,
    N_CORES,
    Configuration,
    ConfigSpace,
    Device,
)
from repro.hardware import pstates


def test_pstate_tables_match_paper():
    # Six software-visible CPU P-states, 1.4 to 3.7 GHz (Section IV-A).
    assert len(CPU_FREQS_GHZ) == 6
    assert CPU_FREQS_GHZ[0] == 1.4 and CPU_FREQS_GHZ[-1] == 3.7
    # Three effective GPU P-states: 311, 649, 819 MHz.
    assert GPU_FREQS_GHZ == (0.311, 0.649, 0.819)
    assert N_CORES == 4


def test_pstate_tables_ascending():
    assert list(CPU_FREQS_GHZ) == sorted(CPU_FREQS_GHZ)
    assert list(GPU_FREQS_GHZ) == sorted(GPU_FREQS_GHZ)


def test_voltage_monotone_in_frequency():
    volts = [pstates.cpu_voltage(f) for f in CPU_FREQS_GHZ]
    assert volts == sorted(volts)
    gvolts = [pstates.gpu_voltage(f) for f in GPU_FREQS_GHZ]
    assert gvolts == sorted(gvolts)


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        pstates.cpu_voltage(2.0)
    with pytest.raises(ValueError):
        pstates.gpu_voltage(0.5)
    with pytest.raises(ValueError):
        pstates.cpu_pstate_index(9.9)


def test_pstate_index_roundtrip():
    for i, f in enumerate(CPU_FREQS_GHZ):
        assert pstates.cpu_pstate_index(f) == i
    for i, f in enumerate(GPU_FREQS_GHZ):
        assert pstates.gpu_pstate_index(f) == i


def test_configuration_constructors():
    c = Configuration.cpu(2.4, 3)
    assert c.device is Device.CPU
    assert c.n_threads == 3
    assert c.gpu_freq_ghz == pytest.approx(pstates.GPU_MIN_FREQ_GHZ)

    g = Configuration.gpu(0.649, 1.9)
    assert g.device is Device.GPU
    assert g.n_threads == 1
    assert g.is_gpu


def test_configuration_validation():
    with pytest.raises(ValueError):
        Configuration.cpu(2.4, 0)
    with pytest.raises(ValueError):
        Configuration.cpu(2.4, 5)
    with pytest.raises(ValueError):
        Configuration.cpu(2.0, 2)  # not a P-state
    with pytest.raises(ValueError):
        Configuration(
            device=Device.GPU, cpu_freq_ghz=1.4, n_threads=2, gpu_freq_ghz=0.819
        )
    with pytest.raises(ValueError):
        Configuration(
            device=Device.CPU, cpu_freq_ghz=1.4, n_threads=2, gpu_freq_ghz=0.819
        )


def test_configuration_hashable_and_ordered():
    a = Configuration.cpu(1.4, 1)
    b = Configuration.cpu(1.4, 2)
    assert a < b
    assert len({a, b, Configuration.cpu(1.4, 1)}) == 2


def test_labels():
    assert "x3" in Configuration.cpu(2.4, 3).label()
    assert "649" in Configuration.gpu(0.649, 1.4).label()


def test_config_space_size_and_split():
    space = ConfigSpace()
    assert len(space) == 42  # 6*4 CPU + 3*6 GPU
    assert len(space.cpu_configs()) == 24
    assert len(space.gpu_configs()) == 18
    assert len(space.for_device(Device.CPU)) == 24


def test_config_space_membership_and_index():
    space = ConfigSpace()
    cfg = Configuration.gpu(0.819, 3.7)
    assert cfg in space
    assert space[space.index(cfg)] == cfg
    for i, c in enumerate(space):
        assert space.index(c) == i


def test_config_space_deterministic_order():
    s1, s2 = ConfigSpace(), ConfigSpace()
    assert list(s1) == list(s2)
    # CPU configs come first.
    assert not s1[0].is_gpu and s1[len(s1) - 1].is_gpu


def test_config_space_index_rejects_foreign():
    space = ConfigSpace()
    with pytest.raises(ValueError):
        # Valid Configuration object but built differently; same values
        # are equal, so construct an impossible one via direct check:
        space.index(None)  # type: ignore[arg-type]
