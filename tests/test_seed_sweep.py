"""Seed-sweep smoke test: cross-validation invariants across seeds.

``run_loocv`` must uphold its structural invariants for *any* profiling
seed, not just the golden-record seed 0:

* the oracle column is exactly cap-compliant (it is defined as the best
  *truly* feasible configuration, judged with the shared
  :data:`repro.constants.CAP_EPSILON` tolerance);
* no under-limit record outperforms the oracle — the oracle maximizes
  true performance over the cap-feasible set, so beating it would mean
  the harness judged something outside ground truth;
* every record is structurally sound (positive measurements, known
  method, non-negative online-iteration counts).

The sweep runs on every registered hardware backend, not just Trinity:
the invariants are properties of the evaluation harness and must hold
regardless of which machine model sits underneath.
"""

from __future__ import annotations

import math

import pytest

from repro.constants import CAP_EPSILON, respects_cap
from repro.evaluation import run_loocv

SEEDS = range(5)
BACKENDS = ("trinity", "biglittle", "mpsoc")
CASES = [(s, b) for b in BACKENDS for s in SEEDS]


@pytest.fixture(
    scope="module",
    params=CASES,
    ids=[f"{b}-seed{s}" for s, b in CASES],
)
def report(request):
    seed, backend = request.param
    return run_loocv(seed=seed, backend=backend)


def test_records_exist(report):
    assert len(report.records) > 0


def test_oracle_respects_cap_everywhere(report):
    for r in report.records:
        assert respects_cap(r.oracle_power_w, r.power_cap_w)


def test_no_method_beats_the_oracle_under_limit(report):
    for r in report.records:
        if r.under_limit:
            assert r.performance <= r.oracle_performance * (1.0 + CAP_EPSILON)


def test_records_are_structurally_sound(report):
    for r in report.records:
        assert math.isfinite(r.performance) and r.performance > 0
        assert math.isfinite(r.power_w) and r.power_w > 0
        assert math.isfinite(r.oracle_performance) and r.oracle_performance > 0
        assert r.online_runs >= 0
        assert r.method
        assert r.kernel_uid
