"""Tests for prediction uncertainty and risk-averse scheduling (paper §VI)."""

import numpy as np
import pytest

from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    Scheduler,
    train_model,
)
from repro.hardware import TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.stats import fit_ols
from repro.workloads import build_suite


class TestOLSPredictionStd:
    def test_noiseless_fit_gives_zero_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        y = 1.0 + X @ np.array([2.0, -1.0])
        model = fit_ols(X, y)
        std = model.predict_std(X[:5])
        np.testing.assert_allclose(std, 0.0, atol=1e-6)

    def test_noisy_fit_std_near_noise_level(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 2))
        y = X @ np.array([1.0, 1.0]) + rng.normal(scale=0.5, size=500)
        model = fit_ols(X, y)
        std = model.predict_std(np.zeros((1, 2)))
        assert std[0] == pytest.approx(0.5, rel=0.15)

    def test_extrapolation_increases_std(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 1))
        y = 2.0 * X[:, 0] + rng.normal(scale=0.3, size=50)
        model = fit_ols(X, y)
        near = model.predict_std(np.array([[0.0]]))[0]
        far = model.predict_std(np.array([[25.0]]))[0]
        assert far > near

    def test_zero_dof_gives_nan(self):
        # Two points, two parameters (slope+intercept): no residual dof.
        model = fit_ols(np.array([[1.0], [2.0]]), np.array([1.0, 2.0]))
        assert np.all(np.isnan(model.predict_std(np.array([[1.5]]))))

    def test_width_check(self):
        model = fit_ols(np.arange(12, dtype=float).reshape(6, 2), np.arange(6.0))
        with pytest.raises(ValueError):
            model.predict_std(np.zeros((1, 5)))


@pytest.fixture(scope="module")
def setup():
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_model(library, train)
    kernel = suite.get("LU/Small/LUDecomposition")
    cpu_m = apu.run(kernel, CPU_SAMPLE)
    gpu_m = apu.run(kernel, GPU_SAMPLE)
    return apu, model, kernel, cpu_m, gpu_m


class TestPredictionUncertainty:
    def test_uncertainty_absent_by_default(self, setup):
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m)
        assert pred.uncertainties is None

    def test_uncertainty_covers_space(self, setup):
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        assert set(pred.uncertainties) == set(pred.predictions)
        for pw_std, pf_std in pred.uncertainties.values():
            assert pw_std >= 0 and pf_std >= 0
            assert np.isfinite(pw_std) and np.isfinite(pf_std)

    def test_uncertainty_magnitudes_sane(self, setup):
        """Power std should be watts-scale small; perf std a fraction of
        the predicted performance."""
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        for cfg, (pw, pf) in pred.predictions.items():
            pw_std, pf_std = pred.uncertainties[cfg]
            assert pw_std < 0.3 * pw
            assert pf_std < 1.5 * pf

    def test_mismatched_uncertainty_keys_rejected(self, setup):
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        from repro.core import KernelPrediction

        bad = dict(list(pred.uncertainties.items())[:-1])
        with pytest.raises(ValueError):
            KernelPrediction(
                kernel_uid=pred.kernel_uid,
                cluster=pred.cluster,
                predictions=pred.predictions,
                cpu_sample=cpu_m,
                gpu_sample=gpu_m,
                uncertainties=bad,
            )


class TestRiskAverseScheduling:
    def test_requires_uncertainty(self, setup):
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m)
        with pytest.raises(ValueError):
            Scheduler().select(pred, 20.0, risk_averse=True)

    def test_risk_averse_is_no_bolder(self, setup):
        """Risk-averse feasibility (power upper bound) never accepts a
        configuration the plain selection would call infeasible."""
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        sched = Scheduler()
        for cap in (14.0, 18.0, 24.0, 30.0):
            plain = sched.select(pred, cap)
            averse = sched.select(pred, cap, risk_averse=True, confidence_z=2.0)
            if averse.predicted_feasible:
                assert averse.predicted_power_w <= cap

    def test_risk_averse_reduces_true_violations(self, setup):
        """Across the oracle-cap protocol for the kernel, risk-averse
        selection should violate true power caps no more often."""
        apu, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        sched = Scheduler()
        caps = np.linspace(12.0, 32.0, 15)

        def violations(**kw):
            count = 0
            for cap in caps:
                cfg = sched.select(pred, float(cap), **kw).config
                if apu.true_total_power_w(kernel, cfg) > cap:
                    count += 1
            return count

        assert violations(risk_averse=True, confidence_z=2.0) <= violations()

    def test_confidence_z_validation(self, setup):
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        with pytest.raises(ValueError):
            Scheduler().select(pred, 20.0, risk_averse=True, confidence_z=-1.0)

    def test_zero_z_equals_plain(self, setup):
        _, model, kernel, cpu_m, gpu_m = setup
        pred = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        sched = Scheduler()
        for cap in (15.0, 22.0, 28.0):
            a = sched.select(pred, cap)
            b = sched.select(pred, cap, risk_averse=True, confidence_z=0.0)
            assert a.config == b.config
