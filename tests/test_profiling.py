"""Tests for the profiling substrate (sampler, records, library, io)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Configuration, Measurement, NoiseModel, TrinityAPU
from repro.profiling import (
    ProfileDatabase,
    ProfilingLibrary,
    PowerSampler,
    database_from_json,
    database_to_json,
    load_database,
    save_database,
)
from repro.workloads import build_suite
from tests.conftest import make_kernel


class TestPowerSampler:
    def test_estimate_close_to_truth_for_long_kernels(self):
        sampler = PowerSampler()
        rng = np.random.default_rng(0)
        est = sampler.sample(20.0, duration_s=2.0, rng=rng)
        assert est.mean_power_w == pytest.approx(20.0, rel=0.05)
        assert est.energy_j == pytest.approx(est.mean_power_w * 2.0)

    def test_sample_count_matches_rate(self):
        sampler = PowerSampler(rate_hz=1000.0)
        est = sampler.sample(10.0, 0.5, np.random.default_rng(0))
        assert est.n_samples == 501

    def test_short_kernels_still_get_two_samples(self):
        sampler = PowerSampler(rate_hz=1000.0)
        est = sampler.sample(10.0, 1e-4, np.random.default_rng(0))
        assert est.n_samples == 2

    def test_short_kernels_noisier_than_long(self):
        sampler = PowerSampler()

        def spread(duration, seed0):
            ests = [
                sampler.sample(20.0, duration, np.random.default_rng(s)).mean_power_w
                for s in range(seed0, seed0 + 80)
            ]
            return np.std(ests)

        assert spread(0.005, 0) > spread(2.0, 100)

    def test_overhead_below_ten_percent_at_1khz(self):
        # Paper Section IV-C: sampling overhead < 10% in all cases.
        sampler = PowerSampler()
        for duration in (0.01, 0.1, 1.0, 10.0):
            est = sampler.sample(20.0, duration, np.random.default_rng(0))
            assert est.overhead_s / duration < 0.10

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PowerSampler(rate_hz=0)
        with pytest.raises(ValueError):
            PowerSampler(ar_coeff=1.0)
        with pytest.raises(ValueError):
            PowerSampler(sample_noise_rel=0.9)
        with pytest.raises(ValueError):
            PowerSampler(overhead_per_sample_s=-1.0)

    def test_input_validation(self):
        sampler = PowerSampler()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sampler.sample(0.0, 1.0, rng)
        with pytest.raises(ValueError):
            sampler.sample(10.0, 0.0, rng)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=5.0, max_value=60.0),
        st.floats(min_value=0.001, max_value=5.0),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_property_estimate_positive_and_bounded(self, power, duration, seed):
        sampler = PowerSampler()
        est = sampler.sample(power, duration, np.random.default_rng(seed))
        assert est.mean_power_w > 0
        assert abs(est.mean_power_w - power) / power < 0.5


class TestProfileDatabase:
    def _measurement(self, cfg=None):
        return Measurement(
            config=cfg or Configuration.cpu(2.4, 2),
            time_s=0.5,
            cpu_plane_w=10.0,
            nbgpu_plane_w=5.0,
        )

    def test_record_assigns_iterations(self):
        db = ProfileDatabase()
        p0 = db.record("k1", self._measurement())
        p1 = db.record("k1", self._measurement())
        p2 = db.record("k2", self._measurement())
        assert (p0.iteration, p1.iteration, p2.iteration) == (0, 1, 0)
        assert db.iterations("k1") == 2
        assert db.iterations("unknown") == 0

    def test_lookup_returns_most_recent(self):
        db = ProfileDatabase()
        cfg = Configuration.cpu(1.4, 1)
        db.record("k", self._measurement(cfg))
        newer = db.record("k", self._measurement(cfg))
        assert db.lookup("k", cfg) is newer
        assert db.lookup("k", Configuration.cpu(3.7, 4)) is None

    def test_kernels_in_first_seen_order(self):
        db = ProfileDatabase()
        for uid in ("b", "a", "b", "c"):
            db.record(uid, self._measurement())
        assert db.kernels() == ["b", "a", "c"]

    def test_for_kernel_filters(self):
        db = ProfileDatabase()
        db.record("a", self._measurement())
        db.record("b", self._measurement())
        db.record("a", self._measurement())
        assert len(db.for_kernel("a")) == 2
        assert len(db) == 3

    def test_profile_validation(self):
        db = ProfileDatabase()
        with pytest.raises(ValueError):
            db.record("", self._measurement())


class TestProfilingLibrary:
    def _library(self, seed=0):
        apu = TrinityAPU(noise=NoiseModel.exact(), seed=seed)
        return ProfilingLibrary(apu, seed=seed)

    def test_profile_records_into_database(self):
        lib = self._library()
        k = build_suite().get("CoMD/Small/LJForce")
        p = lib.profile(k, Configuration.cpu(2.4, 4))
        assert len(lib.database) == 1
        assert p.kernel_uid == k.uid
        assert p.measurement.total_power_w > 0

    def test_power_estimate_near_ground_truth(self):
        lib = self._library()
        k = build_suite().get("SMC/Ref/ChemTerm")
        cfg = Configuration.gpu(0.819, 3.7)
        p = lib.profile(k, cfg)
        truth = lib.apu.true_total_power_w(k, cfg)
        assert p.measurement.total_power_w == pytest.approx(truth, rel=0.1)

    def test_measured_time_includes_overhead(self):
        lib = self._library()
        k = build_suite().get("CoMD/Small/LJForce")
        cfg = Configuration.cpu(3.7, 4)
        p = lib.profile(k, cfg)
        assert p.measurement.time_s > lib.apu.true_time_s(k, cfg)
        assert p.overhead_fraction < 0.10  # paper's bound

    def test_raw_characteristics_need_uid(self):
        lib = self._library()
        with pytest.raises(ValueError):
            lib.profile(make_kernel(), Configuration.cpu(1.4, 1))
        p = lib.profile(
            make_kernel(), Configuration.cpu(1.4, 1), kernel_uid="raw/k"
        )
        assert p.kernel_uid == "raw/k"

    def test_profile_all_configs(self):
        lib = self._library()
        k = build_suite().get("LU/Small/LUDecomposition")
        profiles = lib.profile_all_configs(k)
        assert len(profiles) == 42
        assert lib.database.iterations(k.uid) == 42

    def test_deterministic_given_seed(self):
        k = build_suite().get("CoMD/Small/LJForce")
        cfg = Configuration.cpu(2.4, 2)
        a = self._library(seed=5).profile(k, cfg)
        b = self._library(seed=5).profile(k, cfg)
        assert a.measurement.time_s == b.measurement.time_s
        assert a.measurement.cpu_plane_w == b.measurement.cpu_plane_w


class TestIO:
    def test_json_roundtrip(self, tmp_path):
        lib = ProfilingLibrary(TrinityAPU(seed=0), seed=0)
        suite = build_suite()
        for cfg in (Configuration.cpu(1.4, 1), Configuration.gpu(0.819, 3.7)):
            lib.profile(suite.get("LU/Small/LUDecomposition"), cfg)
        text = database_to_json(lib.database)
        restored = database_from_json(text)
        assert len(restored) == len(lib.database)
        for a, b in zip(lib.database, restored):
            assert a.kernel_uid == b.kernel_uid
            assert a.config == b.config
            assert a.measurement.time_s == pytest.approx(b.measurement.time_s)
            assert dict(a.measurement.counters) == pytest.approx(
                dict(b.measurement.counters)
            )

    def test_file_roundtrip(self, tmp_path):
        lib = ProfilingLibrary(TrinityAPU(seed=1), seed=1)
        lib.profile(
            build_suite().get("SMC/Ref/HypTerm"), Configuration.cpu(2.9, 3)
        )
        path = tmp_path / "profiles.json"
        save_database(lib.database, path)
        restored = load_database(path)
        assert len(restored) == 1
        assert restored.kernels() == ["SMC/Ref/HypTerm"]

    def test_version_check(self):
        with pytest.raises(ValueError):
            database_from_json('{"version": 99, "profiles": []}')
