"""Tests for the assembled AdaptiveModel, classifier, predictor, scheduler."""

import numpy as np
import pytest

from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    AdaptiveModel,
    ClusterClassifier,
    OnlinePredictor,
    Scheduler,
    characterize_kernel,
    sample_features,
    train_model,
)
from repro.core.classifier import SAMPLE_FEATURE_NAMES
from repro.hardware import NoiseModel, TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def setup():
    """A trained model (LU held out) plus the shared machinery."""
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_model(library, train)
    return apu, library, suite, model


class TestClassifier:
    def test_feature_vector_shape(self, setup):
        apu, library, suite, model = setup
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m = apu.run(k, CPU_SAMPLE)
        gpu_m = apu.run(k, GPU_SAMPLE)
        feats = sample_features(cpu_m, gpu_m)
        assert feats.shape == (len(SAMPLE_FEATURE_NAMES),)
        assert np.all(np.isfinite(feats))

    def test_unfitted_raises(self, setup):
        apu, library, suite, model = setup
        k = suite.get("LU/Small/LUDecomposition")
        clf = ClusterClassifier()
        with pytest.raises(RuntimeError):
            clf.predict(apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE))
        with pytest.raises(RuntimeError):
            clf.render()

    def test_fit_validation(self, setup):
        apu, library, suite, model = setup
        lib = ProfilingLibrary(TrinityAPU(noise=NoiseModel.exact()), seed=0)
        c = characterize_kernel(lib, suite.get("LU/Small/LUDecomposition"))
        clf = ClusterClassifier()
        with pytest.raises(ValueError):
            clf.fit([c], [0, 1])
        with pytest.raises(ValueError):
            clf.fit([], [])

    def test_training_accuracy_reasonable(self, setup):
        """The tree should recover most training kernels' clusters from
        sample-run features alone."""
        apu, library, suite, model = setup
        lib = ProfilingLibrary(TrinityAPU(noise=NoiseModel.exact(), seed=3), seed=3)
        train = [k for k in suite if k.benchmark != "LU"]
        chars = [characterize_kernel(lib, k) for k in train]
        labels = [model.clustering.labels[c.kernel_uid] for c in chars]
        clf = ClusterClassifier().fit(chars, labels)
        correct = sum(
            clf.predict(c.cpu_sample, c.gpu_sample) == lab
            for c, lab in zip(chars, labels)
        )
        assert correct / len(chars) > 0.7

    def test_render_is_figure3_style(self, setup):
        _, _, _, model = setup
        text = model.classifier.render()
        assert "cluster" in text
        assert "<=" in text


class TestAdaptiveModel:
    def test_training_produces_models_per_cluster(self, setup):
        _, _, _, model = setup
        assert set(model.cluster_models) == set(
            range(model.clustering.n_clusters)
        ) & set(model.cluster_models)
        for cluster_id, sz in enumerate(model.clustering.sizes()):
            if sz > 0:
                assert cluster_id in model.cluster_models

    def test_train_rejects_empty_and_duplicates(self, setup):
        apu, library, suite, model = setup
        with pytest.raises(ValueError):
            AdaptiveModel.train([])
        lib = ProfilingLibrary(TrinityAPU(noise=NoiseModel.exact()), seed=0)
        c = characterize_kernel(lib, suite.get("LU/Small/LUDecomposition"))
        with pytest.raises(ValueError):
            AdaptiveModel.train([c, c], n_clusters=1)

    def test_predict_kernel_covers_space(self, setup):
        apu, library, suite, model = setup
        k = suite.get("LU/Medium/LUDecomposition")
        pred = model.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE), kernel_uid=k.uid
        )
        assert len(pred.predictions) == 42
        assert pred.kernel_uid == k.uid
        assert 0 <= pred.cluster < model.clustering.n_clusters
        for pw, pf in pred.predictions.values():
            assert pw > 0 and pf > 0

    def test_predicted_frontier_nonempty(self, setup):
        apu, library, suite, model = setup
        k = suite.get("LU/Small/LUDecomposition")
        pred = model.predict_kernel(apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE))
        f = pred.predicted_frontier()
        assert len(f) >= 3
        assert f.min_power_w < 20.0  # frontier reaches down to CPU configs

    def test_held_out_prediction_accuracy(self, setup):
        """Leave-LU-out: predictions for LU kernels stay within loose
        relative-error bounds (this is the paper's central claim)."""
        apu, library, suite, model = setup
        predictor = OnlinePredictor(model, library)
        for uid in ("LU/Small/LUDecomposition", "LU/Large/LUDecomposition"):
            k = suite.get(uid)
            pred = predictor.predict(k)
            perr, terr = [], []
            for cfg in apu.config_space:
                pw, pf = pred.predictions[cfg]
                perr.append(
                    abs(pw - apu.true_total_power_w(k, cfg))
                    / apu.true_total_power_w(k, cfg)
                )
                terr.append(
                    abs(pf - apu.true_performance(k, cfg))
                    / apu.true_performance(k, cfg)
                )
            assert np.mean(perr) < 0.10
            assert np.mean(terr) < 0.35


class TestOnlinePredictor:
    def test_sample_runs_recorded_in_history(self, setup):
        apu, _, suite, model = setup
        lib = ProfilingLibrary(apu, seed=9)
        predictor = OnlinePredictor(model, lib)
        k = suite.get("LU/Small/LUDecomposition")
        predictor.predict(k)
        assert lib.database.iterations(k.uid) == 2
        profiles = lib.database.for_kernel(k.uid)
        assert profiles[0].config == CPU_SAMPLE
        assert profiles[1].config == GPU_SAMPLE


class TestScheduler:
    def _prediction(self, setup, uid="LU/Small/LUDecomposition"):
        apu, library, suite, model = setup
        k = suite.get(uid)
        return model.predict_kernel(
            apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE), kernel_uid=k.uid
        )

    def test_select_respects_predicted_cap(self, setup):
        pred = self._prediction(setup)
        decision = Scheduler().select(pred, power_cap_w=15.0)
        assert decision.predicted_power_w <= 15.0
        assert decision.predicted_feasible

    def test_select_maximizes_predicted_perf(self, setup):
        pred = self._prediction(setup)
        decision = Scheduler().select(pred, power_cap_w=25.0)
        feasible = [
            pf for pw, pf in pred.predictions.values() if pw <= 25.0
        ]
        assert decision.predicted_performance == pytest.approx(max(feasible))

    def test_unreachable_cap_falls_back_to_min_power(self, setup):
        pred = self._prediction(setup)
        decision = Scheduler().select(pred, power_cap_w=1.0)
        assert not decision.predicted_feasible
        assert decision.predicted_power_w == pytest.approx(
            min(pw for pw, _ in pred.predictions.values())
        )

    def test_goals_differ(self, setup):
        pred = self._prediction(setup)
        perf = Scheduler("performance").select(pred, power_cap_w=40.0)
        energy = Scheduler("energy").select(pred, power_cap_w=40.0)
        # Energy goal never picks a higher-energy config than the perf goal.
        e_perf = perf.predicted_power_w / perf.predicted_performance
        e_energy = energy.predicted_power_w / energy.predicted_performance
        assert e_energy <= e_perf + 1e-9

    def test_edp_goal_valid(self, setup):
        pred = self._prediction(setup)
        decision = Scheduler("edp").select(pred, power_cap_w=40.0)
        assert decision.predicted_feasible

    def test_risk_margin_tightens_cap(self, setup):
        pred = self._prediction(setup)
        loose = Scheduler().select(pred, power_cap_w=25.0)
        tight = Scheduler().select(pred, power_cap_w=25.0, risk_margin=0.2)
        assert tight.predicted_power_w <= 25.0 * 0.8 + 1e-9
        assert tight.predicted_performance <= loose.predicted_performance + 1e-9

    def test_invalid_arguments(self, setup):
        pred = self._prediction(setup)
        with pytest.raises(ValueError):
            Scheduler("speed")
        with pytest.raises(ValueError):
            Scheduler().select(pred, power_cap_w=0.0)
        with pytest.raises(ValueError):
            Scheduler().select(pred, power_cap_w=10.0, risk_margin=1.0)
