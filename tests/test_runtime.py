"""Tests for the application runtime (repro.runtime)."""

import pytest

from repro.core import CPU_SAMPLE, GPU_SAMPLE, train_model
from repro.hardware import Configuration, TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.runtime import (
    AdaptiveRuntime,
    Application,
    ApplicationTrace,
    KernelExecution,
    OracleRuntime,
    StaticRuntime,
)
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def app(suite):
    return Application.from_suite(suite, "LU Small")


@pytest.fixture(scope="module")
def comd_app(suite):
    return Application.from_suite(suite, "CoMD Small")


@pytest.fixture(scope="module")
def trained(suite):
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    train = [k for k in suite if k.benchmark not in ("LU", "CoMD")]
    model = train_model(library, train)
    return apu, model


class TestApplication:
    def test_from_suite(self, suite):
        app = Application.from_suite(suite, "LULESH Small")
        assert len(app) == 20
        assert app.name == "LULESH Small"

    def test_validation(self, suite):
        k = suite.get("LU/Small/LUDecomposition")
        with pytest.raises(ValueError):
            Application(name="", kernels=(k,))
        with pytest.raises(ValueError):
            Application(name="x", kernels=())
        with pytest.raises(ValueError):
            Application(name="x", kernels=(k, k))


class TestTrace:
    def _exec(self, t=0, power=10.0, time=1.0, cap=20.0, uid="k"):
        return KernelExecution(
            timestep=t,
            kernel_uid=uid,
            config=Configuration.cpu(1.4, 1),
            time_s=time,
            power_w=power,
            power_cap_w=cap,
            phase="scheduled",
        )

    def test_aggregates(self):
        trace = ApplicationTrace(application="a")
        trace.record(self._exec(power=10.0, time=2.0))
        trace.record(self._exec(t=1, power=30.0, time=1.0, cap=20.0))
        assert trace.total_time_s == pytest.approx(3.0)
        assert trace.total_energy_j == pytest.approx(50.0)
        assert trace.mean_power_w == pytest.approx(50.0 / 3.0)
        assert trace.violation_rate == pytest.approx(0.5)
        assert trace.violation_time_fraction() == pytest.approx(1.0 / 3.0)
        assert trace.timesteps() == 2

    def test_per_kernel_time_and_lookup(self):
        trace = ApplicationTrace(application="a")
        trace.record(self._exec(uid="x", time=1.0))
        trace.record(self._exec(uid="x", time=2.0, t=1))
        trace.record(self._exec(uid="y", time=4.0, t=1))
        assert trace.per_kernel_time() == {"x": 3.0, "y": 4.0}
        assert len(trace.for_timestep(1)) == 2

    def test_empty_trace(self):
        trace = ApplicationTrace(application="a")
        assert trace.timesteps() == 0
        assert trace.violation_rate != trace.violation_rate  # NaN

    def test_speedup_and_summary(self):
        a = ApplicationTrace(application="a")
        a.record(self._exec(time=1.0))
        b = ApplicationTrace(application="b")
        b.record(self._exec(time=2.0))
        assert a.speedup_vs(b) == pytest.approx(2.0)
        assert "timesteps" in a.summary()

    def test_render_timeline(self):
        trace = ApplicationTrace(application="demo")
        trace.record(self._exec(t=0, power=10.0, time=1.0, cap=20.0))
        trace.record(self._exec(t=1, power=30.0, time=0.5, cap=20.0))
        text = trace.render_timeline(width=20)
        assert "demo timeline" in text
        assert "t0" in text and "t1" in text
        assert "!" in text  # the over-cap timestep is flagged
        assert "#" in text  # CPU time marker

    def test_render_timeline_empty(self):
        trace = ApplicationTrace(application="empty")
        assert "(empty trace)" in trace.render_timeline()

    def test_jsonl_round_trip(self, tmp_path):
        trace = ApplicationTrace(application="rt")
        trace.record(self._exec(t=0, power=10.0, time=1.0, uid="x"))
        trace.record(self._exec(t=1, power=30.0, time=0.5, uid="y"))
        gpu_exec = KernelExecution(
            timestep=1,
            kernel_uid="z",
            config=Configuration.gpu(0.649, 1.4),
            time_s=0.25,
            power_w=18.0,
            power_cap_w=20.0,
            phase="sample-gpu",
        )
        trace.record(gpu_exec)

        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = ApplicationTrace.from_jsonl(path)
        assert loaded.application == trace.application
        assert loaded.executions == trace.executions
        # Frozen dataclass equality covers configs; re-check aggregates.
        assert loaded.total_energy_j == pytest.approx(trace.total_energy_j)

    def test_jsonl_round_trip_via_file_object(self):
        import io

        trace = ApplicationTrace(application="rt")
        trace.record(self._exec())
        buf = io.StringIO()
        trace.to_jsonl(buf)
        buf.seek(0)
        loaded = ApplicationTrace.from_jsonl(buf)
        assert loaded.executions == trace.executions

    def test_from_jsonl_rejects_empty_and_headerless(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ApplicationTrace.from_jsonl(empty)
        headerless = tmp_path / "bad.jsonl"
        headerless.write_text('{"not_application": 1}\n')
        with pytest.raises(ValueError, match="header"):
            ApplicationTrace.from_jsonl(headerless)


class TestAdaptiveRuntime:
    def test_sample_protocol_then_scheduled(self, trained, app):
        apu, model = trained
        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=5))
        trace = runtime.run(app, n_timesteps=4, power_cap_w=22.0)
        phases = [e.phase for e in trace.executions]
        # One kernel in LU Small: timestep order is sample, sample, sched...
        assert phases == ["sample-cpu", "sample-gpu", "scheduled", "scheduled"]
        assert trace.executions[0].config == CPU_SAMPLE
        assert trace.executions[1].config == GPU_SAMPLE

    def test_scheduled_configs_respect_cap_mostly(self, trained, app):
        apu, model = trained
        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=6))
        trace = runtime.run(app, n_timesteps=10, power_cap_w=22.0)
        scheduled = [e for e in trace.executions if e.phase == "scheduled"]
        under = sum(e.under_cap for e in scheduled)
        assert under / len(scheduled) >= 0.7

    def test_dynamic_cap_changes_selection(self, trained, app):
        apu, model = trained

        def caps(t):
            return 14.0 if t % 2 == 0 else 30.0

        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=7))
        trace = runtime.run(app, n_timesteps=8, power_cap_w=caps)
        scheduled = [e for e in trace.executions if e.phase == "scheduled"]
        low = {e.config for e in scheduled if e.power_cap_w == 14.0}
        high = {e.config for e in scheduled if e.power_cap_w == 30.0}
        assert low != high  # the runtime adapts to the cap

    def test_prediction_cached_once_per_kernel(self, trained, comd_app):
        apu, model = trained
        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=8))
        runtime.run(comd_app, n_timesteps=5, power_cap_w=25.0)
        assert len(runtime._predictions) == len(comd_app)

    def test_multi_kernel_app_executes_all_kernels(self, trained, comd_app):
        apu, model = trained
        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=9))
        trace = runtime.run(comd_app, n_timesteps=3, power_cap_w=25.0)
        assert len(trace) == 3 * len(comd_app)
        assert set(trace.per_kernel_time()) == {k.uid for k in comd_app.kernels}

    def test_context_differentiation(self, trained, suite):
        """Paper §VI: the same kernel invoked from two contexts is
        sampled and scheduled independently."""
        apu, model = trained
        base = suite.get("LU/Small/LUDecomposition")
        app = Application(
            name="two-contexts",
            kernels=(base.with_context("solve"), base.with_context("refine")),
        )
        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=21))
        runtime.run(app, n_timesteps=3, power_cap_w=22.0)
        db = runtime.library.database
        assert db.iterations("LU/Small/LUDecomposition@solve") == 3
        assert db.iterations("LU/Small/LUDecomposition@refine") == 3
        assert len(runtime._predictions) == 2

    def test_risk_averse_mode(self, trained, app):
        apu, model = trained
        runtime = AdaptiveRuntime(
            model, ProfilingLibrary(apu, seed=10), risk_averse=True
        )
        trace = runtime.run(app, n_timesteps=5, power_cap_w=20.0)
        assert len(trace) == 5

    def test_frequency_limiter_mode_improves_compliance(self, trained, app):
        """Model+FL at application level: fewer over-cap invocations
        than the plain model runtime at a tight cap."""
        apu, model = trained
        cap = 18.0

        def violation_rate(fl):
            runtime = AdaptiveRuntime(
                model,
                ProfilingLibrary(apu, seed=30 + fl),
                frequency_limiter=bool(fl),
            )
            trace = runtime.run(app, n_timesteps=10, power_cap_w=cap)
            scheduled = [e for e in trace.executions if e.phase == "scheduled"]
            return sum(not e.under_cap for e in scheduled) / len(scheduled)

        assert violation_rate(1) <= violation_rate(0)

    def test_frequency_limiter_caches_per_cap(self, trained, app):
        apu, model = trained
        runtime = AdaptiveRuntime(
            model, ProfilingLibrary(apu, seed=33), frequency_limiter=True
        )
        runtime.run(app, n_timesteps=6, power_cap_w=18.0)
        # One limited entry per (kernel, cap).
        assert len(runtime._limited) == len(app)

    def test_invalid_arguments(self, trained, app):
        apu, model = trained
        runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=11))
        with pytest.raises(ValueError):
            runtime.run(app, n_timesteps=0, power_cap_w=20.0)
        with pytest.raises(ValueError):
            runtime.run(app, n_timesteps=2, power_cap_w=-5.0)


class TestBaselines:
    def test_static_runtime_never_changes_config(self, trained, app):
        apu, _ = trained
        cfg = Configuration.cpu(3.7, 4)
        runtime = StaticRuntime(ProfilingLibrary(apu, seed=12), cfg)
        trace = runtime.run(app, n_timesteps=4, power_cap_w=20.0)
        assert all(e.config == cfg for e in trace.executions)
        assert all(e.phase == "static" for e in trace.executions)

    def test_oracle_runtime_beats_adaptive_or_ties(self, trained, app):
        apu, model = trained
        cap = 22.0
        adaptive = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=13)).run(
            app, 10, cap
        )
        oracle = OracleRuntime(ProfilingLibrary(apu, seed=14)).run(app, 10, cap)
        # Oracle wall time is no worse than adaptive's (small tolerance
        # for measurement noise and the adaptive run's sample overhead).
        assert oracle.total_time_s <= adaptive.total_time_s * 1.05

    def test_adaptive_beats_static_under_cap(self, trained, app):
        """The headline application-level claim: adapting device and
        configuration under a cap beats a cap-blind static CPU run."""
        apu, model = trained
        cap = 22.0
        adaptive = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=15)).run(
            app, 12, cap
        )
        static = StaticRuntime(
            ProfilingLibrary(apu, seed=16), Configuration.cpu(1.4, 4)
        ).run(app, 12, cap)
        assert adaptive.speedup_vs(static) > 1.2
