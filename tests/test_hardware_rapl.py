"""Tests for repro.hardware.rapl (frequency limiter)."""

import pytest

from repro.hardware import (
    CPU_MIN_FREQ_GHZ,
    GPU_MIN_FREQ_GHZ,
    Configuration,
    Device,
    FrequencyLimiter,
)
from tests.conftest import make_kernel


def test_no_action_when_already_under_cap(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    start = Configuration.cpu(1.4, 1)
    res = fl.limit(kernel, start, power_cap_w=50.0)
    assert res.final_config == start
    assert res.met_cap
    assert res.steps == 0


def test_steps_down_cpu_until_under_cap(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    start = Configuration.cpu(3.7, 4)
    p_start = exact_apu.true_total_power_w(kernel, start)
    cap = p_start - 10.0
    res = fl.limit(kernel, start, cap)
    assert res.met_cap
    assert res.final_config.cpu_freq_ghz < 3.7
    assert res.final_config.n_threads == 4  # never touches thread count
    assert res.final_config.device is Device.CPU
    # Minimality: one step back up would violate the cap.
    assert res.steps >= 1
    prev_cfg, prev_power = res.trace[-2]
    assert prev_power > cap


def test_reports_failure_at_cpu_floor(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    res = fl.limit(kernel, Configuration.cpu(3.7, 4), power_cap_w=5.0)
    assert not res.met_cap
    assert res.final_config.cpu_freq_ghz == pytest.approx(CPU_MIN_FREQ_GHZ)


def test_gpu_limit_steps_gpu_then_host(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    start = Configuration.gpu(0.819, 3.7)
    # Cap below GPU floor with high host freq but above absolute GPU floor.
    floor = exact_apu.true_total_power_w(
        kernel, Configuration.gpu(GPU_MIN_FREQ_GHZ, CPU_MIN_FREQ_GHZ)
    )
    res = fl.limit(kernel, start, power_cap_w=floor + 0.5)
    assert res.met_cap
    assert res.final_config.device is Device.GPU
    assert res.final_config.gpu_freq_ghz == pytest.approx(GPU_MIN_FREQ_GHZ)


def test_gpu_limit_cannot_switch_device(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    res = fl.limit(kernel, Configuration.gpu(0.819, 3.7), power_cap_w=12.0)
    assert not res.met_cap  # GPU floor >> 12 W; limiter is stuck on GPU
    assert res.final_config.device is Device.GPU
    assert res.final_config.gpu_freq_ghz == pytest.approx(GPU_MIN_FREQ_GHZ)
    assert res.final_config.cpu_freq_ghz == pytest.approx(CPU_MIN_FREQ_GHZ)


def test_gpu_with_headroom_raises_host_frequency(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    res = fl.limit_gpu_with_headroom(kernel, power_cap_w=60.0)
    assert res.met_cap
    # Plenty of headroom: host CPU should end at maximum frequency.
    assert res.final_config.cpu_freq_ghz == pytest.approx(3.7)
    assert res.final_config.gpu_freq_ghz == pytest.approx(0.819)


def test_gpu_with_headroom_respects_tight_cap(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    floor_cfg = Configuration.gpu(GPU_MIN_FREQ_GHZ, CPU_MIN_FREQ_GHZ)
    floor = exact_apu.true_total_power_w(kernel, floor_cfg)
    res = fl.limit_gpu_with_headroom(kernel, power_cap_w=floor + 0.3)
    assert res.met_cap
    assert res.final_measurement.total_power_w <= floor + 0.3


def test_cpu_all_cores_policy(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    res = fl.limit_cpu_all_cores(kernel, power_cap_w=20.0)
    assert res.final_config.n_threads == 4
    assert res.final_config.device is Device.CPU


def test_trace_records_every_visit(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    res = fl.limit(kernel, Configuration.cpu(3.7, 4), power_cap_w=15.0)
    assert len(res.trace) == res.steps + 1
    assert res.trace[0][0] == Configuration.cpu(3.7, 4)
    # Power decreases monotonically as frequency steps down (no noise).
    powers = [p for _, p in res.trace]
    assert powers == sorted(powers, reverse=True)


def test_invalid_cap_rejected(exact_apu, kernel):
    fl = FrequencyLimiter(exact_apu)
    with pytest.raises(ValueError):
        fl.limit(kernel, Configuration.cpu(3.7, 4), power_cap_w=0.0)


def test_limiter_works_under_noise(noisy_apu, kernel):
    fl = FrequencyLimiter(noisy_apu)
    res = fl.limit_cpu_all_cores(kernel, power_cap_w=25.0)
    # With noise the limiter still converges and reports a real config.
    assert res.final_config in noisy_apu.config_space
    assert res.final_measurement.total_power_w > 0
