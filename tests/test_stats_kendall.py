"""Unit and property tests for repro.stats.kendall, cross-checked vs scipy."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import kendall_tau


def test_identical_orders_give_plus_one():
    assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)


def test_reversed_orders_give_minus_one():
    assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)


def test_single_swap():
    # One discordant pair out of 6: tau = (5 - 1) / 6.
    assert kendall_tau([1, 2, 3, 4], [2, 1, 3, 4]) == pytest.approx(4 / 6)


def test_too_short_returns_nan():
    assert np.isnan(kendall_tau([1], [1]))
    assert np.isnan(kendall_tau([], []))


def test_constant_sequence_tau_b_nan():
    assert np.isnan(kendall_tau([1, 1, 1], [1, 2, 3], variant="b"))


def test_tau_a_with_ties_differs_from_tau_b():
    x = [1, 1, 2, 3]
    y = [1, 2, 3, 4]
    tau_a = kendall_tau(x, y, variant="a")
    tau_b = kendall_tau(x, y, variant="b")
    assert abs(tau_b) >= abs(tau_a)  # tie correction shrinks the denominator


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError):
        kendall_tau([1, 2], [1, 2, 3])


def test_symmetry():
    x = [3, 1, 4, 1.5, 5]
    y = [2, 7, 1, 8, 2.5]
    assert kendall_tau(x, y) == pytest.approx(kendall_tau(y, x))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_matches_scipy_tau_b(xs, seed):
    rng = np.random.default_rng(seed)
    x = np.array(xs)
    y = rng.permutation(x)
    ours = kendall_tau(x, y, variant="b")
    theirs = scipy.stats.kendalltau(x, y).statistic
    if np.isnan(theirs):
        assert np.isnan(ours)
    else:
        assert ours == pytest.approx(theirs, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=20),
    st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=20),
)
def test_property_bounded(xs, ys):
    n = min(len(xs), len(ys))
    tau = kendall_tau(xs[:n], ys[:n], variant="a")
    assert np.isnan(tau) or -1.0 - 1e-12 <= tau <= 1.0 + 1e-12


@settings(max_examples=50, deadline=None)
@given(st.permutations(list(range(8))))
def test_property_permutation_self_and_negation(perm):
    """tau(x, x) == 1 and tau(x, -x) == -1 for tie-free sequences."""
    assert kendall_tau(perm, perm) == pytest.approx(1.0)
    negated = [-v for v in perm]
    assert kendall_tau(perm, negated) == pytest.approx(-1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.permutations(list(range(7))),
    st.permutations(list(range(7))),
)
def test_property_negating_one_argument_flips_sign(x, y):
    tau = kendall_tau(x, y)
    neg_y = [-v for v in y]
    assert kendall_tau(x, neg_y) == pytest.approx(-tau)
