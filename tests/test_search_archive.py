"""Tests for the deterministic ε-dominance archive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import FrontierPoint, ParetoFrontier
from repro.search import EpsilonArchive, demo_space, paper_space

from .conftest import make_kernel


@pytest.fixture(scope="module")
def space():
    return paper_space()


def _evaluated(space, kernel, seed, n):
    rng = np.random.default_rng(seed)
    g = space.sample_genomes(rng, n)
    rates, powers = space.evaluate(kernel, g)
    return g, powers, rates


def _exact_nondominated_mask(powers, rates):
    """O(n²) reference: point i is non-dominated iff no j has
    (power <= p_i, rate >= r_i) with at least one strict."""
    n = len(powers)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if j == i:
                continue
            if (
                powers[j] <= powers[i]
                and rates[j] >= rates[i]
                and (powers[j] < powers[i] or rates[j] > rates[i])
            ):
                mask[i] = False
                break
    return mask


class TestInvariants:
    def test_empty_archive(self, space):
        a = EpsilonArchive(space)
        assert len(a) == 0
        assert a.best_under_cap(100.0) is None
        assert a.insert(
            np.empty((0, space.n_axes), dtype=np.int64),
            np.empty(0),
            np.empty(0),
        ) == 0
        with pytest.raises(ValueError, match="empty"):
            a.to_frontier()

    def test_rejects_bad_epsilon_and_nonpositive_objectives(self, space):
        with pytest.raises(ValueError, match="epsilon"):
            EpsilonArchive(space, epsilon=-0.1)
        a = EpsilonArchive(space)
        g = space.sample_genomes(np.random.default_rng(0), 2)
        with pytest.raises(ValueError, match="strictly positive"):
            a.insert(g, np.array([10.0, -1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="length mismatch"):
            a.insert(g, np.array([10.0]), np.array([1.0, 1.0]))

    def test_powers_and_rates_strictly_increasing(self, space):
        k = make_kernel()
        a = EpsilonArchive(space)
        g, pw, rt = _evaluated(space, k, seed=0, n=120)
        a.insert(g, pw, rt)
        assert len(a) > 0
        assert np.all(np.diff(a.powers) > 0)
        assert np.all(np.diff(a.performances) > 0)
        assert a.min_power_w == a.powers[0]
        assert a.max_performance == a.performances[-1]

    def test_exact_mode_keeps_exactly_the_nondominated_set(self, space):
        k = make_kernel()
        a = EpsilonArchive(space, epsilon=0.0)
        g, pw, rt = _evaluated(space, k, seed=1, n=80)
        a.insert(g, pw, rt)
        mask = _exact_nondominated_mask(pw, rt)
        expected = set(zip(pw[mask], rt[mask]))
        got = set(zip(a.powers, a.performances))
        assert got == expected

    def test_best_under_cap_and_indices(self, space):
        k = make_kernel()
        a = EpsilonArchive(space)
        g, pw, rt = _evaluated(space, k, seed=2, n=120)
        a.insert(g, pw, rt)
        below = a.best_under_cap(a.min_power_w - 1e-9)
        assert below is None
        mid_cap = float(a.powers[len(a) // 2])
        pt = a.best_under_cap(mid_cap)
        assert isinstance(pt, FrontierPoint)
        assert pt.power_w <= mid_cap
        assert pt.performance == a.performances[len(a) // 2]
        idx = a.indices_under_caps(
            np.array([a.min_power_w - 1.0, mid_cap, a.powers[-1] + 1.0])
        )
        assert idx[0] == -1
        assert idx[1] == len(a) // 2
        assert idx[2] == len(a) - 1

    def test_to_frontier_round_trip(self, space):
        k = make_kernel()
        a = EpsilonArchive(space)
        g, pw, rt = _evaluated(space, k, seed=3, n=120)
        a.insert(g, pw, rt)
        f = a.to_frontier()
        assert isinstance(f, ParetoFrontier)
        assert np.array_equal(f.powers, a.powers)
        assert np.array_equal(f.performances, a.performances)
        assert f.configs() == a.configs()


class TestDeterminism:
    def test_insertion_order_independent(self, space):
        k = make_kernel()
        g, pw, rt = _evaluated(space, k, seed=4, n=200)
        whole = EpsilonArchive(space, epsilon=1e-4)
        whole.insert(g, pw, rt)

        perm = np.random.default_rng(9).permutation(len(g))
        batched = EpsilonArchive(space, epsilon=1e-4)
        for lo in range(0, len(g), 33):
            sel = perm[lo : lo + 33]
            batched.insert(g[sel], pw[sel], rt[sel])

        assert np.array_equal(whole.genomes, batched.genomes)
        assert np.array_equal(whole.powers, batched.powers)
        assert np.array_equal(whole.performances, batched.performances)

    def test_duplicate_reinsert_is_stable(self, space):
        k = make_kernel()
        g, pw, rt = _evaluated(space, k, seed=5, n=100)
        a = EpsilonArchive(space, epsilon=1e-3)
        a.insert(g, pw, rt)
        snap = (a.genomes.copy(), a.powers.copy(), a.performances.copy())
        a.insert(g, pw, rt)  # full duplicate batch
        assert np.array_equal(a.genomes, snap[0])
        assert np.array_equal(a.powers, snap[1])
        assert np.array_equal(a.performances, snap[2])


# ---------------------------------------------------------------------------
# Hypothesis properties (satellite requirement)
# ---------------------------------------------------------------------------


@st.composite
def _batches(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=1, max_value=150))
    epsilon = draw(st.sampled_from([0.0, 1e-5, 1e-4, 1e-2, 0.1]))
    return seed, n, epsilon


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(_batches())
    def test_archive_within_epsilon_of_every_seen_point(self, batch):
        """ε-coverage: for every inserted point there is an archived
        point with rate >= r/(1+ε) and power <= p*(1+ε)."""
        seed, n, epsilon = batch
        sp = paper_space()
        k = make_kernel()
        g, pw, rt = _evaluated(sp, k, seed=seed, n=n)
        a = EpsilonArchive(sp, epsilon=epsilon)
        a.insert(g, pw, rt)
        assert len(a) >= 1
        for p, r in zip(pw, rt):
            covered = np.any(
                (a.powers <= p * (1.0 + epsilon) * (1.0 + 1e-12))
                & (a.performances >= r / (1.0 + epsilon) * (1.0 - 1e-12))
            )
            assert covered, (p, r, epsilon)

    @settings(max_examples=60, deadline=None)
    @given(_batches())
    def test_archive_is_pairwise_nondominated(self, batch):
        seed, n, epsilon = batch
        sp = paper_space()
        g, pw, rt = _evaluated(sp, make_kernel(), seed=seed, n=n)
        a = EpsilonArchive(sp, epsilon=epsilon)
        a.insert(g, pw, rt)
        # Strictly increasing in both objectives => pairwise non-dominated.
        assert np.all(np.diff(a.powers) > 0)
        assert np.all(np.diff(a.performances) > 0)

    @settings(max_examples=60, deadline=None)
    @given(
        _batches(),
        st.floats(min_value=1.0, max_value=120.0),
    )
    def test_best_under_cap_never_exceeds_cap(self, batch, cap):
        seed, n, epsilon = batch
        sp = paper_space()
        g, pw, rt = _evaluated(sp, make_kernel(), seed=seed, n=n)
        a = EpsilonArchive(sp, epsilon=epsilon)
        a.insert(g, pw, rt)
        pt = a.best_under_cap(cap)
        if pt is not None:
            assert pt.power_w <= cap

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_per_seed_bit_identical(self, seed):
        sp = demo_space()
        k = make_kernel()

        def build():
            g, pw, rt = _evaluated(sp, k, seed=seed, n=400)
            a = EpsilonArchive(sp, epsilon=1e-4)
            a.insert(g, pw, rt)
            return a

        a, b = build(), build()
        assert np.array_equal(a.genomes, b.genomes)
        assert np.array_equal(a.powers, b.powers)
        assert np.array_equal(a.performances, b.performances)
