"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for arbitrary inputs: metric aggregation,
scheduler selection, cluster allocation, and the frontier/cap algebra
they all share.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    NodeFrontier,
    NodeFrontierPoint,
    greedy_marginal_allocation,
    maxmin_allocation,
    uniform_allocation,
)
from repro.core import KernelPrediction, Scheduler
from repro.evaluation import CapEvaluation, summarize
from repro.hardware import Configuration, ConfigSpace, Measurement

_SPACE = list(ConfigSpace())


# -- strategies ----------------------------------------------------------------

@st.composite
def cap_records(draw, n_min=1, n_max=30):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    records = []
    for i in range(n):
        kernel_idx = draw(st.integers(min_value=0, max_value=4))
        cap = draw(st.floats(min_value=5.0, max_value=60.0))
        power = draw(st.floats(min_value=5.0, max_value=80.0))
        perf = draw(st.floats(min_value=0.01, max_value=10.0))
        o_power = draw(st.floats(min_value=5.0, max_value=60.0))
        o_perf = draw(st.floats(min_value=0.01, max_value=10.0))
        records.append(
            CapEvaluation(
                kernel_uid=f"b/i/k{kernel_idx}",
                benchmark="b",
                group="b i",
                time_weight=0.2,
                method="M",
                power_cap_w=cap,
                config=_SPACE[i % len(_SPACE)],
                power_w=power,
                performance=perf,
                oracle_config=_SPACE[0],
                oracle_power_w=o_power,
                oracle_performance=o_perf,
            )
        )
    return records


@st.composite
def predictions(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    preds = {}
    for i in range(n):
        pw = draw(st.floats(min_value=5.0, max_value=60.0))
        pf = draw(st.floats(min_value=0.01, max_value=10.0))
        preds[_SPACE[i]] = (pw, pf)
    dummy = Measurement(
        config=_SPACE[0], time_s=1.0, cpu_plane_w=10.0, nbgpu_plane_w=5.0
    )
    return KernelPrediction(
        kernel_uid="k",
        cluster=0,
        predictions=preds,
        cpu_sample=dummy,
        gpu_sample=dummy,
    )


@st.composite
def node_frontiers(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=5))
    frontiers = {}
    for i in range(n_nodes):
        n_pts = draw(st.integers(min_value=1, max_value=8))
        caps = sorted(
            draw(
                st.lists(
                    st.floats(min_value=5.0, max_value=50.0),
                    min_size=n_pts,
                    max_size=n_pts,
                    unique=True,
                )
            )
        )
        rate = 0.0
        pts = []
        for cap in caps:
            rate += draw(st.floats(min_value=0.01, max_value=2.0))
            pts.append(NodeFrontierPoint(cap_w=cap, expected_power_w=cap, rate=rate))
        frontiers[f"n{i}"] = NodeFrontier(pts)
    return frontiers


# -- metric properties -----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(cap_records())
def test_metric_percentages_bounded(records):
    (s,) = summarize(records)
    assert 0.0 <= s.pct_under_limit <= 100.0
    for field in ("under_perf_pct", "under_power_pct", "over_power_pct",
                  "over_perf_pct"):
        v = getattr(s, field)
        assert math.isnan(v) or v >= 0.0
    assert s.n_cases == len(records)


@settings(max_examples=60, deadline=None)
@given(cap_records())
def test_metric_under_over_partition(records):
    (s,) = summarize(records)
    n_under = sum(r.under_limit for r in records)
    if n_under == 0:
        assert math.isnan(s.under_perf_pct)
    if n_under == len(records):
        assert math.isnan(s.over_perf_pct)
        assert s.pct_under_limit == pytest.approx(100.0)


@settings(max_examples=40, deadline=None)
@given(cap_records())
def test_metric_scaling_invariance(records):
    """Scaling every power by a constant leaves perf columns unchanged."""
    (base,) = summarize(records)
    scaled_records = [
        CapEvaluation(
            kernel_uid=r.kernel_uid,
            benchmark=r.benchmark,
            group=r.group,
            time_weight=r.time_weight,
            method=r.method,
            power_cap_w=r.power_cap_w * 2,
            config=r.config,
            power_w=r.power_w * 2,
            performance=r.performance,
            oracle_config=r.oracle_config,
            oracle_power_w=r.oracle_power_w * 2,
            oracle_performance=r.oracle_performance,
        )
        for r in records
    ]
    (scaled,) = summarize(scaled_records)
    assert scaled.pct_under_limit == pytest.approx(base.pct_under_limit)
    if not math.isnan(base.under_perf_pct):
        assert scaled.under_perf_pct == pytest.approx(base.under_perf_pct)
    if not math.isnan(base.over_power_pct):
        assert scaled.over_power_pct == pytest.approx(base.over_power_pct)


# -- scheduler properties ----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(predictions(), st.floats(min_value=5.0, max_value=70.0))
def test_scheduler_feasible_selection_is_optimal(pred, cap):
    decision = Scheduler().select(pred, cap)
    feasible = [(pw, pf) for pw, pf in pred.predictions.values() if pw <= cap]
    if feasible:
        assert decision.predicted_feasible
        assert decision.predicted_performance == pytest.approx(
            max(pf for _, pf in feasible)
        )
    else:
        assert not decision.predicted_feasible
        assert decision.predicted_power_w == pytest.approx(
            min(pw for pw, _ in pred.predictions.values())
        )


@settings(max_examples=60, deadline=None)
@given(predictions(), st.floats(min_value=5.0, max_value=70.0))
def test_scheduler_monotone_in_cap(pred, cap):
    """A looser cap never yields worse predicted performance."""
    tight = Scheduler().select(pred, cap)
    loose = Scheduler().select(pred, cap * 1.5)
    if tight.predicted_feasible:
        assert loose.predicted_performance >= tight.predicted_performance - 1e-12


@settings(max_examples=60, deadline=None)
@given(predictions(), st.floats(min_value=10.0, max_value=60.0))
def test_scheduler_goal_consistency(pred, cap):
    """Among feasible configs, the energy goal's pick has minimal
    predicted energy and the edp goal's pick minimal predicted EDP."""
    feasible = [(pw, pf) for pw, pf in pred.predictions.values() if pw <= cap]
    if not feasible:
        return
    e = Scheduler("energy").select(pred, cap)
    assert e.predicted_power_w / e.predicted_performance == pytest.approx(
        min(pw / pf for pw, pf in feasible)
    )
    d = Scheduler("edp").select(pred, cap)
    assert d.predicted_power_w / d.predicted_performance**2 == pytest.approx(
        min(pw / (pf * pf) for pw, pf in feasible)
    )


# -- allocation properties -----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(node_frontiers(), st.floats(min_value=10.0, max_value=300.0))
def test_allocations_respect_budget_and_cover_nodes(frontiers, budget):
    for policy in (uniform_allocation, greedy_marginal_allocation, maxmin_allocation):
        caps = policy(budget, frontiers)
        assert set(caps) == set(frontiers)
        assert sum(caps.values()) <= budget + 1e-6
        assert all(c > 0 for c in caps.values())


@st.composite
def concave_node_frontiers(draw):
    """Frontiers with decreasing marginal rate per watt (the regime in
    which greedy water-filling is provably optimal)."""
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    frontiers = {}
    for i in range(n_nodes):
        n_steps = draw(st.integers(min_value=1, max_value=6))
        floor = draw(st.floats(min_value=5.0, max_value=15.0))
        step_powers = draw(
            st.lists(
                st.floats(min_value=1.0, max_value=10.0),
                min_size=n_steps,
                max_size=n_steps,
            )
        )
        utilities = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.01, max_value=1.0),
                    min_size=n_steps,
                    max_size=n_steps,
                )
            ),
            reverse=True,
        )
        cap, rate = floor, draw(st.floats(min_value=0.05, max_value=1.0))
        pts = [NodeFrontierPoint(cap_w=cap, expected_power_w=cap, rate=rate)]
        for dp, u in zip(step_powers, utilities):
            cap += dp
            rate += u * dp  # marginal rate/W = u, decreasing by sort
            pts.append(NodeFrontierPoint(cap_w=cap, expected_power_w=cap, rate=rate))
        frontiers[f"n{i}"] = NodeFrontier(pts)
    return frontiers


@settings(max_examples=60, deadline=None)
@given(concave_node_frontiers(), st.floats(min_value=30.0, max_value=200.0))
def test_greedy_within_one_step_of_uniform_on_concave_frontiers(
    frontiers, budget
):
    """Discrete frontier steps make the allocation a knapsack, so greedy
    carries the classic guarantee: within one step's value of optimal —
    hence within one step's value of uniform too (uniform <= optimal)."""

    def total_rate(caps):
        return sum(frontiers[n].at_cap(c).rate for n, c in caps.items())

    greedy = greedy_marginal_allocation(budget, frontiers)
    uniform = uniform_allocation(budget, frontiers)
    # Comparison is meaningful only when uniform's share covers every
    # node's floor (otherwise at_cap clamps uniform up to the floor,
    # granting it power greedy honestly accounted for).
    floors_ok = all(uniform[n] >= frontiers[n].min_cap_w for n in frontiers)
    if not floors_ok:
        return
    max_step_gain = max(
        (dr for f in frontiers.values() for _, dr, _ in f.steps()),
        default=0.0,
    )
    assert total_rate(greedy) >= total_rate(uniform) - max_step_gain - 1e-9


# -- energy-budget optimizer properties ------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    st.lists(predictions(), min_size=1, max_size=4),
    st.floats(min_value=0.5, max_value=200.0),
)
def test_energy_optimizer_invariants(pred_list, budget):
    from repro.runtime import optimize_energy_budget

    preds = {f"k{i}": p for i, p in enumerate(pred_list)}
    schedule = optimize_energy_budget(preds, budget)
    # Every kernel assigned a configuration from its own prediction set.
    assert set(schedule.assignments) == set(preds)
    for uid, cfg in schedule.assignments.items():
        assert cfg in preds[uid].predictions
    # Totals consistent with the assignment.
    t = sum(
        1.0 / preds[u].predictions[c][1] for u, c in schedule.assignments.items()
    )
    e = sum(
        preds[u].predictions[c][0] / preds[u].predictions[c][1]
        for u, c in schedule.assignments.items()
    )
    assert schedule.predicted_time_s == pytest.approx(t)
    assert schedule.predicted_energy_j == pytest.approx(e)
    # The floor assignment bounds energy from below.
    floor = sum(
        min(pw / pf for pw, pf in p.predictions.values()) for p in preds.values()
    )
    assert schedule.predicted_energy_j >= floor - 1e-9
    # Feasibility flag is truthful.
    assert schedule.feasible == (
        schedule.predicted_energy_j <= budget * (1 + 1e-9)
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(predictions(), min_size=1, max_size=3))
def test_energy_optimizer_monotone_in_budget(pred_list):
    from repro.runtime import optimize_energy_budget

    preds = {f"k{i}": p for i, p in enumerate(pred_list)}
    floor = sum(
        min(pw / pf for pw, pf in p.predictions.values()) for p in preds.values()
    )
    times = [
        optimize_energy_budget(preds, floor * s).predicted_time_s
        for s in (1.0, 1.5, 2.5, 10.0)
    ]
    assert all(times[i] >= times[i + 1] - 1e-9 for i in range(len(times) - 1))


@settings(max_examples=60, deadline=None)
@given(node_frontiers(), st.floats(min_value=30.0, max_value=200.0))
def test_maxmin_maximizes_worst_node_rate(frontiers, budget):
    def worst(caps):
        return min(frontiers[n].at_cap(c).rate for n, c in caps.items())

    mm = maxmin_allocation(budget, frontiers)
    gr = greedy_marginal_allocation(budget, frontiers)
    assert worst(mm) >= worst(gr) - 1e-9
