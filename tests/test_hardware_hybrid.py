"""Tests for the idealized hybrid-execution model (paper §III-A)."""

import pytest

from repro.hardware import NoiseModel, TrinityAPU
from repro.hardware.hybrid import best_hybrid_under_cap, hybrid_execution
from tests.conftest import make_kernel


@pytest.fixture(scope="module")
def apu():
    return TrinityAPU(noise=NoiseModel.exact())


class TestHybridExecution:
    def test_perfect_balance_finishes_together(self, apu):
        k = make_kernel()
        point = hybrid_execution(k, 3.7, 4, 0.819)
        from repro.hardware.kernelmodel import cpu_time_s, gpu_time_s

        t_cpu = cpu_time_s(k, 3.7, 4)
        t_gpu = gpu_time_s(k, 0.819, 3.7)
        # Both sides take the same time on their shares.
        assert point.cpu_share * t_cpu == pytest.approx(
            (1 - point.cpu_share) * t_gpu
        )
        assert point.time_s == pytest.approx(point.cpu_share * t_cpu)

    def test_ideal_hybrid_faster_than_either_device(self, apu):
        k = make_kernel()
        point = hybrid_execution(k, 3.7, 4, 0.819)
        from repro.hardware.kernelmodel import cpu_time_s, gpu_time_s

        assert point.time_s < cpu_time_s(k, 3.7, 4)
        assert point.time_s < gpu_time_s(k, 0.819, 3.7)

    def test_hybrid_power_exceeds_both_devices(self, apu):
        k = make_kernel()
        point = hybrid_execution(k, 3.7, 4, 0.819)
        from repro.hardware import Configuration

        p_cpu = apu.true_total_power_w(k, Configuration.cpu(3.7, 4))
        p_gpu = apu.true_total_power_w(k, Configuration.gpu(0.819, 3.7))
        assert point.power_w > p_cpu
        assert point.power_w > p_gpu

    def test_gpu_heavy_kernel_gets_small_cpu_share(self, apu):
        k = make_kernel(gpu_affinity=8.0)
        point = hybrid_execution(k, 3.7, 4, 0.819)
        assert point.cpu_share < 0.35

    def test_cpu_heavy_kernel_gets_large_cpu_share(self, apu):
        k = make_kernel(gpu_affinity=0.2)
        point = hybrid_execution(k, 3.7, 4, 0.819)
        assert point.cpu_share > 0.6

    def test_efficiency_slows_but_does_not_change_power(self, apu):
        k = make_kernel()
        ideal = hybrid_execution(k, 3.7, 4, 0.819, efficiency=1.0)
        real = hybrid_execution(k, 3.7, 4, 0.819, efficiency=0.5)
        assert real.time_s == pytest.approx(ideal.time_s * 2)
        assert real.power_w == pytest.approx(ideal.power_w)

    def test_efficiency_validation(self, apu):
        k = make_kernel()
        with pytest.raises(ValueError):
            hybrid_execution(k, 3.7, 4, 0.819, efficiency=0.0)
        with pytest.raises(ValueError):
            hybrid_execution(k, 3.7, 4, 0.819, efficiency=1.5)


class TestBestHybridUnderCap:
    def test_low_cap_infeasible(self, apu):
        k = make_kernel()
        assert best_hybrid_under_cap(k, 15.0) is None

    def test_unconstrained_returns_best_point(self, apu):
        k = make_kernel()
        best = best_hybrid_under_cap(k, float("inf"))
        assert best is not None
        # Exhaustive check against a manual sweep.
        from repro.hardware import pstates

        manual = max(
            (
                hybrid_execution(k, f, n, g)
                for f in pstates.CPU_FREQS_GHZ
                for n in range(1, 5)
                for g in pstates.GPU_FREQS_GHZ
            ),
            key=lambda p: p.performance,
        )
        assert best.performance == pytest.approx(manual.performance)

    def test_capped_result_respects_cap(self, apu):
        k = make_kernel()
        best = best_hybrid_under_cap(k, 35.0)
        if best is not None:
            assert best.power_w <= 35.0


class TestEnumerationMemo:
    def test_repeated_enumeration_hits_cache(self):
        from repro import telemetry
        from repro.hardware.hybrid import enumerate_hybrid_points

        k = make_kernel(work_s=0.777)  # unlikely to collide with other tests
        hits = telemetry.counter("cache.hybrid_points.hits")
        misses = telemetry.counter("cache.hybrid_points.misses")
        first = enumerate_hybrid_points(k)
        h0, m0 = hits.value, misses.value
        second = enumerate_hybrid_points(k)
        assert hits.value == h0 + 1 and misses.value == m0
        assert second == first
        assert telemetry.gauge("cache.hybrid_points.size").value >= 1

    def test_distinct_parameters_miss(self):
        from repro import telemetry
        from repro.hardware.hybrid import enumerate_hybrid_points

        k = make_kernel(work_s=0.778)
        misses = telemetry.counter("cache.hybrid_points.misses")
        enumerate_hybrid_points(k, efficiency=1.0)
        m0 = misses.value
        enumerate_hybrid_points(k, efficiency=0.5)
        assert misses.value == m0 + 1

    def test_returned_list_is_caller_owned(self):
        from repro.hardware.hybrid import enumerate_hybrid_points

        k = make_kernel(work_s=0.779)
        first = enumerate_hybrid_points(k)
        first.clear()  # mutating the returned list must not poison the memo
        again = enumerate_hybrid_points(k)
        assert len(again) > 0
