"""Tests for the search engine: ranking, hypervolume, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.faults import FaultPlan
from repro.search import (
    SearchConfig,
    SearchResult,
    demo_space,
    hypervolume,
    nsga2_search,
    paper_space,
    random_search,
)
from repro.search.engine import (
    _non_dominated_rank_reference,
    _resolve_jobs,
    crowding_distance,
    non_dominated_rank,
)
from repro.telemetry.spans import get_tracer

from .conftest import make_kernel


# ---------------------------------------------------------------------------
# Scalarized helpers
# ---------------------------------------------------------------------------


class TestHypervolume:
    def test_single_point(self):
        # One rectangle: (ref - p) * r = (10 - 4) * 2 = 12.
        assert hypervolume(np.array([4.0]), np.array([2.0]), 10.0) == 12.0

    def test_two_point_staircase(self):
        pw = np.array([4.0, 8.0])
        rt = np.array([2.0, 5.0])
        # (10-4)*2 + (10-8)*(5-2) = 12 + 6.
        assert hypervolume(pw, rt, 10.0) == 18.0

    def test_dominated_points_do_not_contribute(self):
        pw = np.array([4.0, 8.0, 6.0])  # the 6W/1-rate point is dominated
        rt = np.array([2.0, 5.0, 1.0])
        assert hypervolume(pw, rt, 10.0) == 18.0

    def test_points_beyond_reference_ignored(self):
        assert hypervolume(np.array([12.0]), np.array([9.0]), 10.0) == 0.0
        assert hypervolume(np.array([]), np.array([]), 10.0) == 0.0


@st.composite
def _objectives(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    # Coarse grid values force plenty of exact ties in both objectives.
    powers = rng.integers(1, 12, size=n).astype(np.float64)
    rates = rng.integers(1, 12, size=n).astype(np.float64)
    return powers, rates


class TestNonDominatedRank:
    @settings(max_examples=60, deadline=None)
    @given(_objectives())
    def test_matches_quadratic_reference(self, objectives):
        powers, rates = objectives
        fast = non_dominated_rank(powers, rates)
        slow = _non_dominated_rank_reference(powers, rates)
        assert np.array_equal(fast, slow)

    def test_duplicates_share_the_front(self):
        pw = np.array([5.0, 5.0, 7.0])
        rt = np.array([3.0, 3.0, 3.0])
        ranks = non_dominated_rank(pw, rt)
        # Exact duplicates are mutually non-dominated; the 7W copy of
        # the same rate is strictly dominated.
        assert list(ranks) == [0, 0, 1]

    def test_crowding_boundaries_are_infinite(self):
        pw = np.array([1.0, 2.0, 3.0, 4.0])
        rt = np.array([1.0, 2.0, 3.0, 4.0])
        ranks = non_dominated_rank(pw, rt)
        assert np.all(ranks == 0)
        crowd = crowding_distance(pw, rt, ranks)
        assert crowd[0] == np.inf and crowd[-1] == np.inf
        assert np.all(np.isfinite(crowd[1:-1]))
        assert np.all(crowd[1:-1] > 0)


# ---------------------------------------------------------------------------
# SearchConfig validation and job resolution
# ---------------------------------------------------------------------------


class TestSearchConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="population"):
            SearchConfig(population=2)
        with pytest.raises(ValueError, match="generations"):
            SearchConfig(generations=-1)
        with pytest.raises(ValueError, match="crossover_rate"):
            SearchConfig(crossover_rate=1.5)

    def test_fault_plan_forces_serial(self):
        assert _resolve_jobs(8, FaultPlan()) == 1
        assert _resolve_jobs(8, None) == 8

    def test_n_jobs_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NJOBS", "3")
        assert _resolve_jobs(None, None) == 3


# ---------------------------------------------------------------------------
# nsga2_search
# ---------------------------------------------------------------------------


class TestNsga2Search:
    def test_result_shape_and_telemetry(self):
        sp = paper_space()
        k = make_kernel()
        evals = telemetry.counter("search.evaluations")
        gens = telemetry.counter("search.generations")
        e0, g0 = evals.value, gens.value
        res = nsga2_search(sp, k, SearchConfig(population=16, generations=4))
        assert isinstance(res, SearchResult)
        assert res.evaluations == 16 * 5  # init + 4 generations
        assert res.generations == 4
        assert len(res.history) == 5
        assert res.history[-1][0] == res.evaluations
        assert res.hypervolume == res.history[-1][1] > 0
        assert res.elapsed_s > 0
        assert evals.value == e0 + res.evaluations
        assert gens.value == g0 + 4
        assert telemetry.gauge("search.archive_size").value == len(res.archive)
        assert telemetry.gauge("search.hypervolume").value == res.hypervolume

    def test_emits_spans(self):
        tracer = get_tracer()
        tracer.reset()
        nsga2_search(
            paper_space(), make_kernel(), SearchConfig(population=8, generations=2)
        )
        names = {s["name"] for s in tracer.snapshot()}
        assert "search/run" in names

    def test_hypervolume_never_decreases(self):
        res = nsga2_search(
            paper_space(), make_kernel(), SearchConfig(population=16, generations=8)
        )
        hv = [h for _, h in res.history]
        assert all(b >= a for a, b in zip(hv, hv[1:]))

    def test_per_seed_bit_identical(self):
        sp = demo_space()
        k = make_kernel()
        cfg = SearchConfig(population=24, generations=6, seed=7)
        a = nsga2_search(sp, k, cfg)
        b = nsga2_search(sp, k, cfg)
        assert np.array_equal(a.archive.genomes, b.archive.genomes)
        assert np.array_equal(a.archive.powers, b.archive.powers)
        assert np.array_equal(a.archive.performances, b.archive.performances)
        assert a.history == b.history

    def test_different_seeds_differ(self):
        sp = demo_space()
        k = make_kernel()
        a = nsga2_search(sp, k, SearchConfig(population=24, generations=6, seed=0))
        b = nsga2_search(sp, k, SearchConfig(population=24, generations=6, seed=1))
        assert not (
            a.archive.genomes.shape == b.archive.genomes.shape
            and np.array_equal(a.archive.genomes, b.archive.genomes)
        )

    def test_max_evaluations_is_a_hard_budget(self):
        res = nsga2_search(
            paper_space(),
            make_kernel(),
            SearchConfig(population=16, generations=50, max_evaluations=70),
        )
        assert res.evaluations <= 70
        assert res.evaluations == 64  # init + 3 full generations fit
        assert res.generations == 3

    def test_fault_plan_run_matches_serial(self):
        sp = paper_space()
        k = make_kernel()
        cfg = SearchConfig(population=16, generations=4, n_jobs=4)
        faulted = nsga2_search(sp, k, cfg, fault_plan=FaultPlan())
        serial = nsga2_search(sp, k, cfg)
        assert np.array_equal(faulted.archive.powers, serial.archive.powers)

    def test_explicit_hypervolume_reference(self):
        res = nsga2_search(
            paper_space(),
            make_kernel(),
            SearchConfig(population=8, generations=1),
            hypervolume_ref_w=123.0,
        )
        assert res.hypervolume_ref_w == 123.0


# ---------------------------------------------------------------------------
# random_search baseline
# ---------------------------------------------------------------------------


class TestRandomSearch:
    def test_budget_and_history(self):
        res = random_search(
            demo_space(), make_kernel(), 1000, seed=0, batch=256
        )
        assert res.evaluations == 1000
        assert res.generations == 0
        assert res.history[-1][0] == 1000
        assert res.hypervolume > 0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget"):
            random_search(demo_space(), make_kernel(), 0)

    def test_per_seed_bit_identical(self):
        sp = demo_space()
        k = make_kernel()
        a = random_search(sp, k, 600, seed=3, batch=200)
        b = random_search(sp, k, 600, seed=3, batch=200)
        assert np.array_equal(a.archive.genomes, b.archive.genomes)
        assert a.history == b.history

    def test_search_beats_random_at_equal_small_budget(self):
        """On the demo space the engine's archive should dominate the
        random baseline's hypervolume at the same evaluation budget."""
        sp = demo_space()
        k = make_kernel()
        rnd = random_search(sp, k, 960, seed=0)
        nsga = nsga2_search(
            sp,
            k,
            SearchConfig(population=96, generations=9, seed=0),
            hypervolume_ref_w=rnd.hypervolume_ref_w,
        )
        assert nsga.evaluations == rnd.evaluations
        assert nsga.hypervolume >= rnd.hypervolume
