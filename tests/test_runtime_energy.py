"""Tests for energy-budgeted scheduling (repro.runtime.energy)."""

import pytest

from repro.core import CPU_SAMPLE, GPU_SAMPLE, train_model
from repro.hardware import NoiseModel, TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.runtime import optimize_energy_budget
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def setup():
    apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()
    model = train_model(library, [k for k in suite if k.benchmark != "CoMD"])
    kernels = suite.for_group("CoMD Small")
    predictions = {}
    for k in kernels:
        cm = apu.run(k, CPU_SAMPLE)
        gm = apu.run(k, GPU_SAMPLE)
        predictions[k.uid] = model.predict_kernel(cm, gm, kernel_uid=k.uid)
    return apu, kernels, predictions


def _floor_energy(predictions):
    total = 0.0
    for p in predictions.values():
        total += min(
            pw / pf for pw, pf in p.predictions.values()
        )  # min energy = min power*time = min power/perf
    return total


class TestOptimizeEnergyBudget:
    def test_generous_budget_approaches_min_time(self, setup):
        _, _, predictions = setup
        schedule = optimize_energy_budget(predictions, budget_j=1e6)
        # With unlimited energy every kernel takes (nearly) its
        # fastest option; time is the sum of per-kernel minima over the
        # kernel's energy-time Pareto set.
        min_time = sum(
            min(1.0 / pf for _, pf in p.predictions.values())
            for p in predictions.values()
        )
        assert schedule.predicted_time_s <= min_time * 1.3
        assert schedule.feasible

    def test_budget_respected_when_feasible(self, setup):
        _, _, predictions = setup
        floor = _floor_energy(predictions)
        for budget in (floor * 1.1, floor * 1.5, floor * 3.0):
            schedule = optimize_energy_budget(predictions, budget)
            assert schedule.feasible
            assert schedule.predicted_energy_j <= budget * (1 + 1e-9)

    def test_infeasible_budget_returns_floor_assignment(self, setup):
        _, _, predictions = setup
        floor = _floor_energy(predictions)
        schedule = optimize_energy_budget(predictions, budget_j=floor * 0.5)
        assert not schedule.feasible
        assert schedule.predicted_energy_j == pytest.approx(floor, rel=0.01)

    def test_time_monotone_in_budget(self, setup):
        _, _, predictions = setup
        floor = _floor_energy(predictions)
        times = [
            optimize_energy_budget(predictions, floor * s).predicted_time_s
            for s in (1.0, 1.2, 1.5, 2.0, 3.0, 10.0)
        ]
        assert times == sorted(times, reverse=True)

    def test_assignments_cover_all_kernels(self, setup):
        _, kernels, predictions = setup
        schedule = optimize_energy_budget(predictions, budget_j=100.0)
        assert set(schedule.assignments) == {k.uid for k in kernels}

    def test_predicted_totals_consistent_with_assignments(self, setup):
        _, _, predictions = setup
        schedule = optimize_energy_budget(predictions, budget_j=60.0)
        t = e = 0.0
        for uid, cfg in schedule.assignments.items():
            pw, pf = predictions[uid].predictions[cfg]
            t += 1.0 / pf
            e += pw / pf
        assert schedule.predicted_time_s == pytest.approx(t)
        assert schedule.predicted_energy_j == pytest.approx(e)

    def test_validation(self, setup):
        _, _, predictions = setup
        with pytest.raises(ValueError):
            optimize_energy_budget({}, 10.0)
        with pytest.raises(ValueError):
            optimize_energy_budget(predictions, 0.0)

    def test_ground_truth_energy_tracks_prediction(self, setup):
        """The schedule's *true* energy stays close to its prediction
        (the point of using the model)."""
        apu, kernels, predictions = setup
        by_uid = {k.uid: k for k in kernels}
        floor = _floor_energy(predictions)
        schedule = optimize_energy_budget(predictions, budget_j=floor * 1.4)
        true_energy = 0.0
        for uid, cfg in schedule.assignments.items():
            k = by_uid[uid]
            true_energy += apu.true_total_power_w(k, cfg) * apu.true_time_s(
                k, cfg
            )
        assert true_energy == pytest.approx(
            schedule.predicted_energy_j, rel=0.25
        )
