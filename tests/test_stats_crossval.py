"""Tests for repro.stats.crossval."""

import pytest

from repro.stats import leave_one_group_out


def test_basic_split():
    groups = ["a", "a", "b", "c", "b"]
    folds = list(leave_one_group_out(groups))
    assert [f[0] for f in folds] == ["a", "b", "c"]
    held, train, test = folds[0]
    assert test == [0, 1]
    assert train == [2, 3, 4]


def test_train_test_partition_everything():
    groups = ["x"] * 3 + ["y"] * 2 + ["z"]
    for _, train, test in leave_one_group_out(groups):
        assert sorted(train + test) == list(range(6))
        assert not set(train) & set(test)


def test_test_indices_all_share_held_out_group():
    groups = ["l", "c", "l", "s", "c"]
    for held, train, test in leave_one_group_out(groups):
        assert all(groups[i] == held for i in test)
        assert all(groups[i] != held for i in train)


def test_single_group_raises():
    with pytest.raises(ValueError):
        list(leave_one_group_out(["only", "only"]))


def test_deterministic_order_of_first_appearance():
    groups = ["b", "a", "b", "c", "a"]
    assert [f[0] for f in leave_one_group_out(groups)] == ["b", "a", "c"]
