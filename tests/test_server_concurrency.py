"""Batching front ends under concurrency.

Covers the properties array math cannot: arrivals actually coalesce
into fewer grouped sweeps, the batching window is honored for lone
requests, completion order is fair (FIFO through a single dispatcher),
futures resolve exactly once even when racing ``cancel()``, overload
sheds instead of queueing unboundedly, ``stop()`` drains admitted
requests, and concurrent snapshot republishing (quarantine churn) never
tears a reader's view.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

import repro.telemetry as telemetry
from repro.core import AdaptiveModel
from repro.profiling import CharacterizationStore, ProfilingLibrary
from repro.hardware import TrinityAPU
from repro.server import (
    AsyncDecisionServer,
    DecisionRequest,
    DecisionServer,
    DecisionService,
    ServerClosedError,
    ServerConfig,
    ServerOverloadError,
    request_pool,
)
from repro.workloads import build_suite


def counter_value(name: str) -> int:
    return telemetry.counter(name).value


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def service(suite):
    """A warm service over a small kernel subset."""
    kernels = list(suite)[:6]
    store = CharacterizationStore.shared(suite, seed=0)
    model = AdaptiveModel.train(
        store.characterize(list(suite)),
        dissimilarity=store.dissimilarity_submatrix(list(suite)),
    )
    svc = DecisionService(
        model, ProfilingLibrary(TrinityAPU(seed=0), seed=0), kernels=kernels
    )
    assert svc.warm() == {}
    return svc


@pytest.fixture(scope="module")
def pool(service):
    return request_pool(service.kernel_uids, n=256, seed=1)


class SlowService:
    """Delegate that sleeps per batch, so requests pile up behind it."""

    def __init__(self, service, delay_s=0.005):
        self._service = service
        self._delay_s = delay_s
        self.batches = 0

    def decide_batch(self, requests):
        self.batches += 1
        time.sleep(self._delay_s)
        return self._service.decide_batch(requests)


class TestCoalescing:
    def test_concurrent_arrivals_share_batches(self, service, pool):
        req_before = counter_value("server.requests")
        batch_before = counter_value("server.batches")
        config = ServerConfig(max_batch=256, max_delay_us=2000.0)
        with DecisionServer(service, config) as server:
            futures = [server.submit(r) for r in pool]
            results = [f.result(timeout=10.0) for f in futures]
        assert all(r.ok for r in results)
        requests = counter_value("server.requests") - req_before
        batches = counter_value("server.batches") - batch_before
        assert requests == len(pool)
        assert 0 < batches < requests  # many requests per sweep

    def test_zero_window_still_answers(self, service, pool):
        config = ServerConfig(max_batch=16, max_delay_us=0.0)
        with DecisionServer(service, config) as server:
            results = [server.decide(r, timeout=10.0) for r in pool[:32]]
        assert all(r.ok for r in results)

    def test_max_delay_honored_for_lone_request(self, service, pool):
        window_s = 0.05
        config = ServerConfig(max_batch=64, max_delay_us=window_s * 1e6)
        with DecisionServer(service, config) as server:
            start = time.perf_counter()
            result = server.decide(pool[0], timeout=10.0)
            elapsed = time.perf_counter() - start
        assert result.ok
        # A lone request waits out the window for co-batchees that never
        # come, but not dramatically longer (scheduler-jitter slack).
        assert elapsed >= 0.5 * window_s
        assert elapsed < 20 * window_s

    def test_results_demultiplex_to_their_requests(self, service, pool):
        config = ServerConfig(max_batch=64, max_delay_us=1000.0)
        with DecisionServer(service, config) as server:
            futures = [(r, server.submit(r)) for r in pool]
            for request, future in futures:
                result = future.result(timeout=10.0)
                assert result.kernel_uid == request.kernel_uid
                assert result.power_cap_w == request.power_cap_w


class TestOrderingFairness:
    def test_single_worker_completes_fifo(self, service, pool):
        completed = []
        config = ServerConfig(
            max_batch=8, max_delay_us=500.0, max_queue=10_000, n_workers=1
        )
        with DecisionServer(service, config) as server:
            futures = []
            for i, request in enumerate(pool[:128]):
                future = server.submit(request)
                future.add_done_callback(
                    lambda _f, i=i: completed.append(i)
                )
                futures.append(future)
            for future in futures:
                future.result(timeout=10.0)
        # One dispatcher drains the deque in arrival order and resolves
        # each batch in order: overall completion is submission order.
        assert completed == sorted(completed)


class TestCancellation:
    def test_futures_resolve_exactly_once_under_cancel_hammer(
        self, service, pool
    ):
        slow = SlowService(service, delay_s=0.004)
        config = ServerConfig(max_batch=8, max_delay_us=0.0, max_queue=10_000)
        with DecisionServer(slow, config) as server:
            futures = [server.submit(r) for r in pool]
            cancelled = {
                i for i, f in enumerate(futures) if i % 2 and f.cancel()
            }
        for i, future in enumerate(futures):
            assert future.done()
            if i in cancelled:
                with pytest.raises(BaseException):
                    future.result()
                assert future.cancelled()
            else:
                assert future.result(timeout=1.0).ok
        assert cancelled  # the hammer actually hit queued requests


class TestOverload:
    def test_bounded_queue_sheds_with_counter(self, service, pool):
        slow = SlowService(service, delay_s=0.05)
        config = ServerConfig(max_batch=4, max_delay_us=0.0, max_queue=4)
        shed_before = counter_value("server.shed")
        with DecisionServer(slow, config) as server:
            admitted = []
            shed = 0
            for request in pool[:64]:
                try:
                    admitted.append(server.submit(request))
                except ServerOverloadError:
                    shed += 1
            assert shed > 0
            assert counter_value("server.shed") - shed_before == shed
            for future in admitted:
                assert future.result(timeout=10.0).ok


class TestLifecycle:
    def test_stop_drains_admitted_requests(self, service, pool):
        slow = SlowService(service, delay_s=0.01)
        config = ServerConfig(max_batch=4, max_delay_us=0.0, max_queue=1000)
        server = DecisionServer(slow, config)
        server.start()
        futures = [server.submit(r) for r in pool[:64]]
        server.stop()
        assert all(f.result(timeout=0.0).ok for f in futures)
        with pytest.raises(ServerClosedError):
            server.submit(pool[0])

    def test_submit_before_start_rejected(self, service, pool):
        server = DecisionServer(service)
        with pytest.raises(ServerClosedError):
            server.submit(pool[0])

    def test_double_start_rejected(self, service):
        with DecisionServer(service) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_latency_histogram_observes_completions(self, service, pool):
        hist = telemetry.histogram("server.latency_s")
        before = hist.count
        with DecisionServer(service) as server:
            for request in pool[:10]:
                server.decide(request, timeout=10.0)
        assert hist.count - before == 10


class TestSnapshotSwapHammer:
    def test_quarantine_churn_never_tears_readers(self, service, pool):
        deadline = time.perf_counter() + 1.0
        errors: list[BaseException] = []
        versions: list[int] = []
        some_config = service.snapshot.predictions[
            service.kernel_uids[0]
        ].config_tuple[0]

        def publisher():
            while time.perf_counter() < deadline:
                service.quarantine(some_config)
                service.clear_quarantine()

        def reader():
            try:
                last_version = 0
                while time.perf_counter() < deadline:
                    snap = service.snapshot
                    # A grabbed snapshot is internally consistent:
                    # servable uids are a subset of warmed uids and the
                    # version only moves forward.
                    assert set(snap.tables) <= set(snap.predictions)
                    assert snap.version >= last_version
                    last_version = snap.version
                    results = service.decide_batch(pool[:32])
                    assert all(r.ok for r in results)
                versions.append(last_version)
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        threads = [threading.Thread(target=publisher)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(v > 0 for v in versions)
        # Leave the module-scope service fully servable for later tests.
        service.clear_quarantine()
        assert set(service.snapshot.tables) == set(service.kernel_uids)


class TestAsyncServer:
    def test_gathered_requests_coalesce(self, service, pool):
        async def scenario():
            req_before = counter_value("server.requests")
            batch_before = counter_value("server.batches")
            async with AsyncDecisionServer(
                service, ServerConfig(max_batch=128, max_delay_us=2000.0)
            ) as server:
                results = await asyncio.gather(
                    *(server.decide(r) for r in pool[:100])
                )
            requests = counter_value("server.requests") - req_before
            batches = counter_value("server.batches") - batch_before
            return results, requests, batches

        results, requests, batches = asyncio.run(scenario())
        assert all(r.ok for r in results)
        assert requests == 100
        assert 0 < batches < requests

    def test_decide_without_start_rejected(self, service, pool):
        async def scenario():
            server = AsyncDecisionServer(service)
            with pytest.raises(ServerClosedError):
                await server.decide(pool[0])

        asyncio.run(scenario())

    def test_overload_sheds(self, service, pool):
        async def scenario():
            config = ServerConfig(max_batch=2, max_delay_us=0.0, max_queue=2)
            server = AsyncDecisionServer(service, config)
            await server.start()
            # Fill the queue without letting the dispatcher run (no
            # awaits between put_nowait calls), then expect a shed.
            pending = []
            shed = 0
            for request in pool[:8]:
                try:
                    pending.append(
                        asyncio.get_running_loop().create_task(
                            server.decide(request)
                        )
                    )
                except ServerOverloadError:
                    shed += 1
            results = await asyncio.gather(*pending, return_exceptions=True)
            await server.stop()
            oks = [
                r for r in results if not isinstance(r, BaseException) and r.ok
            ]
            sheds = [
                r for r in results if isinstance(r, ServerOverloadError)
            ]
            assert len(oks) + len(sheds) == len(results)
            return len(sheds) + shed, len(oks)

        shed, oks = asyncio.run(scenario())
        assert oks > 0  # admitted requests were all answered

    def test_stop_is_idempotent(self, service):
        async def scenario():
            server = AsyncDecisionServer(service)
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(scenario())
