"""Decision service and batched engine: correctness and equivalence.

Four layers:

* **config** — explicit > environment > default resolution of the
  batching knobs, with typed errors on bad values;
* **engine** — ``decide_batch`` is element-identical to per-request
  ``Scheduler.select`` for any mix of kernels and caps, preserves
  request order, and rejects malformed batches;
* **service** — warm-up publishes immutable snapshots, per-request
  failures (unknown kernel, invalid cap, strict full quarantine)
  degrade that request only, and the typed
  :class:`NoFeasibleConfigError` replaces the historical ``IndexError``;
* **golden equivalence** — the server's answers for a LOOCV fold's
  (kernel, oracle-cap) pairs are bit-identical to the cross-validated
  evaluation's ``Model`` records, because both run the same
  ``decide_batch`` kernel on the same noise streams.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.core import AdaptiveModel, NoFeasibleConfigError, Scheduler
from repro.evaluation import run_loocv
from repro.methods import Oracle
from repro.profiling import CharacterizationStore, ProfilingLibrary
from repro.hardware import TrinityAPU
from repro.server import (
    DecisionRequest,
    DecisionService,
    ServerConfig,
    build_default_service,
    decide_batch,
)
from repro.server.config import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_US,
    DEFAULT_QUEUE_FACTOR,
    MAX_BATCH_ENV_VAR,
    MAX_DELAY_ENV_VAR,
    resolve_max_batch,
    resolve_max_delay_us,
)
from repro.server.service import (
    ERROR_INVALID_CAP,
    ERROR_NO_FEASIBLE_CONFIG,
    ERROR_UNKNOWN_KERNEL,
)
from repro.workloads import build_suite

PLAN_DIR = Path(__file__).parent / "fault_plans"


def counter_value(name: str) -> int:
    return telemetry.counter(name).value


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def trained(suite):
    """Full-suite model from the process-wide shared store."""
    kernels = list(suite)
    store = CharacterizationStore.shared(suite, seed=0)
    return AdaptiveModel.train(
        store.characterize(kernels),
        dissimilarity=store.dissimilarity_submatrix(kernels),
    )


def small_service(trained, suite, *, n=6, scheduler=None):
    """A service over a small kernel subset (fast to warm)."""
    kernels = list(suite)[:n]
    library = ProfilingLibrary(TrinityAPU(seed=0), seed=0)
    return DecisionService(
        trained, library, kernels=kernels, scheduler=scheduler
    )


@pytest.fixture(scope="module")
def warm_service(trained, suite):
    service = small_service(trained, suite)
    assert service.warm() == {}
    return service


# ---------------------------------------------------------------------------
# Config resolution
# ---------------------------------------------------------------------------


class TestServerConfig:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(MAX_BATCH_ENV_VAR, raising=False)
        monkeypatch.delenv(MAX_DELAY_ENV_VAR, raising=False)
        cfg = ServerConfig.resolve()
        assert cfg.max_batch == DEFAULT_MAX_BATCH
        assert cfg.max_delay_us == DEFAULT_MAX_DELAY_US
        assert cfg.max_queue == DEFAULT_MAX_BATCH * DEFAULT_QUEUE_FACTOR
        assert cfg.n_workers == 1

    def test_environment_defaults(self, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "64")
        monkeypatch.setenv(MAX_DELAY_ENV_VAR, "750")
        cfg = ServerConfig.resolve()
        assert cfg.max_batch == 64
        assert cfg.max_delay_us == 750.0
        assert cfg.max_queue == 64 * DEFAULT_QUEUE_FACTOR

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "64")
        monkeypatch.setenv(MAX_DELAY_ENV_VAR, "750")
        cfg = ServerConfig.resolve(max_batch=8, max_delay_us=0.0)
        assert cfg.max_batch == 8
        assert cfg.max_delay_us == 0.0

    @pytest.mark.parametrize(
        "var, value",
        [(MAX_BATCH_ENV_VAR, "not-a-number"), (MAX_DELAY_ENV_VAR, "soon")],
    )
    def test_unparseable_environment_raises(self, monkeypatch, var, value):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=var):
            ServerConfig.resolve()

    def test_out_of_range_values_raise(self, monkeypatch):
        monkeypatch.delenv(MAX_BATCH_ENV_VAR, raising=False)
        monkeypatch.delenv(MAX_DELAY_ENV_VAR, raising=False)
        with pytest.raises(ValueError):
            resolve_max_batch(0)
        with pytest.raises(ValueError):
            resolve_max_delay_us(-1.0)
        with pytest.raises(ValueError):
            ServerConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServerConfig(n_workers=0)

    def test_max_delay_s(self):
        assert ServerConfig(max_delay_us=250.0).max_delay_s == pytest.approx(
            250e-6
        )


# ---------------------------------------------------------------------------
# The batched engine
# ---------------------------------------------------------------------------


class TestDecideBatch:
    def test_matches_per_request_select(self, warm_service):
        snap = warm_service.snapshot
        scheduler = snap.scheduler
        caps = [8.0, 12.5, 20.0, 33.3, 45.0, 80.0]
        uids = [
            uid for uid in warm_service.kernel_uids for _ in caps
        ]
        cap_arr = np.array(caps * len(warm_service.kernel_uids))
        batch = decide_batch(scheduler, snap.predictions, uids, cap_arr)
        assert len(batch) == len(uids)
        for i, (uid, cap) in enumerate(zip(uids, cap_arr)):
            expected = scheduler.select(snap.predictions[uid], cap)
            assert batch.decision(i) == expected

    def test_interleaved_kernels_keep_request_order(self, warm_service):
        snap = warm_service.snapshot
        rng = np.random.default_rng(7)
        uids = [
            warm_service.kernel_uids[i]
            for i in rng.integers(0, len(warm_service.kernel_uids), size=64)
        ]
        caps = rng.uniform(9.0, 50.0, size=64)
        batch = decide_batch(snap.scheduler, snap.predictions, uids, caps)
        assert list(batch.kernel_uids) == uids
        for i in (0, 17, 40, 63):
            expected = snap.scheduler.select(
                snap.predictions[uids[i]], caps[i]
            )
            assert batch.decision(i) == expected

    def test_memoized_tables_change_nothing(self, warm_service):
        snap = warm_service.snapshot
        uids = warm_service.kernel_uids * 3
        caps = np.linspace(9.0, 44.0, len(uids))
        fresh = decide_batch(snap.scheduler, snap.predictions, uids, caps)
        memo = decide_batch(
            snap.scheduler, snap.predictions, uids, caps, tables=snap.tables
        )
        np.testing.assert_array_equal(fresh.config_index, memo.config_index)
        np.testing.assert_array_equal(fresh.feasible, memo.feasible)

    def test_unknown_uid_raises_keyerror(self, warm_service):
        snap = warm_service.snapshot
        with pytest.raises(KeyError, match="nope"):
            decide_batch(snap.scheduler, snap.predictions, ["nope"], [20.0])

    def test_malformed_batches_rejected(self, warm_service):
        snap = warm_service.snapshot
        uid = warm_service.kernel_uids[0]
        with pytest.raises(ValueError, match="parallel"):
            decide_batch(snap.scheduler, snap.predictions, [uid], [1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            decide_batch(snap.scheduler, snap.predictions, [uid], [0.0])

    def test_empty_batch(self, warm_service):
        snap = warm_service.snapshot
        batch = decide_batch(snap.scheduler, snap.predictions, [], [])
        assert len(batch) == 0
        assert batch.configs() == []

    def test_bulk_counters_match_per_request_totals(self, warm_service):
        snap = warm_service.snapshot
        uid = warm_service.kernel_uids[0]
        caps = [5.0, 30.0, 30.0, 5.0]  # 5 W is below any config's power
        before_sel = counter_value("scheduler.selections")
        before_fb = counter_value("scheduler.infeasible_fallbacks")
        batch = decide_batch(
            snap.scheduler, snap.predictions, [uid] * len(caps), caps
        )
        assert counter_value("scheduler.selections") - before_sel == len(caps)
        fallbacks = counter_value("scheduler.infeasible_fallbacks") - before_fb
        assert fallbacks == int(np.count_nonzero(~batch.feasible))


# ---------------------------------------------------------------------------
# The decision service
# ---------------------------------------------------------------------------


class TestDecisionService:
    def test_warm_publishes_versioned_snapshot(self, trained, suite):
        service = small_service(trained, suite, n=3)
        v0 = service.snapshot.version
        assert service.snapshot.predictions == {}
        assert service.warm() == {}
        snap = service.snapshot
        assert snap.version == v0 + 1
        assert set(snap.predictions) == set(service.kernel_uids)
        assert set(snap.tables) == set(service.kernel_uids)
        # Idempotent: re-warming publishes nothing new.
        assert service.warm() == {}
        assert service.snapshot.version == snap.version

    def test_snapshot_mappings_are_read_only(self, warm_service):
        snap = warm_service.snapshot
        with pytest.raises(TypeError):
            snap.predictions["x"] = None
        with pytest.raises(TypeError):
            snap.tables["x"] = None

    def test_warm_unknown_kernel_reported(self, warm_service):
        assert warm_service.warm(["nope"]) == {"nope": ERROR_UNKNOWN_KERNEL}

    def test_decide_matches_scheduler_select(self, warm_service):
        snap = warm_service.snapshot
        uid = warm_service.kernel_uids[2]
        result = warm_service.decide(DecisionRequest(uid, 25.0))
        expected = snap.scheduler.select(snap.predictions[uid], 25.0)
        assert result.ok
        assert result.config == expected.config
        assert result.predicted_power_w == expected.predicted_power_w
        assert result.feasible == expected.predicted_feasible

    def test_batch_matches_unbatched_decide(self, warm_service):
        rng = np.random.default_rng(3)
        requests = [
            DecisionRequest(
                warm_service.kernel_uids[
                    rng.integers(len(warm_service.kernel_uids))
                ],
                float(rng.uniform(9.0, 45.0)),
            )
            for _ in range(40)
        ]
        batched = warm_service.decide_batch(requests)
        for request, result in zip(requests, batched):
            assert result == warm_service.decide(request)

    def test_mixed_errors_degrade_per_request(self, warm_service):
        good_uid = warm_service.kernel_uids[0]
        requests = [
            DecisionRequest(good_uid, 25.0),
            DecisionRequest("nope", 25.0),
            DecisionRequest(good_uid, 0.0),
            DecisionRequest(good_uid, math.nan),
            DecisionRequest(good_uid, math.inf),
            DecisionRequest(good_uid, 30.0),
        ]
        errors_before = counter_value("server.errors")
        results = warm_service.decide_batch(requests)
        assert [r.error for r in results] == [
            None,
            ERROR_UNKNOWN_KERNEL,
            ERROR_INVALID_CAP,
            ERROR_INVALID_CAP,
            ERROR_INVALID_CAP,
            None,
        ]
        assert results[0].ok and results[0].config is not None
        assert results[1].config is None
        assert math.isnan(results[1].predicted_power_w)
        assert counter_value("server.errors") - errors_before == 4

    def test_telemetry_moves_per_batch(self, warm_service):
        requests = [
            DecisionRequest(warm_service.kernel_uids[0], 25.0)
            for _ in range(5)
        ]
        req_before = counter_value("server.requests")
        batch_before = counter_value("server.batches")
        size_before = telemetry.histogram("server.batch_size").count
        warm_service.decide_batch(requests)
        assert counter_value("server.requests") - req_before == 5
        assert counter_value("server.batches") - batch_before == 1
        assert telemetry.histogram("server.batch_size").count == size_before + 1


# ---------------------------------------------------------------------------
# Strict quarantine: the typed no-feasible-config path
# ---------------------------------------------------------------------------


class TestNoFeasibleConfig:
    def quarantine_everything(self, scheduler, prediction):
        for config in prediction.config_tuple:
            scheduler.quarantine(config)

    def test_select_raises_typed_error_not_indexerror(self, warm_service):
        snap = warm_service.snapshot
        prediction = snap.predictions[warm_service.kernel_uids[0]]
        scheduler = Scheduler(strict_quarantine=True)
        self.quarantine_everything(scheduler, prediction)
        with pytest.raises(NoFeasibleConfigError):
            scheduler.select(prediction, 30.0)
        with pytest.raises(NoFeasibleConfigError):
            scheduler.select_many(prediction, [30.0, 40.0])
        assert issubclass(NoFeasibleConfigError, RuntimeError)
        assert not issubclass(NoFeasibleConfigError, IndexError)

    def test_default_scheduler_survives_full_quarantine(self, warm_service):
        snap = warm_service.snapshot
        prediction = snap.predictions[warm_service.kernel_uids[0]]
        scheduler = Scheduler()
        self.quarantine_everything(scheduler, prediction)
        decision = scheduler.select(prediction, 30.0)
        assert decision.config in prediction.config_tuple

    def test_service_maps_to_per_request_error(self, trained, suite):
        service = small_service(
            trained, suite, n=2, scheduler=Scheduler(strict_quarantine=True)
        )
        assert service.warm() == {}
        uid = service.kernel_uids[0]
        ok = service.decide(DecisionRequest(uid, 30.0))
        assert ok.ok
        prediction = service.snapshot.predictions[uid]
        version = service.snapshot.version
        for config in prediction.config_tuple:
            service.quarantine(config)
        snap = service.snapshot
        assert snap.version > version
        assert snap.tables == {}  # warmed but unservable
        result = service.decide(DecisionRequest(uid, 30.0))
        assert not result.ok
        assert result.error == ERROR_NO_FEASIBLE_CONFIG
        batch = service.decide_batch(
            [DecisionRequest(u, 30.0) for u in service.kernel_uids]
        )
        assert [r.error for r in batch] == [ERROR_NO_FEASIBLE_CONFIG] * 2
        # Re-admitting the configurations restores service.
        service.clear_quarantine()
        assert set(service.snapshot.tables) == set(service.kernel_uids)
        assert service.decide(DecisionRequest(uid, 30.0)).ok


# ---------------------------------------------------------------------------
# Fault-plan degradation: requests degrade, batches never fail
# ---------------------------------------------------------------------------


class TestFaultDegradation:
    def test_faulted_sampling_degrades_requests_not_batches(self):
        service = build_default_service(
            seed=0, fault_plan=PLAN_DIR / "sensor_dropout.json"
        )
        uids = service.kernel_uids[:8]
        retries_before = counter_value("faults.retries")
        corrupt_before = counter_value("faults.corrupt_samples")
        assert service.warm(uids) == {}
        moved = (
            counter_value("faults.retries") - retries_before,
            counter_value("faults.corrupt_samples") - corrupt_before,
        )
        assert any(delta > 0 for delta in moved)
        results = service.decide_batch(
            [DecisionRequest(uid, 25.0) for uid in uids]
        )
        assert all(r.ok for r in results)


# ---------------------------------------------------------------------------
# Golden equivalence with the cross-validated evaluation
# ---------------------------------------------------------------------------


class TestGoldenEquivalence:
    def test_server_decisions_match_loocv_model_records(self, suite):
        report = run_loocv(seed=0)
        benchmarks = list(suite.benchmarks())
        fold_i, benchmark = 0, benchmarks[0]
        test_kernels = suite.for_benchmark(benchmark)

        # The fold's online noise stream, re-derived exactly as
        # run_loocv spawns it (first of the fold's four spawned
        # streams); sample noise is counter-based per (kernel, config,
        # repetition), so a fresh library replays the fold's draws.
        online_ss = (
            np.random.SeedSequence(0).spawn(len(benchmarks))[fold_i].spawn(4)[0]
        )
        apu = TrinityAPU(seed=0)
        service = DecisionService(
            report.fold_models[benchmark],
            ProfilingLibrary(apu, seed=online_ss),
            kernels=test_kernels,
        )
        assert service.warm() == {}

        oracle = Oracle(apu)
        requests = []
        expected = []
        model_records = {
            (r.kernel_uid, r.power_cap_w): r
            for r in report.records
            if r.method == "Model" and r.benchmark == benchmark
        }
        for kernel in test_kernels:
            for cap in oracle.caps_for(kernel):
                requests.append(DecisionRequest(kernel.uid, cap))
                expected.append(model_records[(kernel.uid, cap)].config)
        assert requests  # the fold is non-trivial

        results = service.decide_batch(requests)
        assert all(r.ok for r in results)
        assert [r.config for r in results] == expected
