"""Tests for repro.evaluation.accuracy (on a reduced two-benchmark suite)."""

import numpy as np
import pytest

from repro.evaluation import AccuracyReport, KernelAccuracy, evaluate_prediction_accuracy
from repro.workloads import Suite, build_suite


@pytest.fixture(scope="module")
def mini_suite():
    """CoMD + LU only: a fast two-fold cross-validation."""
    full = build_suite()
    kernels = tuple(
        k for k in full if k.benchmark in ("CoMD", "LU")
    )
    return Suite(kernels=kernels)


@pytest.fixture(scope="module")
def report(mini_suite):
    return evaluate_prediction_accuracy(mini_suite, seed=0, n_clusters=3)


class TestEvaluatePredictionAccuracy:
    def test_every_kernel_scored_once(self, mini_suite, report):
        assert len(report.kernels) == len(mini_suite)
        uids = [k.kernel_uid for k in report.kernels]
        assert len(set(uids)) == len(uids)

    def test_error_fields_valid(self, report):
        for k in report.kernels:
            assert 0.0 <= k.power_mape <= k.power_max_ape
            assert 0.0 <= k.perf_mape <= k.perf_max_ape
            assert -1.0 <= k.power_rank_tau <= 1.0
            assert -1.0 <= k.perf_rank_tau <= 1.0

    def test_reasonable_accuracy_on_mini_suite(self, report):
        assert report.mean("power_mape") < 0.15
        assert report.mean("perf_rank_tau") > 0.6

    def test_clusters_within_range(self, report):
        for k in report.kernels:
            assert 0 <= k.cluster < 3


class TestAccuracyReport:
    def _report(self):
        return AccuracyReport(
            kernels=[
                KernelAccuracy("a", 0, 0.1, 0.2, 0.3, 0.4, 0.9, 0.8),
                KernelAccuracy("b", 1, 0.3, 0.4, 0.5, 0.6, 0.7, 0.6),
            ]
        )

    def test_mean_and_worst(self):
        r = self._report()
        assert r.mean("power_mape") == pytest.approx(0.2)
        assert r.worst("power_mape") == pytest.approx(0.3)
        # For tau fields, "worst" means the minimum correlation.
        assert r.worst("perf_rank_tau") == pytest.approx(0.6)

    def test_summary_text(self):
        text = self._report().summary()
        assert "MAPE" in text and "rank tau" in text


class TestDeterminism:
    def test_same_seed_same_report(self, mini_suite):
        a = evaluate_prediction_accuracy(mini_suite, seed=3, n_clusters=2)
        b = evaluate_prediction_accuracy(mini_suite, seed=3, n_clusters=2)
        for ka, kb in zip(a.kernels, b.kernels):
            assert ka == kb

    def test_different_seed_different_measurements(self, mini_suite):
        a = evaluate_prediction_accuracy(mini_suite, seed=3, n_clusters=2)
        b = evaluate_prediction_accuracy(mini_suite, seed=4, n_clusters=2)
        diffs = [
            abs(ka.power_mape - kb.power_mape)
            for ka, kb in zip(a.kernels, b.kernels)
        ]
        assert max(diffs) > 0.0
