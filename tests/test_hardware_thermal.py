"""Tests for the thermal model and opportunistic overclocking (paper §VI)."""

import pytest

from repro.hardware import (
    BoostPolicy,
    Configuration,
    NoiseModel,
    ThermalModel,
    TrinityAPU,
)
from tests.conftest import make_kernel


class TestThermalModel:
    def test_steady_temp_linear_in_power(self):
        tm = ThermalModel(ambient_c=40.0, r_th_c_per_w=1.0, t_max_c=80.0)
        assert tm.steady_temp_c(0.0) == pytest.approx(40.0)
        assert tm.steady_temp_c(20.0) == pytest.approx(60.0)

    def test_headroom(self):
        tm = ThermalModel(ambient_c=40.0, r_th_c_per_w=1.0, t_max_c=80.0)
        assert tm.headroom_w(20.0) == pytest.approx(20.0)
        assert tm.headroom_w(50.0) == pytest.approx(-10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(r_th_c_per_w=0.0)
        with pytest.raises(ValueError):
            ThermalModel(ambient_c=80.0, t_max_c=70.0)
        with pytest.raises(ValueError):
            ThermalModel().steady_temp_c(-1.0)


class TestBoostPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoostPolicy(boost_freq_ghz=3.0)  # must exceed top P-state
        with pytest.raises(ValueError):
            BoostPolicy(extra_power_w_at_full=-1.0)
        with pytest.raises(ValueError):
            BoostPolicy().evaluate(20.0, 4, 1.5)
        with pytest.raises(ValueError):
            BoostPolicy().evaluate(20.0, 0, 0.5)

    def test_full_boost_with_headroom(self):
        policy = BoostPolicy(
            boost_freq_ghz=4.2,
            thermal=ThermalModel(ambient_c=40, r_th_c_per_w=0.5, t_max_c=80),
            extra_power_w_at_full=8.0,
        )
        # 20 W base -> 50 C, 60 W of headroom >> 8 W boost cost.
        out = policy.evaluate(20.0, 4, compute_fraction=1.0)
        assert out.duty_cycle == pytest.approx(1.0)
        assert out.effective_freq_ghz == pytest.approx(4.2)
        assert out.time_scale == pytest.approx(3.7 / 4.2)
        assert out.power_delta_w == pytest.approx(8.0)

    def test_no_boost_when_hot(self):
        policy = BoostPolicy(
            thermal=ThermalModel(ambient_c=40, r_th_c_per_w=1.0, t_max_c=70)
        )
        out = policy.evaluate(35.0, 4, compute_fraction=1.0)  # already 75 C
        assert out.duty_cycle == 0.0
        assert out.time_scale == pytest.approx(1.0)
        assert out.power_delta_w == 0.0

    def test_partial_boost_duty_cycle(self):
        policy = BoostPolicy(
            thermal=ThermalModel(ambient_c=40, r_th_c_per_w=1.0, t_max_c=70),
            extra_power_w_at_full=8.0,
        )
        # 26 W base -> 66 C, 4 W headroom vs 8 W boost cost: 50% duty.
        out = policy.evaluate(26.0, 4, compute_fraction=1.0)
        assert out.duty_cycle == pytest.approx(0.5)
        assert 3.7 < out.effective_freq_ghz < 4.2

    def test_memory_bound_kernel_gains_no_time(self):
        policy = BoostPolicy()
        out = policy.evaluate(15.0, 4, compute_fraction=0.0)
        assert out.time_scale == pytest.approx(1.0)  # boost can't help
        assert out.duty_cycle > 0  # but it still engages (and costs power)

    def test_fewer_cores_cost_less_boost_power(self):
        policy = BoostPolicy(extra_power_w_at_full=8.0)
        one = policy.evaluate(15.0, 1, 1.0)
        four = policy.evaluate(15.0, 4, 1.0)
        assert one.power_delta_w < four.power_delta_w


class TestBoostOnMachine:
    def _apus(self):
        base = TrinityAPU(noise=NoiseModel.exact(), seed=0)
        boosted = TrinityAPU(
            noise=NoiseModel.exact(), seed=0, boost=BoostPolicy()
        )
        return base, boosted

    def test_boost_only_at_top_pstate_cpu(self):
        base, boosted = self._apus()
        k = make_kernel(mem_fraction=0.1, activity=0.6)
        # Top CPU P-state: boosted machine is faster and hungrier.
        top = Configuration.cpu(3.7, 4)
        assert boosted.true_time_s(k, top) < base.true_time_s(k, top)
        assert boosted.true_total_power_w(k, top) > base.true_total_power_w(k, top)
        # Lower P-states and GPU configs are untouched.
        for cfg in (Configuration.cpu(2.4, 4), Configuration.gpu(0.819, 3.7)):
            assert boosted.true_time_s(k, cfg) == pytest.approx(
                base.true_time_s(k, cfg)
            )
            assert boosted.true_total_power_w(k, cfg) == pytest.approx(
                base.true_total_power_w(k, cfg)
            )

    def test_hot_kernel_does_not_boost(self):
        base, boosted = self._apus()
        hot = make_kernel(activity=1.5, vector_fraction=0.9, dram_intensity=0.9)
        top = Configuration.cpu(3.7, 4)
        assert boosted.true_time_s(hot, top) == pytest.approx(
            base.true_time_s(hot, top)
        )

    def test_cool_kernel_boosts_more_than_warm(self):
        base, boosted = self._apus()
        cool = make_kernel(activity=0.4, mem_fraction=0.1)
        # Warm: close enough to the thermal limit for a partial duty cycle.
        warm = make_kernel(activity=0.55, mem_fraction=0.1)
        top = Configuration.cpu(3.7, 4)

        def speedup(k):
            return base.true_time_s(k, top) / boosted.true_time_s(k, top)

        assert speedup(cool) > speedup(warm) > 1.0

    def test_boost_visible_in_measurements(self):
        base, boosted = self._apus()
        k = make_kernel(mem_fraction=0.1, activity=0.6)
        top = Configuration.cpu(3.7, 4)
        m_base = base.run(k, top)
        m_boost = boosted.run(k, top)
        assert m_boost.time_s < m_base.time_s
