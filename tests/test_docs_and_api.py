"""Documentation and public-API integrity checks.

Keeps the docs honest: every file path referenced in the markdown docs
must exist, every experiment promised in DESIGN.md's index must have its
benchmark, and every name exported via ``__all__`` must resolve.
"""

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.cluster",
    "repro.core",
    "repro.evaluation",
    "repro.hardware",
    "repro.methods",
    "repro.profiling",
    "repro.runtime",
    "repro.server",
    "repro.stats",
    "repro.telemetry",
    "repro.workloads",
]

MODULES = [
    "repro.cli",
    "repro.constants",
    "repro.cluster.allocation",
    "repro.cluster.faults",
    "repro.cluster.manager",
    "repro.cluster.node",
    "repro.cluster.pool",
    "repro.cluster.tree",
    "repro.core.characterization",
    "repro.core.classifier",
    "repro.core.clustering",
    "repro.core.dissimilarity",
    "repro.core.features",
    "repro.core.frontier",
    "repro.core.io",
    "repro.core.model",
    "repro.core.predictor",
    "repro.core.regression",
    "repro.core.sample_configs",
    "repro.core.scheduler",
    "repro.evaluation.accuracy",
    "repro.evaluation.experiments",
    "repro.evaluation.harness",
    "repro.evaluation.loocv",
    "repro.evaluation.metrics",
    "repro.evaluation.reporting",
    "repro.evaluation.sensitivity",
    "repro.hardware.apu",
    "repro.hardware.config",
    "repro.hardware.counters",
    "repro.hardware.hybrid",
    "repro.hardware.kernelmodel",
    "repro.hardware.noise",
    "repro.hardware.power",
    "repro.hardware.presets",
    "repro.hardware.pstates",
    "repro.hardware.rapl",
    "repro.hardware.thermal",
    "repro.methods.base",
    "repro.methods.freq_limit",
    "repro.methods.model_method",
    "repro.methods.oracle",
    "repro.methods.search",
    "repro.profiling.io",
    "repro.profiling.library",
    "repro.profiling.records",
    "repro.profiling.sampler",
    "repro.runtime.adaptive",
    "repro.runtime.application",
    "repro.runtime.energy",
    "repro.runtime.trace",
    "repro.server.batching",
    "repro.server.config",
    "repro.server.engine",
    "repro.server.loadgen",
    "repro.server.service",
    "repro.stats.agglomerative",
    "repro.stats.cart",
    "repro.stats.crossval",
    "repro.stats.kendall",
    "repro.stats.kmedoids",
    "repro.stats.ols",
    "repro.telemetry.logs",
    "repro.telemetry.registry",
    "repro.telemetry.report",
    "repro.telemetry.spans",
    "repro.workloads.comd",
    "repro.workloads.families",
    "repro.workloads.kernel",
    "repro.workloads.lu",
    "repro.workloads.lulesh",
    "repro.workloads.microbench",
    "repro.workloads.smc",
    "repro.workloads.suite",
]


class TestPublicAPI:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), f"{name} lacks __all__"
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", MODULES)
    def test_module_importable_and_documented(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__, f"{name} lacks a module docstring"


class TestDocIntegrity:
    def _referenced_paths(self, markdown: str) -> set[str]:
        """File paths mentioned in backticks or markdown links."""
        paths = set()
        for match in re.findall(r"`([\w./-]+\.(?:py|md|json|txt|toml))`", markdown):
            paths.add(match)
        for match in re.findall(r"\]\(([\w./-]+\.md)\)", markdown):
            paths.add(match)
        return paths

    @pytest.mark.parametrize(
        "doc",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/PAPER_MAPPING.md",
         "docs/ARCHITECTURE.md", "docs/OBSERVABILITY.md", "docs/CLUSTER.md",
         "docs/SERVER.md", "examples/README.md"],
    )
    def test_referenced_files_exist(self, doc):
        doc_path = REPO / doc
        text = doc_path.read_text(encoding="utf-8")
        missing = []
        for ref in self._referenced_paths(text):
            if ref.startswith(("model.json", "m.json", "artifacts",
                               "telemetry.json", "monitor.json",
                               "slos.json", "before.json", "after.json")):
                continue  # illustrative output paths, not repo files
            if ref.startswith("/"):
                continue  # HTTP endpoint paths (e.g. `/monitor.json`)
            candidates = [
                REPO / ref,
                doc_path.parent / ref,
                REPO / "benchmarks" / ref,
                REPO / "src" / ref,
                REPO / "src" / "repro" / ref,
            ]
            # Bare module files referenced by stem (e.g. `suite.py`).
            if "/" not in ref:
                candidates.extend(REPO.rglob(ref))
            if not any(p.exists() for p in candidates):
                missing.append(ref)
        assert not missing, f"{doc} references missing files: {missing}"

    def test_design_experiment_index_benchmarks_exist(self):
        text = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for name in re.findall(r"benchmarks/(test_bench_\w+\.py)", text):
            assert (REPO / "benchmarks" / name).exists(), name

    def test_every_benchmark_is_indexed_somewhere(self):
        """Each benchmark file appears in DESIGN.md or EXPERIMENTS.md."""
        docs = (REPO / "DESIGN.md").read_text() + (
            REPO / "EXPERIMENTS.md"
        ).read_text()
        for path in (REPO / "benchmarks").glob("test_bench_*.py"):
            assert path.name in docs, f"{path.name} not documented"
