"""Continuous monitoring layer: ring buffer, SLOs, exporters, top view."""

import json
import pathlib
import threading
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import counter, gauge, histogram, set_enabled
from repro.telemetry.monitor import (
    Monitor,
    SLOEngine,
    SLOSpec,
    TimeSeriesStore,
    default_cluster_slos,
    default_fault_slos,
    default_server_slos,
    fetch_monitor_dump,
    load_slo_specs,
    parse_slo,
    render_prometheus,
    render_top,
    sample_to_jsonl,
)
from repro.telemetry.monitor.exemplars import (
    ExemplarStore,
    RequestExemplar,
    activate,
    active_store,
    deactivate,
    record_error,
    record_shed,
    record_slow,
)
from repro.telemetry.registry import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    estimate_percentiles,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test starts and ends with empty, enabled telemetry and no
    attached exemplar store."""
    telemetry.reset()
    set_enabled(True)
    deactivate()
    yield
    telemetry.reset()
    set_enabled(True)
    deactivate()


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


def make_store(**kwargs) -> tuple[TimeSeriesStore, FakeClock]:
    clock = FakeClock()
    store = TimeSeriesStore(clock=clock, **kwargs)
    return store, clock


# -- time series ring -----------------------------------------------------------


class TestTimeSeriesStore:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(capacity=1)

    def test_wraparound_keeps_newest(self):
        store, clock = make_store(capacity=5)
        for _ in range(12):
            clock.advance(1.0)
            store.sample()
        assert len(store) == 5
        samples = store.samples()
        assert [s.t for s in samples] == [8.0, 9.0, 10.0, 11.0, 12.0]
        # Monotone global indices survive the wrap.
        assert [s.index for s in samples] == [7, 8, 9, 10, 11]

    def test_window_judged_on_ring_clock(self):
        store, clock = make_store()
        for _ in range(10):
            clock.advance(1.0)
            store.sample()
        assert len(store.samples(3.0)) == 4  # t in [7, 10]
        assert len(store.samples()) == 10

    def test_counter_increase_and_rate(self):
        c = counter("mon.t.reqs")
        store, clock = make_store()
        for i in range(5):
            c.inc(10)
            clock.advance(2.0)
            store.sample()
        # 4 pair deltas of 10 over an 8 s span.
        assert store.counter_increase("mon.t.reqs") == 40
        assert store.counter_rate("mon.t.reqs") == pytest.approx(5.0)

    def test_counter_increase_across_reset(self):
        """A registry reset mid-window must not produce a negative
        increase: the post-reset cumulative value is the pair's delta
        (Prometheus ``increase`` semantics)."""
        c = counter("mon.t.reset")
        store, clock = make_store()
        c.inc(100)
        clock.advance(1.0)
        store.sample()
        telemetry.get_registry().reset()
        c = counter("mon.t.reset")
        c.inc(7)
        clock.advance(1.0)
        store.sample()
        assert store.counter_increase("mon.t.reset") == 7
        assert store.counter_rate("mon.t.reset") == pytest.approx(7.0)

    def test_too_few_samples_abstain(self):
        store, clock = make_store()
        assert store.counter_increase("x") is None
        assert store.counter_rate("x") is None
        assert store.gauge_value("x") is None
        assert store.histogram_window("x") is None
        assert store.percentile("x", 99) is None
        clock.advance(1.0)
        store.sample()
        assert store.counter_increase("x") is None

    def test_gauge_value_is_latest(self):
        g = gauge("mon.t.depth")
        store, clock = make_store()
        g.set(3.0)
        clock.advance(1.0)
        store.sample()
        g.set(9.0)
        clock.advance(1.0)
        store.sample()
        assert store.gauge_value("mon.t.depth") == 9.0

    def test_histogram_window_delta_and_percentile(self):
        h = histogram("mon.t.lat")
        store, clock = make_store()
        clock.advance(1.0)
        store.sample()
        for v in (0.001, 0.001, 0.001, 0.1):
            h.observe(v)
        clock.advance(1.0)
        store.sample()
        delta = store.histogram_window("mon.t.lat")
        assert delta.count == 4
        assert delta.sum == pytest.approx(0.103)
        assert sum(delta.buckets) == 4
        p50 = store.percentile("mon.t.lat", 50)
        p99 = store.percentile("mon.t.lat", 99)
        # p50 sits in 0.001's bucket, p99 in 0.1's.
        assert 0.0003 < p50 < 0.0032
        assert 0.03 < p99 <= 0.32

    def test_histogram_window_across_reset(self):
        """Reset detection keys off the cumulative count decreasing
        (like Prometheus, a reset that climbs past the old count within
        one interval is indistinguishable from normal growth)."""
        h = histogram("mon.t.hr")
        store, clock = make_store()
        for _ in range(3):
            h.observe(1.0)
        clock.advance(1.0)
        store.sample()
        telemetry.get_registry().reset()
        h = histogram("mon.t.hr")
        h.observe(2.0)
        h.observe(2.0)
        clock.advance(1.0)
        store.sample()
        delta = store.histogram_window("mon.t.hr")
        assert delta.count == 2
        assert delta.sum == pytest.approx(4.0)

    def test_disabled_sampling_is_noop(self):
        store, clock = make_store()
        set_enabled(False)
        clock.advance(1.0)
        assert store.sample() is None
        assert len(store) == 0

    def test_dump_round_trip(self):
        c = counter("mon.t.rt")
        store, clock = make_store(capacity=8)
        for _ in range(3):
            c.inc(5)
            clock.advance(1.0)
            store.sample()
        dump = store.dump()
        clone = TimeSeriesStore.from_dump(json.loads(json.dumps(dump)))
        assert len(clone) == 3
        assert clone.counter_increase("mon.t.rt") == 10
        assert clone.latest().t == store.latest().t


# -- percentile estimation ------------------------------------------------------


class TestPercentiles:
    def test_summary_percentiles_ordered_and_clamped(self):
        h = histogram("mon.p.h")
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1..100 ms
        s = h.summary()
        assert s["p50"] <= s["p90"] <= s["p99"]
        # Clamped to the observed range, never past max.
        assert s["min"] <= s["p50"]
        assert s["p99"] <= s["max"]

    def test_empty_summary_has_no_percentiles(self):
        h = histogram("mon.p.empty")
        s = h.summary()
        assert "p50" not in s and "p99" not in s

    def test_estimate_handles_overflow_bucket(self):
        buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        buckets[-1] = 10  # everything above the largest bound
        (p99,) = estimate_percentiles(buckets, (99,))
        assert p99 >= BUCKET_BOUNDS[-1]

    def test_estimate_empty_is_nan(self):
        (p,) = estimate_percentiles([0] * (len(BUCKET_BOUNDS) + 1), (50,))
        assert p != p


# -- SLO engine -----------------------------------------------------------------


def engine_with(store, *specs):
    return SLOEngine(specs, store)


class TestSLO:
    def test_parse_explicit_and_default_signal(self):
        s = parse_slo("server.latency_s p99 < 0.005")
        assert (s.metric, s.signal, s.op, s.threshold) == (
            "server.latency_s", "p99", "<", 0.005,
        )
        s = parse_slo("server.queue_depth < 512")
        assert s.signal == "value"
        assert s.expr == "server.queue_depth value < 512"

    @pytest.mark.parametrize(
        "expr", ["too few", "a b c d e", "m p99 < nope", "m p77 < 1"]
    )
    def test_parse_rejects_malformed(self, expr):
        with pytest.raises(ValueError):
            parse_slo(expr)

    def test_spec_validates_windows_and_duplicates(self):
        with pytest.raises(ValueError):
            SLOSpec(
                name="bad", metric="m", signal="rate", op="<",
                threshold=1.0, short_window_s=10.0, long_window_s=5.0,
            )
        store, _ = make_store()
        spec = parse_slo("m rate == 0", name="dup")
        with pytest.raises(ValueError):
            SLOEngine([spec, spec], store)

    def test_load_specs_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps([
            {"expr": "server.shed rate == 0", "short_window_s": 2,
             "long_window_s": 8},
            {"expr": "server.latency_s p99 < 0.01", "name": "lat"},
        ]))
        specs = load_slo_specs(path)
        assert [s.name for s in specs] == ["server-shed", "lat"]
        assert specs[0].long_window_s == 8.0
        with pytest.raises(ValueError):
            bad = tmp_path / "bad.json"
            bad.write_text("{}")
            load_slo_specs(bad)

    def test_empty_window_abstains(self):
        """No samples at all: evaluation neither fires nor clears."""
        store, _ = make_store()
        engine = engine_with(store, parse_slo("c rate == 0"))
        assert engine.evaluate() == []
        assert engine.alerts[0].state == "ok"

    def test_partial_window_abstains(self):
        """One sample (rate undefined) leaves alert state untouched."""
        c = counter("mon.s.c")
        store, clock = make_store()
        c.inc(100)
        clock.advance(1.0)
        store.sample()
        engine = engine_with(
            store, parse_slo("mon.s.c rate == 0", short_window_s=1,
                             long_window_s=2)
        )
        assert engine.evaluate() == []
        assert engine.alerts[0].state == "ok"

    def test_fire_needs_both_windows_then_clears_on_short(self):
        c = counter("mon.s.burn")
        store, clock = make_store()
        spec = parse_slo(
            "mon.s.burn rate == 0", short_window_s=2, long_window_s=6
        )
        engine = engine_with(store, spec)
        # Build a clean baseline longer than the long window.
        for _ in range(8):
            clock.advance(1.0)
            store.sample()
            engine.evaluate()
        assert engine.alerts[0].state == "ok"
        # Start burning: both windows must violate before it fires.
        events = []
        for _ in range(8):
            c.inc(5)
            clock.advance(1.0)
            store.sample()
            events += engine.evaluate()
        assert engine.alerts[0].state == "firing"
        assert [e["event"] for e in events] == ["fired"]
        assert engine.active == 1
        # Stop burning: clears as soon as the short window is clean.
        for _ in range(4):
            clock.advance(1.0)
            store.sample()
            events += engine.evaluate()
        assert engine.alerts[0].state == "ok"
        assert [e["event"] for e in events] == ["fired", "cleared"]
        assert engine.active == 0
        # Transition counters mirror the history.
        snap = telemetry.get_registry().snapshot()["counters"]
        assert snap["alerts.fired.mon-s-burn"] == 1
        assert snap["alerts.cleared.mon-s-burn"] == 1

    def test_value_signal_gauge_slo(self):
        g = gauge("mon.s.over")
        store, clock = make_store()
        engine = engine_with(
            store, parse_slo("mon.s.over <= 0", short_window_s=1,
                             long_window_s=1)
        )
        g.set(0.0)
        clock.advance(1.0)
        store.sample()
        engine.evaluate()
        assert engine.alerts[0].state == "ok"
        g.set(4.5)
        clock.advance(1.0)
        store.sample()
        engine.evaluate()
        assert engine.alerts[0].state == "firing"
        g.set(0.0)
        clock.advance(1.0)
        store.sample()
        engine.evaluate()
        assert engine.alerts[0].state == "ok"

    def test_default_slo_sets(self):
        assert {s.metric for s in default_fault_slos()} == {
            "faults.retries", "faults.sample_fallbacks",
            "faults.failed_invocations", "faults.corrupt_samples",
            "faults.stuck_executions", "faults.quarantined_configs",
        }
        names = [s.name for s in default_server_slos()]
        assert "server-latency-p99" in names
        assert "server-shed" in names
        assert len(names) == len(set(names))
        assert [s.name for s in default_cluster_slos()] == [
            "cluster-over-budget", "cluster-epochs-degraded",
        ]


# -- exemplars ------------------------------------------------------------------


class TestExemplars:
    def test_slow_topk_displaces_fastest(self):
        store = ExemplarStore(k_per_kind=2)
        activate(store)
        for ms in (1.0, 5.0, 3.0, 0.5):
            record_slow("k", 20.0, ms / 1e3)
        kept = sorted(
            e.latency_s for e in store if e.kind == "slow"
        )
        assert kept == [0.003, 0.005]
        assert store.count("slow") == 2

    def test_shed_and_error_first_k(self):
        store = ExemplarStore(k_per_kind=2)
        activate(store)
        for _ in range(5):
            record_shed("k", 20.0)
        record_error("k", 20.0, "unknown_kernel")
        assert store.count("shed") == 2
        assert store.count("error") == 1
        snap = store.snapshot()
        assert snap["current"]["dropped"] == 3

    def test_rotate_bounds_history_and_skips_empty(self):
        store = ExemplarStore(k_per_kind=1, max_windows=2)
        activate(store)
        for t in range(5):
            record_shed("k", 20.0)
            store.rotate(float(t))
            store.rotate(float(t))  # empty double-rotate is a no-op
        snap = store.snapshot()
        assert len(snap["windows"]) == 2
        assert [w["t"] for w in snap["windows"]] == [3.0, 4.0]

    def test_hooks_noop_without_store_or_disabled(self):
        record_slow("k", 20.0, 1.0)  # no store attached: no crash
        store = ExemplarStore()
        activate(store)
        set_enabled(False)
        assert active_store() is None
        record_slow("k", 20.0, 1.0)
        set_enabled(True)
        assert store.count() == 0

    def test_trace_rides_along_in_dicts(self):
        from repro.telemetry import PhaseTrace

        trace = PhaseTrace(max_phases=2)
        trace.add("queued", 0.0, 0.5)
        trace.add("decide", 0.5, 0.2)
        trace.add("extra", 0.7, 0.1)  # past the bound
        ex = RequestExemplar(
            "slow", kernel_uid="k", power_cap_w=20.0, latency_s=0.7,
            trace=trace,
        )
        d = ex.to_dict()
        assert [p["name"] for p in d["trace"]["phases"]] == [
            "queued", "decide",
        ]
        assert d["trace"]["truncated"] == 1


# -- exporters ------------------------------------------------------------------


class TestExporters:
    def make_snapshot(self):
        r = MetricsRegistry()
        r.counter("server.requests").inc(1234)
        r.counter("faults.retries")
        r.gauge("server.queue_depth").set(17.0)
        h = r.histogram("server.latency_s")
        for v in (0.0005, 0.0005, 0.002, 0.03):
            h.observe(v)
        return r.snapshot()

    def test_prometheus_matches_golden_fixture(self):
        text = render_prometheus(self.make_snapshot())
        golden = (GOLDEN / "prometheus_fixture.txt").read_text()
        assert text == golden

    def test_prometheus_consistency_with_snapshot(self):
        snap = self.make_snapshot()
        text = render_prometheus(snap)
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        assert lines["repro_server_requests_total"] == "1234"
        assert lines["repro_server_queue_depth"] == "17"
        assert lines["repro_server_latency_s_count"] == "4"
        assert float(lines["repro_server_latency_s_sum"]) == (
            pytest.approx(0.033)
        )
        # The +Inf cumulative bucket always equals the count.
        assert lines['repro_server_latency_s_bucket{le="+Inf"}'] == "4"

    def test_jsonl_line_round_trips(self):
        c = counter("mon.e.c")
        c.inc(3)
        store, clock = make_store()
        clock.advance(1.0)
        sample = store.sample()
        line = sample_to_jsonl(sample)
        assert "\n" not in line
        parsed = json.loads(line)
        assert parsed["t"] == 1.0
        assert parsed["counters"]["mon.e.c"] == 3


# -- the Monitor service --------------------------------------------------------


class TestMonitor:
    def test_tick_samples_evaluates_rotates(self, tmp_path):
        c = counter("mon.m.c")
        clock = FakeClock()
        jsonl = tmp_path / "samples.jsonl"
        mon = Monitor(
            slos=[parse_slo("mon.m.c rate == 0", short_window_s=1,
                            long_window_s=2)],
            clock=clock,
            jsonl=jsonl,
        )
        try:
            transitions = []
            for _ in range(4):
                c.inc(5)
                clock.advance(1.0)
                transitions += mon.tick()
            assert len(mon.store) == 4
            assert [e["event"] for e in transitions] == ["fired"]
            dump = mon.dump()
            assert dump["slo"]["alerts"][0]["state"] == "firing"
            lines = jsonl.read_text().strip().splitlines()
            assert len(lines) == 4
        finally:
            mon.close()

    def test_disabled_tick_is_noop(self):
        mon = Monitor(slos=[parse_slo("x rate == 0")])
        try:
            set_enabled(False)
            assert mon.tick() == []
            assert len(mon.store) == 0
            assert mon.latest() is None
        finally:
            set_enabled(True)
            mon.close()

    def test_monitor_attaches_and_detaches_exemplars(self):
        mon = Monitor()
        assert active_store() is mon.exemplars
        mon.close()
        assert active_store() is None

    def test_write_dump_and_render_top(self, tmp_path):
        c = counter("server.requests")
        g = gauge("server.queue_depth")
        h = histogram("server.latency_s")
        clock = FakeClock()
        mon = Monitor(clock=clock)
        try:
            record_slow("LU/Small/LUDecomposition", 20.0, 0.004,
                        batch_size=3)
            for i in range(3):
                c.inc(100)
                g.set(float(i))
                h.observe(0.001)
                clock.advance(1.0)
                mon.tick()
            path = mon.write_dump(tmp_path / "mon.json")
            dump = json.loads(path.read_text())
            text = render_top(dump, window_s=2.0)
            assert "server.requests" in text
            assert "100.0/s" in text
            assert "LU/Small/LUDecomposition" in text
        finally:
            mon.close()

    def test_http_endpoints(self):
        c = counter("mon.h.c")
        c.inc(9)
        clock = FakeClock()
        mon = Monitor(slos=[parse_slo("mon.h.c rate == 0")], clock=clock)
        try:
            port = mon.serve(0)
            clock.advance(1.0)
            mon.tick()
            base = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(f"{base}/healthz") as r:
                assert r.read() == b"ok\n"
            with urllib.request.urlopen(f"{base}/metrics") as r:
                body = r.read().decode()
            assert "repro_mon_h_c_total 9" in body
            # The scraped series must match the live registry snapshot.
            snap = mon.registry_snapshot()
            assert f"repro_slo_evaluations_total "\
                   f"{snap['counters']['slo.evaluations']}" in body
            dump = fetch_monitor_dump(f"127.0.0.1:{port}")
            assert len(dump["timeseries"]["samples"]) == 1
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{base}/nope")
            assert exc.value.code == 404
        finally:
            mon.close()

    def test_start_stop_background_thread(self):
        mon = Monitor()
        mon.start(interval_s=0.01)
        with pytest.raises(RuntimeError):
            mon.start(interval_s=0.01)
        deadline = threading.Event()
        deadline.wait(0.15)
        mon.close()
        assert len(mon.store) >= 2


# -- cluster epoch integration --------------------------------------------------


class TestClusterMonitor:
    def test_epoch_gauges_and_over_budget_cycle(self):
        """A managed run with a budget squeeze drives the over-budget
        SLO through fire and clear on the epoch clock."""
        manager = _tiny_manager()
        floors = sum(
            f.points[0].expected_power_w
            for f in manager.frontiers().values()
        )
        budgets = [floors * m for m in (1.5, 1.5, 0.5, 0.5, 1.5, 1.5)]
        mon = Monitor(slos=default_cluster_slos(
            short_window_s=1.0, long_window_s=2.0
        ))
        try:
            report = manager.run(
                budgets, n_epochs=6, timesteps_per_epoch=1, monitor=mon
            )
            snap = telemetry.get_registry().snapshot()
            assert snap["counters"]["cluster.epochs"] == 6
            assert snap["gauges"]["cluster.epoch.nodes"] == 2.0
            events = [
                (e["slo"], e["event"])
                for e in mon.slo_engine.history
            ]
            assert ("cluster-over-budget", "fired") in events
            assert ("cluster-over-budget", "cleared") in events
            assert 0.0 < report.budget_compliance() < 1.0
        finally:
            mon.close()


def _tiny_manager():
    from repro.cluster import ClusterNode, ClusterPowerManager
    from repro.core import train_model
    from repro.hardware import TrinityAPU
    from repro.profiling import ProfilingLibrary
    from repro.runtime import Application
    from repro.workloads import build_suite

    suite = build_suite()
    keep = sorted({k.benchmark for k in suite})[:3]
    kernels = [k for k in suite if k.benchmark in keep]
    apu = TrinityAPU(seed=0)
    model = train_model(
        ProfilingLibrary(apu, seed=0), kernels, n_clusters=3
    )
    groups = sorted({k.group for k in kernels})
    return ClusterPowerManager(
        [
            ClusterNode(
                f"n{i}",
                Application.from_suite(suite, g),
                model,
                seed=i + 1,
            )
            for i, g in enumerate(groups[:2])
        ],
        policy="greedy",
    )
