"""Tests for repro.core.frontier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParetoFrontier
from repro.core.frontier import FrontierPoint
from repro.hardware import Configuration, Measurement, NoiseModel, TrinityAPU
from repro.workloads import build_suite


def _point(power, perf, cfg=None):
    return FrontierPoint(
        config=cfg or Configuration.cpu(1.4, 1), power_w=power, performance=perf
    )


def _configs(n):
    """n distinct configurations."""
    space = list(TrinityAPU().config_space)
    return space[:n]


def test_dominated_points_removed():
    cfgs = _configs(3)
    pts = [
        _point(10.0, 1.0, cfgs[0]),
        _point(12.0, 0.5, cfgs[1]),  # dominated: more power, less perf
        _point(15.0, 2.0, cfgs[2]),
    ]
    f = ParetoFrontier(pts)
    assert len(f) == 2
    assert f[0].power_w == 10.0 and f[1].power_w == 15.0


def test_equal_perf_higher_power_dominated():
    cfgs = _configs(2)
    f = ParetoFrontier([_point(10.0, 1.0, cfgs[0]), _point(12.0, 1.0, cfgs[1])])
    assert len(f) == 1
    assert f[0].power_w == 10.0


def test_equal_power_keeps_best_perf():
    cfgs = _configs(2)
    f = ParetoFrontier([_point(10.0, 1.0, cfgs[0]), _point(10.0, 2.0, cfgs[1])])
    assert len(f) == 1
    assert f[0].performance == 2.0


def test_frontier_sorted_and_strictly_increasing():
    suite = build_suite()
    apu = TrinityAPU(noise=NoiseModel.exact())
    k = suite.get("LULESH/Small/CalcFBHourglassForce")
    f = ParetoFrontier.from_measurements(apu.run_all_configs(k))
    powers = [p.power_w for p in f]
    perfs = [p.performance for p in f]
    assert powers == sorted(powers)
    assert all(perfs[i] < perfs[i + 1] for i in range(len(perfs) - 1))


def test_best_under_cap():
    cfgs = _configs(3)
    f = ParetoFrontier(
        [_point(10.0, 1.0, cfgs[0]), _point(20.0, 2.0, cfgs[1]),
         _point(30.0, 3.0, cfgs[2])]
    )
    assert f.best_under_cap(9.0) is None
    assert f.best_under_cap(10.0).performance == 1.0
    assert f.best_under_cap(25.0).performance == 2.0
    assert f.best_under_cap(100.0).performance == 3.0


def test_normalized_presentation():
    cfgs = _configs(2)
    f = ParetoFrontier([_point(10.0, 2.0, cfgs[0]), _point(20.0, 4.0, cfgs[1])])
    norm = f.normalized()
    assert norm[0][2] == pytest.approx(0.5)
    assert norm[-1][2] == pytest.approx(1.0)


def test_dominates_query():
    cfgs = _configs(2)
    f = ParetoFrontier([_point(10.0, 1.0, cfgs[0]), _point(20.0, 2.0, cfgs[1])])
    assert f.dominates(15.0, 0.5)  # (10, 1.0) dominates it
    assert not f.dominates(9.0, 0.9)  # cheaper than any frontier point
    assert not f.dominates(10.0, 1.0)  # equal to a frontier point, not dominated


def test_empty_frontier_rejected():
    with pytest.raises(ValueError):
        ParetoFrontier([])


def test_invalid_point_rejected():
    with pytest.raises(ValueError):
        _point(0.0, 1.0)
    with pytest.raises(ValueError):
        _point(1.0, -1.0)


def test_properties():
    cfgs = _configs(2)
    f = ParetoFrontier([_point(10.0, 1.0, cfgs[0]), _point(20.0, 2.0, cfgs[1])])
    assert f.min_power_w == 10.0
    assert f.max_performance == 2.0
    assert f.configs() == [cfgs[0], cfgs[1]]


def test_from_predictions():
    cfgs = _configs(3)
    f = ParetoFrontier.from_predictions(
        {cfgs[0]: (10.0, 1.0), cfgs[1]: (20.0, 0.5), cfgs[2]: (15.0, 2.0)}
    )
    assert len(f) == 2  # cfgs[1] dominated by cfgs[2]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=100.0),
            st.floats(min_value=0.01, max_value=10.0),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_frontier_invariants(raw):
    space = list(TrinityAPU().config_space)
    pts = [
        _point(pw, pf, space[i % len(space)]) for i, (pw, pf) in enumerate(raw)
    ]
    f = ParetoFrontier(pts)
    powers = [p.power_w for p in f]
    perfs = [p.performance for p in f]
    # Invariant 1: sorted by power, strictly increasing performance.
    assert powers == sorted(powers)
    assert all(perfs[i] < perfs[i + 1] for i in range(len(perfs) - 1))
    # Invariant 2: every input point is dominated by or on the frontier.
    for p in pts:
        on = any(
            q.power_w <= p.power_w and q.performance >= p.performance for q in f
        )
        assert on
    # Invariant 3: best_under_cap agrees with brute force.
    for cap in (0.5, 10.0, 50.0, 200.0):
        best = f.best_under_cap(cap)
        feasible = [q for q in f if q.power_w <= cap]
        if not feasible:
            assert best is None
        else:
            assert best.performance == max(q.performance for q in feasible)


# ---------------------------------------------------------------------------
# Tie handling (regression): search archives feed frontiers batches full
# of exact ties, so the tie-breaks must be explicit and order-free.
# ---------------------------------------------------------------------------


class TestTieHandling:
    def test_equal_power_tie_keeps_higher_perf_any_order(self):
        cfgs = _configs(2)
        a = _point(10.0, 1.0, cfgs[0])
        b = _point(10.0, 2.0, cfgs[1])
        for pts in ([a, b], [b, a]):
            f = ParetoFrontier(pts)
            assert len(f) == 1
            assert f[0].performance == 2.0
            assert f[0].config == cfgs[1]

    def test_equal_perf_tie_keeps_lower_power_any_order(self):
        cfgs = _configs(2)
        a = _point(10.0, 1.0, cfgs[0])
        b = _point(12.0, 1.0, cfgs[1])
        for pts in ([a, b], [b, a]):
            f = ParetoFrontier(pts)
            assert len(f) == 1
            assert f[0].power_w == 10.0
            assert f[0].config == cfgs[0]

    def test_exact_duplicate_keeps_earliest_input(self):
        cfgs = _configs(2)
        a = _point(10.0, 1.0, cfgs[0])
        b = _point(10.0, 1.0, cfgs[1])
        f = ParetoFrontier([a, b])
        assert len(f) == 1
        assert f[0].config == cfgs[0]  # stable sort: first input wins
        g = ParetoFrontier([b, a])
        assert g[0].config == cfgs[1]

    def test_three_way_tie_column(self):
        cfgs = _configs(3)
        pts = [
            _point(10.0, 1.0, cfgs[0]),
            _point(10.0, 3.0, cfgs[1]),
            _point(10.0, 2.0, cfgs[2]),
        ]
        f = ParetoFrontier(pts)
        assert len(f) == 1
        assert f[0].performance == 3.0

    def test_from_arrays_tie_handling_matches_point_path(self):
        cfgs = _configs(4)
        powers = np.array([10.0, 10.0, 12.0, 12.0])
        perfs = np.array([1.0, 2.0, 2.0, 3.0])
        via_arrays = ParetoFrontier.from_arrays(cfgs, powers, perfs)
        via_points = ParetoFrontier(
            [
                _point(pw, pf, c)
                for c, pw, pf in zip(cfgs, powers, perfs)
            ]
        )
        assert np.array_equal(via_arrays.powers, via_points.powers)
        assert np.array_equal(via_arrays.performances, via_points.performances)
        assert via_arrays.configs() == via_points.configs()
        assert [p.power_w for p in via_arrays] == [10.0, 12.0]
        assert [p.performance for p in via_arrays] == [2.0, 3.0]
