"""Unit and property tests for repro.stats.kmedoids (PAM + silhouette)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import pam, silhouette_score


def _pairwise(points: np.ndarray) -> np.ndarray:
    diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def _three_blob_matrix(seed=0, per=8):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    pts = np.vstack([c + rng.normal(scale=0.4, size=(per, 2)) for c in centers])
    return _pairwise(pts), np.repeat(np.arange(3), per)


def test_pam_recovers_well_separated_blobs():
    D, truth = _three_blob_matrix()
    result = pam(D, 3)
    # Cluster labels must be a relabeling of the ground truth.
    for c in range(3):
        members = result.labels[truth == c]
        assert len(np.unique(members)) == 1
    assert len(np.unique(result.labels[[0, 8, 16]])) == 3


def test_pam_k_equals_n_gives_zero_cost():
    D, _ = _three_blob_matrix(per=3)
    result = pam(D, D.shape[0])
    assert result.cost == pytest.approx(0.0)
    assert sorted(result.medoids.tolist()) == list(range(D.shape[0]))


def test_pam_k_equals_one():
    D, _ = _three_blob_matrix(per=4)
    result = pam(D, 1)
    assert np.all(result.labels == 0)
    # The single medoid must minimize total dissimilarity.
    assert result.cost == pytest.approx(float(D.sum(axis=0).min()))


def test_pam_deterministic():
    D, _ = _three_blob_matrix(seed=5)
    r1, r2 = pam(D, 3), pam(D, 3)
    np.testing.assert_array_equal(r1.medoids, r2.medoids)
    np.testing.assert_array_equal(r1.labels, r2.labels)


def test_pam_invalid_inputs():
    D, _ = _three_blob_matrix(per=2)
    with pytest.raises(ValueError):
        pam(D, 0)
    with pytest.raises(ValueError):
        pam(D, D.shape[0] + 1)
    with pytest.raises(ValueError):
        pam(np.array([[0.0, 1.0], [2.0, 0.0]]), 1)  # asymmetric
    with pytest.raises(ValueError):
        pam(np.full((3, 3), np.nan), 1)
    bad = np.zeros((3, 3))
    bad[0, 1] = bad[1, 0] = -1.0
    with pytest.raises(ValueError):
        pam(bad, 1)


def test_silhouette_high_for_separated_blobs():
    D, truth = _three_blob_matrix()
    assert silhouette_score(D, truth) > 0.8


def test_silhouette_penalizes_wrong_k():
    D, truth = _three_blob_matrix()
    good = silhouette_score(D, pam(D, 3).labels)
    bad = silhouette_score(D, pam(D, 2).labels)
    assert good > bad


def test_silhouette_single_cluster_nan():
    D, _ = _three_blob_matrix(per=2)
    assert np.isnan(silhouette_score(D, np.zeros(D.shape[0], dtype=int)))


def test_silhouette_singleton_contributes_zero():
    D = _pairwise(np.array([[0.0], [0.1], [5.0]]))
    labels = np.array([0, 0, 1])
    score = silhouette_score(D, labels)
    # Points 0 and 1 are tight vs far cluster -> near 1; singleton -> 0.
    assert 0.5 < score < 1.0


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_pam_invariants(n, k, seed):
    """Labels point at real medoids; every medoid owns itself; cost >= 0."""
    k = min(k, n)
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 2))
    D = _pairwise(pts)
    res = pam(D, k)
    assert res.labels.shape == (n,)
    assert np.all((0 <= res.labels) & (res.labels < k))
    assert res.cost >= 0
    for j, m in enumerate(res.medoids):
        assert res.labels[m] == j  # each medoid is in its own cluster
    # Assignment optimality: each point is no closer to another medoid.
    for i in range(n):
        own = D[i, res.medoids[res.labels[i]]]
        assert own <= D[i, res.medoids].min() + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=3, max_value=10),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_silhouette_bounded(n, seed):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 2))
    D = _pairwise(pts)
    labels = pam(D, 2).labels
    s = silhouette_score(D, labels)
    assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9


# -- warm-started PAM (init_medoids) -------------------------------------------


def test_warm_start_from_own_medoids_is_a_fixed_point():
    D, _ = _three_blob_matrix()
    cold = pam(D, 3)
    warm = pam(D, 3, init_medoids=cold.medoids)
    np.testing.assert_array_equal(warm.medoids, cold.medoids)
    np.testing.assert_array_equal(warm.labels, cold.labels)
    assert warm.cost == pytest.approx(cold.cost)


def test_warm_start_from_poor_seeds_recovers_blobs():
    D, truth = _three_blob_matrix()
    # All seeds inside one blob: SWAP must still separate the blobs.
    warm = pam(D, 3, init_medoids=[0, 1, 2])
    cold = pam(D, 3)
    assert warm.cost == pytest.approx(cold.cost)
    for c in range(3):
        assert len(np.unique(warm.labels[truth == c])) == 1


def test_warm_start_validation():
    D, _ = _three_blob_matrix()
    with pytest.raises(ValueError):
        pam(D, 3, init_medoids=[0, 1])  # wrong count
    with pytest.raises(ValueError):
        pam(D, 3, init_medoids=[0, 0, 1])  # duplicates
    with pytest.raises(ValueError):
        pam(D, 3, init_medoids=[0, 1, D.shape[0]])  # out of range


def _random_dissimilarity(rng, n):
    M = rng.uniform(0.0, 1.0, size=(n, n))
    D = (M + M.T) / 2.0
    np.fill_diagonal(D, 0.0)
    return D


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=4, max_value=20),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_warm_and_cold_reach_equal_objective(n, k, seed):
    """Warm-started SWAP converges to a local optimum whose cost equals
    the cold BUILD+SWAP optimum on random dissimilarity matrices when
    seeded from the cold solution, and never exceeds the cost of its
    own seeding."""
    rng = np.random.default_rng(seed)
    k = min(k, n - 1)
    D = _random_dissimilarity(rng, n)
    cold = pam(D, k)
    warm = pam(D, k, init_medoids=cold.medoids)
    assert warm.cost == pytest.approx(cold.cost, abs=1e-12)

    seeds = rng.choice(n, size=k, replace=False)
    reseeded = pam(D, k, init_medoids=seeds)
    seed_cost = float(np.min(D[:, seeds], axis=1).sum())
    assert reseeded.cost <= seed_cost + 1e-12
