"""Monitor <-> decision server integration: exemplars and live SLOs.

The unit suite (``test_monitor.py``) drives the ring and SLO engine
with a fake clock; this file runs the *real* batching server under a
monitor and asserts the pieces meet: slow/shed exemplars are captured
with queued/decide phase traces, the latency SLO judges real windows,
and ``REPRO_TELEMETRY=0`` turns every new hook into a no-op.
"""

from __future__ import annotations

import pytest

import repro.telemetry as telemetry
from repro.core import AdaptiveModel
from repro.profiling import CharacterizationStore, ProfilingLibrary
from repro.hardware import TrinityAPU
from repro.server import (
    DecisionRequest,
    DecisionServer,
    DecisionService,
    ServerConfig,
    ServerOverloadError,
)
from repro.telemetry import set_enabled
from repro.telemetry.monitor import Monitor, parse_slo
from repro.telemetry.monitor.exemplars import deactivate
from repro.workloads import build_suite


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.reset()
    set_enabled(True)
    deactivate()
    yield
    telemetry.reset()
    set_enabled(True)
    deactivate()


@pytest.fixture(scope="module")
def service():
    suite = build_suite()
    kernels = list(suite)[:6]
    store = CharacterizationStore.shared(suite, seed=0)
    model = AdaptiveModel.train(
        store.characterize(list(suite)),
        dissimilarity=store.dissimilarity_submatrix(list(suite)),
    )
    svc = DecisionService(
        model, ProfilingLibrary(TrinityAPU(seed=0), seed=0), kernels=kernels
    )
    assert svc.warm() == {}
    return svc


def requests_for(service, n):
    uids = service.kernel_uids
    return [
        DecisionRequest(uids[i % len(uids)], 15.0 + (i % 10)) for i in range(n)
    ]


class TestServerExemplars:
    def test_slow_exemplar_has_queue_and_decide_phases(self, service):
        mon = Monitor()
        try:
            with DecisionServer(service) as server:
                futures = [
                    server.submit(r) for r in requests_for(service, 64)
                ]
                for f in futures:
                    assert f.result(5.0).ok
            slow = [e for e in mon.exemplars if e.kind == "slow"]
            assert slow, "expected at least one slow exemplar per batch"
            best = slow[0]
            assert best.latency_s > 0
            assert best.batch_size >= 1
            names = [name for name, _, _ in best.trace.phases]
            assert names == ["queued", "decide"]
            total_phases = sum(d for _, _, d in best.trace.phases)
            assert total_phases == pytest.approx(best.latency_s, rel=0.5)
        finally:
            mon.close()

    def test_shed_exemplar_captured_on_overload(self, service):
        import time

        class SlowService:
            """Holds each batch long enough to back up the queue."""

            def __init__(self, inner):
                self._inner = inner

            def decide_batch(self, requests):
                time.sleep(0.05)
                return self._inner.decide_batch(requests)

        mon = Monitor()
        config = ServerConfig(max_queue=1, n_workers=1, max_delay_us=0.0)
        try:
            with DecisionServer(SlowService(service), config) as server:
                shed = 0
                futures = []
                for r in requests_for(service, 8):
                    try:
                        futures.append(server.submit(r))
                    except ServerOverloadError:
                        shed += 1
                for f in futures:
                    f.result(5.0)
            assert shed >= 1
            assert mon.exemplars.count("shed") >= 1
            ex = next(e for e in mon.exemplars if e.kind == "shed")
            assert ex.kernel_uid in service.kernel_uids
        finally:
            mon.close()

    def test_error_exemplar_for_unknown_kernel(self, service):
        mon = Monitor()
        try:
            with DecisionServer(service) as server:
                result = server.decide(
                    DecisionRequest("no/such/kernel", 20.0), timeout=5.0
                )
            assert not result.ok
            errors = [e for e in mon.exemplars if e.kind == "error"]
            assert len(errors) == 1
            assert errors[0].error == "unknown-kernel"
            assert errors[0].kernel_uid == "no/such/kernel"
        finally:
            mon.close()

    def test_no_monitor_means_no_capture(self, service):
        with DecisionServer(service) as server:
            for f in [server.submit(r) for r in requests_for(service, 8)]:
                f.result(5.0)
        # Nothing attached: the exemplar counters never move.
        snap = telemetry.get_registry().snapshot()["counters"]
        assert snap["monitor.exemplars.slow"] == 0

    def test_disabled_telemetry_noops_every_hook(self, service):
        mon = Monitor(slos=[parse_slo("server.shed rate == 0")])
        try:
            set_enabled(False)
            with DecisionServer(service) as server:
                for f in [
                    server.submit(r) for r in requests_for(service, 8)
                ]:
                    f.result(5.0)
            assert mon.tick() == []
            assert len(mon.store) == 0
            assert mon.exemplars.count() == 0
            assert mon.dump()["slo"]["alerts"][0]["state"] == "ok"
        finally:
            set_enabled(True)
            mon.close()


class TestServerSLOLive:
    def test_latency_slo_over_real_windows(self, service):
        """A generous p99 objective stays ok; an absurd one fires."""
        mon = Monitor(
            slos=[
                parse_slo(
                    "server.latency_s p99 < 10.0",
                    name="lat-generous",
                    short_window_s=0.5,
                    long_window_s=1.0,
                ),
                parse_slo(
                    "server.latency_s p99 < 1e-09",
                    name="lat-absurd",
                    short_window_s=0.5,
                    long_window_s=1.0,
                ),
            ]
        )
        try:
            mon.start(interval_s=0.02)
            with DecisionServer(service) as server:
                import time

                deadline = time.perf_counter() + 1.2
                while time.perf_counter() < deadline:
                    for f in [
                        server.submit(r)
                        for r in requests_for(service, 16)
                    ]:
                        f.result(5.0)
            mon.stop()
            by_name = {
                a.spec.name: a for a in mon.slo_engine.alerts
            }
            assert by_name["lat-generous"].fired == 0
            assert by_name["lat-absurd"].fired >= 1
        finally:
            mon.close()
