"""Tests for machine presets (repro.hardware.presets)."""

import pytest

from repro.hardware import Configuration, NoiseModel
from repro.hardware.presets import (
    MACHINE_PRESETS,
    efficient_apu,
    leaky_apu,
    trinity,
)
from tests.conftest import make_kernel


def test_registry_complete():
    assert set(MACHINE_PRESETS) == {"trinity", "efficient", "leaky"}
    for factory in MACHINE_PRESETS.values():
        apu = factory(seed=0, noise=NoiseModel.exact())
        assert len(apu.config_space) == 42


def test_presets_share_pstates_but_differ_in_power():
    k = make_kernel()
    cfg = Configuration.cpu(2.4, 4)
    powers = {
        name: factory(noise=NoiseModel.exact()).true_total_power_w(k, cfg)
        for name, factory in MACHINE_PRESETS.items()
    }
    assert powers["efficient"] < powers["trinity"] < powers["leaky"]


def test_timing_is_machine_independent():
    """Presets change the power calibration only; the timing model (and
    therefore performance) is identical across them."""
    k = make_kernel()
    cfg = Configuration.gpu(0.649, 2.4)
    t = {
        name: factory(noise=NoiseModel.exact()).true_time_s(k, cfg)
        for name, factory in MACHINE_PRESETS.items()
    }
    assert t["trinity"] == pytest.approx(t["efficient"])
    assert t["trinity"] == pytest.approx(t["leaky"])


def test_efficient_apu_lowers_gpu_floor():
    k = make_kernel()
    floor_cfg = Configuration.gpu(0.311, 1.4)
    base = trinity(noise=NoiseModel.exact()).true_total_power_w(k, floor_cfg)
    eff = efficient_apu(noise=NoiseModel.exact()).true_total_power_w(
        k, floor_cfg
    )
    assert eff < base - 3.0


def test_leaky_apu_raises_idle_cost():
    k = make_kernel(activity=0.3, dram_intensity=0.1)
    idle_cfg = Configuration.cpu(1.4, 1)
    base = trinity(noise=NoiseModel.exact()).true_total_power_w(k, idle_cfg)
    leaky = leaky_apu(noise=NoiseModel.exact()).true_total_power_w(k, idle_cfg)
    assert leaky > base + 4.0


def test_seed_and_noise_forwarded():
    a = trinity(seed=5)
    b = trinity(seed=5)
    k = make_kernel()
    cfg = Configuration.cpu(2.4, 2)
    assert a.run(k, cfg).time_s == b.run(k, cfg).time_s
    exact = trinity(noise=NoiseModel.exact())
    assert exact.run(k, cfg).time_s == exact.true_time_s(k, cfg)
