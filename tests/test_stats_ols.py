"""Unit and property tests for repro.stats.ols."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import GramStats, fit_ols, fit_ols_from_gram


def test_exact_recovery_with_intercept():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 3))
    beta = np.array([2.0, -1.0, 0.5])
    y = 3.0 + X @ beta
    model = fit_ols(X, y, intercept=True)
    assert model.coef[0] == pytest.approx(3.0, abs=1e-9)
    np.testing.assert_allclose(model.coef[1:], beta, atol=1e-9)
    assert model.r_squared == pytest.approx(1.0, abs=1e-12)


def test_exact_recovery_without_intercept():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(40, 2))
    beta = np.array([1.5, -0.25])
    y = X @ beta
    model = fit_ols(X, y, intercept=False)
    np.testing.assert_allclose(model.coef, beta, atol=1e-9)
    assert model.r_squared == pytest.approx(1.0, abs=1e-12)


def test_noisy_fit_r_squared_below_one():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(200, 2))
    y = X @ np.array([1.0, 2.0]) + rng.normal(scale=0.5, size=200)
    model = fit_ols(X, y, intercept=True)
    assert 0.5 < model.r_squared < 1.0
    np.testing.assert_allclose(model.coef[1:], [1.0, 2.0], atol=0.2)


def test_predict_matches_training_fit():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(30, 4))
    y = 1.0 + X @ np.array([0.5, -2.0, 0.0, 3.0])
    model = fit_ols(X, y)
    np.testing.assert_allclose(model.predict(X), y, atol=1e-8)


def test_predict_single_row():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([2.0, 4.0, 6.0])
    model = fit_ols(X, y, intercept=False)
    assert model.predict(np.array([5.0])) == pytest.approx(10.0)


def test_rank_deficient_design_is_handled():
    # Duplicate column: lstsq must still produce a usable fit.
    X = np.ones((10, 2))
    X[:, 0] = np.arange(10)
    X[:, 1] = np.arange(10)  # identical to column 0
    y = 2.0 * np.arange(10)
    model = fit_ols(X, y, intercept=False)
    assert model.rank == 1
    np.testing.assert_allclose(model.predict(X), y, atol=1e-8)


def test_std_errors_shrink_with_more_data():
    rng = np.random.default_rng(4)

    def errs(n):
        X = rng.normal(size=(n, 1))
        y = 2.0 * X[:, 0] + rng.normal(scale=1.0, size=n)
        return fit_ols(X, y, intercept=False).std_errors[0]

    assert errs(2000) < errs(20)


def test_shape_validation():
    with pytest.raises(ValueError):
        fit_ols(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        fit_ols(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        fit_ols(np.array([[np.nan]]), np.array([1.0]))
    with pytest.raises(ValueError):
        fit_ols(np.zeros((3, 2, 2)), np.zeros(3))


def test_summary_contains_names_and_r2():
    X = np.arange(12, dtype=float).reshape(6, 2)
    y = X[:, 0] + 2 * X[:, 1] + 1
    model = fit_ols(X, y, feature_names=("freq", "threads"))
    text = model.summary()
    assert "freq" in text and "threads" in text and "R^2" in text


def test_wrong_prediction_width_raises():
    model = fit_ols(np.arange(6, dtype=float).reshape(3, 2), np.arange(3.0))
    with pytest.raises(ValueError):
        model.predict(np.zeros((2, 5)))


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=5, max_value=30),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_residuals_orthogonal_to_design(n, p, seed):
    """OLS normal equations: residuals are orthogonal to every regressor."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = rng.normal(size=n)
    model = fit_ols(X, y, intercept=True)
    resid = y - model.predict(X)
    A = np.hstack([np.ones((n, 1)), X])
    np.testing.assert_allclose(A.T @ resid, np.zeros(p + 1), atol=1e-7)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=4, max_value=25),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_r_squared_in_unit_interval_with_intercept(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = rng.normal(size=n)
    model = fit_ols(X, y, intercept=True)
    assert -1e-9 <= model.r_squared <= 1.0 + 1e-9


# -- sufficient-statistics path (GramStats / fit_ols_from_gram) ----------------


def _full_design(X, intercept):
    return np.hstack([np.ones((X.shape[0], 1)), X]) if intercept else X


def _assert_models_close(gram_model, direct_model, atol=1e-9):
    np.testing.assert_allclose(gram_model.coef, direct_model.coef, atol=atol)
    assert gram_model.r_squared == pytest.approx(
        direct_model.r_squared, abs=atol
    )
    np.testing.assert_allclose(
        gram_model.std_errors, direct_model.std_errors, atol=atol, equal_nan=True
    )
    assert gram_model.intercept == direct_model.intercept
    assert gram_model.n_obs == direct_model.n_obs
    assert gram_model.rank == direct_model.rank


def test_gram_stats_from_design_matches_products():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(12, 4))
    y = rng.normal(size=12)
    s = GramStats.from_design(A, y)
    np.testing.assert_allclose(s.xtx, A.T @ A)
    np.testing.assert_allclose(s.xty, A.T @ y)
    assert s.yty == pytest.approx(float(y @ y))
    assert s.n_obs == 12


def test_gram_stats_add_sub_roundtrip():
    rng = np.random.default_rng(1)
    A1, y1 = rng.normal(size=(8, 3)), rng.normal(size=8)
    A2, y2 = rng.normal(size=(5, 3)), rng.normal(size=5)
    s1, s2 = GramStats.from_design(A1, y1), GramStats.from_design(A2, y2)
    pooled = s1 + s2
    np.testing.assert_allclose(
        pooled.xtx, GramStats.from_design(np.vstack([A1, A2]),
                                          np.concatenate([y1, y2])).xtx
    )
    back = pooled - s2
    np.testing.assert_allclose(back.xtx, s1.xtx, atol=1e-12)
    np.testing.assert_allclose(back.xty, s1.xty, atol=1e-12)
    assert back.n_obs == s1.n_obs


def test_gram_stats_guards():
    rng = np.random.default_rng(2)
    s3 = GramStats.from_design(rng.normal(size=(4, 3)), rng.normal(size=4))
    s2 = GramStats.from_design(rng.normal(size=(4, 2)), rng.normal(size=4))
    with pytest.raises(ValueError):
        _ = s3 + s2
    with pytest.raises(ValueError):
        _ = s3 - (s3 + s3)
    with pytest.raises(ValueError):
        GramStats.from_design(np.array([[np.inf]]), np.array([1.0]))


@pytest.mark.parametrize("intercept", [True, False])
@pytest.mark.parametrize("ridge", [0.0, 0.5])
def test_fit_from_gram_matches_fit_ols(intercept, ridge):
    rng = np.random.default_rng(3)
    X = rng.normal(size=(30, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.3, size=30)
    direct = fit_ols(X, y, intercept=intercept, ridge=ridge)
    stats = GramStats.from_design(_full_design(X, intercept), y)
    via_gram = fit_ols_from_gram(stats, intercept=intercept, ridge=ridge)
    _assert_models_close(via_gram, direct)


def test_fit_from_gram_rank_deficient_matches_pseudoinverse():
    # A duplicated column: lstsq's minimum-norm solution on both paths.
    rng = np.random.default_rng(4)
    base = rng.normal(size=(20, 2))
    X = np.hstack([base, base[:, :1]])
    y = base @ np.array([1.0, 2.0]) + rng.normal(scale=0.1, size=20)
    direct = fit_ols(X, y, intercept=False)
    via_gram = fit_ols_from_gram(
        GramStats.from_design(X, y), intercept=False
    )
    assert direct.rank == via_gram.rank == 2
    # Rank-deficient normal equations square the conditioning, so allow
    # a looser (but still tight) agreement than the full-rank 1e-9.
    np.testing.assert_allclose(via_gram.coef, direct.coef, atol=1e-6)
    assert via_gram.r_squared == pytest.approx(direct.r_squared, abs=1e-9)


def test_fit_from_gram_validates():
    s = GramStats(xtx=np.eye(2), xty=np.zeros(2), yty=0.0, n_obs=3)
    with pytest.raises(ValueError):
        fit_ols_from_gram(
            GramStats(xtx=np.eye(2), xty=np.zeros(3), yty=0.0, n_obs=3)
        )
    with pytest.raises(ValueError):
        fit_ols_from_gram(s, ridge=-1.0)
    with pytest.raises(ValueError):
        fit_ols_from_gram(
            GramStats(xtx=np.eye(2), xty=np.zeros(2), yty=0.0, n_obs=0)
        )


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=6, max_value=40),
    st.integers(min_value=1, max_value=4),
    st.booleans(),
    st.floats(min_value=0.0, max_value=2.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_gram_equals_design_fit(n, p, intercept, ridge, seed):
    """fit_ols_from_gram == fit_ols within 1e-9 on well-scaled problems."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = rng.normal(size=n)
    direct = fit_ols(X, y, intercept=intercept, ridge=ridge)
    stats = GramStats.from_design(_full_design(X, intercept), y)
    via_gram = fit_ols_from_gram(stats, intercept=intercept, ridge=ridge)
    _assert_models_close(via_gram, direct, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=4, max_value=15),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_gram_downdate_equals_subset_fit(n1, n2, seed):
    """Pooled stats minus one block == stats of the remaining block."""
    rng = np.random.default_rng(seed)
    A1, y1 = rng.normal(size=(n1, 3)), rng.normal(size=n1)
    A2, y2 = rng.normal(size=(n2, 3)), rng.normal(size=n2)
    s1 = GramStats.from_design(A1, y1)
    pooled = GramStats.from_design(
        np.vstack([A1, A2]), np.concatenate([y1, y2])
    )
    downdated = pooled - GramStats.from_design(A2, y2)
    direct = fit_ols_from_gram(s1, intercept=False)
    via_downdate = fit_ols_from_gram(downdated, intercept=False)
    np.testing.assert_allclose(via_downdate.coef, direct.coef, atol=1e-8)
