"""Unit and property tests for repro.stats.ols."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import fit_ols


def test_exact_recovery_with_intercept():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 3))
    beta = np.array([2.0, -1.0, 0.5])
    y = 3.0 + X @ beta
    model = fit_ols(X, y, intercept=True)
    assert model.coef[0] == pytest.approx(3.0, abs=1e-9)
    np.testing.assert_allclose(model.coef[1:], beta, atol=1e-9)
    assert model.r_squared == pytest.approx(1.0, abs=1e-12)


def test_exact_recovery_without_intercept():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(40, 2))
    beta = np.array([1.5, -0.25])
    y = X @ beta
    model = fit_ols(X, y, intercept=False)
    np.testing.assert_allclose(model.coef, beta, atol=1e-9)
    assert model.r_squared == pytest.approx(1.0, abs=1e-12)


def test_noisy_fit_r_squared_below_one():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(200, 2))
    y = X @ np.array([1.0, 2.0]) + rng.normal(scale=0.5, size=200)
    model = fit_ols(X, y, intercept=True)
    assert 0.5 < model.r_squared < 1.0
    np.testing.assert_allclose(model.coef[1:], [1.0, 2.0], atol=0.2)


def test_predict_matches_training_fit():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(30, 4))
    y = 1.0 + X @ np.array([0.5, -2.0, 0.0, 3.0])
    model = fit_ols(X, y)
    np.testing.assert_allclose(model.predict(X), y, atol=1e-8)


def test_predict_single_row():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([2.0, 4.0, 6.0])
    model = fit_ols(X, y, intercept=False)
    assert model.predict(np.array([5.0])) == pytest.approx(10.0)


def test_rank_deficient_design_is_handled():
    # Duplicate column: lstsq must still produce a usable fit.
    X = np.ones((10, 2))
    X[:, 0] = np.arange(10)
    X[:, 1] = np.arange(10)  # identical to column 0
    y = 2.0 * np.arange(10)
    model = fit_ols(X, y, intercept=False)
    assert model.rank == 1
    np.testing.assert_allclose(model.predict(X), y, atol=1e-8)


def test_std_errors_shrink_with_more_data():
    rng = np.random.default_rng(4)

    def errs(n):
        X = rng.normal(size=(n, 1))
        y = 2.0 * X[:, 0] + rng.normal(scale=1.0, size=n)
        return fit_ols(X, y, intercept=False).std_errors[0]

    assert errs(2000) < errs(20)


def test_shape_validation():
    with pytest.raises(ValueError):
        fit_ols(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        fit_ols(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        fit_ols(np.array([[np.nan]]), np.array([1.0]))
    with pytest.raises(ValueError):
        fit_ols(np.zeros((3, 2, 2)), np.zeros(3))


def test_summary_contains_names_and_r2():
    X = np.arange(12, dtype=float).reshape(6, 2)
    y = X[:, 0] + 2 * X[:, 1] + 1
    model = fit_ols(X, y, feature_names=("freq", "threads"))
    text = model.summary()
    assert "freq" in text and "threads" in text and "R^2" in text


def test_wrong_prediction_width_raises():
    model = fit_ols(np.arange(6, dtype=float).reshape(3, 2), np.arange(3.0))
    with pytest.raises(ValueError):
        model.predict(np.zeros((2, 5)))


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=5, max_value=30),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_residuals_orthogonal_to_design(n, p, seed):
    """OLS normal equations: residuals are orthogonal to every regressor."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = rng.normal(size=n)
    model = fit_ols(X, y, intercept=True)
    resid = y - model.predict(X)
    A = np.hstack([np.ones((n, 1)), X])
    np.testing.assert_allclose(A.T @ resid, np.zeros(p + 1), atol=1e-7)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=4, max_value=25),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_r_squared_in_unit_interval_with_intercept(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = rng.normal(size=n)
    model = fit_ols(X, y, intercept=True)
    assert -1e-9 <= model.r_squared <= 1.0 + 1e-9
