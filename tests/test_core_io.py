"""Tests for trained-model persistence (repro.core.io)."""

import numpy as np
import pytest

from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    load_model,
    model_from_json,
    model_to_json,
    save_model,
    train_model,
)
from repro.hardware import TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def trained():
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()
    train = [k for k in suite if k.benchmark != "LU"]
    return apu, suite, train_model(library, train)


class TestModelPersistence:
    def test_roundtrip_preserves_clustering(self, trained):
        _, _, model = trained
        restored = model_from_json(model_to_json(model))
        assert restored.clustering.labels == dict(model.clustering.labels)
        assert restored.clustering.n_clusters == model.clustering.n_clusters
        assert restored.clustering.medoid_uids == model.clustering.medoid_uids
        assert restored.clustering.silhouette == pytest.approx(
            model.clustering.silhouette
        )

    def test_roundtrip_preserves_coefficients(self, trained):
        _, _, model = trained
        restored = model_from_json(model_to_json(model))
        for cid, cm in model.cluster_models.items():
            rcm = restored.cluster_models[cid]
            np.testing.assert_allclose(
                rcm.cpu.perf_ratio.coef, cm.cpu.perf_ratio.coef
            )
            np.testing.assert_allclose(rcm.gpu.power.coef, cm.gpu.power.coef)
            assert rcm.cpu.transform == cm.cpu.transform
            assert rcm.cpu.power_anchor == cm.cpu.power_anchor

    def test_roundtrip_preserves_predictions(self, trained):
        """The load-bearing property: a restored model predicts exactly
        what the original predicts, including uncertainties."""
        apu, suite, model = trained
        restored = model_from_json(model_to_json(model))
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m = apu.run(k, CPU_SAMPLE)
        gpu_m = apu.run(k, GPU_SAMPLE)
        a = model.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        b = restored.predict_kernel(cpu_m, gpu_m, with_uncertainty=True)
        assert a.cluster == b.cluster
        for cfg in a.predictions:
            assert a.predictions[cfg] == pytest.approx(b.predictions[cfg])
            assert a.uncertainties[cfg] == pytest.approx(b.uncertainties[cfg])

    def test_roundtrip_preserves_tree_rendering(self, trained):
        _, _, model = trained
        restored = model_from_json(model_to_json(model))
        assert restored.classifier.render() == model.classifier.render()

    def test_file_roundtrip(self, trained, tmp_path):
        _, _, model = trained
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.clustering.labels == dict(model.clustering.labels)

    def test_version_check(self):
        with pytest.raises(ValueError):
            model_from_json('{"version": 999}')

    def test_log_transform_model_roundtrips(self):
        apu = TrinityAPU(seed=1)
        library = ProfilingLibrary(apu, seed=1)
        suite = build_suite()
        model = train_model(
            library, suite.for_benchmark("CoMD"), n_clusters=2, transform="log"
        )
        restored = model_from_json(model_to_json(model))
        k = suite.get("LU/Small/LUDecomposition")
        cpu_m, gpu_m = apu.run(k, CPU_SAMPLE), apu.run(k, GPU_SAMPLE)
        a = model.predict_kernel(cpu_m, gpu_m)
        b = restored.predict_kernel(cpu_m, gpu_m)
        for cfg in a.predictions:
            assert a.predictions[cfg] == pytest.approx(b.predictions[cfg])
