"""End-to-end: discovered frontiers driving the whole stack.

The ISSUE's acceptance path: search on the paper space matches the
exact enumerated frontier to the gates (hypervolume ratio >= 0.99,
per-cap rate regret <= 1%), and a discovered archive — packaged through
:mod:`repro.search.adapters` — is consumed unchanged by the
:class:`~repro.core.scheduler.Scheduler`, the
:class:`~repro.server.service.DecisionService`, and the fleet
allocation layer.
"""

import numpy as np
import pytest

from repro.cluster.allocation import allocate_pool
from repro.core import AdaptiveModel, Scheduler
from repro.hardware import TrinityAPU
from repro.profiling import CharacterizationStore, ProfilingLibrary
from repro.search import (
    SearchConfig,
    archive_to_node_frontier,
    archive_to_prediction,
    nsga2_search,
    paper_space,
    pool_from_archives,
    validate_against_exact,
)
from repro.server.engine import DecisionRequest
from repro.server.service import DecisionService
from repro.workloads import build_suite

#: Tuned for the paper space: exact-match quality (hv ratio 1.0, zero
#: regret across the suite) at ~1.2k evaluations.  The benchmark gates
#: assert the looser ISSUE thresholds with the same settings.
PAPER_SEARCH = SearchConfig(population=48, generations=25, epsilon=0.0)

GATE_HV_RATIO = 0.99
GATE_MAX_REGRET = 0.01


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.fixture(scope="module")
def space():
    return paper_space()


@pytest.fixture(scope="module")
def kernel(suite):
    return suite.get("LU/Small/LUDecomposition")


@pytest.fixture(scope="module")
def archive(space, kernel):
    return nsga2_search(space, kernel, PAPER_SEARCH).archive


class TestPaperSpaceGates:
    def test_search_matches_exact_frontier(self, space, kernel, archive):
        report = validate_against_exact(space, kernel, archive)
        assert report.meets(
            min_hv_ratio=GATE_HV_RATIO, max_regret=GATE_MAX_REGRET
        ), report

    def test_gates_hold_across_the_suite(self, space, suite):
        worst_hv, worst_regret = 1.0, 0.0
        for k in list(suite)[:10]:
            res = nsga2_search(space, k, PAPER_SEARCH)
            report = validate_against_exact(space, k, res.archive)
            worst_hv = min(worst_hv, report.hypervolume_ratio)
            worst_regret = max(worst_regret, report.max_cap_regret)
        assert worst_hv >= GATE_HV_RATIO
        assert worst_regret <= GATE_MAX_REGRET

    def test_archive_configs_are_real_machine_configs(self, archive):
        valid = set(TrinityAPU().config_space)
        assert set(archive.configs()) <= valid


class TestSchedulerConsumesArchive:
    def test_select_picks_best_under_cap(self, space, kernel, archive):
        prediction = archive_to_prediction(archive, "search/LU")
        scheduler = Scheduler(risk_margin=0.0)
        for cap in (15.0, 25.0, 40.0, 60.0):
            decision = scheduler.select(prediction, cap)
            best = archive.best_under_cap(cap)
            if best is None:
                assert not decision.predicted_feasible
            else:
                assert decision.predicted_feasible
                assert decision.config == best.config
                assert decision.predicted_power_w == best.power_w
                assert decision.predicted_performance == best.performance

    def test_select_many_matches_select(self, archive):
        prediction = archive_to_prediction(archive, "search/LU")
        scheduler = Scheduler(risk_margin=0.0)
        caps = np.linspace(10.0, 70.0, 25)
        many = scheduler.select_many(prediction, caps)
        for cap, d in zip(caps, many):
            single = scheduler.select(prediction, float(cap))
            assert d.config == single.config
            assert d.predicted_feasible == single.predicted_feasible

    def test_sweep_table_builds(self, archive):
        prediction = archive_to_prediction(archive, "search/LU")
        table = Scheduler(risk_margin=0.0).sweep_table(prediction)
        idx, feasible = table.lookup(np.array([5.0, 30.0, 100.0]))
        assert feasible[2]
        assert not feasible[0]

    def test_empty_archive_rejected(self, space):
        from repro.search import EpsilonArchive

        empty = EpsilonArchive(space)
        with pytest.raises(ValueError, match="empty"):
            archive_to_prediction(empty, "search/empty")
        with pytest.raises(ValueError, match="empty"):
            archive_to_node_frontier(empty)


class TestServicePublishesArchive:
    @pytest.fixture(scope="class")
    def service(self, suite):
        kernels = list(suite)[:4]
        store = CharacterizationStore.shared(suite, seed=0)
        trained = AdaptiveModel.train(
            store.characterize(list(suite)),
            dissimilarity=store.dissimilarity_submatrix(list(suite)),
        )
        library = ProfilingLibrary(TrinityAPU(seed=0), seed=0)
        return DecisionService(trained, library, kernels=kernels)

    def test_published_search_frontier_is_served(
        self, service, space, kernel, archive
    ):
        uid = "search/LU/Small/LUDecomposition"
        prediction = archive_to_prediction(archive, uid)
        assert service.publish_predictions({uid: prediction}) == {}

        result = service.decide(DecisionRequest(uid, 30.0))
        assert result.error is None
        best = archive.best_under_cap(30.0)  # default scheduler: no margin
        assert result.config == best.config

        batch = service.decide_batch(
            [DecisionRequest(uid, c) for c in (20.0, 35.0, 50.0)]
        )
        assert all(r.error is None for r in batch)
        singles = [
            service.decide(DecisionRequest(uid, c)) for c in (20.0, 35.0, 50.0)
        ]
        assert [r.config for r in batch] == [r.config for r in singles]

    def test_existing_kernels_unaffected_by_publish(self, service, suite):
        uid = list(suite)[0].uid
        before = service.decide(DecisionRequest(uid, 30.0))
        assert before.error is None


class TestFleetConsumesArchives:
    def test_pool_from_archives_allocates(self, space, suite):
        archives = {}
        for k in list(suite)[:3]:
            res = nsga2_search(space, k, PAPER_SEARCH)
            archives[f"node-{k.uid}"] = res.archive
        pool = pool_from_archives(archives)
        assert pool.n_active == 3
        caps = allocate_pool(pool, 120.0, policy="greedy")
        assert caps.shape == (3,)
        assert float(caps.sum()) <= 120.0 + 1e-9
        floors = np.array(
            [archive_to_node_frontier(a).min_cap_w for a in archives.values()]
        )
        order = [f"node-{k.uid}" for k in list(suite)[:3]]
        assert pool.active_names() == sorted(order) or set(
            pool.active_names()
        ) == set(order)
        assert np.all(caps >= floors.min() - 1e-9)

    def test_node_frontier_monotone(self, archive):
        nf = archive_to_node_frontier(archive)
        caps = [p.cap_w for p in nf]
        rates = [p.rate for p in nf]
        assert caps == sorted(caps)
        assert rates == sorted(rates)
        assert len(nf) == len(archive)
