"""Tests for the experiment registry (repro.evaluation.experiments)."""

import pytest

from repro.evaluation import (
    EXPERIMENTS,
    experiment_fig2_table1_frontier,
    experiment_fig3_tree,
    experiment_fig7_lu_frontier,
    experiment_table3_and_figures,
    run_loocv,
)
from repro.hardware import Device


class TestFrontierExperiments:
    def test_fig2_table1(self):
        result = experiment_fig2_table1_frontier(seed=0)
        assert result.experiment_id == "fig2_table1"
        assert "CalcFBHourglassForce" in result.text
        assert "Normalized performance" in result.text
        frontier = result.data
        assert frontier[0].config.device is Device.CPU
        assert frontier[-1].config.device is Device.GPU

    def test_fig7(self):
        result = experiment_fig7_lu_frontier(seed=0)
        assert "LU Small" in result.text
        assert len(result.data) >= 5

    def test_deterministic(self):
        a = experiment_fig2_table1_frontier(seed=0)
        b = experiment_fig2_table1_frontier(seed=0)
        assert a.text == b.text


class TestTreeExperiment:
    def test_fig3(self):
        result = experiment_fig3_tree(seed=0)
        assert "classification tree" in result.text
        assert "cluster" in result.text
        model = result.data
        assert model.clustering.n_clusters == 5


class TestTable3Experiments:
    @pytest.fixture(scope="class")
    def results(self):
        report = run_loocv(seed=0, include_freq_limiting=False)
        return experiment_table3_and_figures(report=report)

    def test_all_artifacts_present(self, results):
        assert set(results) == {"table3", "fig4", "fig5", "fig6", "fig8", "fig9"}

    def test_table3_text(self, results):
        assert "% Under" in results["table3"].text
        assert "Model" in results["table3"].text

    def test_figure_series_cover_groups(self, results):
        series = results["fig6"].data
        assert len(series) == 8
        for vals in series.values():
            assert "Model" in vals and "Model+FL" in vals

    def test_reuses_precomputed_report(self, results):
        # The fixture passed a report without FL baselines; the series
        # must reflect exactly those methods.
        series = results["fig5"].data
        methods = set(next(iter(series.values())))
        assert methods == {"Model", "Model+FL"}


class TestRegistry:
    def test_registry_keys(self):
        assert set(EXPERIMENTS) == {
            "fig2_table1",
            "fig3",
            "fig7",
            "table3_figs",
        }
        for fn in EXPERIMENTS.values():
            assert callable(fn)
