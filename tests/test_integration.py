"""End-to-end integration: every layer in one scenario.

Walks a complete operational story — offline training, model
persistence, online prediction in a fresh process (simulated by
reloading from JSON), application execution under a dynamic cap, and
cluster-level budget allocation — asserting cross-layer consistency at
each step.
"""

import pytest

from repro import (
    Configuration,
    OnlinePredictor,
    ProfilingLibrary,
    Scheduler,
    TrinityAPU,
    build_suite,
    train_model,
)
from repro.cluster import ClusterNode, ClusterPowerManager
from repro.core import load_model, save_model
from repro.runtime import AdaptiveRuntime, Application


@pytest.fixture(scope="module")
def story(tmp_path_factory):
    """Shared state for the integration story (runs once)."""
    tmp = tmp_path_factory.mktemp("integration")
    apu = TrinityAPU(seed=42)
    suite = build_suite()

    # Act 1: offline training (LU never seen) and persistence.
    library = ProfilingLibrary(apu, seed=42)
    model = train_model(library, [k for k in suite if k.benchmark != "LU"])
    model_path = tmp / "model.json"
    save_model(model, model_path)

    # Act 2: a "new process" loads the model from disk.
    reloaded = load_model(model_path)
    return apu, suite, model, reloaded


class TestEndToEnd:
    def test_act2_reloaded_model_predicts_identically(self, story):
        apu, suite, model, reloaded = story
        kernel = suite.get("LU/Medium/LUDecomposition")
        online_a = ProfilingLibrary(apu, seed=7)
        online_b = ProfilingLibrary(apu, seed=7)
        pred_a = OnlinePredictor(model, online_a).predict(kernel)
        pred_b = OnlinePredictor(reloaded, online_b).predict(kernel)
        assert pred_a.cluster == pred_b.cluster
        for cfg in pred_a.predictions:
            assert pred_a.predictions[cfg] == pytest.approx(
                pred_b.predictions[cfg]
            )

    def test_act3_scheduling_consistency_with_runtime(self, story):
        """The runtime's scheduled configuration equals a standalone
        scheduler decision on the same prediction and cap."""
        apu, suite, model, _ = story
        kernel = suite.get("LU/Small/LUDecomposition")
        cap = 21.0

        online = ProfilingLibrary(apu, seed=11)
        runtime = AdaptiveRuntime(model, online)
        app = Application(name="one", kernels=(kernel,))
        trace = runtime.run(app, n_timesteps=3, power_cap_w=cap)
        runtime_choice = trace.executions[2].config  # first scheduled step

        standalone = Scheduler().select(
            runtime._predictions[kernel.uid], cap
        )
        assert runtime_choice == standalone.config

    def test_act4_dynamic_cap_reuses_samples(self, story):
        apu, suite, model, _ = story
        app = Application.from_suite(suite, "LU Small")
        online = ProfilingLibrary(apu, seed=13)
        runtime = AdaptiveRuntime(model, online)
        caps = lambda t: [25.0, 14.0, 30.0, 18.0][t % 4]  # noqa: E731
        trace = runtime.run(app, n_timesteps=8, power_cap_w=caps)
        # Exactly two sample invocations per kernel across the whole run.
        samples = [e for e in trace.executions if e.phase.startswith("sample")]
        assert len(samples) == 2 * len(app)
        # Different caps produced different scheduled configurations.
        scheduled_configs = {
            e.power_cap_w: e.config
            for e in trace.executions
            if e.phase == "scheduled"
        }
        assert len(set(scheduled_configs.values())) >= 2

    def test_act5_cluster_manager_uses_same_model(self, story):
        apu, suite, model, reloaded = story
        nodes = [
            ClusterNode(
                "a", Application.from_suite(suite, "LU Small"), reloaded, seed=1
            ),
            ClusterNode(
                "b", Application.from_suite(suite, "LU Large"), reloaded, seed=2
            ),
        ]
        mgr = ClusterPowerManager(nodes, policy="greedy")
        caps = mgr.allocate(45.0)
        assert sum(caps.values()) <= 45.0 + 1e-9
        report = mgr.run([45.0], n_epochs=1, timesteps_per_epoch=2)
        assert report.epochs[0].total_timesteps == 4

    def test_act6_oracle_never_loses_to_the_model(self, story):
        """Global sanity: for any kernel and cap, the oracle's true
        performance under the cap bounds the model's compliant picks."""
        apu, suite, model, _ = story
        from repro.methods import Oracle

        oracle = Oracle(apu)
        kernel = suite.get("LU/Medium/LUDecomposition")
        online = ProfilingLibrary(apu, seed=17)
        prediction = OnlinePredictor(model, online).predict(kernel)
        for cap in oracle.caps_for(kernel):
            model_cfg = Scheduler().select(prediction, cap).config
            oracle_cfg = oracle.decide(kernel, cap).config
            model_power = apu.true_total_power_w(kernel, model_cfg)
            if model_power <= cap * (1 + 1e-9):
                assert apu.true_performance(kernel, model_cfg) <= (
                    apu.true_performance(kernel, oracle_cfg) * (1 + 1e-9)
                )
