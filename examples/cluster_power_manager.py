#!/usr/bin/env python
"""Cluster-level power management from node-level predicted frontiers.

The paper's opening scenario: an exascale machine has "more hardware
than can be powered fully simultaneously", so a system-wide budget is
split into per-node caps.  This example builds a 4-node cluster running
different applications, lets every node assemble its predicted
rate-vs-cap frontier (two sample iterations per kernel, nothing more),
and compares two allocators under a tight global budget:

* uniform  — every node gets budget/4 (cap-blind state of practice);
* greedy   — water-filling on the predicted frontiers: watts go where
             the model says they buy the most *aggregate throughput*
             (may starve slow nodes);
* maxmin   — max-min-fair water-filling: watts go to the slowest node,
             the right objective when *makespan* matters.

Run:  python examples/cluster_power_manager.py
"""

from repro import ProfilingLibrary, TrinityAPU, build_suite, train_model
from repro.cluster import ClusterNode, ClusterPowerManager, allocation_summary
from repro.runtime import Application

BUDGET_W = 72.0       # tight: ~18 W per node, below any GPU floor
EPOCHS = 2
TIMESTEPS = 4


def build_nodes(suite, model):
    groups = ["LU Small", "LU Large", "CoMD Small", "SMC Ref"]
    return [
        ClusterNode(f"node{i}", Application.from_suite(suite, g), model, seed=10 + i)
        for i, g in enumerate(groups)
    ]


def main() -> None:
    apu = TrinityAPU(seed=0)
    suite = build_suite()
    library = ProfilingLibrary(apu, seed=0)
    print("Training the shared machine model (LULESH only, so every node's "
          "application is unseen) ...")
    model = train_model(library, suite.for_benchmark("LULESH"))

    results = {}
    for policy in ("uniform", "greedy", "maxmin"):
        mgr = ClusterPowerManager(build_nodes(suite, model), policy=policy)
        caps = mgr.allocate(BUDGET_W)
        summary = allocation_summary(caps, mgr.frontiers(), BUDGET_W)
        print(f"\n=== {policy} allocation of {BUDGET_W:.0f} W ===")
        for name, cap in sorted(caps.items()):
            app = mgr.nodes[name].application.name
            print(f"  {name} ({app:<10}): cap {cap:5.1f} W")
        print(f"  predicted cluster rate: {summary['predicted_rate']:.3f} "
              f"timesteps/s, slack {summary['slack_w']:.1f} W")

        report = mgr.run([BUDGET_W] * EPOCHS, n_epochs=EPOCHS,
                         timesteps_per_epoch=TIMESTEPS)
        results[policy] = report
        print(f"  measured: throughput {report.mean_aggregate_rate:.3f} "
              f"timesteps/s, makespan {report.total_time_s:.2f} s, "
              f"energy {report.total_energy_j:.0f} J, "
              f"budget compliance {100 * report.budget_compliance():.0f}% "
              f"of epochs")

    gain_tp = (
        results["greedy"].mean_aggregate_rate
        / results["uniform"].mean_aggregate_rate
    )
    gain_ms = results["uniform"].total_time_s / results["maxmin"].total_time_s
    print(
        f"\nAt the same {BUDGET_W:.0f} W budget, frontier-aware allocation "
        f"delivered {gain_tp:.2f}x the throughput (greedy) and "
        f"{gain_ms:.2f}x the makespan speed (maxmin) of uniform splitting."
    )


if __name__ == "__main__":
    main()
