#!/usr/bin/env python
"""Run a whole application under a changing power cap (Section III-D).

Executes 12 timesteps of CoMD Small through three runtimes — the
adaptive model runtime, a static all-cores CPU baseline, and the
oracle — while a cluster power manager tightens the node's cap halfway
through the run (28 W -> 16 W).  The adaptive runtime spends its first
two invocations per kernel on the sample configurations (ordinary
application work), then schedules every kernel from its cached
predicted frontier; the mid-run cap change costs one frontier lookup
per kernel.

Run:  python examples/application_runtime.py
"""

from repro import Configuration, ProfilingLibrary, TrinityAPU, build_suite, train_model
from repro.runtime import AdaptiveRuntime, Application, OracleRuntime, StaticRuntime

GROUP = "CoMD Small"
TIMESTEPS = 12


def cap_schedule(timestep: int) -> float:
    """The power manager halves the node budget mid-run."""
    return 28.0 if timestep < TIMESTEPS // 2 else 16.0


def main() -> None:
    apu = TrinityAPU(seed=0)
    suite = build_suite()
    app = Application.from_suite(suite, GROUP)

    # Honest model: CoMD never seen during training.
    library = ProfilingLibrary(apu, seed=0)
    train = [k for k in suite if k.benchmark != "CoMD"]
    print(f"Training model without CoMD ({len(train)} kernels) ...")
    model = train_model(library, train)

    runs = {
        "Adaptive (model)": AdaptiveRuntime(
            model, ProfilingLibrary(apu, seed=1)
        ).run(app, TIMESTEPS, cap_schedule),
        "Static CPU 3.7x4": StaticRuntime(
            ProfilingLibrary(apu, seed=2), Configuration.cpu(3.7, 4)
        ).run(app, TIMESTEPS, cap_schedule),
        "Static CPU 1.4x4": StaticRuntime(
            ProfilingLibrary(apu, seed=3), Configuration.cpu(1.4, 4)
        ).run(app, TIMESTEPS, cap_schedule),
        "Oracle": OracleRuntime(ProfilingLibrary(apu, seed=4)).run(
            app, TIMESTEPS, cap_schedule
        ),
    }

    print(f"\n{GROUP}, {TIMESTEPS} timesteps, cap 28 W then 16 W:\n")
    oracle_time = runs["Oracle"].total_time_s
    header = (f"{'runtime':<18} {'time':>8} {'energy':>9} {'avg W':>7} "
              f"{'% over cap':>11} {'vs oracle':>10}")
    print(header)
    for name, trace in runs.items():
        print(
            f"{name:<18} {trace.total_time_s:7.2f}s "
            f"{trace.total_energy_j:8.0f}J {trace.mean_power_w:6.1f}W "
            f"{100 * trace.violation_rate:10.1f}% "
            f"{oracle_time / trace.total_time_s:9.2f}x"
        )

    adaptive = runs["Adaptive (model)"]
    print("\nAdaptive runtime device choices per cap phase:")
    for phase_name, caps in (("28 W phase", 28.0), ("16 W phase", 16.0)):
        scheduled = [
            e for e in adaptive.executions
            if e.phase == "scheduled" and e.power_cap_w == caps
        ]
        devices = {}
        for e in scheduled:
            devices[e.config.device.value] = devices.get(e.config.device.value, 0) + 1
        print(f"  {phase_name}: {devices}")


if __name__ == "__main__":
    main()
