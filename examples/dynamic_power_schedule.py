#!/usr/bin/env python
"""Dynamic power caps: reuse one predicted frontier as the cap moves.

Paper Section III-C: "The use of a predicted Pareto frontier makes our
system adaptable to dynamic power constraints, and avoids the need to
examine predictions for all configurations when scheduling conditions
change."

This example simulates a cluster-level power manager handing a node a
different cap every scheduling epoch (a sawtooth between 14 W and
32 W).  The kernel's two sample iterations run **once**; afterwards
every cap change costs a single binary search on the predicted
frontier — no new measurements, no model reruns.

Run:  python examples/dynamic_power_schedule.py
"""

from repro import (
    OnlinePredictor,
    ProfilingLibrary,
    TrinityAPU,
    build_suite,
    train_model,
)

KERNEL = "SMC/Ref/HypTerm"


def sawtooth_caps(n: int, lo: float = 14.0, hi: float = 32.0) -> list[float]:
    """A power budget that ramps up and collapses, twice."""
    half = n // 2
    ramp = [lo + (hi - lo) * i / (half - 1) for i in range(half)]
    return ramp + ramp


def main() -> None:
    apu = TrinityAPU(seed=0)
    suite = build_suite()
    kernel = suite.get(KERNEL)

    library = ProfilingLibrary(apu, seed=0)
    train = [k for k in suite if k.benchmark != kernel.benchmark]
    print(f"Training model without {kernel.benchmark} kernels ...")
    model = train_model(library, train)

    # Online: two sample iterations, then ONE predicted frontier.
    prediction = OnlinePredictor(model, library).predict(kernel)
    frontier = prediction.predicted_frontier()
    print(f"Kernel {kernel.uid}: cluster {prediction.cluster}, "
          f"predicted frontier has {len(frontier)} points\n")

    def run_epochs(risk_margin: float) -> int:
        print(f"{'epoch':>5} {'cap':>7} {'selection':<30} "
              f"{'pred W':>7} {'true W':>7} {'ok':>3}")
        violations = 0
        for epoch, cap in enumerate(sawtooth_caps(16)):
            point = frontier.best_under_cap(cap * (1.0 - risk_margin))
            if point is None:
                point = frontier[0]  # least-bad violation
            true_w = apu.true_total_power_w(kernel, point.config)
            ok = true_w <= cap
            violations += not ok
            print(
                f"{epoch:>5} {cap:6.1f}W {point.config.label():<30} "
                f"{point.power_w:6.1f}W {true_w:6.1f}W {'y' if ok else 'N':>3}"
            )
        return violations

    v0 = run_epochs(risk_margin=0.0)
    print(f"\n{v0} violations in 16 epochs; every epoch's decision was one "
          f"frontier lookup (no further kernel runs).")

    # The paper's Section VI extension: trade a little performance for
    # fewer violations by scheduling against a tightened cap.
    print("\nWith a 5% risk margin (Section VI's variance-aware idea):")
    v5 = run_epochs(risk_margin=0.05)
    print(f"\n{v5} violations with margin vs {v0} without.")


if __name__ == "__main__":
    main()
