#!/usr/bin/env python
"""Quickstart: train the adaptive model offline, then select a
configuration for an unseen kernel under a power cap.

This walks the paper's full pipeline (Figure 1) in ~30 lines:

1. build the simulated Trinity APU and the benchmark suite;
2. offline: characterize training kernels (every kernel on every
   configuration), cluster them by frontier shape, fit per-cluster
   regressions, train the classification tree;
3. online: run an *unseen* kernel's first two iterations on the sample
   configurations (Table II), predict power/performance for all 42
   configurations, and schedule under a 20 W cap;
4. compare the choice against the ground-truth optimum.

Run:  python examples/quickstart.py
"""

from repro import (
    OnlinePredictor,
    ProfilingLibrary,
    Scheduler,
    TrinityAPU,
    build_suite,
    train_model,
)


def main() -> None:
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()

    # Offline stage: train on everything except LU, the benchmark we
    # will pretend is brand new (leave-one-benchmark-out, Section V-C).
    training_kernels = [k for k in suite if k.benchmark != "LU"]
    print(f"Training on {len(training_kernels)} kernels ...")
    model = train_model(library, training_kernels)
    print(f"  clusters: sizes={model.clustering.sizes()}, "
          f"silhouette={model.clustering.silhouette:.2f}")

    # Online stage: two sample iterations of the unseen kernel.
    kernel = suite.get("LU/Small/LUDecomposition")
    prediction = OnlinePredictor(model, library).predict(kernel)
    print(f"\nUnseen kernel {kernel.uid} assigned to cluster "
          f"{prediction.cluster}")

    # Schedule under a power cap and sanity-check against ground truth.
    power_cap_w = 20.0
    decision = Scheduler().select(prediction, power_cap_w)
    true_power = apu.true_total_power_w(kernel, decision.config)
    true_perf = apu.true_performance(kernel, decision.config)
    print(f"\nAt a {power_cap_w:.0f} W cap the model selects: "
          f"{decision.config.label()}")
    print(f"  predicted: {decision.predicted_power_w:5.1f} W, "
          f"perf {decision.predicted_performance:.3f}")
    print(f"  actual:    {true_power:5.1f} W, perf {true_perf:.3f}")

    # What would perfect knowledge have done?
    best, best_perf = None, 0.0
    for cfg in apu.config_space:
        if apu.true_total_power_w(kernel, cfg) <= power_cap_w:
            p = apu.true_performance(kernel, cfg)
            if p > best_perf:
                best, best_perf = cfg, p
    print(f"  oracle:    {best.label()} at perf {best_perf:.3f} "
          f"({100 * true_perf / best_perf:.0f}% of optimal)")


if __name__ == "__main__":
    main()
