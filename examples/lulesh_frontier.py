#!/usr/bin/env python
"""Explore a kernel's power-performance Pareto frontier (paper Fig 2 /
Table I and Fig 7).

Derives the ground-truth frontier of any suite kernel, prints the
Table I-style listing, and shows how attainable performance depends on
available power — including the LU Small "cliff" the paper highlights
in Section V-D, where a 1-2 W power difference switches the best device
from CPU to GPU and triples attainable performance.

Run:  python examples/lulesh_frontier.py [kernel-uid]
e.g.  python examples/lulesh_frontier.py LU/Small/LUDecomposition
"""

import sys

from repro import NoiseModel, ParetoFrontier, TrinityAPU, build_suite
from repro.evaluation import render_frontier_table

DEFAULT_KERNEL = "LULESH/Large/CalcFBHourglassForce"


def main() -> None:
    uid = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_KERNEL
    apu = TrinityAPU(noise=NoiseModel.exact(), seed=0)
    suite = build_suite()
    kernel = suite.get(uid)

    measurements = apu.run_all_configs(kernel)
    frontier = ParetoFrontier.from_measurements(measurements)

    print(render_frontier_table(frontier, title=f"Pareto frontier of {uid}"))
    print(
        f"\n{len(measurements)} configurations measured; "
        f"{len(frontier)} on the frontier "
        f"({len(measurements) - len(frontier)} dominated and never worth "
        f"selecting)"
    )

    print("\nAttainable performance vs power cap:")
    caps = [12, 15, 18, 21, 24, 27, 30, 35]
    for cap in caps:
        best = frontier.best_under_cap(cap)
        if best is None:
            print(f"  {cap:3d} W: infeasible (minimum power "
                  f"{frontier.min_power_w:.1f} W)")
        else:
            pct = 100.0 * best.performance / frontier.max_performance
            print(f"  {cap:3d} W: {pct:5.1f}% of peak  <- {best.config.label()}")


if __name__ == "__main__":
    main()
