#!/usr/bin/env python
"""Compare power-limiting methods on one kernel (a miniature Table III).

For a single unseen kernel, evaluates all four methods — Model,
Model+FL, CPU+FL, GPU+FL — against the oracle across the kernel's
oracle-frontier power caps (the paper's cap protocol, Section V-B), and
prints each method's choice, actual power, and performance per cap.

Run:  python examples/power_cap_comparison.py [kernel-uid]
"""

import sys

from repro import ProfilingLibrary, TrinityAPU, build_suite, train_model
from repro.evaluation import evaluate_kernel, render_table3, summarize
from repro.methods import (
    CpuFrequencyLimiting,
    GpuFrequencyLimiting,
    ModelMethod,
    ModelPlusFL,
    Oracle,
)

DEFAULT_KERNEL = "LU/Small/LUDecomposition"


def main() -> None:
    uid = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_KERNEL
    apu = TrinityAPU(seed=0)
    suite = build_suite()
    kernel = suite.get(uid)

    # Train with the kernel's whole benchmark held out (paper protocol).
    library = ProfilingLibrary(apu, seed=0)
    train = [k for k in suite if k.benchmark != kernel.benchmark]
    print(f"Training model without {kernel.benchmark} kernels ...")
    model = train_model(library, train)

    oracle = Oracle(apu)
    online = ProfilingLibrary(apu, seed=1)
    methods = [
        ModelMethod(model, online),
        ModelPlusFL(model, online, seed=1),
        CpuFrequencyLimiting(apu, seed=1),
        GpuFrequencyLimiting(apu, seed=1),
    ]

    records = evaluate_kernel(apu, oracle, methods, kernel)

    caps = sorted({r.power_cap_w for r in records})
    print(f"\nPer-cap decisions for {uid} "
          f"({len(caps)} caps from the oracle frontier):\n")
    header = f"{'cap':>6}  {'oracle':<28}" + "".join(
        f"{m.name:<30}" for m in methods
    )
    print(header)
    for cap in caps:
        row = [f"{cap:5.1f}W"]
        cap_records = [r for r in records if r.power_cap_w == cap]
        row.append(f" {cap_records[0].oracle_config.label():<28}")
        for m in methods:
            r = next(x for x in cap_records if x.method == m.name)
            marker = " " if r.under_limit else "!"
            row.append(f"{marker}{r.config.label():<29}")
        print("".join(row))
    print("\n('!' marks decisions that exceeded the cap)\n")

    print(render_table3(summarize(records), title=f"Summary for {uid}"))


if __name__ == "__main__":
    main()
