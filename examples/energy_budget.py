#!/usr/bin/env python
"""Minimize completion time under an ENERGY budget (not a power cap).

The paper's model predicts both power and time for every configuration,
which makes the classic energy-budget problem (Springer et al., the
paper's reference [15]) solvable directly on predictions: choose one
configuration per kernel so a timestep finishes as fast as possible
without exceeding a Joule budget.

This example sweeps the budget from the floor (every kernel at its
most-frugal configuration) upward and prints the predicted-vs-actual
time/energy trade-off curve for one CoMD Small timestep.

Run:  python examples/energy_budget.py
"""

from repro import ProfilingLibrary, TrinityAPU, build_suite, train_model
from repro.core import CPU_SAMPLE, GPU_SAMPLE
from repro.runtime import optimize_energy_budget

GROUP = "CoMD Small"


def main() -> None:
    apu = TrinityAPU(seed=0)
    suite = build_suite()
    kernels = suite.for_group(GROUP)
    benchmark = kernels[0].benchmark

    library = ProfilingLibrary(apu, seed=0)
    print(f"Training model without {benchmark} ...")
    model = train_model(library, [k for k in suite if k.benchmark != benchmark])

    predictions = {}
    for k in kernels:
        cm = library.profile(k, CPU_SAMPLE).measurement
        gm = library.profile(k, GPU_SAMPLE).measurement
        predictions[k.uid] = model.predict_kernel(cm, gm, kernel_uid=k.uid)

    floor = sum(
        min(pw / pf for pw, pf in p.predictions.values())
        for p in predictions.values()
    )
    by_uid = {k.uid: k for k in kernels}

    print(f"\nOne {GROUP} timestep ({len(kernels)} kernels); "
          f"minimum possible energy ~ {floor:.1f} J\n")
    print(f"{'budget':>8} {'pred time':>10} {'pred J':>8} "
          f"{'true time':>10} {'true J':>8} {'devices':>12}")
    for scale in (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0):
        budget = floor * scale
        schedule = optimize_energy_budget(predictions, budget)
        true_t = true_e = 0.0
        gpu_count = 0
        for uid, cfg in schedule.assignments.items():
            k = by_uid[uid]
            t = apu.true_time_s(k, cfg)
            true_t += t
            true_e += apu.true_total_power_w(k, cfg) * t
            gpu_count += cfg.is_gpu
        print(
            f"{budget:7.1f}J {schedule.predicted_time_s:9.3f}s "
            f"{schedule.predicted_energy_j:7.1f}J "
            f"{true_t:9.3f}s {true_e:7.1f}J "
            f"{gpu_count:3d} GPU/{len(kernels) - gpu_count} CPU"
        )

    print("\nLoosening the energy budget buys time by moving kernels to "
          "faster (hungrier) configurations; the model's predictions track "
          "ground truth closely enough to spend the budget safely.")


if __name__ == "__main__":
    main()
