#!/usr/bin/env python
"""Inspect the offline stage: clusters, medoids, and the tree (Fig 3).

Trains the model on the full suite and prints what the offline stage
learned: each cluster's members and medoid, the silhouette of the
clustering, the fitted regression summaries for one cluster, and the
Figure 3-style classification tree.

Run:  python examples/cluster_explorer.py
"""

from repro import ProfilingLibrary, TrinityAPU, build_suite, train_model


def main() -> None:
    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()

    print(f"Characterizing all {len(suite)} kernels on all 42 "
          f"configurations ...")
    model = train_model(library, list(suite))
    clustering = model.clustering

    print(f"\n{clustering.n_clusters} clusters "
          f"(silhouette {clustering.silhouette:.3f}, "
          f"method {clustering.method}):")
    for c in range(clustering.n_clusters):
        members = clustering.members(c)
        medoid = (
            clustering.medoid_uids[c] if clustering.medoid_uids else "n/a"
        )
        print(f"\ncluster {c}: {len(members)} kernels, medoid = {medoid}")
        for uid in sorted(members)[:8]:
            print(f"    {uid}")
        if len(members) > 8:
            print(f"    ... and {len(members) - 8} more")

    first = min(model.cluster_models)
    print(f"\nRegression summary for cluster {first} (CPU device):")
    print(model.cluster_models[first].cpu.perf_ratio.summary())
    print()
    print(model.cluster_models[first].cpu.power.summary())

    print("\nClassification tree (paper Figure 3):")
    print(model.classifier.render())


if __name__ == "__main__":
    main()
