"""Structure-of-arrays view of the machine configuration space.

The online stage's cost argument (paper Section IV-C) is that "model
application requires a simple matrix-vector product of the
configuration space with the model coefficients".  For that product to
be all the online stage pays, everything *around* it must also be
array-shaped: the design matrices must exist before the first kernel
arrives, and predictions must stay in configuration-space order so
frontier construction and cap selection are array passes rather than
per-``Configuration`` dict walks.

:class:`ConfigTable` is that substrate: one immutable, process-wide
table per configuration space holding

* the configurations in deterministic space order (all CPU
  configurations, then all GPU configurations — contiguous device
  blocks);
* a configuration -> row-index mapping;
* the per-device performance and power design matrices
  (:func:`repro.core.features.design_row` /
  :func:`~repro.core.features.power_design_row` stacked once).

It is built on first use and shared by every :class:`~repro.core.model.
AdaptiveModel`, :class:`~repro.core.predictor.OnlinePredictor`, and the
evaluation harness: tables are cached per distinct configuration tuple,
so the hundreds of models a cross-validated sweep trains all reuse one
table (and its design matrices) instead of rebuilding them per model.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.features import design_row, power_design_row
from repro.hardware.config import ConfigSpace, Configuration

__all__ = ["ConfigTable"]


def _frozen(a: np.ndarray) -> np.ndarray:
    """Return ``a`` as float64 with the writeable flag cleared."""
    out = np.ascontiguousarray(a, dtype=np.float64)
    out.setflags(write=False)
    return out


class ConfigTable:
    """Immutable structure-of-arrays index of one configuration space.

    Attributes
    ----------
    configs:
        Configurations in space order (CPU block then GPU block).
    n_cpu, n_gpu:
        Sizes of the device blocks; rows ``[0, n_cpu)`` are CPU
        configurations, rows ``[n_cpu, n_cpu + n_gpu)`` are GPU.
    cpu_slice, gpu_slice:
        The corresponding row slices.
    X_perf_cpu, X_perf_gpu:
        Performance design matrices (one row per configuration of the
        device block).
    X_power_cpu, X_power_gpu:
        Power design matrices (voltage-aware regressors; the
        sample-power anchor columns are appended at prediction time).
    """

    def __init__(self, configs: Sequence[Configuration]) -> None:
        if not configs:
            raise ValueError("config table needs at least one configuration")
        cpu = [c for c in configs if not c.is_gpu]
        gpu = [c for c in configs if c.is_gpu]
        ordered = tuple(cpu + gpu)
        if ordered != tuple(configs):
            raise ValueError(
                "configurations must come as a contiguous CPU block "
                "followed by a contiguous GPU block (ConfigSpace order)"
            )
        self.configs: tuple[Configuration, ...] = ordered
        self.index: Mapping[Configuration, int] = {
            cfg: i for i, cfg in enumerate(ordered)
        }
        self.n_cpu: int = len(cpu)
        self.n_gpu: int = len(gpu)
        self.cpu_slice = slice(0, self.n_cpu)
        self.gpu_slice = slice(self.n_cpu, self.n_cpu + self.n_gpu)
        self.X_perf_cpu = _frozen(np.vstack([design_row(c) for c in cpu]))
        self.X_power_cpu = _frozen(np.vstack([power_design_row(c) for c in cpu]))
        if gpu:
            self.X_perf_gpu = _frozen(np.vstack([design_row(c) for c in gpu]))
            self.X_power_gpu = _frozen(
                np.vstack([power_design_row(c) for c in gpu])
            )
        else:  # pragma: no cover - the simulated machine always has a GPU
            self.X_perf_gpu = _frozen(np.empty((0, 3)))
            self.X_power_gpu = _frozen(np.empty((0, 6)))

    # -- shared construction ---------------------------------------------------

    _CACHE: dict[tuple[Configuration, ...], "ConfigTable"] = {}

    @classmethod
    def for_space(cls, space: ConfigSpace) -> "ConfigTable":
        """The process-wide table for ``space``.

        Tables are cached by the space's configuration tuple, so every
        :class:`ConfigSpace` instance enumerating the same machine maps
        to one shared table.
        """
        key = tuple(space)
        table = cls._CACHE.get(key)
        if table is None:
            table = cls._CACHE.setdefault(key, cls(key))
        return table

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self.configs)

    def __getitem__(self, i: int) -> Configuration:
        return self.configs[i]

    def rows_for(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Row indices of ``configs`` in table order (raises on a
        configuration outside the table)."""
        try:
            return np.fromiter(
                (self.index[c] for c in configs), dtype=np.intp, count=len(configs)
            )
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(f"{exc.args[0]} is not in the table") from None

    def assemble(
        self, cpu_values: np.ndarray, gpu_values: np.ndarray
    ) -> np.ndarray:
        """Join per-device prediction vectors into one space-ordered
        vector (CPU block then GPU block)."""
        out = np.empty(len(self.configs))
        out[self.cpu_slice] = cpu_values
        out[self.gpu_slice] = gpu_values
        return out
