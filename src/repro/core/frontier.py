"""Power-performance Pareto frontiers.

"Power-performance Pareto frontiers play a key role in our modeling
process" (paper Section III-B): per kernel, a configuration is on the
frontier iff no other configuration delivers at least the same
performance for no more power.  Figure 2 / Table I show an example
frontier for LULESH's ``CalcFBHourglassForce``; Figure 7 shows LU
Small's.  Frontiers are consumed three ways:

* clustering — kernels are grouped by the *order* of configurations
  along their frontiers (:mod:`repro.core.dissimilarity`);
* the oracle — "the majority of configurations would never be selected"
  because frontier points dominate them;
* scheduling — a (predicted) frontier answers "best configuration under
  this power cap" in one binary search.

Construction is array-shaped: candidates are stable-lexsorted by
(power, -performance) and swept with a running performance maximum —
O(n log n) with the Python loop replaced by :func:`numpy.maximum.
accumulate`.  The kept points' power levels are strictly increasing, so
``best_under_cap``/``dominates`` bisect the stored power array, and a
whole cap sweep is one :func:`numpy.searchsorted` call over
:attr:`ParetoFrontier.powers`.  :class:`FrontierPoint` objects are
materialized lazily — hot paths (scheduling, node-frontier assembly)
read the arrays and never build them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration

__all__ = ["FrontierPoint", "ParetoFrontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One (configuration, power, performance) triple."""

    config: Configuration
    power_w: float
    performance: float

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError(f"power_w={self.power_w} must be positive")
        if self.performance <= 0:
            raise ValueError(f"performance={self.performance} must be positive")


class ParetoFrontier:
    """The set of non-dominated (power, performance) configurations.

    Points are stored sorted by ascending power; along the frontier
    performance is strictly increasing (a point matching another's
    performance at higher power is dominated and removed).  Power levels
    are therefore strictly increasing too, which is what lets every
    query bisect.
    """

    __slots__ = ("_cfgs", "_powers", "_perfs", "_points")

    def __init__(self, points: Iterable[FrontierPoint]) -> None:
        pts = list(points)
        self._init_from_arrays(
            [p.config for p in pts],
            np.array([p.power_w for p in pts], dtype=np.float64),
            np.array([p.performance for p in pts], dtype=np.float64),
            validate=False,  # FrontierPoint already validated positivity
        )

    def _init_from_arrays(
        self,
        configs: Sequence[Configuration],
        powers: np.ndarray,
        perfs: np.ndarray,
        *,
        validate: bool,
    ) -> None:
        n = len(configs)
        if n == 0:
            raise ValueError("frontier needs at least one point")
        if powers.shape != (n,) or perfs.shape != (n,):
            raise ValueError("powers/performances must match configs in length")
        if validate:
            if np.any(powers <= 0):
                bad = float(powers[powers <= 0][0])
                raise ValueError(f"power_w={bad} must be positive")
            if np.any(perfs <= 0):
                bad = float(perfs[perfs <= 0][0])
                raise ValueError(f"performance={bad} must be positive")
        # Stable sort by (power, -performance): identical ordering to
        # sorted(points, key=lambda p: (p.power_w, -p.performance)).
        order = np.lexsort((-perfs, powers))
        powers = powers[order]
        perfs = perfs[order]
        # Keep a point iff its performance strictly exceeds every
        # lower-power point's — the classic running-max sweep.
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        if n > 1:
            keep[1:] = perfs[1:] > np.maximum.accumulate(perfs)[:-1]
        kept = np.flatnonzero(keep)
        self._cfgs: tuple[Configuration, ...] = tuple(
            configs[order[i]] for i in kept
        )
        self._powers: np.ndarray = powers[kept]
        self._perfs: np.ndarray = perfs[kept]
        self._points: tuple[FrontierPoint, ...] | None = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        configs: Sequence[Configuration],
        powers: np.ndarray,
        perfs: np.ndarray,
    ) -> "ParetoFrontier":
        """Derive a frontier from parallel arrays without materializing
        :class:`FrontierPoint` objects (the prediction hot path)."""
        self = cls.__new__(cls)
        self._init_from_arrays(
            configs,
            np.asarray(powers, dtype=np.float64),
            np.asarray(perfs, dtype=np.float64),
            validate=True,
        )
        return self

    @staticmethod
    def from_measurements(measurements: Sequence[Measurement]) -> "ParetoFrontier":
        """Derive a frontier from measured executions of one kernel."""
        return ParetoFrontier.from_arrays(
            [m.config for m in measurements],
            np.array([m.total_power_w for m in measurements], dtype=np.float64),
            np.array([m.performance for m in measurements], dtype=np.float64),
        )

    @staticmethod
    def from_predictions(
        predictions: Mapping[Configuration, tuple[float, float]],
    ) -> "ParetoFrontier":
        """Derive a frontier from ``{config: (power_w, performance)}``."""
        cfgs = list(predictions)
        pairs = list(predictions.values())
        return ParetoFrontier.from_arrays(
            cfgs,
            np.array([pw for pw, _ in pairs], dtype=np.float64),
            np.array([perf for _, perf in pairs], dtype=np.float64),
        )

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._cfgs)

    def __iter__(self) -> Iterator[FrontierPoint]:
        return iter(self.points)

    def __getitem__(self, i: int) -> FrontierPoint:
        return self.points[i]

    @property
    def points(self) -> tuple[FrontierPoint, ...]:
        """Frontier points, ascending in power (materialized lazily)."""
        if self._points is None:
            self._points = tuple(
                FrontierPoint(config=c, power_w=float(pw), performance=float(pf))
                for c, pw, pf in zip(self._cfgs, self._powers, self._perfs)
            )
        return self._points

    def configs(self) -> list[Configuration]:
        """Frontier configurations, in ascending-power order — the
        ordering the clustering stage compares across kernels."""
        return list(self._cfgs)

    # -- array views -------------------------------------------------------------

    @property
    def powers(self) -> np.ndarray:
        """Frontier power levels (watts), strictly increasing."""
        return self._powers

    @property
    def performances(self) -> np.ndarray:
        """Frontier performance values, strictly increasing."""
        return self._perfs

    # -- queries ----------------------------------------------------------------

    @property
    def max_performance(self) -> float:
        """The frontier's best performance (its top point)."""
        return float(self._perfs[-1])

    @property
    def min_power_w(self) -> float:
        """The frontier's lowest power (its bottom point)."""
        return float(self._powers[0])

    def best_under_cap(self, power_cap_w: float) -> FrontierPoint | None:
        """Highest-performance frontier point with power <= the cap, or
        ``None`` if even the lowest-power point exceeds it."""
        i = int(np.searchsorted(self._powers, power_cap_w, side="right"))
        if i == 0:
            return None
        return self.points[i - 1]

    def indices_under_caps(self, caps: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`best_under_cap` over a cap sweep: the index
        of the best feasible point per cap, or ``-1`` where even the
        lowest-power point exceeds the cap."""
        return (
            np.searchsorted(self._powers, np.asarray(caps), side="right") - 1
        )

    def normalized(self) -> list[tuple[Configuration, float, float]]:
        """Frontier as (config, power_w, performance / max performance),
        the presentation of the paper's Table I."""
        top = self.max_performance
        return [
            (c, float(pw), float(pf) / top)
            for c, pw, pf in zip(self._cfgs, self._powers, self._perfs)
        ]

    def dominates(self, power_w: float, performance: float) -> bool:
        """Whether some frontier point weakly dominates the given point
        (no more power, at least the performance, better in one)."""
        # Bisect to the last frontier point with power <= power_w; since
        # performance is strictly increasing it is the only candidate:
        # any earlier point has strictly less performance than it.
        i = int(np.searchsorted(self._powers, power_w, side="right"))
        if i == 0:
            return False
        pw = self._powers[i - 1]
        pf = self._perfs[i - 1]
        return pf > performance or (pf == performance and pw < power_w)
