"""Power-performance Pareto frontiers.

"Power-performance Pareto frontiers play a key role in our modeling
process" (paper Section III-B): per kernel, a configuration is on the
frontier iff no other configuration delivers at least the same
performance for no more power.  Figure 2 / Table I show an example
frontier for LULESH's ``CalcFBHourglassForce``; Figure 7 shows LU
Small's.  Frontiers are consumed three ways:

* clustering — kernels are grouped by the *order* of configurations
  along their frontiers (:mod:`repro.core.dissimilarity`);
* the oracle — "the majority of configurations would never be selected"
  because frontier points dominate them;
* scheduling — a (predicted) frontier answers "best configuration under
  this power cap" in one binary search.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration

__all__ = ["FrontierPoint", "ParetoFrontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One (configuration, power, performance) triple."""

    config: Configuration
    power_w: float
    performance: float

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError(f"power_w={self.power_w} must be positive")
        if self.performance <= 0:
            raise ValueError(f"performance={self.performance} must be positive")


class ParetoFrontier:
    """The set of non-dominated (power, performance) configurations.

    Points are stored sorted by ascending power; along the frontier
    performance is strictly increasing (a point matching another's
    performance at higher power is dominated and removed).
    """

    def __init__(self, points: Iterable[FrontierPoint]) -> None:
        candidates = sorted(points, key=lambda p: (p.power_w, -p.performance))
        if not candidates:
            raise ValueError("frontier needs at least one point")
        frontier: list[FrontierPoint] = []
        best_perf = 0.0
        for p in candidates:
            if p.performance > best_perf:
                frontier.append(p)
                best_perf = p.performance
        self._points: tuple[FrontierPoint, ...] = tuple(frontier)
        self._powers: list[float] = [p.power_w for p in frontier]

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def from_measurements(measurements: Sequence[Measurement]) -> "ParetoFrontier":
        """Derive a frontier from measured executions of one kernel."""
        return ParetoFrontier(
            FrontierPoint(
                config=m.config,
                power_w=m.total_power_w,
                performance=m.performance,
            )
            for m in measurements
        )

    @staticmethod
    def from_predictions(
        predictions: dict[Configuration, tuple[float, float]],
    ) -> "ParetoFrontier":
        """Derive a frontier from ``{config: (power_w, performance)}``."""
        return ParetoFrontier(
            FrontierPoint(config=cfg, power_w=pw, performance=perf)
            for cfg, (pw, perf) in predictions.items()
        )

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[FrontierPoint]:
        return iter(self._points)

    def __getitem__(self, i: int) -> FrontierPoint:
        return self._points[i]

    @property
    def points(self) -> tuple[FrontierPoint, ...]:
        """Frontier points, ascending in power."""
        return self._points

    def configs(self) -> list[Configuration]:
        """Frontier configurations, in ascending-power order — the
        ordering the clustering stage compares across kernels."""
        return [p.config for p in self._points]

    # -- queries ----------------------------------------------------------------

    @property
    def max_performance(self) -> float:
        """The frontier's best performance (its top point)."""
        return self._points[-1].performance

    @property
    def min_power_w(self) -> float:
        """The frontier's lowest power (its bottom point)."""
        return self._points[0].power_w

    def best_under_cap(self, power_cap_w: float) -> FrontierPoint | None:
        """Highest-performance frontier point with power <= the cap, or
        ``None`` if even the lowest-power point exceeds it."""
        i = bisect.bisect_right(self._powers, power_cap_w)
        if i == 0:
            return None
        return self._points[i - 1]

    def normalized(self) -> list[tuple[Configuration, float, float]]:
        """Frontier as (config, power_w, performance / max performance),
        the presentation of the paper's Table I."""
        top = self.max_performance
        return [(p.config, p.power_w, p.performance / top) for p in self._points]

    def dominates(self, power_w: float, performance: float) -> bool:
        """Whether some frontier point weakly dominates the given point
        (no more power, at least the performance, better in one)."""
        for p in self._points:
            if p.power_w > power_w:
                break
            if p.performance >= performance and (
                p.power_w < power_w or p.performance > performance
            ):
                return True
        return False
