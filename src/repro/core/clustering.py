"""Relational clustering of kernels by frontier shape.

Paper Section III-B: from the frontier dissimilarity matrix "we perform
relational clustering via the R Fossil package.  This groups the kernels
into clusters according to similarities between the order of
configurations along the kernels' respective power-performance
frontiers."  The paper found five clusters optimal for its suite —
"using fewer clusters resulted in over-generalized models, and using
more clusters resulted in over-specialized models" — a trade-off probed
by the cluster-count ablation benchmark.

Two relational clusterers are offered: PAM k-medoids (default) and
average-linkage agglomerative.  Both consume only the dissimilarity
matrix, never coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

import numpy as np

from repro.core.dissimilarity import dissimilarity_matrix
from repro.core.frontier import ParetoFrontier
from repro.stats.agglomerative import average_linkage_labels
from repro.stats.kmedoids import pam, silhouette_score

__all__ = ["ClusteringResult", "cluster_kernels", "choose_n_clusters"]

#: The paper's empirically chosen cluster count.
DEFAULT_N_CLUSTERS: int = 5


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of clustering the training kernels.

    Attributes
    ----------
    labels:
        Cluster index per kernel uid.
    n_clusters:
        Number of clusters requested.
    silhouette:
        Mean silhouette width of the clustering (NaN for one cluster).
    medoid_uids:
        Medoid kernel per cluster (PAM only; empty for agglomerative).
    method:
        Which relational clusterer produced the result.
    """

    labels: Mapping[str, int]
    n_clusters: int
    silhouette: float
    medoid_uids: tuple[str, ...]
    method: str

    def members(self, cluster: int) -> list[str]:
        """Kernel uids assigned to one cluster."""
        return [uid for uid, c in self.labels.items() if c == cluster]

    def sizes(self) -> list[int]:
        """Cluster sizes, indexed by cluster id."""
        return [len(self.members(c)) for c in range(self.n_clusters)]


def cluster_kernels(
    frontiers: Mapping[str, ParetoFrontier],
    *,
    n_clusters: int = DEFAULT_N_CLUSTERS,
    method: Literal["pam", "average"] = "pam",
    composition_weight: float | None = None,
    dissimilarity: np.ndarray | None = None,
) -> ClusteringResult:
    """Group kernels into clusters by frontier similarity.

    Parameters
    ----------
    frontiers:
        Per-kernel Pareto frontiers, keyed by kernel uid (insertion
        order defines matrix order).
    n_clusters:
        Cluster count (paper default: 5).
    method:
        ``"pam"`` (k-medoids, default) or ``"average"`` linkage.
    composition_weight:
        Blend between frontier-composition and frontier-order terms in
        the dissimilarity (see
        :func:`repro.core.dissimilarity.frontier_dissimilarity`);
        ``None`` uses the package default.
    dissimilarity:
        Optional precomputed dissimilarity matrix in ``frontiers``
        iteration order (e.g. a
        :class:`~repro.core.dissimilarity.DissimilarityCache`
        submatrix).  When given, ``composition_weight`` is assumed to be
        already baked in and the matrix is used as-is.
    """
    uids = list(frontiers.keys())
    if n_clusters < 1 or n_clusters > len(uids):
        raise ValueError(
            f"n_clusters={n_clusters} invalid for {len(uids)} kernels"
        )
    if dissimilarity is not None:
        D = np.asarray(dissimilarity, dtype=float)
        if D.shape != (len(uids), len(uids)):
            raise ValueError(
                f"dissimilarity shape {D.shape} does not match "
                f"{len(uids)} kernels"
            )
    else:
        kwargs = {}
        if composition_weight is not None:
            kwargs["composition_weight"] = composition_weight
        D = dissimilarity_matrix(frontiers, **kwargs)

    if method == "pam":
        result = pam(D, n_clusters)
        labels = result.labels
        medoids = tuple(uids[m] for m in result.medoids)
    elif method == "average":
        labels = average_linkage_labels(D, n_clusters)
        medoids = ()
    else:
        raise ValueError(f"unknown clustering method {method!r}")

    sil = silhouette_score(D, labels) if n_clusters > 1 else float("nan")
    return ClusteringResult(
        labels={uid: int(c) for uid, c in zip(uids, labels)},
        n_clusters=n_clusters,
        silhouette=float(sil) if not np.isnan(sil) else float("nan"),
        medoid_uids=medoids,
        method=method,
    )


def choose_n_clusters(
    frontiers: Mapping[str, ParetoFrontier],
    *,
    k_range: tuple[int, int] = (2, 8),
    method: Literal["pam", "average"] = "pam",
    composition_weight: float | None = None,
) -> int:
    """Pick a cluster count by silhouette over a candidate range.

    The paper chose its five clusters "empirically" by predictive
    ability; silhouette is the standard unsupervised proxy exposed here
    for users without a validation suite.  Ties break toward fewer
    clusters (the more general model).
    """
    lo, hi = k_range
    if lo < 2 or hi < lo:
        raise ValueError(f"invalid k_range {k_range}")
    hi = min(hi, len(frontiers) - 1)
    if hi < lo:
        raise ValueError("too few kernels for the requested k_range")
    best_k, best_sil = lo, -np.inf
    for k in range(lo, hi + 1):
        result = cluster_kernels(
            frontiers,
            n_clusters=k,
            method=method,
            composition_weight=composition_weight,
        )
        if result.silhouette > best_sil + 1e-12:
            best_k, best_sil = k, result.silhouette
    return best_k
