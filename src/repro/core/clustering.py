"""Relational clustering of kernels by frontier shape.

Paper Section III-B: from the frontier dissimilarity matrix "we perform
relational clustering via the R Fossil package.  This groups the kernels
into clusters according to similarities between the order of
configurations along the kernels' respective power-performance
frontiers."  The paper found five clusters optimal for its suite —
"using fewer clusters resulted in over-generalized models, and using
more clusters resulted in over-specialized models" — a trade-off probed
by the cluster-count ablation benchmark.

Two relational clusterers are offered: PAM k-medoids (default) and
average-linkage agglomerative.  Both consume only the dissimilarity
matrix, never coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Literal, Mapping, Sequence

import numpy as np

from repro.core.dissimilarity import dissimilarity_matrix
from repro.core.frontier import ParetoFrontier
from repro.stats.agglomerative import average_linkage_labels
from repro.stats.kmedoids import pam, silhouette_score

__all__ = [
    "ClusteringResult",
    "cluster_kernels",
    "choose_n_clusters",
    "resolve_warm_medoids",
]

#: The paper's empirically chosen cluster count.
DEFAULT_N_CLUSTERS: int = 5


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of clustering the training kernels.

    Attributes
    ----------
    labels:
        Cluster index per kernel uid.
    n_clusters:
        Number of clusters requested.
    silhouette:
        Mean silhouette width of the clustering (NaN for one cluster).
    medoid_uids:
        Medoid kernel per cluster (PAM only; empty for agglomerative).
    method:
        Which relational clusterer produced the result.
    """

    labels: Mapping[str, int]
    n_clusters: int
    silhouette: float
    medoid_uids: tuple[str, ...]
    method: str

    def members(self, cluster: int) -> list[str]:
        """Kernel uids assigned to one cluster."""
        return [uid for uid, c in self.labels.items() if c == cluster]

    def sizes(self) -> list[int]:
        """Cluster sizes, indexed by cluster id."""
        return [len(self.members(c)) for c in range(self.n_clusters)]


def cluster_kernels(
    frontiers: Mapping[str, ParetoFrontier] | Sequence[str],
    *,
    n_clusters: int = DEFAULT_N_CLUSTERS,
    method: Literal["pam", "average"] = "pam",
    composition_weight: float | None = None,
    dissimilarity: np.ndarray | None = None,
    initial_medoid_uids: Sequence[str] | None = None,
) -> ClusteringResult:
    """Group kernels into clusters by frontier similarity.

    Parameters
    ----------
    frontiers:
        Per-kernel Pareto frontiers, keyed by kernel uid (insertion
        order defines matrix order) — or, when ``dissimilarity`` is
        precomputed, just the kernel uids in matrix order (the frontier
        values are only ever consumed to build the matrix).
    n_clusters:
        Cluster count (paper default: 5).
    method:
        ``"pam"`` (k-medoids, default) or ``"average"`` linkage.
    composition_weight:
        Blend between frontier-composition and frontier-order terms in
        the dissimilarity (see
        :func:`repro.core.dissimilarity.frontier_dissimilarity`);
        ``None`` uses the package default.
    dissimilarity:
        Optional precomputed dissimilarity matrix in ``frontiers``
        iteration order (e.g. a
        :class:`~repro.core.dissimilarity.DissimilarityCache`
        submatrix).  When given, ``composition_weight`` is assumed to be
        already baked in and the matrix is used as-is.
    initial_medoid_uids:
        Optional warm-start seeding for PAM (see
        :func:`resolve_warm_medoids`).  Ignored unless every uid is
        present and distinct and exactly ``n_clusters`` are given —
        anything else falls back to the cold BUILD phase, so a stale or
        partial seeding can never fail a clustering that would
        otherwise succeed.
    """
    if isinstance(frontiers, Mapping):
        uids = list(frontiers.keys())
    else:
        uids = list(frontiers)
        if dissimilarity is None:
            raise ValueError(
                "clustering by uids alone requires a precomputed "
                "dissimilarity matrix"
            )
    if n_clusters < 1 or n_clusters > len(uids):
        raise ValueError(
            f"n_clusters={n_clusters} invalid for {len(uids)} kernels"
        )
    if dissimilarity is not None:
        D = np.asarray(dissimilarity, dtype=float)
        if D.shape != (len(uids), len(uids)):
            raise ValueError(
                f"dissimilarity shape {D.shape} does not match "
                f"{len(uids)} kernels"
            )
    else:
        kwargs = {}
        if composition_weight is not None:
            kwargs["composition_weight"] = composition_weight
        D = dissimilarity_matrix(frontiers, **kwargs)

    if method == "pam":
        init = None
        if initial_medoid_uids is not None and len(initial_medoid_uids) == n_clusters:
            pos = {u: i for i, u in enumerate(uids)}
            seeds = [pos[u] for u in initial_medoid_uids if u in pos]
            if len(seeds) == n_clusters and len(set(seeds)) == n_clusters:
                init = seeds
        result = pam(D, n_clusters, init_medoids=init)
        labels = result.labels
        medoids = tuple(uids[m] for m in result.medoids)
    elif method == "average":
        labels = average_linkage_labels(D, n_clusters)
        medoids = ()
    else:
        raise ValueError(f"unknown clustering method {method!r}")

    sil = silhouette_score(D, labels) if n_clusters > 1 else float("nan")
    return ClusteringResult(
        labels={uid: int(c) for uid, c in zip(uids, labels)},
        n_clusters=n_clusters,
        silhouette=float(sil) if not np.isnan(sil) else float("nan"),
        medoid_uids=medoids,
        method=method,
    )


def resolve_warm_medoids(
    reference: ClusteringResult,
    reference_uids: Sequence[str],
    reference_dissimilarity: np.ndarray,
    present_uids: Collection[str],
) -> tuple[str, ...] | None:
    """Project a reference clustering's medoids onto a kernel subset.

    For each reference cluster, the seeding keeps its medoid when the
    subset retains it; otherwise the *best present member* of that
    cluster stands in — the member minimizing total dissimilarity to
    the cluster's other present members (the medoid of the surviving
    sub-cluster), which is exactly the point SWAP would have promoted.
    Used by the leave-one-out driver to seed every fold's PAM from the
    full-suite clustering.

    Returns ``None`` when no valid seeding exists (a cluster lost all
    members to the holdout, or replacements collide), in which case the
    caller should let PAM run its cold BUILD phase.
    """
    present = set(present_uids)
    pos = {u: i for i, u in enumerate(reference_uids)}
    D = np.asarray(reference_dissimilarity, dtype=float)
    by_cluster: dict[int, list[str]] = {}
    for uid, c in reference.labels.items():
        by_cluster.setdefault(c, []).append(uid)

    seeds: list[str] = []
    for c in range(reference.n_clusters):
        medoid = reference.medoid_uids[c] if c < len(reference.medoid_uids) else None
        if medoid is not None and medoid in present:
            seeds.append(medoid)
            continue
        members = [u for u in by_cluster.get(c, ()) if u in present]
        if not members:
            return None
        rows = np.array([pos[u] for u in members])
        sub = D[np.ix_(rows, rows)]
        seeds.append(members[int(np.argmin(sub.sum(axis=1)))])
    if len(set(seeds)) != len(seeds):
        return None
    return tuple(seeds)


def choose_n_clusters(
    frontiers: Mapping[str, ParetoFrontier],
    *,
    k_range: tuple[int, int] = (2, 8),
    method: Literal["pam", "average"] = "pam",
    composition_weight: float | None = None,
) -> int:
    """Pick a cluster count by silhouette over a candidate range.

    The paper chose its five clusters "empirically" by predictive
    ability; silhouette is the standard unsupervised proxy exposed here
    for users without a validation suite.  Ties break toward fewer
    clusters (the more general model).
    """
    lo, hi = k_range
    if lo < 2 or hi < lo:
        raise ValueError(f"invalid k_range {k_range}")
    hi = min(hi, len(frontiers) - 1)
    if hi < lo:
        raise ValueError("too few kernels for the requested k_range")
    best_k, best_sil = lo, -np.inf
    for k in range(lo, hi + 1):
        result = cluster_kernels(
            frontiers,
            n_clusters=k,
            method=method,
            composition_weight=composition_weight,
        )
        if result.silhouette > best_sil + 1e-12:
            best_k, best_sil = k, result.silhouette
    return best_k
