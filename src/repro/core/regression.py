"""Per-cluster power and performance regression models.

Paper Section III-B defines two model families per cluster:

* **performance** — a ratio to the same-device sample configuration,
  with no intercept::

      P_perf = (a1*x1 + ... + an*xn) * S_perf

  where ``S_perf`` is the kernel's measured performance on the sample
  configuration of the relevant device, and the ``x_i`` are the
  configuration variables and their first-order interactions
  (:mod:`repro.core.features`);

* **power** — predicted directly, with intercept::

      P_power = b0 + b1*x1 + ... + bn*xn

  The power design uses voltage-aware configuration variables
  (:func:`repro.core.features.power_design_row`).  We additionally
  include the kernel's measured *sample-configuration power* as a
  regressor, plus its first-order interactions with the configuration
  variables (``power_anchor``, on by default).  Both sample iterations
  measure power, so this uses no information beyond the paper's
  two-iteration budget, and it lets one cluster model serve kernels
  whose absolute power levels differ (the paper reports
  best-configuration power from 19 W to 55 W across kernels): the
  anchor carries each kernel's activity level, and the interactions let
  that level scale the dynamic-power terms.  The ablation benchmark
  ``test_bench_ablation_anchor`` quantifies the effect;
  ``power_anchor=False`` recovers the narrowest literal reading of the
  paper.

As the paper notes, these linear models exist "to rank configurations in
performance and power in a computationally efficient manner" — ranking
quality, not absolute accuracy, is what the scheduler needs.

The optional ``transform="log"`` applies the variance-stabilizing
transformation the paper lists as future work (Section VI): targets are
fitted in log space and predictions exponentiated, de-emphasizing the
extremes of the fitted range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.characterization import KernelCharacterization
from repro.core.features import (
    CPU_FEATURE_NAMES,
    CPU_POWER_FEATURE_NAMES,
    GPU_FEATURE_NAMES,
    GPU_POWER_FEATURE_NAMES,
    design_row,
    power_design_row,
)
from repro.hardware.config import Configuration, Device
from repro.stats.ols import OLSModel, fit_ols

__all__ = ["DeviceModels", "ClusterModels", "fit_cluster_models"]

#: Scale (watts) normalizing the power-anchor regressor.
_POWER_ANCHOR_SCALE_W: float = 30.0

Transform = Literal["none", "log"]


@dataclass(frozen=True)
class DeviceModels:
    """The fitted (performance-ratio, power) model pair for one device."""

    device: Device
    perf_ratio: OLSModel
    power: OLSModel
    transform: Transform
    power_anchor: bool

    def predict_performance(self, cfg: Configuration, sample_perf: float) -> float:
        """Predicted absolute performance of ``cfg`` given the kernel's
        measured sample performance on this device."""
        self._check_device(cfg)
        ratio = float(self.perf_ratio.predict(design_row(cfg))[0])
        if self.transform == "log":
            ratio = float(np.exp(ratio))
        return max(ratio, 1e-9) * sample_perf

    def predict_power(self, cfg: Configuration, sample_power_w: float) -> float:
        """Predicted total power (watts) of ``cfg`` given the kernel's
        measured sample power on this device."""
        self._check_device(cfg)
        x = _power_features(cfg, sample_power_w, self.power_anchor)
        p = float(self.power.predict(x)[0])
        if self.transform == "log":
            p = float(np.exp(p))
        return max(p, 1e-6)

    def _check_device(self, cfg: Configuration) -> None:
        if cfg.device is not self.device:
            raise ValueError(
                f"model for {self.device} applied to {cfg.device} configuration"
            )

    # -- vectorized prediction over precomputed design matrices --------------
    # The paper's online-overhead argument (Section IV-C): "model
    # application requires a simple matrix-vector product of the
    # configuration space with the model coefficients".  These batch
    # entry points are that product; AdaptiveModel precomputes the
    # design matrices once per machine.

    def predict_performance_from_matrix(
        self, X: np.ndarray, sample_perf: float
    ) -> np.ndarray:
        """Batch :meth:`predict_performance` over a precomputed
        performance design matrix (rows = configurations)."""
        ratios = self.perf_ratio.predict(X)
        if self.transform == "log":
            ratios = np.exp(ratios)
        return np.maximum(ratios, 1e-9) * sample_perf

    def predict_power_from_matrix(
        self, X_power: np.ndarray, sample_power_w: float
    ) -> np.ndarray:
        """Batch :meth:`predict_power` over a precomputed power design
        matrix (rows = configurations, anchor columns appended here)."""
        p = self.power.predict(self._anchored(X_power, sample_power_w))
        if self.transform == "log":
            p = np.exp(p)
        return np.maximum(p, 1e-6)

    def _anchored(self, X_power: np.ndarray, sample_power_w: float) -> np.ndarray:
        if not self.power_anchor:
            return X_power
        s = sample_power_w / _POWER_ANCHOR_SCALE_W
        n = X_power.shape[0]
        return np.hstack([X_power, np.full((n, 1), s), s * X_power])

    # -- prediction uncertainty (paper Section VI) ----------------------------

    def predict_performance_std_from_matrix(
        self, X: np.ndarray, sample_perf: float
    ) -> np.ndarray:
        """Prediction standard deviation of the performance estimates.

        For the log transform the delta method is applied:
        ``std(exp(y)) ~ exp(mean) * std(y)``.
        """
        std = self.perf_ratio.predict_std(X)
        if self.transform == "log":
            mean = np.exp(self.perf_ratio.predict(X))
            std = mean * std
        return std * sample_perf

    def predict_power_std_from_matrix(
        self, X_power: np.ndarray, sample_power_w: float
    ) -> np.ndarray:
        """Prediction standard deviation of the power estimates (watts)."""
        Xa = self._anchored(X_power, sample_power_w)
        std = self.power.predict_std(Xa)
        if self.transform == "log":
            mean = np.exp(self.power.predict(Xa))
            std = mean * std
        return std


@dataclass(frozen=True)
class ClusterModels:
    """The four fitted regressions of one kernel cluster."""

    cpu: DeviceModels
    gpu: DeviceModels

    def for_device(self, device: Device) -> DeviceModels:
        """The model pair serving one device."""
        return self.gpu if device is Device.GPU else self.cpu

    def predict(
        self,
        cfg: Configuration,
        *,
        sample_perf_cpu: float,
        sample_perf_gpu: float,
        sample_power_cpu_w: float,
        sample_power_gpu_w: float,
    ) -> tuple[float, float]:
        """Predicted ``(power_w, performance)`` of one configuration,
        anchored to the kernel's two sample measurements."""
        if cfg.device is Device.GPU:
            return (
                self.gpu.predict_power(cfg, sample_power_gpu_w),
                self.gpu.predict_performance(cfg, sample_perf_gpu),
            )
        return (
            self.cpu.predict_power(cfg, sample_power_cpu_w),
            self.cpu.predict_performance(cfg, sample_perf_cpu),
        )


def _power_features(
    cfg: Configuration, sample_power_w: float, power_anchor: bool
) -> np.ndarray:
    """Power-model regressors: voltage-aware configuration variables,
    optionally joined by the sample-power anchor and its first-order
    interactions with every configuration variable."""
    x = power_design_row(cfg)
    if not power_anchor:
        return x
    s = sample_power_w / _POWER_ANCHOR_SCALE_W
    return np.concatenate([x, [s], s * x])


def _power_feature_names(device: Device, power_anchor: bool) -> tuple[str, ...]:
    base = (
        GPU_POWER_FEATURE_NAMES if device is Device.GPU else CPU_POWER_FEATURE_NAMES
    )
    if not power_anchor:
        return base
    return base + ("sample_power",) + tuple(f"sample_power*{n}" for n in base)


def _fit_device(
    chars: Sequence[KernelCharacterization],
    device: Device,
    transform: Transform,
    power_anchor: bool,
    ridge: float,
) -> DeviceModels:
    X_perf, y_perf, X_power, y_power = [], [], [], []
    for c in chars:
        sample = c.gpu_sample if device is Device.GPU else c.cpu_sample
        s_perf = sample.performance
        s_power = sample.total_power_w
        for cfg, m in c.measurements.items():
            if cfg.device is not device:
                continue
            ratio = m.performance / s_perf
            X_perf.append(design_row(cfg))
            y_perf.append(np.log(ratio) if transform == "log" else ratio)
            X_power.append(_power_features(cfg, s_power, power_anchor))
            y_power.append(
                np.log(m.total_power_w) if transform == "log" else m.total_power_w
            )

    names = GPU_FEATURE_NAMES if device is Device.GPU else CPU_FEATURE_NAMES
    power_names = _power_feature_names(device, power_anchor)
    perf_model = fit_ols(
        np.asarray(X_perf),
        np.asarray(y_perf),
        intercept=False,
        feature_names=names,
        ridge=ridge,
    )
    power_model = fit_ols(
        np.asarray(X_power),
        np.asarray(y_power),
        intercept=True,
        feature_names=power_names,
        ridge=ridge,
    )
    return DeviceModels(
        device=device,
        perf_ratio=perf_model,
        power=power_model,
        transform=transform,
        power_anchor=power_anchor,
    )


def fit_cluster_models(
    chars: Sequence[KernelCharacterization],
    *,
    transform: Transform = "none",
    power_anchor: bool = True,
    ridge: float = 0.0,
) -> ClusterModels:
    """Fit one cluster's regressions from its member kernels'
    characterizations (pooled across kernels, per device).

    ``ridge`` adds L2 regularization to both model families — useful
    when a cluster is small (few kernels pool few rows) and the
    interaction columns would otherwise overfit measurement noise.

    Raises
    ------
    ValueError
        If ``chars`` is empty or a device has no measurements.
    """
    if not chars:
        raise ValueError("cannot fit cluster models without kernels")
    if transform not in ("none", "log"):
        raise ValueError(f"unknown transform {transform!r}")
    return ClusterModels(
        cpu=_fit_device(chars, Device.CPU, transform, power_anchor, ridge),
        gpu=_fit_device(chars, Device.GPU, transform, power_anchor, ridge),
    )
