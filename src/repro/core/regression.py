"""Per-cluster power and performance regression models.

Paper Section III-B defines two model families per cluster:

* **performance** — a ratio to the same-device sample configuration,
  with no intercept::

      P_perf = (a1*x1 + ... + an*xn) * S_perf

  where ``S_perf`` is the kernel's measured performance on the sample
  configuration of the relevant device, and the ``x_i`` are the
  configuration variables and their first-order interactions
  (:mod:`repro.core.features`);

* **power** — predicted directly, with intercept::

      P_power = b0 + b1*x1 + ... + bn*xn

  The power design uses voltage-aware configuration variables
  (:func:`repro.core.features.power_design_row`).  We additionally
  include the kernel's measured *sample-configuration power* as a
  regressor, plus its first-order interactions with the configuration
  variables (``power_anchor``, on by default).  Both sample iterations
  measure power, so this uses no information beyond the paper's
  two-iteration budget, and it lets one cluster model serve kernels
  whose absolute power levels differ (the paper reports
  best-configuration power from 19 W to 55 W across kernels): the
  anchor carries each kernel's activity level, and the interactions let
  that level scale the dynamic-power terms.  The ablation benchmark
  ``test_bench_ablation_anchor`` quantifies the effect;
  ``power_anchor=False`` recovers the narrowest literal reading of the
  paper.

As the paper notes, these linear models exist "to rank configurations in
performance and power in a computationally efficient manner" — ranking
quality, not absolute accuracy, is what the scheduler needs.

The optional ``transform="log"`` applies the variance-stabilizing
transformation the paper lists as future work (Section VI): targets are
fitted in log space and predictions exponentiated, de-emphasizing the
extremes of the fitted range.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Literal, Mapping, Sequence

import numpy as np

from repro.core.characterization import KernelCharacterization
from repro.core.features import (
    CPU_FEATURE_NAMES,
    CPU_POWER_FEATURE_NAMES,
    GPU_FEATURE_NAMES,
    GPU_POWER_FEATURE_NAMES,
    design_row,
    power_design_row,
)
from repro.hardware.config import Configuration, Device
from repro.stats.ols import GramStats, OLSModel, fit_ols, fit_ols_from_gram
from repro.telemetry import counter

__all__ = [
    "DeviceModels",
    "ClusterModels",
    "KernelGramBlocks",
    "RegressionGramPool",
    "fit_cluster_models",
    "kernel_gram_blocks",
]

# Sufficient-statistic accounting (see docs/TRAINING_ENGINE.md):
# per-kernel Gram blocks are built once suite-wide and re-served to
# every fold; cluster-level sums are cached and, when a seeded superset
# is known, derived by downdating it instead of re-summing.
_GRAM_HITS = counter("train.gram.hits")
_GRAM_MISSES = counter("train.gram.misses")
_GRAM_SUM_HITS = counter("train.gram.sum_hits")
_GRAM_DOWNDATES = counter("train.gram.downdates")

#: Scale (watts) normalizing the power-anchor regressor.
_POWER_ANCHOR_SCALE_W: float = 30.0

Transform = Literal["none", "log"]


@dataclass(frozen=True)
class DeviceModels:
    """The fitted (performance-ratio, power) model pair for one device."""

    device: Device
    perf_ratio: OLSModel
    power: OLSModel
    transform: Transform
    power_anchor: bool

    def predict_performance(self, cfg: Configuration, sample_perf: float) -> float:
        """Predicted absolute performance of ``cfg`` given the kernel's
        measured sample performance on this device."""
        self._check_device(cfg)
        ratio = float(self.perf_ratio.predict(design_row(cfg))[0])
        if self.transform == "log":
            ratio = float(np.exp(ratio))
        return max(ratio, 1e-9) * sample_perf

    def predict_power(self, cfg: Configuration, sample_power_w: float) -> float:
        """Predicted total power (watts) of ``cfg`` given the kernel's
        measured sample power on this device."""
        self._check_device(cfg)
        x = _power_features(cfg, sample_power_w, self.power_anchor)
        p = float(self.power.predict(x)[0])
        if self.transform == "log":
            p = float(np.exp(p))
        return max(p, 1e-6)

    def _check_device(self, cfg: Configuration) -> None:
        if cfg.device is not self.device:
            raise ValueError(
                f"model for {self.device} applied to {cfg.device} configuration"
            )

    # -- vectorized prediction over precomputed design matrices --------------
    # The paper's online-overhead argument (Section IV-C): "model
    # application requires a simple matrix-vector product of the
    # configuration space with the model coefficients".  These batch
    # entry points are that product; AdaptiveModel precomputes the
    # design matrices once per machine.

    def predict_performance_from_matrix(
        self, X: np.ndarray, sample_perf: float
    ) -> np.ndarray:
        """Batch :meth:`predict_performance` over a precomputed
        performance design matrix (rows = configurations)."""
        ratios = self.perf_ratio.predict(X)
        if self.transform == "log":
            ratios = np.exp(ratios)
        return np.maximum(ratios, 1e-9) * sample_perf

    def predict_power_from_matrix(
        self, X_power: np.ndarray, sample_power_w: float
    ) -> np.ndarray:
        """Batch :meth:`predict_power` over a precomputed power design
        matrix (rows = configurations, anchor columns appended here)."""
        p = self.power.predict(self._anchored(X_power, sample_power_w))
        if self.transform == "log":
            p = np.exp(p)
        return np.maximum(p, 1e-6)

    def _anchored(self, X_power: np.ndarray, sample_power_w: float) -> np.ndarray:
        if not self.power_anchor:
            return X_power
        s = sample_power_w / _POWER_ANCHOR_SCALE_W
        n = X_power.shape[0]
        return np.hstack([X_power, np.full((n, 1), s), s * X_power])

    # -- prediction uncertainty (paper Section VI) ----------------------------

    def predict_performance_std_from_matrix(
        self, X: np.ndarray, sample_perf: float
    ) -> np.ndarray:
        """Prediction standard deviation of the performance estimates.

        For the log transform the delta method is applied:
        ``std(exp(y)) ~ exp(mean) * std(y)``.
        """
        std = self.perf_ratio.predict_std(X)
        if self.transform == "log":
            mean = np.exp(self.perf_ratio.predict(X))
            std = mean * std
        return std * sample_perf

    def predict_power_std_from_matrix(
        self, X_power: np.ndarray, sample_power_w: float
    ) -> np.ndarray:
        """Prediction standard deviation of the power estimates (watts)."""
        Xa = self._anchored(X_power, sample_power_w)
        std = self.power.predict_std(Xa)
        if self.transform == "log":
            mean = np.exp(self.power.predict(Xa))
            std = mean * std
        return std


@dataclass(frozen=True)
class ClusterModels:
    """The four fitted regressions of one kernel cluster."""

    cpu: DeviceModels
    gpu: DeviceModels

    def for_device(self, device: Device) -> DeviceModels:
        """The model pair serving one device."""
        return self.gpu if device is Device.GPU else self.cpu

    def predict(
        self,
        cfg: Configuration,
        *,
        sample_perf_cpu: float,
        sample_perf_gpu: float,
        sample_power_cpu_w: float,
        sample_power_gpu_w: float,
    ) -> tuple[float, float]:
        """Predicted ``(power_w, performance)`` of one configuration,
        anchored to the kernel's two sample measurements."""
        if cfg.device is Device.GPU:
            return (
                self.gpu.predict_power(cfg, sample_power_gpu_w),
                self.gpu.predict_performance(cfg, sample_perf_gpu),
            )
        return (
            self.cpu.predict_power(cfg, sample_power_cpu_w),
            self.cpu.predict_performance(cfg, sample_perf_cpu),
        )


def _power_features(
    cfg: Configuration, sample_power_w: float, power_anchor: bool
) -> np.ndarray:
    """Power-model regressors: voltage-aware configuration variables,
    optionally joined by the sample-power anchor and its first-order
    interactions with every configuration variable."""
    x = power_design_row(cfg)
    if not power_anchor:
        return x
    s = sample_power_w / _POWER_ANCHOR_SCALE_W
    return np.concatenate([x, [s], s * x])


def _power_feature_names(device: Device, power_anchor: bool) -> tuple[str, ...]:
    base = (
        GPU_POWER_FEATURE_NAMES if device is Device.GPU else CPU_POWER_FEATURE_NAMES
    )
    if not power_anchor:
        return base
    return base + ("sample_power",) + tuple(f"sample_power*{n}" for n in base)


def _kernel_design(
    char: KernelCharacterization,
    device: Device,
    transform: Transform,
    power_anchor: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The design rows one kernel contributes to its cluster's fits:
    ``(X_perf, y_perf, X_power, y_power)``, without intercept columns,
    in the kernel's measurement order.  Shared by the direct-design and
    sufficient-statistics paths so both see identical rows."""
    sample = char.gpu_sample if device is Device.GPU else char.cpu_sample
    s_perf = sample.performance
    s_power = sample.total_power_w
    X_perf, y_perf, X_power, y_power = [], [], [], []
    for cfg, m in char.measurements.items():
        if cfg.device is not device:
            continue
        ratio = m.performance / s_perf
        X_perf.append(design_row(cfg))
        y_perf.append(np.log(ratio) if transform == "log" else ratio)
        X_power.append(_power_features(cfg, s_power, power_anchor))
        y_power.append(
            np.log(m.total_power_w) if transform == "log" else m.total_power_w
        )
    return (
        np.asarray(X_perf),
        np.asarray(y_perf),
        np.asarray(X_power),
        np.asarray(y_power),
    )


@dataclass(frozen=True)
class KernelGramBlocks:
    """One kernel's sufficient statistics for one device's model pair.

    ``power``'s statistics are taken over the full power design —
    intercept column of ones included — so cluster sums feed
    :func:`~repro.stats.ols.fit_ols_from_gram` directly.
    """

    perf: GramStats
    power: GramStats

    def __add__(self, other: "KernelGramBlocks") -> "KernelGramBlocks":
        return KernelGramBlocks(
            perf=self.perf + other.perf, power=self.power + other.power
        )

    def __sub__(self, other: "KernelGramBlocks") -> "KernelGramBlocks":
        return KernelGramBlocks(
            perf=self.perf - other.perf, power=self.power - other.power
        )


def kernel_gram_blocks(
    char: KernelCharacterization,
    device: Device,
    *,
    transform: Transform = "none",
    power_anchor: bool = True,
) -> KernelGramBlocks:
    """Accumulate one kernel's per-device sufficient statistics."""
    X_perf, y_perf, X_power, y_power = _kernel_design(
        char, device, transform, power_anchor
    )
    if X_perf.shape[0] == 0:
        raise ValueError(
            f"kernel {char.kernel_uid!r} has no {device} measurements"
        )
    A_power = np.hstack([np.ones((X_power.shape[0], 1)), X_power])
    return KernelGramBlocks(
        perf=GramStats.from_design(X_perf, y_perf),
        power=GramStats.from_design(A_power, y_power),
    )


class RegressionGramPool:
    """Suite-wide cache of per-kernel Gram blocks and cluster sums.

    The pool implements the training engine's sufficient-statistics
    economy (``docs/TRAINING_ENGINE.md``):

    * each kernel's per-device :class:`KernelGramBlocks` is built
      exactly once per ``(transform, power_anchor)`` pool and re-served
      to every cross-validation fold (``train.gram.{hits,misses}``);
    * cluster-level sums are cached by member-uid set
      (``train.gram.sum_hits``), so a cluster untouched by a fold's
      holdout is free on every later fold;
    * :meth:`seed_cluster_sums` registers reference cluster sums
      (the full-suite clustering); a fold cluster that is a strict
      subset of a seeded cluster is then computed by *downdating* —
      subtracting the held-out kernels' blocks from the seeded sum
      (``train.gram.downdates``) — instead of re-summing.

    Determinism: downdates only ever subtract from *seeded* sums, which
    are fixed before folds run, so the statistics served for a given
    member set are a pure function of that set — identical for any fold
    ordering or ``n_jobs``.  All methods are thread-safe.
    """

    _MAX_SUMS = 1024  # FIFO bound on cached cluster sums

    def __init__(
        self, *, transform: Transform = "none", power_anchor: bool = True
    ) -> None:
        self.transform: Transform = transform
        self.power_anchor = power_anchor
        self._lock = threading.RLock()
        self._blocks: dict[tuple[str, Device], KernelGramBlocks] = {}
        self._sums: OrderedDict[
            tuple[Device, frozenset], KernelGramBlocks
        ] = OrderedDict()
        self._seeded: dict[tuple[Device, frozenset], KernelGramBlocks] = {}

    def _block(
        self, char: KernelCharacterization, device: Device
    ) -> KernelGramBlocks:
        key = (char.kernel_uid, device)
        cached = self._blocks.get(key)
        if cached is not None:
            _GRAM_HITS.inc()
            return cached
        _GRAM_MISSES.inc()
        block = kernel_gram_blocks(
            char, device, transform=self.transform, power_anchor=self.power_anchor
        )
        self._blocks[key] = block
        return block

    def _sum_blocks(
        self, chars: Sequence[KernelCharacterization], device: Device
    ) -> KernelGramBlocks:
        blocks = [self._block(c, device) for c in chars]
        return KernelGramBlocks(
            perf=GramStats.sum([b.perf for b in blocks]),
            power=GramStats.sum([b.power for b in blocks]),
        )

    def seed_cluster_sums(
        self,
        clusters: Iterable[Iterable[str]],
        chars_by_uid: Mapping[str, KernelCharacterization],
    ) -> None:
        """Register reference cluster sums as downdate bases.

        ``clusters`` are uid groups (typically the full-suite
        clustering's members); every kernel named must appear in
        ``chars_by_uid``.  Seeding is idempotent and must happen before
        concurrent fold workers query the pool for downdates to apply
        deterministically.
        """
        with self._lock:
            for group in clusters:
                uids = list(group)
                if not uids:
                    continue
                chars = [chars_by_uid[u] for u in uids]
                key_set = frozenset(uids)
                for device in (Device.CPU, Device.GPU):
                    key = (device, key_set)
                    if key not in self._seeded:
                        self._seeded[key] = self._sum_blocks(chars, device)

    def cluster_stats(
        self, chars: Sequence[KernelCharacterization], device: Device
    ) -> KernelGramBlocks:
        """The summed sufficient statistics of one cluster's members."""
        if not chars:
            raise ValueError("cannot sum Gram blocks of zero kernels")
        key_set = frozenset(c.kernel_uid for c in chars)
        key = (device, key_set)
        with self._lock:
            cached = self._seeded.get(key)
            if cached is None:
                cached = self._sums.get(key)
            if cached is not None:
                _GRAM_SUM_HITS.inc()
                return cached

            # Downdate path: a seeded superset minus the few held-out
            # kernels' blocks.  Restricted to seeded (pre-fold) sums so
            # the served value is a pure function of the member set.
            result = None
            best: tuple[int, frozenset] | None = None
            for (dev, seeded_set) in self._seeded:
                if dev is not device or not key_set < seeded_set:
                    continue
                extra = len(seeded_set) - len(key_set)
                if best is None or extra < best[0]:
                    best = (extra, seeded_set)
            if best is not None:
                extras = best[1] - key_set
                blocks = [self._blocks.get((u, device)) for u in sorted(extras)]
                if all(b is not None for b in blocks):
                    result = self._seeded[(device, best[1])]
                    for b in blocks:
                        result = result - b
                    _GRAM_DOWNDATES.inc()
            if result is None:
                result = self._sum_blocks(chars, device)
            self._sums[key] = result
            while len(self._sums) > self._MAX_SUMS:
                self._sums.popitem(last=False)
            return result

    def stats(self) -> dict:
        """Cache sizes (for benchmarks and diagnostics)."""
        with self._lock:
            return {
                "blocks": len(self._blocks),
                "sums": len(self._sums),
                "seeded": len(self._seeded),
            }


def _fit_device(
    chars: Sequence[KernelCharacterization],
    device: Device,
    transform: Transform,
    power_anchor: bool,
    ridge: float,
    gram_pool: RegressionGramPool | None = None,
) -> DeviceModels:
    names = GPU_FEATURE_NAMES if device is Device.GPU else CPU_FEATURE_NAMES
    power_names = _power_feature_names(device, power_anchor)
    if gram_pool is not None:
        stats = gram_pool.cluster_stats(chars, device)
        perf_model = fit_ols_from_gram(
            stats.perf, intercept=False, feature_names=names, ridge=ridge
        )
        power_model = fit_ols_from_gram(
            stats.power, intercept=True, feature_names=power_names, ridge=ridge
        )
    else:
        X_perf, y_perf, X_power, y_power = [], [], [], []
        for c in chars:
            Xp, yp, Xw, yw = _kernel_design(c, device, transform, power_anchor)
            X_perf.append(Xp)
            y_perf.append(yp)
            X_power.append(Xw)
            y_power.append(yw)
        perf_model = fit_ols(
            np.concatenate(X_perf),
            np.concatenate(y_perf),
            intercept=False,
            feature_names=names,
            ridge=ridge,
        )
        power_model = fit_ols(
            np.concatenate(X_power),
            np.concatenate(y_power),
            intercept=True,
            feature_names=power_names,
            ridge=ridge,
        )
    return DeviceModels(
        device=device,
        perf_ratio=perf_model,
        power=power_model,
        transform=transform,
        power_anchor=power_anchor,
    )


def fit_cluster_models(
    chars: Sequence[KernelCharacterization],
    *,
    transform: Transform = "none",
    power_anchor: bool = True,
    ridge: float = 0.0,
    gram_pool: RegressionGramPool | None = None,
) -> ClusterModels:
    """Fit one cluster's regressions from its member kernels'
    characterizations (pooled across kernels, per device).

    ``ridge`` adds L2 regularization to both model families — useful
    when a cluster is small (few kernels pool few rows) and the
    interaction columns would otherwise overfit measurement noise.

    ``gram_pool`` switches the fit to the sufficient-statistics path:
    per-kernel Gram blocks are drawn from (and cached in) the pool and
    summed, and the models are solved from the normal equations
    (:func:`~repro.stats.ols.fit_ols_from_gram`) instead of a fresh
    ``lstsq`` over a rebuilt design matrix.  Coefficients agree with
    the direct path to floating-point reassociation (≤1e-9; see
    ``docs/TRAINING_ENGINE.md``).  The pool's ``transform`` and
    ``power_anchor`` must match the fit's.

    Raises
    ------
    ValueError
        If ``chars`` is empty, a device has no measurements, or
        ``gram_pool`` was built for different model settings.
    """
    if not chars:
        raise ValueError("cannot fit cluster models without kernels")
    if transform not in ("none", "log"):
        raise ValueError(f"unknown transform {transform!r}")
    if gram_pool is not None and (
        gram_pool.transform != transform or gram_pool.power_anchor != power_anchor
    ):
        raise ValueError(
            "gram_pool was accumulated for "
            f"(transform={gram_pool.transform!r}, "
            f"power_anchor={gram_pool.power_anchor}) but the fit requests "
            f"(transform={transform!r}, power_anchor={power_anchor})"
        )
    return ClusterModels(
        cpu=_fit_device(chars, Device.CPU, transform, power_anchor, ridge, gram_pool),
        gpu=_fit_device(chars, Device.GPU, transform, power_anchor, ridge, gram_pool),
    )
