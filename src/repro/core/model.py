"""The adaptive configuration-selection model (offline training).

This is the paper's primary contribution assembled end to end
(Figure 1's offline box):

1. characterize every training kernel on all configurations
   (:mod:`repro.core.characterization`);
2. derive per-kernel Pareto frontiers (:mod:`repro.core.frontier`);
3. build the frontier-order dissimilarity matrix and relationally
   cluster the kernels (:mod:`repro.core.dissimilarity`,
   :mod:`repro.core.clustering`);
4. fit per-cluster performance-ratio and power regressions
   (:mod:`repro.core.regression`);
5. train the classification tree that assigns unseen kernels to
   clusters from their sample-configuration runs
   (:mod:`repro.core.classifier`).

The resulting :class:`AdaptiveModel` performs the online stage
(Figure 1's online box) in :meth:`AdaptiveModel.predict_kernel`: given
only the two sample measurements of a new kernel, it returns predicted
power and performance for *every* machine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.characterization import (
    KernelCharacterization,
    characterize_kernel,
)
from repro.core.classifier import ClusterClassifier
from repro.core.configspace import ConfigTable
from repro.core.clustering import (
    DEFAULT_N_CLUSTERS,
    ClusteringResult,
    cluster_kernels,
)
from repro.core.predictor import KernelPrediction
from repro.core.regression import (
    ClusterModels,
    RegressionGramPool,
    Transform,
    fit_cluster_models,
)
from repro.hardware.apu import Measurement
from repro.hardware.config import ConfigSpace
from repro.profiling.library import ProfilingLibrary
from repro.telemetry import get_logger, log_event, trace_span

import logging

import numpy as np

__all__ = ["AdaptiveModel", "train_model"]

_log = get_logger(__name__)


@dataclass(frozen=True)
class AdaptiveModel:
    """A trained offline model ready for online prediction.

    Attributes
    ----------
    clustering:
        The offline clustering of the training kernels.
    cluster_models:
        Fitted regression models per cluster id.
    classifier:
        The sample-run classification tree.
    config_space:
        The machine configuration space predictions cover.
    """

    clustering: ClusteringResult
    cluster_models: Mapping[int, ClusterModels]
    classifier: ClusterClassifier
    config_space: ConfigSpace

    def __post_init__(self) -> None:
        # Attach the process-wide configuration table: the design
        # matrices over the configuration space exist before the first
        # kernel arrives, so the online stage is two matrix-vector
        # products (paper Section IV-C's overhead argument) — and every
        # model over the same space shares one table.
        object.__setattr__(self, "_table", ConfigTable.for_space(self.config_space))

    @property
    def table(self) -> ConfigTable:
        """The shared structure-of-arrays view of the model's space."""
        return self._table

    @property
    def default_cluster(self) -> int:
        """The conservative fallback cluster used when classification
        inputs are corrupt (graceful degradation, docs/ROBUSTNESS.md):
        the lowest cluster id, a deterministic choice independent of
        the unusable sample readings."""
        return min(self.cluster_models)

    @staticmethod
    def train(
        characterizations: Sequence[KernelCharacterization],
        *,
        n_clusters: int = DEFAULT_N_CLUSTERS,
        clustering_method: str = "pam",
        composition_weight: float | None = None,
        transform: Transform = "none",
        power_anchor: bool = True,
        ridge: float = 0.0,
        tree_max_depth: int = 4,
        tree_min_samples_leaf: int = 2,
        config_space: ConfigSpace | None = None,
        dissimilarity: np.ndarray | None = None,
        initial_medoid_uids: Sequence[str] | None = None,
        gram_pool: RegressionGramPool | None = None,
    ) -> "AdaptiveModel":
        """Run the full offline pipeline on training characterizations.

        Parameters mirror the paper's knobs: ``n_clusters`` (paper: 5),
        the relational clustering method, the optional future-work
        variance-stabilizing ``transform``, the power-anchor extension,
        and the tree's capacity.  ``dissimilarity`` optionally supplies
        a precomputed frontier-dissimilarity matrix in
        ``characterizations`` order (e.g. sliced from a
        :class:`~repro.core.dissimilarity.DissimilarityCache`),
        skipping both the per-kernel frontier derivation and the
        pairwise frontier comparisons.

        The training-engine accelerators (``docs/TRAINING_ENGINE.md``)
        are opt-in and result-preserving: ``initial_medoid_uids``
        warm-starts PAM from a reference clustering (ignored for
        non-PAM methods or when seeds are invalid), and ``gram_pool``
        fits the per-cluster regressions from cached sufficient
        statistics instead of rebuilt design matrices.
        """
        if not characterizations:
            raise ValueError("cannot train on zero kernels")
        uids = [c.kernel_uid for c in characterizations]
        if len(set(uids)) != len(uids):
            raise ValueError("duplicate kernel uids in training set")

        if dissimilarity is None:
            with trace_span("offline/frontier"):
                frontiers_or_uids: "Sequence[str] | dict" = {
                    c.kernel_uid: c.frontier() for c in characterizations
                }
        else:
            # A precomputed matrix makes the frontier values dead
            # weight — clustering only needs the uid order.
            frontiers_or_uids = uids
        with trace_span("offline/cluster"):
            clustering = cluster_kernels(
                frontiers_or_uids,
                n_clusters=n_clusters,
                method=clustering_method,
                composition_weight=composition_weight,
                dissimilarity=dissimilarity,
                initial_medoid_uids=initial_medoid_uids,
            )
        log_event(
            _log,
            logging.DEBUG,
            "cluster-assignments",
            n_kernels=len(characterizations),
            sizes=clustering.sizes(),
            silhouette=round(clustering.silhouette, 4),
            labels=dict(sorted(clustering.labels.items())),
        )

        by_cluster: dict[int, list[KernelCharacterization]] = {}
        for c in characterizations:
            by_cluster.setdefault(clustering.labels[c.kernel_uid], []).append(c)
        with trace_span("offline/regression"):
            cluster_models = {
                cluster: fit_cluster_models(
                    members,
                    transform=transform,
                    power_anchor=power_anchor,
                    ridge=ridge,
                    gram_pool=gram_pool,
                )
                for cluster, members in sorted(by_cluster.items())
            }

        with trace_span("offline/cart"):
            classifier = ClusterClassifier(
                max_depth=tree_max_depth, min_samples_leaf=tree_min_samples_leaf
            ).fit(
                characterizations,
                [clustering.labels[c.kernel_uid] for c in characterizations],
            )
        return AdaptiveModel(
            clustering=clustering,
            cluster_models=cluster_models,
            classifier=classifier,
            config_space=config_space if config_space is not None else ConfigSpace(),
        )

    # -- online stage ------------------------------------------------------------

    def predict_kernel(
        self,
        cpu_sample: Measurement,
        gpu_sample: Measurement,
        *,
        kernel_uid: str = "unknown",
        with_uncertainty: bool = False,
        cluster: int | None = None,
    ) -> KernelPrediction:
        """Predict power and performance for every configuration of an
        unseen kernel, from its two sample measurements only.

        With ``with_uncertainty=True`` the prediction also carries
        per-configuration prediction standard deviations (paper
        Section VI), enabling risk-averse scheduling.

        ``cluster`` overrides the classification tree (degraded-mode
        callers pass :attr:`default_cluster` when the sample counters
        are corrupt); ``None`` classifies normally.
        """
        if cluster is None:
            with trace_span("online/classify"):
                cluster = self.classifier.predict(cpu_sample, gpu_sample)
        elif cluster not in self.cluster_models:
            raise ValueError(f"unknown cluster override {cluster!r}")
        models = self.cluster_models[cluster]
        table = self._table
        power = table.assemble(
            models.cpu.predict_power_from_matrix(
                table.X_power_cpu, cpu_sample.total_power_w
            ),
            models.gpu.predict_power_from_matrix(
                table.X_power_gpu, gpu_sample.total_power_w
            ),
        )
        performance = table.assemble(
            models.cpu.predict_performance_from_matrix(
                table.X_perf_cpu, cpu_sample.performance
            ),
            models.gpu.predict_performance_from_matrix(
                table.X_perf_gpu, gpu_sample.performance
            ),
        )

        power_std = performance_std = None
        if with_uncertainty:
            power_std = table.assemble(
                models.cpu.predict_power_std_from_matrix(
                    table.X_power_cpu, cpu_sample.total_power_w
                ),
                models.gpu.predict_power_std_from_matrix(
                    table.X_power_gpu, gpu_sample.total_power_w
                ),
            )
            performance_std = table.assemble(
                models.cpu.predict_performance_std_from_matrix(
                    table.X_perf_cpu, cpu_sample.performance
                ),
                models.gpu.predict_performance_std_from_matrix(
                    table.X_perf_gpu, gpu_sample.performance
                ),
            )

        return KernelPrediction.from_arrays(
            kernel_uid=kernel_uid,
            cluster=cluster,
            configs=table.configs,
            index=table.index,
            power_w=power,
            performance=performance,
            cpu_sample=cpu_sample,
            gpu_sample=gpu_sample,
            power_std_w=power_std,
            performance_std=performance_std,
        )


def train_model(
    library: ProfilingLibrary,
    kernels: Sequence,
    **train_kwargs,
) -> AdaptiveModel:
    """Convenience wrapper: characterize ``kernels`` through ``library``
    (profiling each on every configuration) and train a model.

    Accepts the same keyword arguments as :meth:`AdaptiveModel.train`.
    """
    characterizations = [characterize_kernel(library, k) for k in kernels]
    return AdaptiveModel.train(characterizations, **train_kwargs)
