"""Persistence for trained models.

The paper's offline stage runs "only once to characterize a new system"
(Section III); its output must therefore outlive the process that
computed it.  These helpers serialize a trained
:class:`~repro.core.model.AdaptiveModel` — regression coefficients,
clustering, and the full classification-tree structure — to JSON and
back, so the two-hour offline characterization is paid once per machine
and every subsequent runtime just loads the model.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.classifier import ClusterClassifier, SAMPLE_FEATURE_NAMES
from repro.core.clustering import ClusteringResult
from repro.core.model import AdaptiveModel
from repro.core.regression import ClusterModels, DeviceModels
from repro.hardware.config import ConfigSpace, Device
from repro.stats.cart import ClassificationTree, TreeNode
from repro.stats.ols import OLSModel

__all__ = ["model_to_json", "model_from_json", "save_model", "load_model"]

_VERSION = 1


def _array(a: np.ndarray | None) -> Any:
    return None if a is None else np.asarray(a).tolist()


def _ols_to_dict(m: OLSModel) -> dict[str, Any]:
    return {
        "coef": _array(m.coef),
        "intercept": m.intercept,
        "r_squared": m.r_squared,
        "std_errors": _array(m.std_errors),
        "n_obs": m.n_obs,
        "rank": m.rank,
        "feature_names": list(m.feature_names),
        "sigma2": None if np.isnan(m.sigma2) else m.sigma2,
        "xtx_pinv": _array(m.xtx_pinv),
    }


def _ols_from_dict(d: dict[str, Any]) -> OLSModel:
    return OLSModel(
        coef=np.asarray(d["coef"], dtype=float),
        intercept=bool(d["intercept"]),
        r_squared=float(d["r_squared"]),
        std_errors=np.asarray(d["std_errors"], dtype=float),
        n_obs=int(d["n_obs"]),
        rank=int(d["rank"]),
        feature_names=tuple(d["feature_names"]),
        sigma2=float("nan") if d["sigma2"] is None else float(d["sigma2"]),
        xtx_pinv=(
            None
            if d["xtx_pinv"] is None
            else np.asarray(d["xtx_pinv"], dtype=float)
        ),
    )


def _device_models_to_dict(m: DeviceModels) -> dict[str, Any]:
    return {
        "device": m.device.value,
        "perf_ratio": _ols_to_dict(m.perf_ratio),
        "power": _ols_to_dict(m.power),
        "transform": m.transform,
        "power_anchor": m.power_anchor,
    }


def _device_models_from_dict(d: dict[str, Any]) -> DeviceModels:
    return DeviceModels(
        device=Device(d["device"]),
        perf_ratio=_ols_from_dict(d["perf_ratio"]),
        power=_ols_from_dict(d["power"]),
        transform=d["transform"],
        power_anchor=bool(d["power_anchor"]),
    )


def _tree_node_to_dict(node: TreeNode) -> dict[str, Any]:
    d: dict[str, Any] = {
        "depth": node.depth,
        "n_samples": node.n_samples,
        "class_counts": _array(node.class_counts),
        "prediction": node.prediction,
    }
    if not node.is_leaf:
        d["feature"] = node.feature
        d["threshold"] = node.threshold
        d["left"] = _tree_node_to_dict(node.left)
        d["right"] = _tree_node_to_dict(node.right)
    return d


def _tree_node_from_dict(d: dict[str, Any]) -> TreeNode:
    node = TreeNode(
        depth=int(d["depth"]),
        n_samples=int(d["n_samples"]),
        class_counts=np.asarray(d["class_counts"]),
        prediction=int(d["prediction"]),
    )
    if "feature" in d:
        node.feature = int(d["feature"])
        node.threshold = float(d["threshold"])
        node.left = _tree_node_from_dict(d["left"])
        node.right = _tree_node_from_dict(d["right"])
    return node


def _classifier_to_dict(c: ClusterClassifier) -> dict[str, Any]:
    tree = c.tree
    return {
        "max_depth": c.max_depth,
        "min_samples_leaf": c.min_samples_leaf,
        "classes": _array(tree.classes_),
        "n_features": tree._n_features,
        "root": _tree_node_to_dict(tree.root),
    }


def _classifier_from_dict(d: dict[str, Any]) -> ClusterClassifier:
    clf = ClusterClassifier(
        max_depth=int(d["max_depth"]),
        min_samples_leaf=int(d["min_samples_leaf"]),
    )
    tree = ClassificationTree(
        max_depth=int(d["max_depth"]),
        min_samples_leaf=int(d["min_samples_leaf"]),
        feature_names=SAMPLE_FEATURE_NAMES,
    )
    tree.classes_ = np.asarray(d["classes"])
    tree._n_classes = tree.classes_.shape[0]
    tree._n_features = int(d["n_features"])
    tree.root = _tree_node_from_dict(d["root"])
    clf._tree = tree
    return clf


def model_to_json(model: AdaptiveModel) -> str:
    """Serialize a trained model to a JSON string."""
    payload = {
        "version": _VERSION,
        "clustering": {
            "labels": dict(model.clustering.labels),
            "n_clusters": model.clustering.n_clusters,
            "silhouette": (
                None
                if np.isnan(model.clustering.silhouette)
                else model.clustering.silhouette
            ),
            "medoid_uids": list(model.clustering.medoid_uids),
            "method": model.clustering.method,
        },
        "cluster_models": {
            str(cid): {
                "cpu": _device_models_to_dict(cm.cpu),
                "gpu": _device_models_to_dict(cm.gpu),
            }
            for cid, cm in model.cluster_models.items()
        },
        "classifier": _classifier_to_dict(model.classifier),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def model_from_json(text: str) -> AdaptiveModel:
    """Rebuild a trained model from :func:`model_to_json` output."""
    data = json.loads(text)
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported model version: {data.get('version')!r}")
    clus = data["clustering"]
    clustering = ClusteringResult(
        labels={k: int(v) for k, v in clus["labels"].items()},
        n_clusters=int(clus["n_clusters"]),
        silhouette=(
            float("nan") if clus["silhouette"] is None else float(clus["silhouette"])
        ),
        medoid_uids=tuple(clus["medoid_uids"]),
        method=clus["method"],
    )
    cluster_models = {
        int(cid): ClusterModels(
            cpu=_device_models_from_dict(cm["cpu"]),
            gpu=_device_models_from_dict(cm["gpu"]),
        )
        for cid, cm in data["cluster_models"].items()
    }
    return AdaptiveModel(
        clustering=clustering,
        cluster_models=cluster_models,
        classifier=_classifier_from_dict(data["classifier"]),
        config_space=ConfigSpace(),
    )


def save_model(model: AdaptiveModel, path: str | Path) -> None:
    """Write a trained model to a JSON file."""
    Path(path).write_text(model_to_json(model), encoding="utf-8")


def load_model(path: str | Path) -> AdaptiveModel:
    """Load a trained model from a JSON file."""
    return model_from_json(Path(path).read_text(encoding="utf-8"))
