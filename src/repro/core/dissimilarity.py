"""Frontier-order kernel dissimilarity.

Paper Section III-B: "kernels with similar power and performance scaling
behavior will generally have the same configurations on their respective
frontiers, arranged in the same order.  We first create a kernel
dissimilarity matrix by performing pair-wise comparisons of all kernels'
frontiers.  For each frontier comparison, we first select only the
configurations that are present in both frontiers.  Then, we compute the
Kendall rank correlation coefficient between the orders of the shared
configurations within each frontier."

A Kendall tau of +1 (identical orders) maps to dissimilarity 0; -1
(reversed orders) maps to 1.  Pairs sharing fewer than two
configurations carry no ordering information and get the maximum
dissimilarity.

The paper's key insight is that similar kernels "have the same
configurations on their respective frontiers, arranged in the same
order" — *composition* and *order*.  The Kendall term only measures
order within the shared subset; when two kernels prefer different
devices their shared subset shrinks to a few low-power CPU
configurations that are trivially identically ordered, hiding exactly
the difference that matters.  We therefore blend in a Jaccard
composition term::

    d = w * (1 - jaccard(configs_a, configs_b))
        + (1 - w) * (1 - tau_shared) / 2

with ``composition_weight`` ``w`` (default 0.5).  ``w = 0`` recovers the
narrowest literal reading of the paper; the clustering ablation
benchmark compares both.

:func:`dissimilarity_matrix` computes all pairs at once with broadcast
pair-counting: each frontier becomes a row of configuration positions,
the per-kernel sign matrices of position differences are flattened, and
one matrix product yields every pair's concordant-minus-discordant
count.  :class:`DissimilarityCache` keeps the full-suite matrix around
so cross-validation folds and ablation variants slice submatrices
instead of recomputing pairs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.frontier import ParetoFrontier
from repro.stats.kendall import kendall_tau

__all__ = [
    "frontier_dissimilarity",
    "dissimilarity_matrix",
    "DissimilarityCache",
]


#: Default blend between composition (Jaccard) and order (Kendall) terms.
DEFAULT_COMPOSITION_WEIGHT: float = 0.5


def frontier_dissimilarity(
    a: ParetoFrontier,
    b: ParetoFrontier,
    *,
    composition_weight: float = DEFAULT_COMPOSITION_WEIGHT,
) -> float:
    """Dissimilarity in ``[0, 1]`` between two kernels' frontiers.

    A convex blend of a Jaccard composition term (which configurations
    appear on each frontier) and the paper's Kendall order term
    ``(1 - tau) / 2`` over the shared configurations' frontier
    positions.  ``composition_weight=0`` is the pure Kendall variant.
    """
    if not 0.0 <= composition_weight <= 1.0:
        raise ValueError("composition_weight must be in [0, 1]")
    pos_a = {p.config: i for i, p in enumerate(a)}
    pos_b = {p.config: i for i, p in enumerate(b)}
    shared = [cfg for cfg in pos_a if cfg in pos_b]
    union = len(pos_a) + len(pos_b) - len(shared)
    jaccard_term = 1.0 - (len(shared) / union if union else 1.0)

    if len(shared) < 2:
        order_term = 1.0
    else:
        ranks_a = [pos_a[cfg] for cfg in shared]
        ranks_b = [pos_b[cfg] for cfg in shared]
        # Positions within one frontier are distinct, so tau-a == tau-b.
        tau = kendall_tau(ranks_a, ranks_b, variant="a")
        order_term = (1.0 - tau) / 2.0
    return float(
        composition_weight * jaccard_term
        + (1.0 - composition_weight) * order_term
    )


def _position_matrix(frontiers: Sequence[ParetoFrontier]) -> np.ndarray:
    """Frontier positions as an ``(n_kernels, n_configs)`` int matrix.

    Columns cover the union of configurations across all frontiers;
    entry ``[k, c]`` is configuration ``c``'s position on kernel ``k``'s
    frontier, or ``-1`` when absent.
    """
    columns: dict = {}
    rows: list[dict[int, int]] = []
    for frontier in frontiers:
        row: dict[int, int] = {}
        for pos, point in enumerate(frontier):
            col = columns.setdefault(point.config, len(columns))
            row[col] = pos
        rows.append(row)
    P = np.full((len(frontiers), len(columns)), -1, dtype=np.int32)
    for k, row in enumerate(rows):
        for col, pos in row.items():
            P[k, col] = pos
    return P


def _matrix_from_positions(P: np.ndarray, composition_weight: float) -> np.ndarray:
    """All-pairs dissimilarities from a position matrix, vectorized."""
    present = P >= 0
    sizes = present.sum(axis=1).astype(np.float64)
    shared = present.astype(np.float64) @ present.T.astype(np.float64)
    union = sizes[:, None] + sizes[None, :] - shared
    jaccard_term = 1.0 - np.divide(
        shared, union, out=np.ones_like(shared), where=union > 0
    )

    # Per-kernel sign matrix of position differences, zeroed where either
    # configuration is absent, flattened over the upper triangle.  For a
    # kernel pair, every configuration pair shared by both contributes
    # +1 (concordant) or -1 (discordant) to the inner product — broadcast
    # pair-counting of the paper's tau-a over the shared subset.
    n, m = P.shape
    iu = np.triu_indices(m, k=1)
    signs = np.sign(P[:, :, None] - P[:, None, :])
    signs *= present[:, :, None] & present[:, None, :]
    flat = signs[:, iu[0], iu[1]].astype(np.float64)
    concordant_minus_discordant = flat @ flat.T

    n_pairs = shared * (shared - 1.0) / 2.0
    tau = np.divide(
        concordant_minus_discordant,
        n_pairs,
        out=np.zeros((n, n)),
        where=n_pairs > 0,
    )
    order_term = np.where(shared >= 2, (1.0 - tau) / 2.0, 1.0)

    D = composition_weight * jaccard_term + (1.0 - composition_weight) * order_term
    D = (D + D.T) / 2.0  # exact symmetry despite float matmul
    np.fill_diagonal(D, 0.0)
    return np.clip(D, 0.0, 1.0)


def dissimilarity_matrix(
    frontiers: Sequence[ParetoFrontier] | Mapping[str, ParetoFrontier],
    *,
    composition_weight: float = DEFAULT_COMPOSITION_WEIGHT,
) -> np.ndarray:
    """Symmetric pairwise dissimilarity matrix over kernels' frontiers.

    Accepts a sequence of frontiers or a mapping (values are used in
    iteration order, which for dicts is insertion order).
    """
    if not 0.0 <= composition_weight <= 1.0:
        raise ValueError("composition_weight must be in [0, 1]")
    if isinstance(frontiers, Mapping):
        items = list(frontiers.values())
    else:
        items = list(frontiers)
    if not items:
        raise ValueError("need at least one frontier")
    return _matrix_from_positions(_position_matrix(items), composition_weight)


class DissimilarityCache:
    """Reusable all-pairs dissimilarities over a growing frontier set.

    Register frontiers once (e.g. the full benchmark suite's); every
    cross-validation fold or ablation variant then takes its training
    subset's matrix as a submatrix slice instead of re-running the
    pairwise comparisons.  Full matrices are cached per composition
    weight and invalidated when new frontiers are registered.
    """

    def __init__(self) -> None:
        self._uids: list[str] = []
        self._index: dict[str, int] = {}
        self._frontiers: list[ParetoFrontier] = []
        self._matrices: dict[float, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._uids)

    def __contains__(self, uid: str) -> bool:
        return uid in self._index

    def add(self, uid: str, frontier: ParetoFrontier) -> None:
        """Register one kernel's frontier (no-op if already present)."""
        if uid in self._index:
            return
        self._index[uid] = len(self._uids)
        self._uids.append(uid)
        self._frontiers.append(frontier)
        self._matrices.clear()

    def submatrix(
        self,
        uids: Sequence[str],
        *,
        composition_weight: float = DEFAULT_COMPOSITION_WEIGHT,
    ) -> np.ndarray:
        """The dissimilarity matrix of a kernel subset, in ``uids`` order.

        All requested uids must have been registered with :meth:`add`.
        """
        missing = [u for u in uids if u not in self._index]
        if missing:
            raise KeyError(f"frontiers not registered: {missing[:3]}")
        w = float(composition_weight)
        full = self._matrices.get(w)
        if full is None:
            full = dissimilarity_matrix(self._frontiers, composition_weight=w)
            self._matrices[w] = full
        idx = np.array([self._index[u] for u in uids], dtype=np.intp)
        return full[np.ix_(idx, idx)].copy()
