"""Frontier-order kernel dissimilarity.

Paper Section III-B: "kernels with similar power and performance scaling
behavior will generally have the same configurations on their respective
frontiers, arranged in the same order.  We first create a kernel
dissimilarity matrix by performing pair-wise comparisons of all kernels'
frontiers.  For each frontier comparison, we first select only the
configurations that are present in both frontiers.  Then, we compute the
Kendall rank correlation coefficient between the orders of the shared
configurations within each frontier."

A Kendall tau of +1 (identical orders) maps to dissimilarity 0; -1
(reversed orders) maps to 1.  Pairs sharing fewer than two
configurations carry no ordering information and get the maximum
dissimilarity.

The paper's key insight is that similar kernels "have the same
configurations on their respective frontiers, arranged in the same
order" — *composition* and *order*.  The Kendall term only measures
order within the shared subset; when two kernels prefer different
devices their shared subset shrinks to a few low-power CPU
configurations that are trivially identically ordered, hiding exactly
the difference that matters.  We therefore blend in a Jaccard
composition term::

    d = w * (1 - jaccard(configs_a, configs_b))
        + (1 - w) * (1 - tau_shared) / 2

with ``composition_weight`` ``w`` (default 0.5).  ``w = 0`` recovers the
narrowest literal reading of the paper; the clustering ablation
benchmark compares both.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.frontier import ParetoFrontier
from repro.stats.kendall import kendall_tau

__all__ = ["frontier_dissimilarity", "dissimilarity_matrix"]


#: Default blend between composition (Jaccard) and order (Kendall) terms.
DEFAULT_COMPOSITION_WEIGHT: float = 0.5


def frontier_dissimilarity(
    a: ParetoFrontier,
    b: ParetoFrontier,
    *,
    composition_weight: float = DEFAULT_COMPOSITION_WEIGHT,
) -> float:
    """Dissimilarity in ``[0, 1]`` between two kernels' frontiers.

    A convex blend of a Jaccard composition term (which configurations
    appear on each frontier) and the paper's Kendall order term
    ``(1 - tau) / 2`` over the shared configurations' frontier
    positions.  ``composition_weight=0`` is the pure Kendall variant.
    """
    if not 0.0 <= composition_weight <= 1.0:
        raise ValueError("composition_weight must be in [0, 1]")
    pos_a = {p.config: i for i, p in enumerate(a)}
    pos_b = {p.config: i for i, p in enumerate(b)}
    shared = [cfg for cfg in pos_a if cfg in pos_b]
    union = len(pos_a) + len(pos_b) - len(shared)
    jaccard_term = 1.0 - (len(shared) / union if union else 1.0)

    if len(shared) < 2:
        order_term = 1.0
    else:
        ranks_a = [pos_a[cfg] for cfg in shared]
        ranks_b = [pos_b[cfg] for cfg in shared]
        # Positions within one frontier are distinct, so tau-a == tau-b.
        tau = kendall_tau(ranks_a, ranks_b, variant="a")
        order_term = (1.0 - tau) / 2.0
    return float(
        composition_weight * jaccard_term
        + (1.0 - composition_weight) * order_term
    )


def dissimilarity_matrix(
    frontiers: Sequence[ParetoFrontier] | Mapping[str, ParetoFrontier],
    *,
    composition_weight: float = DEFAULT_COMPOSITION_WEIGHT,
) -> np.ndarray:
    """Symmetric pairwise dissimilarity matrix over kernels' frontiers.

    Accepts a sequence of frontiers or a mapping (values are used in
    iteration order, which for dicts is insertion order).
    """
    if isinstance(frontiers, Mapping):
        items = list(frontiers.values())
    else:
        items = list(frontiers)
    n = len(items)
    if n == 0:
        raise ValueError("need at least one frontier")
    D = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = frontier_dissimilarity(
                items[i], items[j], composition_weight=composition_weight
            )
            D[i, j] = D[j, i] = d
    return D
