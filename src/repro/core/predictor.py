"""Online prediction: two sample iterations to a full predicted frontier.

Paper Section III-C: "we use the first two iterations of the kernel to
run on the sample configurations, with one iteration on each device
(CPU and GPU).  Once the classification tree selects a cluster, we apply
the selected cluster's models to predict power and performance for the
new kernel at all machine configurations across all available devices.
From the predicted power and performance for all configurations for a
new kernel, we derive a predicted Pareto frontier."

:class:`KernelPrediction` is that output; :class:`OnlinePredictor` is
the runtime driver that produces it from a live kernel via the
profiling library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.frontier import ParetoFrontier
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration
from repro.profiling.library import ProfilingLibrary

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import AdaptiveModel

__all__ = ["KernelPrediction", "OnlinePredictor"]


@dataclass(frozen=True)
class KernelPrediction:
    """Model output for one kernel: predictions over the whole space.

    Attributes
    ----------
    kernel_uid:
        Which kernel was predicted.
    cluster:
        Cluster the classification tree assigned.
    predictions:
        ``{config: (predicted power W, predicted performance)}`` for
        every machine configuration.
    cpu_sample, gpu_sample:
        The two sample measurements the prediction is anchored to.
    uncertainties:
        Optional ``{config: (power std W, performance std)}`` prediction
        standard deviations (the paper's Section VI confidence idea) —
        consumed by ``Scheduler.select(..., risk_averse=True)``.
    """

    kernel_uid: str
    cluster: int
    predictions: Mapping[Configuration, tuple[float, float]]
    cpu_sample: Measurement
    gpu_sample: Measurement
    uncertainties: Mapping[Configuration, tuple[float, float]] | None = None

    def __post_init__(self) -> None:
        if not self.predictions:
            raise ValueError("prediction must cover at least one configuration")
        if self.uncertainties is not None and set(self.uncertainties) != set(
            self.predictions
        ):
            raise ValueError("uncertainties must cover the same configurations")

    def predicted_frontier(self) -> ParetoFrontier:
        """Pareto frontier of the predicted (power, performance) points."""
        return ParetoFrontier.from_predictions(dict(self.predictions))

    def predicted_power_w(self, cfg: Configuration) -> float:
        """Predicted power of one configuration (watts)."""
        return self.predictions[cfg][0]

    def predicted_performance(self, cfg: Configuration) -> float:
        """Predicted performance of one configuration."""
        return self.predictions[cfg][1]


class OnlinePredictor:
    """Runtime driver of the online stage.

    Runs a kernel's first two iterations on the sample configurations
    (through the profiling library, so the runs land in the measurement
    history), classifies the kernel, and returns the model's
    whole-space prediction.

    Parameters
    ----------
    model:
        A trained :class:`repro.core.model.AdaptiveModel`.
    library:
        The profiling library to execute and record the sample runs.
    """

    def __init__(self, model: "AdaptiveModel", library: ProfilingLibrary) -> None:
        self.model = model
        self.library = library

    def predict(self, kernel, *, with_uncertainty: bool = False) -> KernelPrediction:
        """Run the two sample iterations of ``kernel`` and predict power
        and performance for every configuration."""
        cpu_profile = self.library.profile(kernel, CPU_SAMPLE)
        gpu_profile = self.library.profile(kernel, GPU_SAMPLE)
        return self.model.predict_kernel(
            cpu_profile.measurement,
            gpu_profile.measurement,
            kernel_uid=cpu_profile.kernel_uid,
            with_uncertainty=with_uncertainty,
        )
