"""Online prediction: two sample iterations to a full predicted frontier.

Paper Section III-C: "we use the first two iterations of the kernel to
run on the sample configurations, with one iteration on each device
(CPU and GPU).  Once the classification tree selects a cluster, we apply
the selected cluster's models to predict power and performance for the
new kernel at all machine configurations across all available devices.
From the predicted power and performance for all configurations for a
new kernel, we derive a predicted Pareto frontier."

:class:`KernelPrediction` is that output; :class:`OnlinePredictor` is
the runtime driver that produces it from a live kernel via the
profiling library.

The prediction is *array-backed*: power, performance, and (optional)
uncertainty live in numpy vectors indexed by the configuration order of
a :class:`~repro.core.configspace.ConfigTable` (or whatever order an
ad-hoc mapping supplied).  The historical
``Mapping[Configuration, tuple[float, float]]`` API is preserved as a
lazy view over those vectors, so dict-shaped callers keep working while
the scheduler, frontier construction, and cap sweeps read the arrays
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from repro.core.frontier import ParetoFrontier
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
from repro.faults import (
    SampleRunError,
    measurement_is_finite,
    sanitize_measurement,
)
from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration, ConfigSpace
from repro.profiling.library import ProfilingLibrary
from repro.telemetry import counter, get_logger, log_event, trace_span

import logging

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import AdaptiveModel

__all__ = ["KernelPrediction", "OnlinePredictor"]

_log = get_logger(__name__)

# Degradation accounting for the online sample stage
# (docs/ROBUSTNESS.md): retried sample runs, samples abandoned after the
# retry budget (replaced by conservative synthetic anchors), and sample
# pairs whose readings were corrupt and sanitized before classification.
_SAMPLE_RETRIES = counter("faults.retries")
_SAMPLE_FALLBACKS = counter("faults.sample_fallbacks")
_CORRUPT_SAMPLES = counter("faults.corrupt_samples")

#: Default retry budget for failed sample runs (mirrors
#: :class:`repro.runtime.AdaptiveRuntime`; the predictor models no wall
#: clock, so only the count matters here).
DEFAULT_SAMPLE_RETRY_LIMIT: int = 3


class _ArrayPairView(Mapping):
    """Read-only ``{config: (a[i], b[i])}`` view over parallel vectors.

    This is the compatibility contract of the array-backed prediction
    engine: existing callers that iterate ``prediction.predictions``
    see a mapping in configuration order, while the arrays stay the
    single source of truth (see docs/PREDICTION_ENGINE.md).
    """

    __slots__ = ("_configs", "_index", "_a", "_b")

    def __init__(
        self,
        configs: tuple[Configuration, ...],
        index: Mapping[Configuration, int],
        a: np.ndarray,
        b: np.ndarray,
    ) -> None:
        self._configs = configs
        self._index = index
        self._a = a
        self._b = b

    def __getitem__(self, cfg: Configuration) -> tuple[float, float]:
        i = self._index[cfg]
        return (float(self._a[i]), float(self._b[i]))

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, cfg: object) -> bool:
        return cfg in self._index

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _ArrayPairView):
            return (
                self._configs == other._configs
                and np.array_equal(self._a, other._a)
                and np.array_equal(self._b, other._b)
            )
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<_ArrayPairView of {len(self._configs)} configurations>"


def _extract_arrays(
    mapping: Mapping[Configuration, tuple[float, float]],
) -> tuple[tuple[Configuration, ...], dict[Configuration, int], np.ndarray, np.ndarray]:
    """Split an ad-hoc ``{config: (a, b)}`` mapping into parallel arrays
    in the mapping's iteration order."""
    configs = tuple(mapping)
    index = {cfg: i for i, cfg in enumerate(configs)}
    a = np.empty(len(configs))
    b = np.empty(len(configs))
    for i, (va, vb) in enumerate(mapping.values()):
        a[i] = va
        b[i] = vb
    return configs, index, a, b


@dataclass(frozen=True)
class KernelPrediction:
    """Model output for one kernel: predictions over the whole space.

    Attributes
    ----------
    kernel_uid:
        Which kernel was predicted.
    cluster:
        Cluster the classification tree assigned.
    predictions:
        ``{config: (predicted power W, predicted performance)}`` for
        every machine configuration.  A lazy view over the backing
        arrays when built through :meth:`from_arrays` (the model path);
        any mapping passed directly is accepted and converted to
        backing arrays in its iteration order.
    cpu_sample, gpu_sample:
        The two sample measurements the prediction is anchored to.
    uncertainties:
        Optional ``{config: (power std W, performance std)}`` prediction
        standard deviations (the paper's Section VI confidence idea) —
        consumed by ``Scheduler.select(..., risk_averse=True)``.
    """

    kernel_uid: str
    cluster: int
    predictions: Mapping[Configuration, tuple[float, float]]
    cpu_sample: Measurement
    gpu_sample: Measurement
    uncertainties: Mapping[Configuration, tuple[float, float]] | None = None

    def __post_init__(self) -> None:
        if not self.predictions:
            raise ValueError("prediction must cover at least one configuration")
        preds = self.predictions
        if isinstance(preds, _ArrayPairView):
            configs, index = preds._configs, preds._index
            power, perf = preds._a, preds._b
        else:
            configs, index, power, perf = _extract_arrays(preds)
        power_std = perf_std = None
        unc = self.uncertainties
        if unc is not None:
            if isinstance(unc, _ArrayPairView) and unc._configs is configs:
                power_std, perf_std = unc._a, unc._b
            elif set(unc) != set(preds):
                raise ValueError("uncertainties must cover the same configurations")
            else:
                power_std = np.empty(len(configs))
                perf_std = np.empty(len(configs))
                for i, cfg in enumerate(configs):
                    power_std[i], perf_std[i] = unc[cfg]
        object.__setattr__(self, "_configs", configs)
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_power", power)
        object.__setattr__(self, "_perf", perf)
        object.__setattr__(self, "_power_std", power_std)
        object.__setattr__(self, "_perf_std", perf_std)
        object.__setattr__(self, "_frontier", None)

    @classmethod
    def from_arrays(
        cls,
        *,
        kernel_uid: str,
        cluster: int,
        configs: Sequence[Configuration],
        index: Mapping[Configuration, int],
        power_w: np.ndarray,
        performance: np.ndarray,
        cpu_sample: Measurement,
        gpu_sample: Measurement,
        power_std_w: np.ndarray | None = None,
        performance_std: np.ndarray | None = None,
    ) -> "KernelPrediction":
        """Build a prediction directly from configuration-ordered
        vectors (the model's hot path — no per-config dict is built;
        the mapping API becomes a lazy view)."""
        configs = tuple(configs)
        predictions = _ArrayPairView(configs, index, power_w, performance)
        uncertainties = None
        if power_std_w is not None or performance_std is not None:
            if power_std_w is None or performance_std is None:
                raise ValueError(
                    "power and performance stds must be given together"
                )
            uncertainties = _ArrayPairView(
                configs, index, power_std_w, performance_std
            )
        return cls(
            kernel_uid=kernel_uid,
            cluster=cluster,
            predictions=predictions,
            cpu_sample=cpu_sample,
            gpu_sample=gpu_sample,
            uncertainties=uncertainties,
        )

    # -- array views (the scheduling/frontier hot path) -------------------------

    @property
    def config_tuple(self) -> tuple[Configuration, ...]:
        """Configurations in backing-array order."""
        return self._configs  # type: ignore[attr-defined]

    @property
    def power_array(self) -> np.ndarray:
        """Predicted power (watts) per configuration, in array order."""
        return self._power  # type: ignore[attr-defined]

    @property
    def performance_array(self) -> np.ndarray:
        """Predicted performance per configuration, in array order."""
        return self._perf  # type: ignore[attr-defined]

    @property
    def power_std_array(self) -> np.ndarray | None:
        """Prediction power stds in array order (``None`` without
        ``with_uncertainty``)."""
        return self._power_std  # type: ignore[attr-defined]

    @property
    def performance_std_array(self) -> np.ndarray | None:
        """Prediction performance stds in array order (``None`` without
        ``with_uncertainty``)."""
        return self._perf_std  # type: ignore[attr-defined]

    def config_at(self, i: int) -> Configuration:
        """The configuration at backing-array row ``i``."""
        return self._configs[i]  # type: ignore[attr-defined]

    # -- queries ----------------------------------------------------------------

    def predicted_frontier(self) -> ParetoFrontier:
        """Pareto frontier of the predicted (power, performance) points
        (computed once and cached — predictions are immutable)."""
        if self._frontier is None:  # type: ignore[attr-defined]
            object.__setattr__(
                self,
                "_frontier",
                ParetoFrontier.from_arrays(
                    self._configs, self._power, self._perf  # type: ignore[attr-defined]
                ),
            )
        return self._frontier  # type: ignore[attr-defined]

    def predicted_power_w(self, cfg: Configuration) -> float:
        """Predicted power of one configuration (watts)."""
        return float(self._power[self._index[cfg]])  # type: ignore[attr-defined]

    def predicted_performance(self, cfg: Configuration) -> float:
        """Predicted performance of one configuration."""
        return float(self._perf[self._index[cfg]])  # type: ignore[attr-defined]


class OnlinePredictor:
    """Runtime driver of the online stage.

    Runs a kernel's first two iterations on the sample configurations
    (through the profiling library, so the runs land in the measurement
    history), classifies the kernel, and returns the model's
    whole-space prediction.

    Parameters
    ----------
    model:
        A trained :class:`repro.core.model.AdaptiveModel`.
    library:
        The profiling library to execute and record the sample runs.
    retry_limit:
        Graceful-degradation budget: how many times to retry a sample
        run that fails with :class:`repro.faults.SampleRunError` before
        substituting a conservative synthetic anchor.
    """

    def __init__(
        self,
        model: "AdaptiveModel",
        library: ProfilingLibrary,
        *,
        retry_limit: int = DEFAULT_SAMPLE_RETRY_LIMIT,
    ) -> None:
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        self.model = model
        self.library = library
        self.retry_limit = retry_limit

    @property
    def table(self):
        """The model's shared configuration table."""
        return self.model.table

    def predict(self, kernel, *, with_uncertainty: bool = False) -> KernelPrediction:
        """Run the two sample iterations of ``kernel`` and predict power
        and performance for every configuration.

        Degrades gracefully under injected faults: failed sample runs
        are retried up to ``retry_limit`` times and then replaced by a
        conservative synthetic anchor; corrupt readings (dropout/NaN)
        are sanitized and classification falls back to the model's
        default cluster.  Without faults this path is byte-identical to
        the clean protocol.
        """
        cpu_sample, gpu_sample = self._sample_configs()
        with trace_span("online/sample"):
            cpu_m = self._sample(kernel, cpu_sample)
            gpu_m = self._sample(kernel, gpu_sample)
        cluster = None
        if not (measurement_is_finite(cpu_m) and measurement_is_finite(gpu_m)):
            with trace_span("online/degraded"):
                _CORRUPT_SAMPLES.inc()
                cpu_m = sanitize_measurement(cpu_m)
                gpu_m = sanitize_measurement(gpu_m)
                cluster = self.model.default_cluster
                log_event(
                    _log,
                    logging.WARNING,
                    "predictor-corrupt-samples",
                    kernel=getattr(kernel, "uid", "unknown"),
                    fallback_cluster=cluster,
                )
        with trace_span("online/predict"):
            return self.model.predict_kernel(
                cpu_m,
                gpu_m,
                kernel_uid=getattr(kernel, "uid", "unknown"),
                with_uncertainty=with_uncertainty,
                cluster=cluster,
            )

    def _sample_configs(self) -> tuple:
        """The machine's sample-configuration pair: Trinity's Table II
        anchors on a Trinity model, the backend descriptor's otherwise."""
        space = getattr(self.model, "config_space", None)
        if space is None or isinstance(space, ConfigSpace):
            return (CPU_SAMPLE, GPU_SAMPLE)
        from repro.hardware.backend import sample_configs_of_space

        return sample_configs_of_space(space)

    def _sample(self, kernel, config: Configuration) -> Measurement:
        """One sample run, retried on injected failure; falls back to a
        conservative synthetic measurement when the budget runs out."""
        try:
            return self.library.profile(kernel, config).measurement
        except SampleRunError:
            pass
        with trace_span("online/degraded"):
            for _ in range(self.retry_limit):
                _SAMPLE_RETRIES.inc()
                try:
                    return self.library.profile(kernel, config).measurement
                except SampleRunError:
                    continue
            _SAMPLE_FALLBACKS.inc()
            log_event(
                _log,
                logging.WARNING,
                "predictor-sample-failed",
                kernel=getattr(kernel, "uid", "unknown"),
                config=config.label(),
                retries=self.retry_limit,
            )
            return sanitize_measurement(None, config)
