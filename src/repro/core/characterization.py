"""Per-kernel characterization data assembled from profiles.

The offline stage characterizes each training kernel by profiling it on
every configuration (paper Section III-B).  A
:class:`KernelCharacterization` bundles those measurements with the
derived views the pipeline needs: the kernel's Pareto frontier and its
sample-configuration anchors (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.frontier import ParetoFrontier
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration
from repro.profiling.library import ProfilingLibrary
from repro.profiling.records import ProfileDatabase

__all__ = ["KernelCharacterization", "characterize_kernel", "characterization_from_database"]


@dataclass(frozen=True)
class KernelCharacterization:
    """All measured data the offline stage holds for one kernel.

    Attributes
    ----------
    kernel_uid:
        The kernel's unique id.
    measurements:
        One measurement per configuration (the exhaustive offline
        profiling pass).
    """

    kernel_uid: str
    measurements: Mapping[Configuration, Measurement]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ValueError("characterization needs at least one measurement")
        # Table II anchors of the machine the measurements came from —
        # Trinity's constants for Configuration keys, the owning
        # descriptor's "both blocks fully powered" pair otherwise.
        first = next(iter(self.measurements))
        if isinstance(first, Configuration):
            samples = (CPU_SAMPLE, GPU_SAMPLE)
        else:
            from repro.hardware.backend import descriptor_of_config

            samples = descriptor_of_config(first).sample_configs()
        object.__setattr__(self, "_samples", samples)
        for sample in samples:
            if sample not in self.measurements:
                raise ValueError(
                    f"characterization of {self.kernel_uid} is missing the "
                    f"sample configuration {sample.label()}"
                )

    @property
    def cpu_sample(self) -> Measurement:
        """Measurement at the primary-device sample configuration
        (Table II)."""
        return self.measurements[self._samples[0]]

    @property
    def gpu_sample(self) -> Measurement:
        """Measurement at the secondary-device sample configuration
        (Table II)."""
        return self.measurements[self._samples[1]]

    def sample_for(self, cfg: Configuration) -> Measurement:
        """The same-device sample measurement for a configuration."""
        return self.gpu_sample if cfg.is_gpu else self.cpu_sample

    def frontier(self) -> ParetoFrontier:
        """The kernel's measured power-performance Pareto frontier."""
        return ParetoFrontier.from_measurements(list(self.measurements.values()))


def characterize_kernel(
    library: ProfilingLibrary, kernel
) -> KernelCharacterization:
    """Profile a kernel on every configuration and assemble its
    characterization (the offline data-collection step)."""
    profiles = library.profile_all_configs(kernel)
    return KernelCharacterization(
        kernel_uid=profiles[0].kernel_uid,
        measurements={p.config: p.measurement for p in profiles},
    )


def characterization_from_database(
    database: ProfileDatabase, kernel_uid: str
) -> KernelCharacterization:
    """Rebuild a characterization from saved profiles (most recent
    profile wins if a configuration was measured repeatedly)."""
    measurements: dict[Configuration, Measurement] = {}
    for p in database.for_kernel(kernel_uid):
        measurements[p.config] = p.measurement
    return KernelCharacterization(kernel_uid=kernel_uid, measurements=measurements)
