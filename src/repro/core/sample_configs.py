"""The paper's sample configurations (Table II).

When an unknown kernel is encountered, its first two iterations run on
one *sample configuration per device* — chosen "to match common
execution configurations in environments without power constraints":

=======  =============  ===========  =============
Device   CPU frequency  CPU threads  GPU frequency
=======  =============  ===========  =============
CPU      3.7 GHz        4            311 MHz (idle)
GPU      3.7 GHz        1 (host)     819 MHz
=======  =============  ===========  =============

Everything the online stage knows about a new kernel comes from these
two runs: its performance and power on each, and the performance
counters recorded during them.
"""

from __future__ import annotations

from repro.hardware import pstates
from repro.hardware.config import Configuration

__all__ = ["CPU_SAMPLE", "GPU_SAMPLE", "SAMPLE_CONFIGS", "sample_configs_for"]

#: CPU-device sample configuration: all cores at maximum frequency.
CPU_SAMPLE: Configuration = Configuration.cpu(
    pstates.CPU_MAX_FREQ_GHZ, pstates.N_CORES
)

#: GPU-device sample configuration: GPU and host both at maximum frequency.
GPU_SAMPLE: Configuration = Configuration.gpu(
    pstates.GPU_MAX_FREQ_GHZ, pstates.CPU_MAX_FREQ_GHZ
)

#: Both sample configurations, CPU first (the paper's Table II order).
SAMPLE_CONFIGS: tuple[Configuration, Configuration] = (CPU_SAMPLE, GPU_SAMPLE)


def sample_configs_for(space) -> tuple:
    """Table II generalized to any backend: the two sample
    configurations of a configuration space (primary device first).

    For Trinity's :class:`~repro.hardware.config.ConfigSpace` this is
    exactly :data:`SAMPLE_CONFIGS`; descriptor-defined backends
    (:class:`~repro.hardware.backend.BlockConfigSpace`) answer "both
    blocks fully powered" from their own ladders.
    """
    from repro.hardware.backend import sample_configs_of_space

    return sample_configs_of_space(space)
