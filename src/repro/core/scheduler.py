"""Configuration selection under a power constraint.

Paper Section III-C: "The resulting frontier allows a scheduler to
select specific devices and configurations depending on the scheduling
goal at hand.  In this paper, we focus on maximizing attainable
performance under an imposed power constraint, but the predicted values
could be used to select configurations for energy efficiency,
energy-delay product, or any other scheduling goal."

This scheduler supports all three goals, plus the paper's future-work
idea (Section VI) of risk-aware selection: with ``risk_margin > 0`` the
scheduler treats the cap as proportionally tighter, trading expected
performance for fewer violations when predictions are uncertain.

Selection is array-shaped: one :meth:`Scheduler.select` is a masked
argmax over the prediction's power/performance vectors (including the
risk-averse sigma-inflated bounds), and :meth:`Scheduler.select_many`
answers an entire cap sweep in a single sorted pass — the per-config
scores are prefix-scanned once in ascending-power order, then every cap
resolves with one :func:`numpy.searchsorted` lookup.  Ties break
exactly as the historical scalar loop did: the earliest configuration
in prediction order wins.

The prefix scan itself is reified as a :class:`CapSweepTable` so
long-lived consumers (the decision server in :mod:`repro.server`) can
build it once per prediction and answer every later cap with a single
binary search; :meth:`Scheduler.sweep_table` is the factory and
:meth:`Scheduler.select_many` is now a thin wrapper over it.

When selection has no runnable candidate at all — an empty frontier, or
every configuration quarantined under ``strict_quarantine=True`` — the
scheduler raises the typed :class:`NoFeasibleConfigError` instead of an
accidental ``IndexError``, so callers (the server maps it to a
per-request error response) can tell "nothing to run" apart from a bug.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.predictor import KernelPrediction
from repro.hardware.config import Configuration
from repro.telemetry import counter, get_logger, log_event, trace_span

__all__ = [
    "CapSweepTable",
    "NoFeasibleConfigError",
    "Scheduler",
    "SchedulerDecision",
    "SchedulingGoal",
]

_log = get_logger(__name__)

# Selection accounting (see docs/OBSERVABILITY.md): every committed
# decision counts once; fallbacks are the subset where no configuration
# was predicted cap-feasible.
_SELECTIONS = counter("scheduler.selections")
_FALLBACKS = counter("scheduler.infeasible_fallbacks")

# Degradation accounting (docs/ROBUSTNESS.md): configurations reported
# stuck by the hardware and quarantined from future selection.
_QUARANTINED = counter("faults.quarantined_configs")

SchedulingGoal = Literal["performance", "energy", "edp"]


@dataclass(frozen=True)
class SchedulerDecision:
    """A scheduling outcome.

    Attributes
    ----------
    config:
        The selected configuration.
    predicted_power_w, predicted_performance:
        The model's predictions for the selection.
    predicted_feasible:
        Whether the selection's *predicted* power met the cap.  False
        means no configuration was predicted feasible and the scheduler
        fell back to the lowest-predicted-power configuration.
    """

    config: Configuration
    predicted_power_w: float
    predicted_performance: float
    predicted_feasible: bool


def _objective(goal: SchedulingGoal, power_w: float, perf: float) -> float:
    """Score to *maximize* for a candidate (power, performance)."""
    if goal == "performance":
        return perf
    if goal == "energy":
        # Energy per invocation = power / throughput; maximize its negative.
        return -power_w / perf
    if goal == "edp":
        # Energy-delay product = power / throughput^2.
        return -power_w / (perf * perf)
    raise ValueError(f"unknown scheduling goal {goal!r}")


def _objective_array(
    goal: SchedulingGoal, power_w: np.ndarray, perf: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`_objective` (elementwise-identical scores)."""
    if goal == "performance":
        return perf
    if goal == "energy":
        return -power_w / perf
    if goal == "edp":
        return -power_w / (perf * perf)
    raise ValueError(f"unknown scheduling goal {goal!r}")


class NoFeasibleConfigError(RuntimeError):
    """Selection had no runnable candidate at all.

    Raised when the candidate set is empty or every configuration's
    bounded power is non-finite — an empty frontier, or a full
    quarantine under ``strict_quarantine=True``.  Distinct from the
    infeasible-*cap* case, which still has runnable configurations and
    falls back to the lowest-power one.
    """


def _prefix_best_reference(order: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Scalar prefix scan: ``best_at[p]`` is the original index of the
    best-scoring configuration among the ``p + 1`` lowest-power ones,
    breaking score ties toward the earliest prediction index.

    This is the historical loop, kept as the executable specification
    for :func:`_prefix_best` — and as the fallback when scores contain
    NaN, whose comparison quirks (``s > best`` is False both ways) the
    rank-key vectorization does not reproduce.
    """
    best_at = np.empty(order.size, dtype=np.intp)
    best_i = -1
    best_score = -np.inf
    for pos, j in enumerate(order):
        s = scores[j]
        if best_i < 0 or s > best_score or (s == best_score and j < best_i):
            best_i, best_score = int(j), s
        best_at[pos] = best_i
    return best_at


def _prefix_best(order: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_prefix_best_reference` (element-identical).

    Scores are densified to integer ranks, combined with the reversed
    original index into a single key that is strictly monotone in
    (score asc, index desc), and the running argmax falls out of two
    ``maximum.accumulate`` passes.
    """
    n = order.size
    s_sorted = scores[order]
    if n == 0 or np.isnan(s_sorted).any():
        return _prefix_best_reference(order, scores)
    _, ranks = np.unique(s_sorted, return_inverse=True)
    key = ranks.astype(np.int64) * n + (n - 1 - order.astype(np.int64))
    running = np.maximum.accumulate(key)
    best_pos = np.maximum.accumulate(
        np.where(key == running, np.arange(n), 0)
    )
    return order[best_pos].astype(np.intp, copy=False)


@dataclass(frozen=True)
class CapSweepTable:
    """Precomputed cap-sweep answers for one prediction.

    Built once by :meth:`Scheduler.sweep_table`; every subsequent cap
    (or whole cap vector) resolves with a single binary search.  The
    table bakes in the scheduler's goal, risk settings, and quarantine
    state at build time — consumers holding stale tables (see
    ``repro.server``'s snapshot swap) must rebuild after a quarantine.

    Attributes
    ----------
    sorted_power_w:
        Bounded predicted power, ascending (stable order).
    best_at:
        ``best_at[p]`` — original prediction index of the winner among
        the ``p + 1`` lowest-power configurations.
    fallback_index:
        Lowest-bounded-power configuration, chosen when a cap admits
        nothing (the least-bad violation).
    cap_scale:
        ``1 - risk_margin``: caps are scaled by this before the search.
    """

    sorted_power_w: np.ndarray
    best_at: np.ndarray
    fallback_index: int
    cap_scale: float

    def lookup(
        self, power_caps_w: Sequence[float] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve caps to ``(config_index, predicted_feasible)`` arrays."""
        caps = np.asarray(power_caps_w, dtype=np.float64)
        cut = np.searchsorted(
            self.sorted_power_w, caps * self.cap_scale, side="right"
        )
        feasible = cut > 0
        index = self.best_at[np.maximum(cut, 1) - 1]
        if not feasible.all():
            index = np.where(feasible, index, self.fallback_index)
        return index, feasible


class Scheduler:
    """Selects configurations from model predictions.

    Parameters
    ----------
    goal:
        What to optimize among cap-feasible configurations
        (``"performance"`` — the paper's focus — ``"energy"``, or
        ``"edp"``).
    risk_margin:
        Default cap-tightening fraction applied by :meth:`select` when
        no per-call value is given.
    strict_quarantine:
        By default a quarantine that would eliminate *every* candidate
        is ignored — the runtime must still run the kernel somewhere.
        Strict mode honors it and raises
        :class:`NoFeasibleConfigError` instead, for callers (the
        decision server) that can report "nothing to run" per request
        rather than execute a known-stuck configuration.
    """

    def __init__(
        self,
        goal: SchedulingGoal = "performance",
        *,
        risk_margin: float = 0.0,
        strict_quarantine: bool = False,
    ) -> None:
        _objective(goal, 1.0, 1.0)  # validates
        if not 0.0 <= risk_margin < 1.0:
            raise ValueError("risk_margin must be in [0, 1)")
        self.goal = goal
        self.risk_margin = risk_margin
        self.strict_quarantine = strict_quarantine
        self._quarantined: set[Configuration] = set()

    # -- quarantine (graceful degradation, docs/ROBUSTNESS.md) -------------------

    @property
    def quarantined(self) -> frozenset[Configuration]:
        """Configurations excluded from selection (reported stuck)."""
        return frozenset(self._quarantined)

    def quarantine(self, config: Configuration) -> None:
        """Exclude a configuration from future selections.

        The runtime calls this when the hardware reports a different
        P-state than the one scheduled (stuck or persistently
        throttled): the prediction for that configuration no longer
        describes what would actually execute, so the scheduler
        re-selects from the surviving candidates instead.
        """
        if config not in self._quarantined:
            self._quarantined.add(config)
            _QUARANTINED.inc()
            log_event(
                _log,
                logging.WARNING,
                "scheduler-quarantine",
                config=config.label(),
                quarantined=len(self._quarantined),
            )

    def clear_quarantine(self) -> None:
        """Re-admit every quarantined configuration."""
        self._quarantined.clear()

    def _mask_quarantined(
        self, prediction: KernelPrediction, pw_bound: np.ndarray
    ) -> np.ndarray:
        """Power bounds with quarantined configurations forced to +inf
        (never feasible, never the fallback).  No-op — and zero overhead
        — while the quarantine set is empty.  If quarantine would
        eliminate *every* candidate, it is ignored (the runtime must
        still run the kernel somewhere) unless ``strict_quarantine`` is
        set, in which case the all-inf bounds make the subsequent
        :meth:`_require_selectable` check raise
        :class:`NoFeasibleConfigError`.
        """
        if not self._quarantined:
            return pw_bound
        mask = np.fromiter(
            (cfg in self._quarantined for cfg in prediction.config_tuple),
            dtype=bool,
            count=len(prediction.config_tuple),
        )
        if not mask.any():
            return pw_bound
        if mask.all() and not self.strict_quarantine:
            return pw_bound
        return np.where(mask, np.inf, pw_bound)

    # -- shared machinery --------------------------------------------------------

    def _resolve_margin(self, risk_margin: float | None) -> float:
        if risk_margin is None:
            return self.risk_margin
        if not 0.0 <= risk_margin < 1.0:
            raise ValueError("risk_margin must be in [0, 1)")
        return risk_margin

    @staticmethod
    def _bounds(
        prediction: KernelPrediction,
        risk_averse: bool,
        confidence_z: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The (power, performance) vectors selection judges: raw
        predictions, or sigma-inflated confidence bounds (Section VI)."""
        pw = prediction.power_array
        perf = prediction.performance_array
        if not risk_averse:
            return pw, perf
        pw_std = prediction.power_std_array
        perf_std = prediction.performance_std_array
        pw_bound = np.where(np.isnan(pw_std), pw, pw + confidence_z * pw_std)
        perf_bound = np.where(
            np.isnan(perf_std),
            perf,
            np.maximum(perf - confidence_z * perf_std, 1e-9),
        )
        return pw_bound, perf_bound

    def _decision(
        self,
        prediction: KernelPrediction,
        i: int,
        feasible: bool,
    ) -> SchedulerDecision:
        _SELECTIONS.inc()
        if not feasible:
            _FALLBACKS.inc()
        return self._build_decision(
            prediction, i, feasible, _log.isEnabledFor(logging.DEBUG)
        )

    def _build_decision(
        self,
        prediction: KernelPrediction,
        i: int,
        feasible: bool,
        log_debug: bool,
    ) -> SchedulerDecision:
        decision = SchedulerDecision(
            config=prediction.config_at(i),
            predicted_power_w=float(prediction.power_array[i]),
            predicted_performance=float(prediction.performance_array[i]),
            predicted_feasible=feasible,
        )
        if log_debug:
            log_event(
                _log,
                logging.DEBUG,
                "scheduler-decision",
                kernel=prediction.kernel_uid,
                goal=self.goal,
                config=decision.config.label(),
                predicted_power_w=round(decision.predicted_power_w, 3),
                predicted_performance=round(decision.predicted_performance, 4),
                feasible=feasible,
            )
        return decision

    @staticmethod
    def _validate_selection_args(
        prediction: KernelPrediction,
        risk_averse: bool,
        confidence_z: float,
    ) -> None:
        if confidence_z < 0:
            raise ValueError("confidence_z must be non-negative")
        if risk_averse and prediction.uncertainties is None:
            raise ValueError(
                "risk_averse selection needs a prediction built with "
                "with_uncertainty=True"
            )

    @staticmethod
    def _require_selectable(
        pw_bound: np.ndarray, prediction: KernelPrediction
    ) -> None:
        """Raise :class:`NoFeasibleConfigError` when no candidate has a
        finite bounded power — nothing is runnable at *any* cap, so even
        the lowest-power fallback would be meaningless."""
        if pw_bound.size == 0 or not np.isfinite(pw_bound).any():
            raise NoFeasibleConfigError(
                f"no selectable configuration for kernel "
                f"{prediction.kernel_uid!r}: every candidate is "
                f"quarantined or has non-finite predicted power"
            )

    # -- selection ---------------------------------------------------------------

    def select(
        self,
        prediction: KernelPrediction,
        power_cap_w: float,
        *,
        risk_margin: float | None = None,
        risk_averse: bool = False,
        confidence_z: float = 1.0,
    ) -> SchedulerDecision:
        """Pick the best configuration predicted to respect the cap.

        If no configuration is predicted feasible, fall back to the one
        with the lowest predicted power (the least-bad violation — a
        real runtime must still run the kernel somewhere).

        Parameters
        ----------
        prediction:
            Whole-space model prediction for the kernel.
        power_cap_w:
            The imposed power constraint (watts).
        risk_margin:
            Fraction in ``[0, 1)`` by which to tighten the cap during
            selection, guarding against under-predicted power
            (defaults to the scheduler's configured margin).
        risk_averse:
            The paper's Section VI idea: judge feasibility on the power
            prediction's *upper* confidence bound and rank candidates
            by the performance prediction's *lower* bound, so
            high-variance predictions lose to confident ones.  Requires
            a prediction built with ``with_uncertainty=True``.
        confidence_z:
            Number of prediction standard deviations used for the
            risk-averse bounds.

        Raises
        ------
        NoFeasibleConfigError
            If no candidate is runnable at any cap — an empty candidate
            set, or a full quarantine under ``strict_quarantine=True``.
        """
        if power_cap_w <= 0:
            raise ValueError("power_cap_w must be positive")
        risk_margin = self._resolve_margin(risk_margin)
        self._validate_selection_args(prediction, risk_averse, confidence_z)

        with trace_span("online/select"):
            effective_cap = power_cap_w * (1.0 - risk_margin)
            pw_bound, perf_bound = self._bounds(
                prediction, risk_averse, confidence_z
            )
            pw_bound = self._mask_quarantined(prediction, pw_bound)
            self._require_selectable(pw_bound, prediction)
            feasible = pw_bound <= effective_cap
            feasible_idx = np.flatnonzero(feasible)
            if feasible_idx.size:
                scores = _objective_array(
                    self.goal, pw_bound[feasible_idx], perf_bound[feasible_idx]
                )
                # argmax returns the first maximum: earliest prediction
                # order wins ties, like the scalar loop's strict '>'.
                i = int(feasible_idx[np.argmax(scores)])
                return self._decision(prediction, i, True)
            # Fallback: minimize (bounded) predicted power.
            i = int(np.argmin(pw_bound))
            return self._decision(prediction, i, False)

    def sweep_table(
        self,
        prediction: KernelPrediction,
        *,
        risk_margin: float | None = None,
        risk_averse: bool = False,
        confidence_z: float = 1.0,
    ) -> CapSweepTable:
        """Build the reusable cap-sweep structure for a prediction.

        The table bakes in this scheduler's goal, the resolved risk
        settings, and the quarantine state *at build time*; afterwards
        any cap vector resolves via :meth:`CapSweepTable.lookup` with
        one binary search per cap and no reference back to the
        scheduler.  :meth:`select_many` builds one per call; the
        decision server memoizes one per warm kernel.

        Raises
        ------
        NoFeasibleConfigError
            If no candidate is runnable at any cap (see :meth:`select`).
        """
        risk_margin = self._resolve_margin(risk_margin)
        self._validate_selection_args(prediction, risk_averse, confidence_z)
        pw_bound, perf_bound = self._bounds(prediction, risk_averse, confidence_z)
        pw_bound = self._mask_quarantined(prediction, pw_bound)
        self._require_selectable(pw_bound, prediction)
        scores = _objective_array(self.goal, pw_bound, perf_bound)
        order = np.argsort(pw_bound, kind="stable")
        return CapSweepTable(
            sorted_power_w=pw_bound[order],
            best_at=_prefix_best(order, scores),
            fallback_index=int(np.argmin(pw_bound)),
            cap_scale=1.0 - risk_margin,
        )

    def select_many(
        self,
        prediction: KernelPrediction,
        power_caps_w: Sequence[float] | np.ndarray,
        *,
        risk_margin: float | None = None,
        risk_averse: bool = False,
        confidence_z: float = 1.0,
    ) -> list[SchedulerDecision]:
        """Answer an entire cap sweep in one pass.

        Equivalent to ``[self.select(prediction, c, ...) for c in
        power_caps_w]`` — decision-for-decision, including tie-breaking
        and the infeasible-cap fallback — but the per-config scores are
        prefix-scanned once (:meth:`sweep_table`) in ascending
        bounded-power order, after which every cap costs a single
        binary search.
        """
        caps = np.asarray(power_caps_w, dtype=np.float64)
        if caps.ndim != 1:
            raise ValueError("power_caps_w must be one-dimensional")
        if caps.size and caps.min() <= 0:
            raise ValueError("power_cap_w must be positive")

        with trace_span("online/select"):
            table = self.sweep_table(
                prediction,
                risk_margin=risk_margin,
                risk_averse=risk_averse,
                confidence_z=confidence_z,
            )
            index, feasible = table.lookup(caps)
            # Counters update in bulk (one lock acquisition per sweep, not
            # per cap) so instrumentation stays off the per-decision path.
            log_debug = _log.isEnabledFor(logging.DEBUG)
            decisions = [
                self._build_decision(prediction, int(i), bool(f), log_debug)
                for i, f in zip(index, feasible)
            ]
            _SELECTIONS.inc(int(caps.size))
            infeasible = int(np.count_nonzero(~feasible))
            if infeasible:
                _FALLBACKS.inc(infeasible)
            return decisions
