"""Configuration selection under a power constraint.

Paper Section III-C: "The resulting frontier allows a scheduler to
select specific devices and configurations depending on the scheduling
goal at hand.  In this paper, we focus on maximizing attainable
performance under an imposed power constraint, but the predicted values
could be used to select configurations for energy efficiency,
energy-delay product, or any other scheduling goal."

This scheduler supports all three goals, plus the paper's future-work
idea (Section VI) of risk-aware selection: with ``risk_margin > 0`` the
scheduler treats the cap as proportionally tighter, trading expected
performance for fewer violations when predictions are uncertain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.core.predictor import KernelPrediction
from repro.hardware.config import Configuration

__all__ = ["SchedulingGoal", "SchedulerDecision", "Scheduler"]

SchedulingGoal = Literal["performance", "energy", "edp"]


@dataclass(frozen=True)
class SchedulerDecision:
    """A scheduling outcome.

    Attributes
    ----------
    config:
        The selected configuration.
    predicted_power_w, predicted_performance:
        The model's predictions for the selection.
    predicted_feasible:
        Whether the selection's *predicted* power met the cap.  False
        means no configuration was predicted feasible and the scheduler
        fell back to the lowest-predicted-power configuration.
    """

    config: Configuration
    predicted_power_w: float
    predicted_performance: float
    predicted_feasible: bool


def _objective(goal: SchedulingGoal, power_w: float, perf: float) -> float:
    """Score to *maximize* for a candidate (power, performance)."""
    if goal == "performance":
        return perf
    if goal == "energy":
        # Energy per invocation = power / throughput; maximize its negative.
        return -power_w / perf
    if goal == "edp":
        # Energy-delay product = power / throughput^2.
        return -power_w / (perf * perf)
    raise ValueError(f"unknown scheduling goal {goal!r}")


class Scheduler:
    """Selects configurations from model predictions.

    Parameters
    ----------
    goal:
        What to optimize among cap-feasible configurations
        (``"performance"`` — the paper's focus — ``"energy"``, or
        ``"edp"``).
    risk_margin:
        Default cap-tightening fraction applied by :meth:`select` when
        no per-call value is given.
    """

    def __init__(
        self,
        goal: SchedulingGoal = "performance",
        *,
        risk_margin: float = 0.0,
    ) -> None:
        _objective(goal, 1.0, 1.0)  # validates
        if not 0.0 <= risk_margin < 1.0:
            raise ValueError("risk_margin must be in [0, 1)")
        self.goal = goal
        self.risk_margin = risk_margin

    def select(
        self,
        prediction: KernelPrediction,
        power_cap_w: float,
        *,
        risk_margin: float | None = None,
        risk_averse: bool = False,
        confidence_z: float = 1.0,
    ) -> SchedulerDecision:
        """Pick the best configuration predicted to respect the cap.

        If no configuration is predicted feasible, fall back to the one
        with the lowest predicted power (the least-bad violation — a
        real runtime must still run the kernel somewhere).

        Parameters
        ----------
        prediction:
            Whole-space model prediction for the kernel.
        power_cap_w:
            The imposed power constraint (watts).
        risk_margin:
            Fraction in ``[0, 1)`` by which to tighten the cap during
            selection, guarding against under-predicted power
            (defaults to the scheduler's configured margin).
        risk_averse:
            The paper's Section VI idea: judge feasibility on the power
            prediction's *upper* confidence bound and rank candidates
            by the performance prediction's *lower* bound, so
            high-variance predictions lose to confident ones.  Requires
            a prediction built with ``with_uncertainty=True``.
        confidence_z:
            Number of prediction standard deviations used for the
            risk-averse bounds.
        """
        if power_cap_w <= 0:
            raise ValueError("power_cap_w must be positive")
        if risk_margin is None:
            risk_margin = self.risk_margin
        if not 0.0 <= risk_margin < 1.0:
            raise ValueError("risk_margin must be in [0, 1)")
        if confidence_z < 0:
            raise ValueError("confidence_z must be non-negative")
        if risk_averse and prediction.uncertainties is None:
            raise ValueError(
                "risk_averse selection needs a prediction built with "
                "with_uncertainty=True"
            )

        effective_cap = power_cap_w * (1.0 - risk_margin)
        best: tuple[float, SchedulerDecision] | None = None
        fallback: tuple[float, SchedulerDecision] | None = None
        for cfg, (pw, perf) in prediction.predictions.items():
            pw_bound, perf_bound = pw, perf
            if risk_averse:
                pw_std, perf_std = prediction.uncertainties[cfg]
                if not math.isnan(pw_std):
                    pw_bound = pw + confidence_z * pw_std
                if not math.isnan(perf_std):
                    perf_bound = max(perf - confidence_z * perf_std, 1e-9)
            decision = SchedulerDecision(
                config=cfg,
                predicted_power_w=pw,
                predicted_performance=perf,
                predicted_feasible=pw_bound <= effective_cap,
            )
            if decision.predicted_feasible:
                score = _objective(self.goal, pw_bound, perf_bound)
                if best is None or score > best[0]:
                    best = (score, decision)
            # Fallback: minimize (bounded) predicted power.
            fb_score = -pw_bound
            if fallback is None or fb_score > fallback[0]:
                fallback = (fb_score, decision)
        if best is not None:
            return best[1]
        assert fallback is not None  # predictions is non-empty by construction
        return fallback[1]
