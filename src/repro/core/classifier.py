"""Cluster assignment for unseen kernels via a classification tree.

Paper Section III-B: because new kernels have only run on the two sample
configurations (one per device) — not on the full space — they cannot be
clustered by frontier comparison.  Instead, "we train a classification
tree on performance counter and power data from training kernels on the
sample configurations" and use it online (Figure 3 shows an example
tree with four normalized counter metrics).

Every feature here is observable after the two sample iterations:
normalized counters from the CPU-sample run, per-domain power at both
samples, and the GPU/CPU sample performance ratio (both iterations are
timed, so the ratio is free — and it is the single most informative
signal about which device the kernel prefers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.characterization import KernelCharacterization
from repro.hardware.apu import Measurement
from repro.stats.cart import ClassificationTree

__all__ = ["SAMPLE_FEATURE_NAMES", "sample_features", "ClusterClassifier"]

#: Counter metrics (from the CPU-sample run) used as tree features.
_COUNTER_FEATURES: tuple[str, ...] = (
    "l2_miss_per_inst",
    "stall_frac",
    "vector_per_inst",
    "branch_per_inst",
    "dram_per_cycle",
    "ipc",
)

#: All tree feature names, in feature-vector order.
SAMPLE_FEATURE_NAMES: tuple[str, ...] = _COUNTER_FEATURES + (
    "cpu_sample_power_w",
    "gpu_sample_power_w",
    "log_gpu_cpu_perf_ratio",
)


def sample_features(
    cpu_sample: Measurement, gpu_sample: Measurement
) -> np.ndarray:
    """Feature vector for cluster classification, from the two
    sample-configuration measurements of one kernel."""
    missing = [f for f in _COUNTER_FEATURES if f not in cpu_sample.counters]
    if missing:
        raise ValueError(f"CPU sample measurement lacks counters: {missing}")
    counter_part = [float(cpu_sample.counters[f]) for f in _COUNTER_FEATURES]
    ratio = gpu_sample.performance / cpu_sample.performance
    return np.array(
        counter_part
        + [
            cpu_sample.total_power_w,
            gpu_sample.total_power_w,
            float(np.log(ratio)),
        ]
    )


@dataclass
class ClusterClassifier:
    """A fitted tree mapping sample-run features to a cluster id.

    Parameters
    ----------
    max_depth, min_samples_leaf:
        Tree capacity controls.  The defaults keep trees small, like the
        paper's Figure 3 example (a four-comparison tree).
    """

    max_depth: int = 4
    min_samples_leaf: int = 2

    def __post_init__(self) -> None:
        self._tree: ClassificationTree | None = None

    def fit(
        self,
        characterizations: Sequence[KernelCharacterization],
        labels: Sequence[int],
    ) -> "ClusterClassifier":
        """Train on the sample-run features of the training kernels and
        their offline cluster labels."""
        if len(characterizations) != len(labels):
            raise ValueError("characterizations and labels length mismatch")
        if not characterizations:
            raise ValueError("cannot fit classifier on zero kernels")
        X = np.vstack(
            [sample_features(c.cpu_sample, c.gpu_sample) for c in characterizations]
        )
        self._tree = ClassificationTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            feature_names=SAMPLE_FEATURE_NAMES,
        ).fit(X, np.asarray(labels))
        return self

    def predict(self, cpu_sample: Measurement, gpu_sample: Measurement) -> int:
        """Assign an unseen kernel to a cluster from its two sample runs."""
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        return int(self._tree.predict(sample_features(cpu_sample, gpu_sample)))

    def render(self) -> str:
        """Figure 3-style text rendering of the fitted tree."""
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        return self._tree.render()

    @property
    def tree(self) -> ClassificationTree:
        """The underlying fitted tree (for introspection)."""
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        return self._tree
