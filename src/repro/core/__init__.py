"""The paper's contribution: adaptive configuration selection.

Offline (run once per machine): characterize training kernels, derive
Pareto frontiers, cluster kernels by frontier-order similarity, fit
per-cluster regressions, and train a classification tree on
sample-configuration data.  Online (run per new kernel): two sample
iterations, tree classification, whole-space power/performance
prediction, predicted Pareto frontier, and scheduling under a power cap.

See Figure 1 of the paper for the data flow; module-level docstrings
cite the relevant paper sections.
"""

from repro.core.characterization import (
    KernelCharacterization,
    characterization_from_database,
    characterize_kernel,
)
from repro.core.classifier import (
    SAMPLE_FEATURE_NAMES,
    ClusterClassifier,
    sample_features,
)
from repro.core.configspace import ConfigTable
from repro.core.clustering import (
    DEFAULT_N_CLUSTERS,
    ClusteringResult,
    choose_n_clusters,
    cluster_kernels,
    resolve_warm_medoids,
)
from repro.core.dissimilarity import (
    DissimilarityCache,
    dissimilarity_matrix,
    frontier_dissimilarity,
)
from repro.core.features import (
    CPU_FEATURE_NAMES,
    GPU_FEATURE_NAMES,
    design_matrix,
    design_row,
)
from repro.core.frontier import FrontierPoint, ParetoFrontier
from repro.core.io import load_model, model_from_json, model_to_json, save_model
from repro.core.model import AdaptiveModel, train_model
from repro.core.predictor import KernelPrediction, OnlinePredictor
from repro.core.regression import (
    ClusterModels,
    DeviceModels,
    RegressionGramPool,
    fit_cluster_models,
)
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE, SAMPLE_CONFIGS
from repro.core.scheduler import (
    CapSweepTable,
    NoFeasibleConfigError,
    Scheduler,
    SchedulerDecision,
    SchedulingGoal,
)

__all__ = [
    "AdaptiveModel",
    "CPU_FEATURE_NAMES",
    "CPU_SAMPLE",
    "CapSweepTable",
    "ClusterClassifier",
    "ClusterModels",
    "ClusteringResult",
    "ConfigTable",
    "DEFAULT_N_CLUSTERS",
    "DeviceModels",
    "DissimilarityCache",
    "FrontierPoint",
    "GPU_FEATURE_NAMES",
    "GPU_SAMPLE",
    "KernelCharacterization",
    "KernelPrediction",
    "NoFeasibleConfigError",
    "OnlinePredictor",
    "ParetoFrontier",
    "RegressionGramPool",
    "SAMPLE_CONFIGS",
    "SAMPLE_FEATURE_NAMES",
    "Scheduler",
    "SchedulerDecision",
    "SchedulingGoal",
    "characterization_from_database",
    "characterize_kernel",
    "choose_n_clusters",
    "cluster_kernels",
    "design_matrix",
    "design_row",
    "dissimilarity_matrix",
    "fit_cluster_models",
    "frontier_dissimilarity",
    "load_model",
    "model_from_json",
    "model_to_json",
    "resolve_warm_medoids",
    "sample_features",
    "save_model",
    "train_model",
]
