"""Design matrices over the machine configuration space.

The paper's regression models take "the configuration variables
(frequency, number of cores, etc.) and their first-order interactions
(i.e. frequency * cores)" as regressors (Section III-B).  Per device
those are:

* CPU configurations — CPU frequency, thread count, and
  frequency x threads;
* GPU configurations — GPU frequency, host CPU frequency, and
  GPU frequency x host frequency (the host term captures launch/driver
  overhead, Table I).

All variables are normalized to their machine maxima so coefficients
are comparable across features and numerically well scaled.
"""

from __future__ import annotations

import numpy as np

from repro.hardware import pstates
from repro.hardware.config import Configuration, Device

__all__ = [
    "CPU_FEATURE_NAMES",
    "CPU_POWER_FEATURE_NAMES",
    "GPU_FEATURE_NAMES",
    "GPU_POWER_FEATURE_NAMES",
    "design_row",
    "design_matrix",
    "power_design_row",
]

#: Regressor names for CPU-device performance models.
CPU_FEATURE_NAMES: tuple[str, ...] = ("cpu_freq", "threads", "cpu_freq*threads")

#: Regressor names for GPU-device performance models.
GPU_FEATURE_NAMES: tuple[str, ...] = ("gpu_freq", "host_freq", "gpu_freq*host_freq")

#: Regressor names for CPU-device power models (voltage-aware).
CPU_POWER_FEATURE_NAMES: tuple[str, ...] = (
    "cpu_freq",
    "threads",
    "cpu_freq*threads",
    "v_sq",
    "threads*freq*v_sq",
)

#: Regressor names for GPU-device power models (voltage-aware).
GPU_POWER_FEATURE_NAMES: tuple[str, ...] = (
    "gpu_freq",
    "host_freq",
    "gpu_freq*host_freq",
    "gpu_v_sq",
    "gpu_freq*gpu_v_sq",
    "host_freq*host_v_sq",
)


def design_row(cfg) -> np.ndarray:
    """The regressor vector of one configuration (device-specific).

    Non-Trinity configurations delegate to their backend descriptor's
    rows, which follow the same width/normalization convention — that
    shared convention is what makes regression coefficients portable
    across backends (:mod:`repro.evaluation.transfer`)."""
    if not isinstance(cfg, Configuration):
        from repro.hardware.backend import descriptor_of_config

        return descriptor_of_config(cfg).perf_row(cfg)
    if cfg.device is Device.CPU:
        f = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
        n = cfg.n_threads / pstates.N_CORES
        return np.array([f, n, f * n])
    g = cfg.gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
    h = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
    return np.array([g, h, g * h])


def power_design_row(cfg) -> np.ndarray:
    """The regressor vector for *power* models.

    Power is physically linear in voltage-squared terms (static leakage
    ~ :math:`V^2`, per-core dynamic ~ :math:`n f V^2`), and the
    machine's voltage/frequency curves are known offline machine
    characterization — so the power design includes them alongside the
    raw configuration variables.  This is still the paper's "linear
    model over configuration variables and first-order interactions";
    the variables are simply expressed in the units power is linear in.
    """
    if not isinstance(cfg, Configuration):
        from repro.hardware.backend import descriptor_of_config

        return descriptor_of_config(cfg).power_row(cfg)
    if cfg.device is Device.CPU:
        f = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
        n = cfg.n_threads / pstates.N_CORES
        v = pstates.cpu_voltage(cfg.cpu_freq_ghz) / pstates.cpu_voltage(
            pstates.CPU_MAX_FREQ_GHZ
        )
        v2 = v * v
        return np.array([f, n, f * n, v2, n * f * v2])
    g = cfg.gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
    h = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
    vg = pstates.gpu_voltage(cfg.gpu_freq_ghz) / pstates.gpu_voltage(
        pstates.GPU_MAX_FREQ_GHZ
    )
    vh = pstates.cpu_voltage(cfg.cpu_freq_ghz) / pstates.cpu_voltage(
        pstates.CPU_MAX_FREQ_GHZ
    )
    vg2, vh2 = vg * vg, vh * vh
    return np.array([g, h, g * h, vg2, g * vg2, h * vh2])


def design_matrix(configs: list) -> np.ndarray:
    """Stack :func:`design_row` over configurations (all must share a
    device, since CPU and GPU features differ)."""
    if not configs:
        raise ValueError("need at least one configuration")
    devices = {c.device for c in configs}
    if len(devices) != 1:
        raise ValueError("design_matrix requires configurations of one device")
    return np.vstack([design_row(c) for c in configs])
