"""The simulated Trinity APU: the facade tying timing, power, and
counters together.

:class:`TrinityAPU` exposes two views of the machine:

* :meth:`TrinityAPU.true_time_s` / :meth:`TrinityAPU.true_power` —
  deterministic ground truth, available only to the **oracle** used as
  the evaluation baseline (Section V-B of the paper);
* :meth:`TrinityAPU.run` — a *measured* execution: ground truth
  perturbed by the machine's :class:`~repro.hardware.noise.NoiseModel`.
  This is the only interface the modeling pipeline uses, mirroring how
  the paper's system sees silicon solely through PAPI counters and the
  on-chip power estimator.

Measurements report the two power domains separately (CPU cores;
northbridge + GPU), just like the Trinity system-management
microcontroller.
"""

from __future__ import annotations

import numpy as np

from repro.hardware import pstates
from repro.hardware.backend import (
    TRINITY_DESCRIPTOR,
    HardwareBackend,
    Measurement,
    register_backend,
)
from repro.hardware.batch import batch_true_rate_power
from repro.hardware.config import Configuration, ConfigSpace, Device
from repro.hardware.counters import synthesize_counters
from repro.hardware.kernelmodel import (
    KernelCharacteristics,
    amdahl_speedup,
    memory_bandwidth_factor,
    true_time_s,
)
from repro.hardware.noise import NoiseModel
from repro.hardware.power import PowerBreakdown, PowerModelConstants, power_w
from repro.hardware.thermal import BoostPolicy
from repro.telemetry import counter, gauge

# Measurement moved to repro.hardware.backend with the interface
# extraction; re-exported here for compatibility.
__all__ = ["Measurement", "TrinityAPU"]


# Process-wide ground-truth caches.  With boost off, ground truth is a
# pure function of (characteristics, config) given the power constants,
# and the noisy-measurement template additionally depends only on the
# noise model — so every TrinityAPU with equal constants shares one set
# of memo dicts.  run_loocv and the evaluation harness build fresh
# machines constantly (fresh noise streams, same physics); sharing keeps
# repeated runs from re-deriving identical truths.  Keyspace is bounded:
# kernels-in-process x 42 configurations.
_TRUTH_CACHES: dict[PowerModelConstants, tuple[dict, dict, dict]] = {}
_TRUTH_TABLE_CACHES: dict[PowerModelConstants, dict] = {}
_TEMPLATE_CACHES: dict[tuple[PowerModelConstants, NoiseModel], dict] = {}

# Hit/miss accounting for the two memo families this module owns (see
# docs/OBSERVABILITY.md).  Instruments are fetched once here; their
# .inc() is a flag check when telemetry is disabled.
_TT_HITS = counter("cache.truth_table.hits")
_TT_MISSES = counter("cache.truth_table.misses")
_TT_SIZE = gauge("cache.truth_table.size")
_TPL_HITS = counter("cache.measurement_template.hits")
_TPL_MISSES = counter("cache.measurement_template.misses")
_TPL_SIZE = gauge("cache.measurement_template.size")


def _truth_caches(
    constants: PowerModelConstants,
) -> tuple[dict, dict, dict]:
    caches = _TRUTH_CACHES.get(constants)
    if caches is None:
        caches = ({}, {}, {})
        _TRUTH_CACHES[constants] = caches
    return caches


def _template_cache(
    constants: PowerModelConstants, noise: NoiseModel
) -> dict:
    cache = _TEMPLATE_CACHES.get((constants, noise))
    if cache is None:
        cache = {}
        _TEMPLATE_CACHES[(constants, noise)] = cache
    return cache


def _characteristics(kernel: object) -> KernelCharacteristics:
    """Accept either raw characteristics or any object exposing them via
    a ``characteristics`` attribute (e.g. :class:`repro.workloads.Kernel`)."""
    if isinstance(kernel, KernelCharacteristics):
        return kernel
    chars = getattr(kernel, "characteristics", None)
    if isinstance(chars, KernelCharacteristics):
        return chars
    raise TypeError(
        f"expected KernelCharacteristics or an object with a "
        f".characteristics attribute, got {type(kernel).__name__}"
    )


class TrinityAPU(HardwareBackend):
    """Simulated AMD Trinity A10-5800K APU (registered as ``"trinity"``).

    Parameters
    ----------
    noise:
        Measurement-noise model; defaults to realistic small noise.  Use
        :meth:`NoiseModel.exact` for deterministic measurements.
    power_constants:
        Power-model calibration constants (defaults match the paper's
        published power ranges).
    seed:
        Seed for the machine's internal measurement-noise stream.
    boost:
        Optional opportunistic-overclocking capability (paper Section
        VI; off by default, matching the paper's evaluated machine).
        When enabled, CPU configurations at the top software P-state
        boost toward the policy's frequency whenever thermal headroom
        allows.
    """

    name = "trinity"
    #: Static machine description (ladders, samples, design rows).
    descriptor = TRINITY_DESCRIPTOR

    def __init__(
        self,
        *,
        noise: NoiseModel | None = None,
        power_constants: PowerModelConstants | None = None,
        seed: int = 0,
        boost: BoostPolicy | None = None,
    ) -> None:
        self.noise = noise if noise is not None else NoiseModel()
        self.power_constants = (
            power_constants if power_constants is not None else PowerModelConstants()
        )
        self.boost = boost
        self.config_space = ConfigSpace()
        self._rng = np.random.default_rng(seed)
        # Optional fault injector (repro.faults): when attached, every
        # measured run passes through it — ground truth is unaffected.
        self.fault_injector = None
        # Ground truth is a pure function of (characteristics, config)
        # when boost is off, and the evaluation protocol revisits the
        # same pairs constantly (oracle frontiers, limiter traces), so
        # memoize it — process-wide, shared by every machine with equal
        # power constants.  Boost may carry thermal state, so it
        # bypasses the caches.
        self._time_cache: dict[tuple[KernelCharacteristics, Configuration], float]
        self._power_cache: dict[
            tuple[KernelCharacteristics, Configuration], PowerBreakdown
        ]
        self._time_cache, self._power_cache, self._counter_cache = _truth_caches(
            self.power_constants
        )
        # Fused measurement templates: (counter names, ground-truth
        # vector [t, cpu_w, nbgpu_w, counters...], lognormal mean/sigma
        # vectors) per (characteristics, config).  Lets :meth:`run`
        # replace three cache lookups and four RNG calls with one lookup
        # and one vectorized draw.  Only valid when every noise axis is
        # nonzero (a zero axis skips its draw in the scalar path, so the
        # fused draw would desynchronize the stream) — ``_noise_mode``
        # records which regime applies.
        self._meas_cache: dict[
            tuple[KernelCharacteristics, Configuration],
            tuple[tuple[str, ...], float, float, float, np.ndarray],
        ] = _template_cache(self.power_constants, self.noise)
        rels = (self.noise.time_rel, self.noise.power_rel, self.noise.counter_rel)
        if all(r > 0.0 for r in rels):
            self._noise_mode = "vector"
        elif all(r == 0.0 for r in rels):
            self._noise_mode = "exact"
        else:
            self._noise_mode = "scalar"
        # Lognormal parameters of each noise axis, precomputed exactly as
        # NoiseModel._scale computes them (python-float arithmetic).
        self._ln_time = (-0.5 * rels[0] * rels[0], rels[0])
        self._ln_power = (-0.5 * rels[1] * rels[1], rels[1])
        self._ln_counter = (-0.5 * rels[2] * rels[2], rels[2])

    # -- opportunistic boost (Section VI extension) ----------------------------

    def _boost_applies(self, cfg: Configuration) -> bool:
        return (
            self.boost is not None
            and cfg.device is Device.CPU
            and abs(cfg.cpu_freq_ghz - pstates.CPU_MAX_FREQ_GHZ) < 1e-9
        )

    def _boost_outcome(self, chars: KernelCharacteristics, cfg: Configuration):
        base_power = power_w(chars, cfg, self.power_constants).total_w
        # Frequency-sensitive share of runtime at the top P-state.
        compute = (1.0 - chars.mem_fraction) / amdahl_speedup(
            cfg.n_threads, chars.parallel_fraction
        )
        memory = chars.mem_fraction / memory_bandwidth_factor(cfg.n_threads)
        compute_fraction = compute / (compute + memory) if compute + memory else 0.0
        return self.boost.evaluate(base_power, cfg.n_threads, compute_fraction)

    # -- ground truth (oracle-only) ------------------------------------------

    def true_time_s(self, kernel: object, cfg: Configuration) -> float:
        """Deterministic execution time (seconds) of one invocation."""
        chars = _characteristics(kernel)
        if self.boost is None:
            t = self._time_cache.get((chars, cfg))
            if t is None:
                t = true_time_s(chars, cfg)
                self._time_cache[(chars, cfg)] = t
            return t
        t = true_time_s(chars, cfg)
        if self._boost_applies(cfg):
            t *= self._boost_outcome(chars, cfg).time_scale
        return t

    def true_power(self, kernel: object, cfg: Configuration) -> PowerBreakdown:
        """Deterministic per-plane average power."""
        chars = _characteristics(kernel)
        if self.boost is None:
            pb = self._power_cache.get((chars, cfg))
            if pb is None:
                pb = power_w(chars, cfg, self.power_constants)
                self._power_cache[(chars, cfg)] = pb
            return pb
        pb = power_w(chars, cfg, self.power_constants)
        if self._boost_applies(cfg):
            delta = self._boost_outcome(chars, cfg).power_delta_w
            pb = PowerBreakdown(
                cpu_plane_w=pb.cpu_plane_w + delta,
                nbgpu_plane_w=pb.nbgpu_plane_w,
            )
        return pb

    def true_total_power_w(self, kernel: object, cfg: Configuration) -> float:
        """Deterministic whole-chip average power (watts)."""
        return self.true_power(kernel, cfg).total_w

    def true_performance(self, kernel: object, cfg: Configuration) -> float:
        """Deterministic throughput (invocations per second)."""
        return 1.0 / self.true_time_s(kernel, cfg)

    def true_table(
        self, kernel: object
    ) -> dict[Configuration, tuple[float, float]]:
        """Per-configuration ground truth ``{config: (total power W,
        performance)}`` over the whole space, memoized process-wide.

        The evaluation harness judges every decision against ground
        truth; one dict lookup per record beats two memoized calls.
        Falls back to an uncached build when boost is enabled (thermal
        state may make truth impure).
        """
        chars = _characteristics(kernel)
        if self.boost is None:
            tables = _TRUTH_TABLE_CACHES.get(self.power_constants)
            if tables is None:
                tables = {}
                _TRUTH_TABLE_CACHES[self.power_constants] = tables
            table = tables.get(chars)
            if table is None:
                _TT_MISSES.inc()
                table = self._build_true_table(chars)
                tables[chars] = table
                _TT_SIZE.set(len(tables))
            else:
                _TT_HITS.inc()
            return table
        return self._build_true_table(chars)

    def _build_true_table(
        self, chars: KernelCharacteristics
    ) -> dict[Configuration, tuple[float, float]]:
        return {
            cfg: (
                self.true_power(chars, cfg).total_w,
                1.0 / self.true_time_s(chars, cfg),
            )
            for cfg in self.config_space
        }

    # -- fault injection (repro.faults) ----------------------------------------

    def inject_faults(self, faults) -> object | None:
        """Attach (or detach, with ``None``) a fault plan to the machine.

        ``faults`` may be a :class:`repro.faults.FaultPlan` or an
        existing :class:`repro.faults.FaultInjector` (to share one run
        clock across machines).  Returns the active injector.  Only
        *measured* runs are perturbed; ground truth stays exact, so
        oracle baselines and harness judgments are unaffected.
        """
        if faults is None:
            self.fault_injector = None
            return None
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(faults, FaultInjector):
            self.fault_injector = faults
        elif isinstance(faults, FaultPlan):
            self.fault_injector = FaultInjector(faults)
        else:
            raise TypeError(
                f"expected FaultPlan or FaultInjector, got {type(faults).__name__}"
            )
        return self.fault_injector

    # -- measurement -----------------------------------------------------------

    def run(
        self,
        kernel: object,
        cfg: Configuration,
        *,
        rng: np.random.Generator | None = None,
    ) -> Measurement:
        """Execute one kernel invocation and return a noisy measurement.

        With a fault injector attached (:meth:`inject_faults`), the run
        first passes through :meth:`repro.faults.FaultInjector.begin_run`
        — which may raise :class:`repro.faults.SampleRunError` or
        substitute the executed P-state — and the readings through the
        run's sensor faults.

        Parameters
        ----------
        kernel:
            :class:`KernelCharacteristics` or an object carrying them.
        cfg:
            Configuration to run on (must be in the machine's space).
        rng:
            Optional generator for the measurement noise; defaults to the
            machine's internal stream.
        """
        inj = self.fault_injector
        if inj is None:
            return self._run_clean(kernel, cfg, rng=rng)
        ctx = inj.begin_run(cfg)
        return ctx.apply(self._run_clean(kernel, ctx.config, rng=rng))

    def _run_clean(
        self,
        kernel: object,
        cfg: Configuration,
        *,
        rng: np.random.Generator | None = None,
    ) -> Measurement:
        """The fault-free measurement path (ground truth + noise)."""
        chars = _characteristics(kernel)

        if self.boost is None and self._noise_mode != "scalar":
            tpl = self._meas_cache.get((chars, cfg))
            if tpl is None:
                _TPL_MISSES.inc()
                if cfg not in self.config_space:
                    raise ValueError(
                        f"{cfg} is not a valid configuration for this machine"
                    )
                tpl = self._measurement_template(chars, cfg)
                self._meas_cache[(chars, cfg)] = tpl
                _TPL_SIZE.set(len(self._meas_cache))
            else:
                _TPL_HITS.inc()
            names, t_true, cpu_true, nbgpu_true, counter_vals = tpl
            if self._noise_mode == "vector":
                # Same draw sequence as the legacy scalar path — one time
                # draw, two power draws (a size-2 call consumes the
                # stream exactly like two scalar calls), then the counter
                # block — so measurements are bit-identical.
                r = rng if rng is not None else self._rng
                mt, st = self._ln_time
                t = t_true * r.lognormal(mean=mt, sigma=st)
                mp, sp = self._ln_power
                pw = r.lognormal(mean=mp, sigma=sp, size=2)
                mc, sc = self._ln_counter
                factors = r.lognormal(mean=mc, sigma=sc, size=counter_vals.size)
                return Measurement(
                    config=cfg,
                    time_s=float(t),
                    cpu_plane_w=float(cpu_true * pw[0]),
                    nbgpu_plane_w=float(nbgpu_true * pw[1]),
                    counters=dict(zip(names, (counter_vals * factors).tolist())),
                )
            # exact: measurements equal ground truth, no draws
            return Measurement(
                config=cfg,
                time_s=t_true,
                cpu_plane_w=cpu_true,
                nbgpu_plane_w=nbgpu_true,
                counters=dict(zip(names, counter_vals.tolist())),
            )

        if cfg not in self.config_space:
            raise ValueError(f"{cfg} is not a valid configuration for this machine")
        r = rng if rng is not None else self._rng
        t = self.noise.perturb_time(self.true_time_s(chars, cfg), r)
        pb = self.true_power(chars, cfg)
        cpu_w = self.noise.perturb_power(pb.cpu_plane_w, r)
        nbgpu_w = self.noise.perturb_power(pb.nbgpu_plane_w, r)
        true_counters = self._counter_cache.get((chars, cfg))
        if true_counters is None:
            true_counters = synthesize_counters(chars, cfg)
            self._counter_cache[(chars, cfg)] = true_counters
        counters = self.noise.perturb_counters(true_counters, r)
        return Measurement(
            config=cfg,
            time_s=t,
            cpu_plane_w=cpu_w,
            nbgpu_plane_w=nbgpu_w,
            counters=counters,
        )

    def _measurement_template(
        self, chars: KernelCharacteristics, cfg: Configuration
    ) -> tuple[tuple[str, ...], float, float, float, np.ndarray]:
        """Build the fused ground-truth template for one pair."""
        t = self.true_time_s(chars, cfg)
        pb = self.true_power(chars, cfg)
        true_counters = self._counter_cache.get((chars, cfg))
        if true_counters is None:
            true_counters = synthesize_counters(chars, cfg)
            self._counter_cache[(chars, cfg)] = true_counters
        counter_vals = np.array(list(true_counters.values()))
        counter_vals.setflags(write=False)
        return (
            tuple(true_counters),
            t,
            pb.cpu_plane_w,
            pb.nbgpu_plane_w,
            counter_vals,
        )

    def run_all_configs(
        self,
        kernel: object,
        *,
        rng: np.random.Generator | None = None,
    ) -> list[Measurement]:
        """Measure a kernel on every configuration (the paper's offline
        exhaustive characterization of training kernels)."""
        return [self.run(kernel, cfg, rng=rng) for cfg in self.config_space]

    # -- batch evaluation ------------------------------------------------------

    def batch_rate_power(
        self,
        kernel: object,
        is_gpu: np.ndarray,
        cpu_freq_ghz: np.ndarray,
        n_threads: np.ndarray,
        gpu_freq_ghz: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ground truth via :mod:`repro.hardware.batch`
        (bit-identical to the scalar calls; boost is not modeled on the
        batch path)."""
        return batch_true_rate_power(
            _characteristics(kernel),
            is_gpu,
            cpu_freq_ghz,
            n_threads,
            gpu_freq_ghz,
            self.power_constants,
        )


register_backend(
    "trinity",
    lambda *, seed=0, noise=None: TrinityAPU(seed=seed, noise=noise),
    TRINITY_DESCRIPTOR,
)
