"""Latent kernel characteristics and the ground-truth timing model.

The real paper measured OpenMP/OpenCL kernels on silicon.  Our substitute
(see DESIGN.md Section 2) gives every kernel a vector of *latent*
characteristics — quantities a kernel objectively has but that the
modeling pipeline is never shown directly — and derives execution time on
any configuration analytically from them:

CPU time (Amdahl × roofline decomposition)::

    t_cpu(f, n) = work * [ (1 - beta) / (amdahl(n) * s(f))  +  beta / bw(n) ]

    amdahl(n) = 1 / ((1 - p) + p / n)           thread-scaling of compute
    s(f)      = f / f_max                       frequency-scaling of compute
    bw(n)     = n / (1 + c * (n - 1))           saturating memory bandwidth

where ``beta`` is the memory-bound fraction: memory time does not scale
with CPU frequency (the classic reason DVFS is cheap for memory-bound
codes) and saturates with thread count.

GPU time (offload + host-side launch overhead)::

    t_gpu(fg, fc) = (work / g) * [ (1 - beta_g) * (fg_max / fg) + beta_g ]
                    + launch_s * (f_max / fc)

``g`` is the kernel's GPU affinity — its GPU speedup over the
single-thread max-frequency CPU execution; ``beta_g`` is the GPU
memory-bound fraction, which flattens the benefit of higher GPU P-states
(Table I shows a kernel that gains nothing from the top GPU P-state);
``launch_s`` is driver/launch overhead executed on the *host* CPU, which
is why GPU-device frontier configurations differ in CPU frequency.

All characteristic values live in documented ranges validated at
construction, so workload generators cannot silently produce
out-of-model kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.hardware import pstates
from repro.hardware.config import Configuration, Device

__all__ = [
    "KernelCharacteristics",
    "amdahl_speedup",
    "cpu_time_s",
    "gpu_busy_fraction",
    "gpu_time_s",
    "memory_bandwidth_factor",
    "true_time_s",
]

#: Memory-bandwidth contention coefficient: bw(4) ~ 2.29x one thread.
BW_CONTENTION: float = 0.25


@dataclass(frozen=True)
class KernelCharacteristics:
    """Latent, ground-truth properties of one computational kernel.

    Attributes
    ----------
    work_s:
        Execution time (seconds) of the kernel on the reference CPU
        configuration: one thread at maximum frequency with no memory
        stalls; all other times are derived from it.
    parallel_fraction:
        Amdahl parallel fraction ``p`` of the compute part, in
        ``[0, 1]``.
    mem_fraction:
        CPU memory-bound fraction ``beta`` in ``[0, 1)``: share of
        single-thread runtime stalled on memory at max frequency.
    gpu_affinity:
        GPU speedup ``g`` over the reference CPU execution (``> 0``).
        Values below ~1 mean the kernel is a poor GPU fit.
    gpu_mem_fraction:
        GPU memory-bound fraction ``beta_g`` in ``[0, 1)``; high values
        flatten GPU P-state scaling.
    launch_overhead_s:
        Host-side kernel-launch/driver time per invocation at maximum
        host CPU frequency (scales inversely with host frequency).
    activity:
        Switching-activity factor scaling dynamic power (dimensionless,
        ``(0, 2]``); compute-dense kernels burn more power per cycle.
    gpu_activity:
        GPU switching-activity factor (same convention).
    vector_fraction:
        Fraction of instructions that are vector ops, in ``[0, 1]``
        (feeds counters and CPU activity).
    branch_rate:
        Conditional branches per instruction, in ``[0, 0.5]``.
    l1_miss_rate:
        L1D misses per instruction, in ``[0, 0.2]``.
    l2_miss_ratio:
        Fraction of L1 misses that also miss L2, in ``[0, 1]``.
    tlb_miss_rate:
        TLB misses per instruction, in ``[0, 0.02]``.
    dram_intensity:
        DRAM accesses per unit work (dimensionless, ``[0, 1]``); drives
        northbridge power.
    """

    work_s: float
    parallel_fraction: float
    mem_fraction: float
    gpu_affinity: float
    gpu_mem_fraction: float
    launch_overhead_s: float
    activity: float
    gpu_activity: float
    vector_fraction: float
    branch_rate: float
    l1_miss_rate: float
    l2_miss_ratio: float
    tlb_miss_rate: float
    dram_intensity: float

    _RANGES = {
        "work_s": (1e-6, 1e3),
        "parallel_fraction": (0.0, 1.0),
        "mem_fraction": (0.0, 0.999),
        "gpu_affinity": (1e-3, 100.0),
        "gpu_mem_fraction": (0.0, 0.999),
        "launch_overhead_s": (0.0, 10.0),
        "activity": (0.05, 2.0),
        "gpu_activity": (0.05, 2.0),
        "vector_fraction": (0.0, 1.0),
        "branch_rate": (0.0, 0.5),
        "l1_miss_rate": (0.0, 0.2),
        "l2_miss_ratio": (0.0, 1.0),
        "tlb_miss_rate": (0.0, 0.02),
        "dram_intensity": (0.0, 1.0),
    }

    def __post_init__(self) -> None:
        values = []
        for f in fields(self):
            lo, hi = self._RANGES[f.name]
            v = getattr(self, f.name)
            if not lo <= v <= hi:
                raise ValueError(
                    f"{f.name}={v} outside valid range [{lo}, {hi}]"
                )
            values.append(v)
        # Characteristics key the machine's ground-truth memo caches,
        # hit once per simulated measurement; the generated dataclass
        # hash would rebuild this 14-tuple on every lookup.
        object.__setattr__(self, "_hash", hash(tuple(values)))

    def __hash__(self) -> int:
        return self._hash

    # Keep the cached hash out of pickles (derived state; payloads stay
    # byte-identical to pre-cache pickles) and rebuild it on load.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_hash"]
        return state

    def __setstate__(self, state: dict) -> None:
        for k, v in state.items():
            object.__setattr__(self, k, v)
        object.__setattr__(
            self,
            "_hash",
            hash(tuple(getattr(self, f.name) for f in fields(self))),
        )


def amdahl_speedup(n_threads: int, parallel_fraction: float) -> float:
    """Amdahl's-law speedup of the compute part at ``n_threads``."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / n_threads)


def memory_bandwidth_factor(n_threads: int) -> float:
    """Effective memory bandwidth relative to one thread.

    Saturating: ``bw(n) = n / (1 + c (n-1))`` with contention ``c`` —
    additional threads help until the shared memory controller saturates
    (the CPU and GPU share it on Trinity).
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    return n_threads / (1.0 + BW_CONTENTION * (n_threads - 1))


def cpu_time_s(k: KernelCharacteristics, freq_ghz: float, n_threads: int) -> float:
    """Ground-truth CPU execution time of one kernel invocation."""
    s = freq_ghz / pstates.CPU_MAX_FREQ_GHZ
    compute = (1.0 - k.mem_fraction) / (
        amdahl_speedup(n_threads, k.parallel_fraction) * s
    )
    memory = k.mem_fraction / memory_bandwidth_factor(n_threads)
    return k.work_s * (compute + memory)


def gpu_time_s(
    k: KernelCharacteristics, gpu_freq_ghz: float, host_cpu_freq_ghz: float
) -> float:
    """Ground-truth GPU execution time (device time + host launch time)."""
    fg = gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
    device = (k.work_s / k.gpu_affinity) * (
        (1.0 - k.gpu_mem_fraction) / fg + k.gpu_mem_fraction
    )
    launch = k.launch_overhead_s * (
        pstates.CPU_MAX_FREQ_GHZ / host_cpu_freq_ghz
    )
    return device + launch


def gpu_busy_fraction(k: KernelCharacteristics, gpu_freq_ghz: float) -> float:
    """Fraction of GPU device time spent computing (vs memory stalls).

    Used by the power model: a memory-bound GPU kernel at a high P-state
    mostly stalls, so its dynamic power grows sub-linearly with
    frequency — matching the paper's nearly flat GPU power ladder
    (Table I: 24.2 W -> 25.2 W across a 2x GPU frequency step).
    """
    fg = gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
    compute = (1.0 - k.gpu_mem_fraction) / fg
    return compute / (compute + k.gpu_mem_fraction)


def true_time_s(k: KernelCharacteristics, cfg: Configuration) -> float:
    """Ground-truth execution time of ``k`` on configuration ``cfg``."""
    if cfg.device is Device.CPU:
        return cpu_time_s(k, cfg.cpu_freq_ghz, cfg.n_threads)
    return gpu_time_s(k, cfg.gpu_freq_ghz, cfg.cpu_freq_ghz)
