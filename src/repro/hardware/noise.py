"""Measurement-noise models.

Real measurements are imperfect: the paper integrates an on-chip power
estimate sampled at 1 kHz (Section IV-C, overhead < 10 %), and run-to-run
timing varies with OS noise.  The simulator separates *ground truth*
(deterministic, used by the oracle) from *measurements* (noisy, the only
thing the modeling pipeline may see).

Noise is multiplicative log-normal — strictly positive, unbiased at
first order, with configurable relative magnitude.  All draws come from
an explicit :class:`numpy.random.Generator`, so every experiment in this
package is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Relative noise magnitudes applied to measured quantities.

    Attributes
    ----------
    time_rel:
        Relative standard deviation of execution-time measurements.
    power_rel:
        Relative standard deviation of integrated power estimates.
    counter_rel:
        Relative standard deviation of normalized counter metrics.
    """

    time_rel: float = 0.015
    power_rel: float = 0.02
    counter_rel: float = 0.03

    def __post_init__(self) -> None:
        for name in ("time_rel", "power_rel", "counter_rel"):
            v = getattr(self, name)
            if not 0.0 <= v < 0.5:
                raise ValueError(f"{name}={v} must be in [0, 0.5)")

    @staticmethod
    def exact() -> "NoiseModel":
        """A noise-free model (measurements equal ground truth)."""
        return NoiseModel(time_rel=0.0, power_rel=0.0, counter_rel=0.0)

    def _scale(self, value: float, rel: float, rng: np.random.Generator) -> float:
        if rel == 0.0:
            return value
        # Log-normal with mean ~1: sigma of underlying normal = rel.
        return float(value * rng.lognormal(mean=-0.5 * rel * rel, sigma=rel))

    def perturb_time(self, t: float, rng: np.random.Generator) -> float:
        """Noisy observation of an execution time (seconds)."""
        return self._scale(t, self.time_rel, rng)

    def perturb_power(self, p: float, rng: np.random.Generator) -> float:
        """Noisy observation of an average power (watts)."""
        return self._scale(p, self.power_rel, rng)

    def perturb_counters(
        self, counters: dict[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        """Noisy observation of a counter-metric dict (order-stable).

        One vectorized draw per dict; ``Generator`` produces the same
        stream for ``lognormal(size=n)`` as for ``n`` scalar draws, so
        this is bit-identical to perturbing each counter in turn.
        """
        rel = self.counter_rel
        if rel == 0.0:
            return dict(counters)
        factors = rng.lognormal(mean=-0.5 * rel * rel, sigma=rel, size=len(counters))
        return {
            name: float(v * f)
            for (name, v), f in zip(counters.items(), factors)
        }
