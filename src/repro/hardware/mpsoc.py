"""Simulated technology-node-scaled MPSoC (lumos-style).

Models the machine class of the lumos dark/dim-silicon studies (see
SNIPPETS.md): one fast serial core plus a sea of small *throughput*
cores that can be run "dim" — many cores at low frequency and
near-threshold voltage — with the whole design transplantable across
technology nodes via per-node voltage/frequency/power scaling factors.

Mapping onto the reproduction's two-block machine shape
(:mod:`repro.hardware.backend`):

* **primary block** — the serial core: an out-of-order core with a
  6-point DVFS ladder and 2-way SMT;
* **secondary block** — the throughput-core array: 8-64 active small
  cores on a 4-point DVFS ladder whose lowest states sit near the
  threshold voltage (dim silicon).

Technology scaling follows the lumos idiom: the machine is calibrated
at a 45 nm reference; a target node scales every frequency by
``FREQ_SCALE[node]`` and every power plane by ``POWER_SCALE[node]``
(the combined dynamic-capacitance and supply-voltage shrink, with
``VDD_SCALE`` recording the voltage component).  Because both scalings
are *uniform* over the configuration space, a kernel's
Pareto-dominance ordering is preserved across nodes exactly — the
property suite pins this.

DVFS points are expressed *relative* to each block's nominal state and
must sit inside the lumos-style bounds ``[v_th / (VDD * vdd_scale),
DVFS_UPPER_BOUND]`` at every supported node; the constructor enforces
this, so near-threshold states are reachable but never below
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.backend import (
    AnalyticalBackend,
    BackendDescriptor,
    BlockDescriptor,
    characteristics_of,
    register_backend,
)
from repro.hardware.kernelmodel import KernelCharacteristics, amdahl_speedup
from repro.hardware.noise import NoiseModel
from repro.hardware.power import PowerBreakdown

__all__ = [
    "MPSoCConstants",
    "MPSoC",
    "MPSOC_DESCRIPTOR",
    "TECH_NODES_NM",
    "FREQ_SCALE",
    "VDD_SCALE",
    "POWER_SCALE",
    "dvfs_bounds",
    "mpsoc_descriptor",
]

#: Supported technology nodes (nm), newest last.
TECH_NODES_NM: tuple[int, ...] = (45, 32, 22, 16)

#: Per-node nominal frequency scaling (45 nm = 1.0).
FREQ_SCALE: dict[int, float] = {45: 1.0, 32: 1.33, 22: 1.77, 16: 2.22}

#: Per-node nominal supply-voltage scaling.
VDD_SCALE: dict[int, float] = {45: 1.0, 32: 0.93, 22: 0.88, 16: 0.84}

#: Per-node power scaling of one core at nominal VF (capacitance shrink
#: x vdd^2; conservative-roadmap flavored).
POWER_SCALE: dict[int, float] = {45: 1.0, 32: 0.72, 22: 0.52, 16: 0.39}

#: Nominal supply voltage (V) at the 45 nm reference.
VDD_NOMINAL_V: float = 1.0

#: Threshold voltage (V) — the floor below which dim states may not go.
V_THRESHOLD: float = 0.22

#: Upper relative DVFS bound (overdrive ceiling).
DVFS_UPPER_BOUND: float = 1.25

#: Relative DVFS ladders (fraction of the block's nominal frequency).
SERIAL_DVFS: tuple[float, ...] = (0.5, 0.65, 0.8, 0.9, 1.0, 1.1)
TPUT_DVFS: tuple[float, ...] = (0.4, 0.6, 0.8, 1.0)

#: Nominal block frequencies (GHz) at the 45 nm reference.
SERIAL_F0_GHZ: float = 2.0
TPUT_F0_GHZ: float = 1.0

#: Relative IPC of the serial core and of one throughput core.
SERIAL_IPC: float = 1.3
#: SMT uplift per extra serial hardware thread (scaled by the kernel's
#: parallel fraction).
SMT_UPLIFT: float = 0.35
#: Throughput-array bandwidth contention per active core.
TPUT_BW_CONTENTION: float = 0.02
#: Fraction of a kernel's launch/setup cost paid to dispatch work onto
#: the throughput array.
DISPATCH_SCALE: float = 0.6


def dvfs_bounds(tech_nm: int) -> tuple[float, float]:
    """The lumos-style relative DVFS window at a node:
    ``(v_th / vdd(node), DVFS_UPPER_BOUND)``."""
    return (V_THRESHOLD / (VDD_NOMINAL_V * VDD_SCALE[tech_nm]), DVFS_UPPER_BOUND)


@dataclass(frozen=True)
class MPSoCConstants:
    """Calibration constants of the MPSoC machine model.

    ``tech_nm`` is part of the record, so machines at different nodes
    key disjoint ground-truth caches automatically.
    """

    tech_nm: int = 22
    serial_static_base_w: float = 0.9
    serial_static_v2_w: float = 1.6
    serial_dyn_per_thread_w: float = 3.2
    serial_host_w: float = 0.7
    tput_static_base_w: float = 0.6
    tput_static_v2_w: float = 1.1
    tput_dyn_per_core_w: float = 0.13
    tput_idle_w: float = 0.5
    uncore_static_w: float = 1.1
    dram_max_w: float = 3.2

    def __post_init__(self) -> None:
        if self.tech_nm not in TECH_NODES_NM:
            raise ValueError(
                f"unsupported node {self.tech_nm} nm; "
                f"supported: {TECH_NODES_NM}"
            )


def _ladder_ghz(rel: tuple[float, ...], f0: float, tech_nm: int) -> tuple[float, ...]:
    """Absolute GHz ladder of a block at a node."""
    lo, hi = dvfs_bounds(tech_nm)
    for r in rel:
        if not lo <= r <= hi:
            raise ValueError(
                f"relative DVFS point {r} outside node-{tech_nm} bounds "
                f"[{lo:.3f}, {hi}]"
            )
    scale = FREQ_SCALE[tech_nm]
    return tuple(r * f0 * scale for r in rel)


def mpsoc_descriptor(tech_nm: int = 22) -> BackendDescriptor:
    """Descriptor of the MPSoC at one technology node.

    The voltage curves are expressed in *relative* volts (fraction of
    the node's nominal VDD as an affine function of the relative DVFS
    point); the throughput curve's low intercept is the dim-silicon
    near-threshold regime.
    """
    scale = FREQ_SCALE[tech_nm]
    # v = v0 + v1 * f_ghz must reproduce v_rel = a + b * f_rel with
    # f_ghz = f_rel * f0 * scale, so fold the frequency scaling into v1.
    return BackendDescriptor(
        name="mpsoc" if tech_nm == 22 else f"mpsoc{tech_nm}",
        primary=BlockDescriptor(
            label="serial",
            freqs_ghz=_ladder_ghz(SERIAL_DVFS, SERIAL_F0_GHZ, tech_nm),
            thread_counts=(1, 2),
            v0=0.55,
            v1=0.45 / (SERIAL_F0_GHZ * scale),
        ),
        secondary=BlockDescriptor(
            label="tput",
            freqs_ghz=_ladder_ghz(TPUT_DVFS, TPUT_F0_GHZ, tech_nm),
            thread_counts=(8, 16, 32, 64),
            v0=0.42,
            v1=0.58 / (TPUT_F0_GHZ * scale),
        ),
    )


#: The default machine's descriptor (22 nm, registered as ``"mpsoc"``).
MPSOC_DESCRIPTOR = mpsoc_descriptor(22)

# Per-node descriptors are cached so configurations of equal nodes
# compare and hash identically across machine instances.
_DESCRIPTORS: dict[int, BackendDescriptor] = {22: MPSOC_DESCRIPTOR}


def _descriptor(tech_nm: int) -> BackendDescriptor:
    desc = _DESCRIPTORS.get(tech_nm)
    if desc is None:
        desc = _DESCRIPTORS.setdefault(tech_nm, mpsoc_descriptor(tech_nm))
    return desc


def _bw_factor(m: float) -> float:
    """Effective bandwidth of ``m`` active throughput cores."""
    return m / (1.0 + TPUT_BW_CONTENTION * (m - 1))


class MPSoC(AnalyticalBackend):
    """The simulated technology-node-scaled MPSoC (registered as
    ``"mpsoc"`` at its default 22 nm node).

    The analytical model is evaluated at the 45 nm reference in
    *relative* DVFS coordinates (recovered from the ladder index, so
    base values are bit-identical across nodes) and then scaled
    uniformly: time by ``1 / FREQ_SCALE[node]``, both power planes by
    ``POWER_SCALE[node]``.
    """

    name = "mpsoc"

    def __init__(
        self,
        *,
        noise: NoiseModel | None = None,
        constants: MPSoCConstants | None = None,
        tech_nm: int | None = None,
        seed: int = 0,
    ) -> None:
        if constants is None:
            constants = MPSoCConstants(
                tech_nm=tech_nm if tech_nm is not None else 22
            )
        elif tech_nm is not None and tech_nm != constants.tech_nm:
            raise ValueError("tech_nm conflicts with constants.tech_nm")
        super().__init__(
            _descriptor(constants.tech_nm), constants, noise=noise, seed=seed
        )
        self._rel_serial = {
            f: SERIAL_DVFS[i]
            for i, f in enumerate(self.descriptor.primary.freqs_ghz)
        }
        self._rel_tput = {
            f: TPUT_DVFS[i]
            for i, f in enumerate(self.descriptor.secondary.freqs_ghz)
        }

    # -- relative-coordinate model (45 nm reference) ------------------------

    @staticmethod
    def _serial_time_base(k: KernelCharacteristics, s: float, n: int) -> float:
        smt = 1.0 + SMT_UPLIFT * k.parallel_fraction * (n - 1)
        compute = (1.0 - k.mem_fraction) / (smt * s * SERIAL_IPC)
        return k.work_s * (compute + k.mem_fraction)

    @staticmethod
    def _tput_time_base(k: KernelCharacteristics, g: float, m: int) -> float:
        # Parallel efficiency normalized to the full 64-core array, so a
        # fully-dimmed full array at nominal frequency matches the
        # kernel's intrinsic throughput affinity.
        eff = amdahl_speedup(m, k.parallel_fraction) / amdahl_speedup(
            64, k.parallel_fraction
        )
        traffic = _bw_factor(m) / _bw_factor(64)
        device = (k.work_s / k.gpu_affinity) * (
            (1.0 - k.gpu_mem_fraction) / (g * eff)
            + k.gpu_mem_fraction / traffic
        )
        return device + DISPATCH_SCALE * k.launch_overhead_s

    def _planes_base(
        self, k: KernelCharacteristics, cfg
    ) -> tuple[float, float]:
        """(primary plane, secondary plane) at the 45 nm reference."""
        c = self.power_constants
        if cfg.is_gpu:
            g = self._rel_tput[cfg.gpu_freq_ghz]
            m = cfg.n_threads
            v = 0.42 + 0.58 * g
            tput = (
                c.tput_static_base_w
                + c.tput_static_v2_w * v * v
                + m * c.tput_dyn_per_core_w * k.gpu_activity * g * v * v
            )
            traffic = _bw_factor(m) / _bw_factor(64)
            uncore = c.uncore_static_w + c.dram_max_w * k.dram_intensity * traffic
            return c.serial_host_w, tput + uncore
        s = self._rel_serial[cfg.cpu_freq_ghz]
        n = cfg.n_threads
        act = k.activity * (1.0 + 0.25 * k.vector_fraction)
        v = 0.55 + 0.45 * s
        serial = (
            c.serial_static_base_w
            + c.serial_static_v2_w * v * v
            + n * c.serial_dyn_per_thread_w * act * s * v * v
        )
        uncore = c.uncore_static_w + c.dram_max_w * k.dram_intensity
        return serial, c.tput_idle_w + uncore

    # -- node-scaled physics ------------------------------------------------

    def _model_time_s(self, k: KernelCharacteristics, cfg) -> float:
        if cfg.is_gpu:
            base = self._tput_time_base(
                k, self._rel_tput[cfg.gpu_freq_ghz], cfg.n_threads
            )
        else:
            base = self._serial_time_base(
                k, self._rel_serial[cfg.cpu_freq_ghz], cfg.n_threads
            )
        return base / FREQ_SCALE[self.power_constants.tech_nm]

    def _model_power(self, k: KernelCharacteristics, cfg) -> PowerBreakdown:
        primary, secondary = self._planes_base(k, cfg)
        scale = POWER_SCALE[self.power_constants.tech_nm]
        return PowerBreakdown(
            cpu_plane_w=primary * scale, nbgpu_plane_w=secondary * scale
        )

    # -- batch evaluation ---------------------------------------------------

    def batch_rate_power(
        self,
        kernel: object,
        is_gpu: np.ndarray,
        cpu_freq_ghz: np.ndarray,
        n_threads: np.ndarray,
        gpu_freq_ghz: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ground truth, bit-identical to the scalar model.

        Relative DVFS points are recovered by ladder lookup (exactly as
        the scalar path does), then evaluated elementwise in the same
        operation order.
        """
        k = characteristics_of(kernel)
        c = self.power_constants
        s = np.array([self._rel_serial.get(float(f), 1.0) for f in cpu_freq_ghz])
        g = np.array([self._rel_tput.get(float(f), 1.0) for f in gpu_freq_ghz])
        n = n_threads

        smt = 1.0 + SMT_UPLIFT * k.parallel_fraction * (n - 1)
        compute_s = (1.0 - k.mem_fraction) / (smt * s * SERIAL_IPC)
        t_serial = k.work_s * (compute_s + k.mem_fraction)
        eff = (
            1.0 / ((1.0 - k.parallel_fraction) + k.parallel_fraction / n)
        ) / amdahl_speedup(64, k.parallel_fraction)
        traffic = (n / (1.0 + TPUT_BW_CONTENTION * (n - 1))) / _bw_factor(64)
        t_tput = (k.work_s / k.gpu_affinity) * (
            (1.0 - k.gpu_mem_fraction) / (g * eff)
            + k.gpu_mem_fraction / traffic
        ) + DISPATCH_SCALE * k.launch_overhead_s
        t = (
            np.where(is_gpu, t_tput, t_serial)
            / FREQ_SCALE[c.tech_nm]
        )

        v_t = 0.42 + 0.58 * g
        tput = (
            c.tput_static_base_w
            + c.tput_static_v2_w * v_t * v_t
            + n * c.tput_dyn_per_core_w * k.gpu_activity * g * v_t * v_t
        )
        uncore_t = c.uncore_static_w + c.dram_max_w * k.dram_intensity * traffic
        act = k.activity * (1.0 + 0.25 * k.vector_fraction)
        v_s = 0.55 + 0.45 * s
        serial = (
            c.serial_static_base_w
            + c.serial_static_v2_w * v_s * v_s
            + n * c.serial_dyn_per_thread_w * act * s * v_s * v_s
        )
        uncore_s = c.uncore_static_w + c.dram_max_w * k.dram_intensity
        scale = POWER_SCALE[c.tech_nm]
        power = np.where(
            is_gpu,
            c.serial_host_w * scale + (tput + uncore_t) * scale,
            serial * scale + (c.tput_idle_w + uncore_s) * scale,
        )
        return 1.0 / t, power


register_backend(
    "mpsoc",
    lambda *, seed=0, noise=None: MPSoC(seed=seed, noise=noise),
    MPSOC_DESCRIPTOR,
)
