"""Performance-counter synthesis.

The paper collects, per kernel execution (Section III-B): L2 and L1 data
cache misses, TLB misses, conditional branches, vector instructions,
stalled core cycles, total core cycles, reference cycles, idle FPU
cycles, interrupts, and DRAM accesses — all *normalized* to cycles,
reference cycles, or instructions.  Those normalized counters (plus the
two power-domain readings) are the only features its classification tree
may use to assign an unseen kernel to a cluster.

On our simulated machine, counters are derived from the same latent
:class:`~repro.hardware.kernelmodel.KernelCharacteristics` that drive the
timing and power models, with configuration-dependent effects (cache
sharing raises L2 misses with thread count; stall fraction follows the
memory-boundedness and bandwidth contention of the timing model).  This
preserves the causal structure the tree exploits on real hardware:
counters correlate with — but do not reveal — the kernel's
power/performance scaling behaviour.

The synthesized values are deterministic; measurement noise is applied by
the profiling layer, not here.
"""

from __future__ import annotations

from repro.hardware import pstates
from repro.hardware.config import Configuration, Device
from repro.hardware.kernelmodel import (
    KernelCharacteristics,
    memory_bandwidth_factor,
)

__all__ = ["COUNTER_NAMES", "synthesize_counters"]

#: Names of the normalized counter metrics reported per execution.
COUNTER_NAMES: tuple[str, ...] = (
    "l1_miss_per_inst",
    "l2_miss_per_inst",
    "tlb_miss_per_inst",
    "branch_per_inst",
    "vector_per_inst",
    "stall_frac",
    "idle_fpu_frac",
    "dram_per_cycle",
    "ipc",
    "interrupts_per_mcycle",
)


def synthesize_counters(k: KernelCharacteristics, cfg) -> dict[str, float]:
    """Ground-truth normalized counter metrics for ``k`` on ``cfg``.

    Returns a dict keyed by :data:`COUNTER_NAMES`.  All values are
    normalized rates (per instruction, per cycle, or fractions), like the
    paper's normalization of raw counts.

    The synthesis is descriptor-parametrized: frequency and thread count
    normalize to the primary block's ladder maxima, which for Trinity
    :class:`Configuration`\\ s are exactly the historical
    ``pstates.CPU_MAX_FREQ_GHZ`` / ``pstates.N_CORES`` constants, so the
    Trinity values are bit-identical to the pre-backend code.
    """
    if isinstance(cfg, Configuration):
        max_freq_ghz = pstates.CPU_MAX_FREQ_GHZ
        max_units = pstates.N_CORES
    else:
        from repro.hardware.backend import descriptor_of_config

        primary = descriptor_of_config(cfg).primary
        max_freq_ghz = primary.max_freq_ghz
        max_units = primary.max_threads
    if cfg.device is Device.CPU:
        n = cfg.n_threads
        # Shared L2 within a PileDriver module: co-resident threads evict
        # each other, raising L2 (and downstream) miss rates.
        sharing = 1.0 + 0.15 * (n - 1)
        l1 = k.l1_miss_rate * sharing
        l2 = l1 * k.l2_miss_ratio * sharing
        # Stall fraction mirrors the timing model's memory share at this
        # thread count and frequency.
        s = cfg.cpu_freq_ghz / max_freq_ghz
        mem_time = k.mem_fraction / memory_bandwidth_factor(n)
        comp_time = (1.0 - k.mem_fraction) / s
        stall = mem_time / (mem_time + comp_time)
        ipc = (1.0 - stall) * (1.0 + 1.5 * k.vector_fraction)
        dram_per_cycle = (
            k.dram_intensity
            * memory_bandwidth_factor(n)
            / memory_bandwidth_factor(max_units)
            / s
        )
    else:
        # Host-side counters while the GPU executes: the driver thread is
        # branchy, scalar, and cache-light; DRAM traffic reflects the
        # GPU's appetite on the shared controller.
        l1 = 0.2 * k.l1_miss_rate
        l2 = l1 * 0.5 * k.l2_miss_ratio
        stall = 0.8 * k.gpu_mem_fraction
        ipc = 0.4
        dram_per_cycle = 1.5 * k.dram_intensity
    return {
        "l1_miss_per_inst": l1,
        "l2_miss_per_inst": l2,
        "tlb_miss_per_inst": k.tlb_miss_rate,
        "branch_per_inst": k.branch_rate
        if cfg.device is Device.CPU
        else min(0.5, k.branch_rate + 0.1),
        "vector_per_inst": k.vector_fraction if cfg.device is Device.CPU else 0.02,
        "stall_frac": stall,
        "idle_fpu_frac": 1.0 - k.vector_fraction * (0.9 if not cfg.is_gpu else 0.05),
        "dram_per_cycle": dram_per_cycle,
        "ipc": ipc,
        "interrupts_per_mcycle": 0.5 if cfg.device is Device.CPU else 2.0,
    }
