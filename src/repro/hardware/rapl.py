"""RAPL-style hardware frequency limiting (simulated).

The paper compares its model against "state-of-the-practice" power
limiting based on Intel RAPL (Section V-A).  RAPL enforces a power cap by
dynamically lowering the processor frequency.  The paper's Trinity test
system has no RAPL, so the authors *simulated* frequency limiting on both
the CPU and GPU — and so do we, with the same semantics:

* the limiter observes **measured** power (noisy, like real RAPL energy
  counters) and steps the controlled device's P-state down until the cap
  is met or the lowest P-state is reached;
* it can only change *frequency* — never the device or the thread count.
  That limitation is precisely why frequency limiting alone fails on
  kernels like LU Small (Section V-D): meeting some caps requires
  switching device or dropping cores;
* for GPU configurations, once the GPU P-state is settled and headroom
  remains, the host CPU frequency is raised as far as the cap allows
  (the paper's GPU+FL refinement); conversely if the GPU floor still
  violates the cap, the host CPU is stepped down too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import respects_cap
from repro.faults.errors import SampleRunError
from repro.hardware import pstates
from repro.hardware.apu import Measurement, TrinityAPU, _characteristics
from repro.hardware.config import Configuration, Device
from repro.telemetry import counter

__all__ = ["FrequencyLimiter", "LimiterResult"]

# Degradation accounting (docs/ROBUSTNESS.md): control-loop readings
# the limiter had to treat as worst-case because the sensor dropped out
# (non-finite power) or the run failed outright.
_WORST_CASE_READS = counter("faults.limiter.worst_case_reads")
_FAILED_RUNS = counter("faults.limiter.failed_runs")


@dataclass(frozen=True)
class LimiterResult:
    """Outcome of a frequency-limiting control episode.

    Attributes
    ----------
    final_config:
        Configuration the limiter settled on.
    final_measurement:
        The measurement taken at the final configuration.  When that
        run failed outright (injected fault), a placeholder with NaN
        readings at the final configuration.
    met_cap:
        Whether the final *observed* power is within the cap (shared
        :data:`repro.constants.CAP_EPSILON` tolerance).  Worst-case
        reads never count as meeting the cap.
    trace:
        Every (configuration, observed total power) the limiter
        visited, in order — useful for inspecting convergence.
        Observed power is ``inf`` for a dropped-out or failed reading
        (the worst-case assumption the controller acted on).
    """

    final_config: Configuration
    final_measurement: Measurement
    met_cap: bool
    trace: tuple[tuple[Configuration, float], ...] = field(default_factory=tuple)

    @property
    def steps(self) -> int:
        """Number of control steps taken (measurements minus one)."""
        return max(0, len(self.trace) - 1)


def _step_down_cpu(cfg: Configuration) -> Configuration | None:
    i = pstates.cpu_pstate_index(cfg.cpu_freq_ghz)
    if i == 0:
        return None
    f = pstates.CPU_FREQS_GHZ[i - 1]
    if cfg.device is Device.CPU:
        return Configuration.cpu(f, cfg.n_threads)
    return Configuration.gpu(cfg.gpu_freq_ghz, f)


def _step_up_cpu(cfg: Configuration) -> Configuration | None:
    i = pstates.cpu_pstate_index(cfg.cpu_freq_ghz)
    if i == len(pstates.CPU_FREQS_GHZ) - 1:
        return None
    f = pstates.CPU_FREQS_GHZ[i + 1]
    if cfg.device is Device.CPU:
        return Configuration.cpu(f, cfg.n_threads)
    return Configuration.gpu(cfg.gpu_freq_ghz, f)


def _step_down_gpu(cfg: Configuration) -> Configuration | None:
    i = pstates.gpu_pstate_index(cfg.gpu_freq_ghz)
    if i == 0:
        return None
    return Configuration.gpu(pstates.GPU_FREQS_GHZ[i - 1], cfg.cpu_freq_ghz)


class FrequencyLimiter:
    """Closed-loop P-state controller enforcing a power cap.

    Parameters
    ----------
    apu:
        The machine to control.  The limiter only ever sees
        *measurements* from :meth:`TrinityAPU.run`.
    """

    def __init__(self, apu: TrinityAPU) -> None:
        self.apu = apu

    def _observe(
        self,
        kernel: object,
        cfg: Configuration,
        rng: np.random.Generator | None,
    ) -> tuple[Measurement | None, float]:
        """One control-loop reading: ``(measurement, observed power)``.

        Real RAPL firmware cannot crash because an energy counter
        glitched — a dropped-out sensor (non-finite power) or a failed
        run reads as ``inf``, the worst case, so the controller steps
        down instead of silently accepting an unknown draw.
        """
        try:
            m = self.apu.run(kernel, cfg, rng=rng)
        except SampleRunError:
            _FAILED_RUNS.inc()
            return None, math.inf
        power = m.total_power_w
        if not math.isfinite(power):
            _WORST_CASE_READS.inc()
            return m, math.inf
        return m, power

    @staticmethod
    def _final_measurement(
        m: Measurement | None, cfg: Configuration
    ) -> Measurement:
        """The settled measurement, or a NaN placeholder when the final
        run produced none."""
        if m is not None:
            return m
        return Measurement(
            config=cfg,
            time_s=math.nan,
            cpu_plane_w=math.nan,
            nbgpu_plane_w=math.nan,
            counters={},
        )

    def limit(
        self,
        kernel: object,
        start: Configuration,
        power_cap_w: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> LimiterResult:
        """Run the control loop from ``start`` until the cap is met or no
        further frequency reduction is possible.

        On CPU configurations only the CPU P-state is lowered (thread
        count is outside RAPL's authority).  On GPU configurations the
        GPU P-state is lowered first; if the cap is still violated at the
        GPU floor, the host CPU P-state is lowered as well.
        """
        if power_cap_w <= 0:
            raise ValueError("power_cap_w must be positive")
        # Resolve characteristics once: every control step re-measures
        # the same kernel, so don't re-derive them per apu.run call.
        kernel = _characteristics(kernel)
        trace: list[tuple[Configuration, float]] = []
        cfg = start
        m, observed = self._observe(kernel, cfg, rng)
        trace.append((cfg, observed))

        while not respects_cap(observed, power_cap_w):
            if cfg.device is Device.GPU:
                nxt = _step_down_gpu(cfg) or _step_down_cpu(cfg)
            else:
                nxt = _step_down_cpu(cfg)
            if nxt is None:
                break
            cfg = nxt
            m, observed = self._observe(kernel, cfg, rng)
            trace.append((cfg, observed))

        return LimiterResult(
            final_config=cfg,
            final_measurement=self._final_measurement(m, cfg),
            met_cap=respects_cap(observed, power_cap_w),
            trace=tuple(trace),
        )

    def limit_gpu_with_headroom(
        self,
        kernel: object,
        power_cap_w: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> LimiterResult:
        """The paper's GPU+FL policy (Section V-A).

        Start with the GPU at maximum frequency and the host CPU at
        minimum; lower the GPU P-state until the cap is met; then, if
        headroom remains, raise the host CPU frequency as far as possible
        without violating the cap.
        """
        kernel = _characteristics(kernel)
        start = Configuration.gpu(
            pstates.GPU_MAX_FREQ_GHZ, pstates.CPU_MIN_FREQ_GHZ
        )
        result = self.limit(kernel, start, power_cap_w, rng=rng)
        if not result.met_cap:
            return result

        # Exploit headroom: raise host CPU frequency while under the cap.
        # A worst-case read (dropout / failed run) observes as inf, so
        # the step-up backs off exactly like a genuine violation.
        trace = list(result.trace)
        cfg, m = result.final_config, result.final_measurement
        while True:
            nxt = _step_up_cpu(cfg)
            if nxt is None:
                break
            m_next, observed = self._observe(kernel, nxt, rng)
            trace.append((nxt, observed))
            if not respects_cap(observed, power_cap_w):
                break  # back off: keep the last compliant config
            cfg, m = nxt, m_next
        return LimiterResult(
            final_config=cfg,
            final_measurement=m,
            met_cap=True,  # settled on the last cap-compliant reading
            trace=tuple(trace),
        )

    def limit_cpu_all_cores(
        self,
        kernel: object,
        power_cap_w: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> LimiterResult:
        """The paper's CPU+FL policy (Section V-A): all cores enabled,
        GPU at minimum frequency, CPU P-state lowered to meet the cap."""
        start = Configuration.cpu(pstates.CPU_MAX_FREQ_GHZ, pstates.N_CORES)
        return self.limit(kernel, start, power_cap_w, rng=rng)
