"""P-state tables and voltage curves for the simulated Trinity APU.

The paper's test machine is an AMD A10-5800K "Trinity" APU (Section IV-A):

* two dual-core PileDriver compute units sharing one voltage plane — the
  CU running at the highest frequency sets the voltage for the whole
  plane;
* six software-visible CPU P-states from 1.4 to 3.7 GHz (opportunistic
  boost states above 3.7 GHz are excluded, as in the paper);
* a GPU on a separate power plane with three effective P-states at
  311, 649, and 819 MHz.

Voltage curves are affine in frequency, a standard first-order
approximation of published voltage/frequency tables; the exact values
only need to produce power *orderings and spreads* similar to the
paper's measurements (Table I), which the calibration tests in
``tests/test_hardware_power.py`` pin down.
"""

from __future__ import annotations

__all__ = [
    "CPU_FREQS_GHZ",
    "CPU_MAX_FREQ_GHZ",
    "CPU_MIN_FREQ_GHZ",
    "GPU_FREQS_GHZ",
    "GPU_MAX_FREQ_GHZ",
    "GPU_MIN_FREQ_GHZ",
    "N_CORES",
    "cpu_pstate_index",
    "cpu_voltage",
    "gpu_pstate_index",
    "gpu_voltage",
]

#: Software-visible CPU P-state frequencies (GHz), ascending.
CPU_FREQS_GHZ: tuple[float, ...] = (1.4, 1.9, 2.4, 2.9, 3.3, 3.7)

#: Effective GPU P-state frequencies (GHz), ascending (311/649/819 MHz).
GPU_FREQS_GHZ: tuple[float, ...] = (0.311, 0.649, 0.819)

CPU_MIN_FREQ_GHZ: float = CPU_FREQS_GHZ[0]
CPU_MAX_FREQ_GHZ: float = CPU_FREQS_GHZ[-1]
GPU_MIN_FREQ_GHZ: float = GPU_FREQS_GHZ[0]
GPU_MAX_FREQ_GHZ: float = GPU_FREQS_GHZ[-1]

#: Four CPU cores (two dual-core PileDriver modules).
N_CORES: int = 4

# Affine voltage/frequency curves (volts as a function of GHz).
_CPU_V0, _CPU_V1 = 0.70, 0.16
_GPU_V0, _GPU_V1 = 0.80, 0.45


def cpu_voltage(freq_ghz: float) -> float:
    """Core voltage (V) at a CPU frequency.

    The CPU compute units share a voltage plane, so callers must pass the
    *maximum* frequency across active CUs (Section IV-A).
    """
    _require_cpu_freq(freq_ghz)
    return _CPU_V0 + _CPU_V1 * freq_ghz


def gpu_voltage(freq_ghz: float) -> float:
    """GPU voltage (V) at a GPU frequency (separate power plane)."""
    _require_gpu_freq(freq_ghz)
    return _GPU_V0 + _GPU_V1 * freq_ghz


# Exact-value index tables: the hot path (every Configuration build and
# power evaluation validates its frequency) hits these dicts; the
# tolerance scan below only runs for values that are not bit-identical
# to a table entry.
_CPU_INDEX: dict[float, int] = {f: i for i, f in enumerate(CPU_FREQS_GHZ)}
_GPU_INDEX: dict[float, int] = {f: i for i, f in enumerate(GPU_FREQS_GHZ)}


def _lookup(
    freq_ghz: float, table: dict[float, int], freqs: tuple[float, ...], kind: str
) -> int:
    idx = table.get(freq_ghz)
    if idx is not None:
        return idx
    for i, f in enumerate(freqs):
        if abs(freq_ghz - f) < 1e-9:
            return i
    raise ValueError(f"{freq_ghz} GHz is not a {kind} P-state; valid: {freqs}")


def cpu_pstate_index(freq_ghz: float) -> int:
    """Index of a CPU frequency in :data:`CPU_FREQS_GHZ` (0 = slowest)."""
    return _lookup(freq_ghz, _CPU_INDEX, CPU_FREQS_GHZ, "CPU")


def gpu_pstate_index(freq_ghz: float) -> int:
    """Index of a GPU frequency in :data:`GPU_FREQS_GHZ` (0 = slowest)."""
    return _lookup(freq_ghz, _GPU_INDEX, GPU_FREQS_GHZ, "GPU")


def _require_cpu_freq(freq_ghz: float) -> None:
    _lookup(freq_ghz, _CPU_INDEX, CPU_FREQS_GHZ, "CPU")


def _require_gpu_freq(freq_ghz: float) -> None:
    _lookup(freq_ghz, _GPU_INDEX, GPU_FREQS_GHZ, "GPU")
