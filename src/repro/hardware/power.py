"""Two-plane ground-truth power model for the simulated Trinity APU.

The Trinity APU exposes two measurable power domains (Section III-B of
the paper): the **CPU cores** plane and the **northbridge + GPU** plane.
This module computes ground-truth average power draw for each plane while
a given kernel executes on a given configuration:

CPU plane::

    P_cpu = S0 + S1 * V(f_set)^2                      shared static/leakage
          + n_active * C_dyn * act * f * V(f_set)^2   per-core dynamic

where ``V(f_set)`` is the voltage implied by the *fastest* active compute
unit — all CUs share one voltage plane (Section IV-A), so even a
low-frequency thread pays the plane voltage.  When the kernel runs on the
GPU, one host thread runs driver code at a reduced activity factor.

Northbridge + GPU plane::

    P_nbgpu = NB0 + P_dram + P_gpu
    P_dram  = D * dram_intensity * traffic_rate       memory-controller power
    P_gpu   = idle                                    (CPU-device configs)
            | G0 + G1 * Vg^2 + G_dyn * act_g * fg * Vg^2 * busy(fg)

The ``busy(fg)`` factor (see
:func:`repro.hardware.kernelmodel.gpu_busy_fraction`) makes memory-bound
GPU kernels draw nearly flat power across GPU P-states, reproducing the
paper's observation (Table I) that a 2x GPU frequency step can cost only
~1 W.

Constants were calibrated against the paper's published observations:
CPU floor ~12.5 W, 4-thread 2.4 GHz ~24 W, GPU-active floor ~24 W, and a
kernel-to-kernel spread reaching >50 W at the hot end (Section III-B
reports best-configuration powers from 19 W to 55 W).  Calibration is
enforced by ``tests/test_hardware_power.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import pstates
from repro.hardware.config import Configuration, Device
from repro.hardware.kernelmodel import (
    KernelCharacteristics,
    gpu_busy_fraction,
    memory_bandwidth_factor,
)

__all__ = ["PowerModelConstants", "PowerBreakdown", "power_w"]


@dataclass(frozen=True)
class PowerModelConstants:
    """Calibration constants of the power model (watts-scale factors).

    The defaults reproduce the paper's observed power ranges; tests pin
    them.  Constructing a custom instance lets experiments explore other
    machines (e.g. the power-model ablation benchmark).
    """

    cpu_static_base: float = 3.0
    cpu_static_v2: float = 2.0
    cpu_dyn_per_core: float = 1.5
    host_activity: float = 0.25
    nb_static: float = 2.5
    dram_max_w: float = 3.0
    gpu_idle_w: float = 1.5
    gpu_static_base: float = 4.0
    gpu_static_v2: float = 6.0
    gpu_dyn: float = 25.0
    gpu_traffic_scale: float = 1.5


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-plane ground-truth power for one (kernel, configuration)."""

    cpu_plane_w: float
    nbgpu_plane_w: float

    @property
    def total_w(self) -> float:
        """Whole-chip power: both planes summed (watts)."""
        return self.cpu_plane_w + self.nbgpu_plane_w


def _cpu_plane_w(
    k: KernelCharacteristics, cfg: Configuration, c: PowerModelConstants
) -> float:
    v = pstates.cpu_voltage(cfg.cpu_freq_ghz)
    static = c.cpu_static_base + c.cpu_static_v2 * v * v
    if cfg.device is Device.CPU:
        # Vector-dense kernels switch more silicon per cycle.
        act = k.activity * (1.0 + 0.25 * k.vector_fraction)
        n_active = cfg.n_threads
    else:
        act = c.host_activity
        n_active = 1
    dynamic = n_active * c.cpu_dyn_per_core * act * cfg.cpu_freq_ghz * v * v
    return static + dynamic


def _dram_w(
    k: KernelCharacteristics, cfg: Configuration, c: PowerModelConstants
) -> float:
    if cfg.device is Device.CPU:
        # Traffic grows with delivered memory bandwidth, saturating with
        # thread count exactly as the timing model's bw() does.
        traffic = memory_bandwidth_factor(cfg.n_threads) / memory_bandwidth_factor(
            pstates.N_CORES
        )
    else:
        # The GPU's wide SIMD units drive the shared memory controller
        # harder than the CPU cores can.
        traffic = min(c.gpu_traffic_scale, 2.0)
    return c.dram_max_w * k.dram_intensity * traffic


def _gpu_w(
    k: KernelCharacteristics, cfg: Configuration, c: PowerModelConstants
) -> float:
    if cfg.device is Device.CPU:
        return c.gpu_idle_w
    vg = pstates.gpu_voltage(cfg.gpu_freq_ghz)
    static = c.gpu_static_base + c.gpu_static_v2 * vg * vg
    busy = gpu_busy_fraction(k, cfg.gpu_freq_ghz)
    dynamic = c.gpu_dyn * k.gpu_activity * cfg.gpu_freq_ghz * vg * vg * busy
    return static + dynamic


def power_w(
    k: KernelCharacteristics,
    cfg: Configuration,
    constants: PowerModelConstants | None = None,
) -> PowerBreakdown:
    """Ground-truth per-plane average power of ``k`` running on ``cfg``."""
    c = constants if constants is not None else PowerModelConstants()
    cpu_plane = _cpu_plane_w(k, cfg, c)
    nbgpu = c.nb_static + _dram_w(k, cfg, c) + _gpu_w(k, cfg, c)
    return PowerBreakdown(cpu_plane_w=cpu_plane, nbgpu_plane_w=nbgpu)
