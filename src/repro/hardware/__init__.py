"""Simulated AMD Trinity APU — the hardware substrate.

The paper's experiments ran on a physical AMD A10-5800K "Trinity" APU
with an on-chip power-estimating microcontroller.  This subpackage
replaces that silicon with an analytical simulator (see DESIGN.md §2 and
§4 for the substitution argument):

* :mod:`~repro.hardware.pstates` — CPU/GPU P-state tables and voltage
  curves;
* :mod:`~repro.hardware.config` — the 42-point configuration space
  (device × frequency × threads);
* :mod:`~repro.hardware.kernelmodel` — latent kernel characteristics and
  the ground-truth timing model (Amdahl × roofline on the CPU, offload +
  launch overhead on the GPU);
* :mod:`~repro.hardware.power` — two-plane power model (CPU cores;
  northbridge + GPU) with a shared CPU voltage plane;
* :mod:`~repro.hardware.counters` — performance-counter synthesis;
* :mod:`~repro.hardware.noise` — measurement-noise models;
* :mod:`~repro.hardware.apu` — the :class:`TrinityAPU` facade separating
  oracle-only ground truth from noisy measurements;
* :mod:`~repro.hardware.rapl` — RAPL-style frequency limiting.
"""

from repro.hardware.apu import Measurement, TrinityAPU
from repro.hardware.config import Configuration, ConfigSpace, Device
from repro.hardware.counters import COUNTER_NAMES, synthesize_counters
from repro.hardware.kernelmodel import KernelCharacteristics
from repro.hardware.noise import NoiseModel
from repro.hardware.power import PowerBreakdown, PowerModelConstants, power_w
from repro.hardware.pstates import (
    CPU_FREQS_GHZ,
    CPU_MAX_FREQ_GHZ,
    CPU_MIN_FREQ_GHZ,
    GPU_FREQS_GHZ,
    GPU_MAX_FREQ_GHZ,
    GPU_MIN_FREQ_GHZ,
    N_CORES,
)
from repro.hardware.rapl import FrequencyLimiter, LimiterResult
from repro.hardware.thermal import BoostOutcome, BoostPolicy, ThermalModel

__all__ = [
    "BoostOutcome",
    "BoostPolicy",
    "COUNTER_NAMES",
    "ThermalModel",
    "CPU_FREQS_GHZ",
    "CPU_MAX_FREQ_GHZ",
    "CPU_MIN_FREQ_GHZ",
    "Configuration",
    "ConfigSpace",
    "Device",
    "FrequencyLimiter",
    "GPU_FREQS_GHZ",
    "GPU_MAX_FREQ_GHZ",
    "GPU_MIN_FREQ_GHZ",
    "KernelCharacteristics",
    "LimiterResult",
    "Measurement",
    "N_CORES",
    "NoiseModel",
    "PowerBreakdown",
    "PowerModelConstants",
    "TrinityAPU",
    "power_w",
    "synthesize_counters",
]
