"""Named machine presets.

The paper's offline stage "is conducted only once to characterize a new
system" (Section III) — the model is machine-specific by design.  These
presets make that concrete: each returns a machine with a different
power calibration, standing in for distinct parts or platform
generations (the paper's introduction points at Kaveri, Trinity's
successor).  The Trinity-class presets share P-state tables and vary
only the power constants — exactly the kind of difference that
invalidates a transplanted model (see
``benchmarks/test_bench_cross_machine.py``).

The presets are *calibration variants* layered over the backend
registry (:mod:`repro.hardware.backend`): registered backend names are
presets too, so CLI/experiment enumeration sees one flat namespace of
machines (``trinity``, ``efficient``, ``leaky``, ``biglittle``,
``mpsoc``, ...).
"""

from __future__ import annotations

from repro.hardware.apu import TrinityAPU
from repro.hardware.backend import HardwareBackend, backend_names, create_backend
from repro.hardware.noise import NoiseModel
from repro.hardware.power import PowerModelConstants

__all__ = [
    "trinity",
    "efficient_apu",
    "leaky_apu",
    "MACHINE_PRESETS",
    "machine_preset_names",
    "create_machine",
]


def trinity(*, seed: int = 0, noise: NoiseModel | None = None) -> TrinityAPU:
    """The paper's machine: the calibrated A10-5800K model (default)."""
    return TrinityAPU(seed=seed, noise=noise)


def efficient_apu(*, seed: int = 0, noise: NoiseModel | None = None) -> TrinityAPU:
    """A die-shrunk successor: lower static power everywhere, cheaper
    GPU switching — the GPU becomes attractive at much lower caps."""
    constants = PowerModelConstants(
        cpu_static_base=1.8,
        cpu_static_v2=1.2,
        cpu_dyn_per_core=1.2,
        nb_static=1.5,
        gpu_idle_w=0.8,
        gpu_static_base=2.2,
        gpu_static_v2=3.5,
        gpu_dyn=18.0,
    )
    return TrinityAPU(seed=seed, noise=noise, power_constants=constants)


def leaky_apu(*, seed: int = 0, noise: NoiseModel | None = None) -> TrinityAPU:
    """A hot-binned part: high leakage (static power) with the same
    dynamic behaviour — voltage-dependent terms dominate, squeezing the
    usable range under tight caps."""
    constants = PowerModelConstants(
        cpu_static_base=6.0,
        cpu_static_v2=4.5,
        nb_static=4.0,
        gpu_idle_w=3.0,
        gpu_static_base=7.0,
        gpu_static_v2=9.0,
    )
    return TrinityAPU(seed=seed, noise=noise, power_constants=constants)


#: Name -> factory, for CLI/experiment enumeration (Trinity-class
#: calibration variants; registered backends are resolved dynamically
#: by :func:`create_machine`).
MACHINE_PRESETS = {
    "trinity": trinity,
    "efficient": efficient_apu,
    "leaky": leaky_apu,
}


def machine_preset_names() -> list[str]:
    """Every selectable machine name: calibration presets plus all
    registered backends, sorted and de-duplicated."""
    return sorted(set(MACHINE_PRESETS) | set(backend_names()))


def create_machine(
    name: str, *, seed: int = 0, noise: NoiseModel | None = None
) -> HardwareBackend:
    """Instantiate a machine by preset or backend name.

    Calibration presets win on a name collision (``"trinity"`` is
    both), so historical preset behaviour is unchanged.
    """
    factory = MACHINE_PRESETS.get(name)
    if factory is not None:
        return factory(seed=seed, noise=noise)
    return create_backend(name, seed=seed, noise=noise)
