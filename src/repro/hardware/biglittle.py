"""Simulated ARM-style big.LITTLE heterogeneous multi-processing SoC.

Models the machine class of "Performance and Energy Trade-Offs for
Parallel Applications on Heterogeneous Multi-Processing Systems" (see
PAPERS.md): two asymmetric core clusters sharing one memory system,
each with its own DVFS ladder, where work placed on the big cluster
pays a *migration cost* to move thread context off the LITTLE cluster
that boots and orchestrates the system.

Mapping onto the reproduction's two-block machine shape
(:mod:`repro.hardware.backend`):

* **primary block** — the LITTLE cluster: 4 in-order efficiency cores,
  low voltage, narrow memory path (strong bandwidth contention);
* **secondary block** — the big cluster: 4 out-of-order performance
  cores, higher IPC and voltage, plus the per-invocation migration
  cost (the analog of Trinity's kernel-launch overhead).

Measurements report the LITTLE-cluster rail as the primary power plane
and the big cluster + uncore (interconnect, memory controller) as the
secondary plane, mirroring how Trinity reports CPU cores vs
northbridge+GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.backend import (
    AnalyticalBackend,
    BackendDescriptor,
    BlockDescriptor,
    characteristics_of,
    register_backend,
)
from repro.hardware.kernelmodel import KernelCharacteristics, amdahl_speedup
from repro.hardware.noise import NoiseModel
from repro.hardware.power import PowerBreakdown

__all__ = [
    "HMPConstants",
    "BigLittleSoC",
    "BIGLITTLE_DESCRIPTOR",
    "migration_cost_s",
]

#: Relative IPC of a LITTLE in-order core (Trinity-class core = 1.0).
LITTLE_IPC: float = 0.62
#: Relative IPC of a big out-of-order core.
BIG_IPC: float = 1.18
#: Bandwidth-contention coefficients per cluster (the LITTLE cluster's
#: narrower path saturates faster).
LITTLE_BW_CONTENTION: float = 0.35
BIG_BW_CONTENTION: float = 0.20


@dataclass(frozen=True)
class HMPConstants:
    """Calibration constants of the big.LITTLE machine model.

    Frozen and hashable: this record keys the process-wide ground-truth
    memo caches, so machines with equal constants share derivations and
    machines with different constants can never collide.
    """

    little_static_base_w: float = 0.25
    little_static_v2_w: float = 0.45
    little_dyn_per_core_w: float = 0.85
    little_idle_w: float = 0.30
    big_static_base_w: float = 0.55
    big_static_v2_w: float = 0.90
    big_dyn_per_core_w: float = 1.75
    big_idle_w: float = 0.45
    uncore_static_w: float = 0.80
    dram_max_w: float = 2.60
    #: Fixed cluster-switch latency charged per invocation on the big
    #: cluster (context migration off the LITTLE cluster).
    migration_base_s: float = 0.002
    #: Share of the kernel's launch/setup cost repaid on migration.
    migration_launch_scale: float = 0.5


def migration_cost_s(k: KernelCharacteristics, c: HMPConstants) -> float:
    """Per-invocation cost of migrating a kernel to the big cluster.

    Both terms are non-negative by construction (the property suite
    pins this): a fixed cluster-switch latency plus a share of the
    kernel's own launch/setup cost.
    """
    return c.migration_base_s + c.migration_launch_scale * k.launch_overhead_s


#: Static machine description: LITTLE ladder 0.6-1.6 GHz, big ladder
#: 0.8-2.2 GHz, four cores per cluster, per-cluster voltage curves.
BIGLITTLE_DESCRIPTOR = BackendDescriptor(
    name="biglittle",
    primary=BlockDescriptor(
        label="little",
        freqs_ghz=(0.6, 0.9, 1.2, 1.4, 1.6),
        thread_counts=(1, 2, 3, 4),
        v0=0.55,
        v1=0.15,
    ),
    secondary=BlockDescriptor(
        label="big",
        freqs_ghz=(0.8, 1.2, 1.6, 1.9, 2.2),
        thread_counts=(1, 2, 3, 4),
        v0=0.62,
        v1=0.20,
    ),
)


def _bw_factor(n: float, contention: float) -> float:
    """Effective bandwidth scaling of ``n`` cores under a cluster's
    contention coefficient (same shape as the Trinity model's
    :func:`~repro.hardware.kernelmodel.memory_bandwidth_factor`)."""
    return n / (1.0 + contention * (n - 1))


class BigLittleSoC(AnalyticalBackend):
    """The simulated big.LITTLE HMP machine (registered as
    ``"biglittle"``)."""

    name = "biglittle"

    def __init__(
        self,
        *,
        noise: NoiseModel | None = None,
        constants: HMPConstants | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            BIGLITTLE_DESCRIPTOR,
            constants if constants is not None else HMPConstants(),
            noise=noise,
            seed=seed,
        )

    # -- timing -------------------------------------------------------------

    def _model_time_s(self, k: KernelCharacteristics, cfg) -> float:
        c = self.power_constants
        if cfg.is_gpu:  # big cluster
            s = cfg.gpu_freq_ghz / self.descriptor.secondary.max_freq_ghz
            n = cfg.n_threads
            compute = (1.0 - k.mem_fraction) / (
                amdahl_speedup(n, k.parallel_fraction) * s * BIG_IPC
            )
            memory = k.mem_fraction / _bw_factor(n, BIG_BW_CONTENTION)
            return k.work_s * (compute + memory) + migration_cost_s(k, c)
        s = cfg.cpu_freq_ghz / self.descriptor.primary.max_freq_ghz
        n = cfg.n_threads
        compute = (1.0 - k.mem_fraction) / (
            amdahl_speedup(n, k.parallel_fraction) * s * LITTLE_IPC
        )
        memory = k.mem_fraction / _bw_factor(n, LITTLE_BW_CONTENTION)
        return k.work_s * (compute + memory)

    # -- power --------------------------------------------------------------

    def _model_power(self, k: KernelCharacteristics, cfg) -> PowerBreakdown:
        c = self.power_constants
        act = k.activity * (1.0 + 0.25 * k.vector_fraction)
        if cfg.is_gpu:  # big cluster active, LITTLE idling
            f = cfg.gpu_freq_ghz
            v = self.descriptor.secondary.voltage(f)
            n = cfg.n_threads
            big = (
                c.big_static_base_w
                + c.big_static_v2_w * v * v
                + n * c.big_dyn_per_core_w * act * f * v * v
            )
            traffic = _bw_factor(n, BIG_BW_CONTENTION) / _bw_factor(
                self.descriptor.secondary.max_threads, BIG_BW_CONTENTION
            )
            uncore = c.uncore_static_w + c.dram_max_w * k.dram_intensity * traffic
            return PowerBreakdown(
                cpu_plane_w=c.little_idle_w, nbgpu_plane_w=big + uncore
            )
        f = cfg.cpu_freq_ghz
        v = self.descriptor.primary.voltage(f)
        n = cfg.n_threads
        little = (
            c.little_static_base_w
            + c.little_static_v2_w * v * v
            + n * c.little_dyn_per_core_w * act * f * v * v
        )
        traffic = _bw_factor(n, LITTLE_BW_CONTENTION) / _bw_factor(
            self.descriptor.primary.max_threads, LITTLE_BW_CONTENTION
        )
        uncore = c.uncore_static_w + c.dram_max_w * k.dram_intensity * traffic
        return PowerBreakdown(
            cpu_plane_w=little, nbgpu_plane_w=c.big_idle_w + uncore
        )

    # -- batch evaluation ---------------------------------------------------

    def batch_rate_power(
        self,
        kernel: object,
        is_gpu: np.ndarray,
        cpu_freq_ghz: np.ndarray,
        n_threads: np.ndarray,
        gpu_freq_ghz: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ground truth, bit-identical to the scalar model
        (float64 elementwise arithmetic in the same operation order)."""
        k = characteristics_of(kernel)
        c = self.power_constants
        d = self.descriptor

        # timing — both branches elementwise, joined on the device mask
        s_b = gpu_freq_ghz / d.secondary.max_freq_ghz
        compute_b = (1.0 - k.mem_fraction) / (
            (1.0 / ((1.0 - k.parallel_fraction) + k.parallel_fraction / n_threads))
            * s_b
            * BIG_IPC
        )
        memory_b = k.mem_fraction / (
            n_threads / (1.0 + BIG_BW_CONTENTION * (n_threads - 1))
        )
        t_big = k.work_s * (compute_b + memory_b) + (
            c.migration_base_s + c.migration_launch_scale * k.launch_overhead_s
        )
        s_l = cpu_freq_ghz / d.primary.max_freq_ghz
        compute_l = (1.0 - k.mem_fraction) / (
            (1.0 / ((1.0 - k.parallel_fraction) + k.parallel_fraction / n_threads))
            * s_l
            * LITTLE_IPC
        )
        memory_l = k.mem_fraction / (
            n_threads / (1.0 + LITTLE_BW_CONTENTION * (n_threads - 1))
        )
        t_little = k.work_s * (compute_l + memory_l)
        t = np.where(is_gpu, t_big, t_little)

        # power
        act = k.activity * (1.0 + 0.25 * k.vector_fraction)
        v_b = d.secondary.v0 + d.secondary.v1 * gpu_freq_ghz
        big = (
            c.big_static_base_w
            + c.big_static_v2_w * v_b * v_b
            + n_threads * c.big_dyn_per_core_w * act * gpu_freq_ghz * v_b * v_b
        )
        traffic_b = (
            n_threads / (1.0 + BIG_BW_CONTENTION * (n_threads - 1))
        ) / _bw_factor(d.secondary.max_threads, BIG_BW_CONTENTION)
        uncore_b = c.uncore_static_w + c.dram_max_w * k.dram_intensity * traffic_b
        v_l = d.primary.v0 + d.primary.v1 * cpu_freq_ghz
        little = (
            c.little_static_base_w
            + c.little_static_v2_w * v_l * v_l
            + n_threads * c.little_dyn_per_core_w * act * cpu_freq_ghz * v_l * v_l
        )
        traffic_l = (
            n_threads / (1.0 + LITTLE_BW_CONTENTION * (n_threads - 1))
        ) / _bw_factor(d.primary.max_threads, LITTLE_BW_CONTENTION)
        uncore_l = c.uncore_static_w + c.dram_max_w * k.dram_intensity * traffic_l
        power = np.where(
            is_gpu,
            c.little_idle_w + (big + uncore_b),
            little + (c.big_idle_w + uncore_l),
        )
        return 1.0 / t, power


register_backend(
    "biglittle",
    lambda *, seed=0, noise=None: BigLittleSoC(seed=seed, noise=noise),
    BIGLITTLE_DESCRIPTOR,
)
