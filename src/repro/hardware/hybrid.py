"""Idealized hybrid (CPU+GPU simultaneous) execution model.

The paper deliberately excludes hybrid codes from its configuration
space and gives an argument (Section III-A): load imbalance and extra
parallel overhead often make hybrid execution slower in practice, and
even when it helps, "it will strictly lower power-efficiency compared
to the best single device ... In the best possible case, hybrid
execution will increase performance by a factor of two over the best
single device, but will increase power consumption at least as much."

This module models hybrid execution *optimistically* so the paper's
argument can be tested quantitatively (see
``benchmarks/test_bench_hybrid_analysis.py``):

* work splits between the devices in the ratio of their throughputs
  (perfect load balance — the best case the paper concedes);
* an optional efficiency factor models the realistic overheads
  (synchronization, input splitting, output merging) the paper cites;
* power is the sum of both devices' active draws, minus the
  double-counted shared components (northbridge static, DRAM — charged
  once at the higher of the two rates).

If even this optimistic model is Pareto-dominated under power caps, the
paper's exclusion is justified a fortiori.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import respects_cap
from repro.hardware import pstates
from repro.hardware.config import Configuration
from repro.hardware.kernelmodel import (
    KernelCharacteristics,
    cpu_time_s,
    gpu_time_s,
)
from repro.hardware.power import PowerModelConstants, power_w
from repro.telemetry import counter, gauge

__all__ = [
    "HybridPoint",
    "hybrid_execution",
    "enumerate_hybrid_points",
    "best_hybrid_under_cap",
]

# Process-wide hybrid-enumeration memo.  The 72-point cross product is a
# pure function of (characteristics, efficiency, power constants), and
# the hybrid-analysis benchmark plus the search-validation reruns
# re-enumerate identical tables constantly — same memo family as the
# truth-table caches of PR 2 (see docs/OBSERVABILITY.md).
_POINTS_CACHE: dict[tuple, tuple[HybridPoint, ...]] = {}
_HP_HITS = counter("cache.hybrid_points.hits")
_HP_MISSES = counter("cache.hybrid_points.misses")
_HP_SIZE = gauge("cache.hybrid_points.size")


@dataclass(frozen=True)
class HybridPoint:
    """One hybrid operating point.

    Attributes
    ----------
    cpu_config, gpu_config:
        The single-device configurations combined (the CPU side runs
        the CPU portion; the GPU side runs the GPU portion with its
        host thread on the same P-state as the CPU side).
    time_s:
        Hybrid execution time under the model.
    power_w:
        Hybrid average power.
    cpu_share:
        Fraction of the work assigned to the CPU.
    """

    cpu_config: Configuration
    gpu_config: Configuration
    time_s: float
    power_w: float
    cpu_share: float

    @property
    def performance(self) -> float:
        """Throughput of the hybrid point (invocations per second)."""
        return 1.0 / self.time_s


def hybrid_execution(
    k: KernelCharacteristics,
    cpu_freq_ghz: float,
    n_threads: int,
    gpu_freq_ghz: float,
    *,
    efficiency: float = 1.0,
    constants: PowerModelConstants | None = None,
) -> HybridPoint:
    """Evaluate one hybrid operating point for kernel ``k``.

    Parameters
    ----------
    cpu_freq_ghz, n_threads:
        The CPU side's P-state and thread count.  One of the threads
        doubles as the GPU's host thread.
    gpu_freq_ghz:
        The GPU side's P-state.
    efficiency:
        Fraction of the ideal overlap actually achieved (1.0 = the
        paper's conceded best case; realistic hybrid runtimes land well
        below).
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    c = constants if constants is not None else PowerModelConstants()

    cpu_cfg = Configuration.cpu(cpu_freq_ghz, n_threads)
    gpu_cfg = Configuration.gpu(gpu_freq_ghz, cpu_freq_ghz)

    t_cpu = cpu_time_s(k, cpu_freq_ghz, n_threads)
    t_gpu = gpu_time_s(k, gpu_freq_ghz, cpu_freq_ghz)

    # Perfect load balance: split so both sides finish together.
    # share/t_cpu' = (1-share)/t_gpu'  ->  share = t_gpu / (t_cpu + t_gpu)
    # (t_x is the full-work time on device x; a fraction s of the work
    # takes s * t_x).
    cpu_share = t_gpu / (t_cpu + t_gpu)
    ideal_time = cpu_share * t_cpu  # == (1 - cpu_share) * t_gpu
    time_s = ideal_time / efficiency

    # Power: both devices active simultaneously.  Shared NB/DRAM/static
    # components must not be double counted: take the CPU-side report
    # and add only the GPU-side's *GPU-specific* increment (its NB+GPU
    # plane minus the idle-GPU NB+GPU plane the CPU side already pays),
    # plus the larger DRAM draw is already inside whichever side reports
    # more on that plane.
    pb_cpu = power_w(k, cpu_cfg, c)
    pb_gpu = power_w(k, gpu_cfg, c)
    gpu_increment = pb_gpu.nbgpu_plane_w - pb_cpu.nbgpu_plane_w
    total_power = pb_cpu.total_w + max(gpu_increment, 0.0)

    return HybridPoint(
        cpu_config=cpu_cfg,
        gpu_config=gpu_cfg,
        time_s=time_s,
        power_w=total_power,
        cpu_share=cpu_share,
    )


def enumerate_hybrid_points(
    k: KernelCharacteristics,
    *,
    efficiency: float = 1.0,
    constants: PowerModelConstants | None = None,
) -> list[HybridPoint]:
    """Every hybrid operating point for kernel ``k`` (the full CPU
    frequency x thread count x GPU frequency cross product).

    The set is independent of any power cap, so callers comparing one
    kernel against many caps should enumerate once and reuse (see
    :func:`best_hybrid_under_cap`'s ``points`` parameter).

    Memoized process-wide: the enumeration is pure in ``(k, efficiency,
    constants)`` and every :class:`HybridPoint` is frozen, so cache
    entries are shared safely; each call returns a fresh list over the
    shared points (``cache.hybrid_points.*`` counters account for it).
    """
    c = constants if constants is not None else PowerModelConstants()
    key = (k, efficiency, c)
    points = _POINTS_CACHE.get(key)
    if points is None:
        _HP_MISSES.inc()
        points = tuple(
            hybrid_execution(k, f, n, g, efficiency=efficiency, constants=c)
            for f in pstates.CPU_FREQS_GHZ
            for n in range(1, pstates.N_CORES + 1)
            for g in pstates.GPU_FREQS_GHZ
        )
        _POINTS_CACHE[key] = points
        _HP_SIZE.set(len(_POINTS_CACHE))
    else:
        _HP_HITS.inc()
    return list(points)


def best_hybrid_under_cap(
    k: KernelCharacteristics,
    power_cap_w: float,
    *,
    efficiency: float = 1.0,
    constants: PowerModelConstants | None = None,
    points: list[HybridPoint] | None = None,
) -> HybridPoint | None:
    """The best hybrid operating point whose power respects the cap, or
    ``None`` when no hybrid point fits (hybrid runs both devices, so its
    power floor is high).

    ``points`` short-circuits the sweep with a precomputed enumeration
    (from :func:`enumerate_hybrid_points` with the same kernel,
    efficiency, and constants).
    """
    if points is None:
        points = enumerate_hybrid_points(
            k, efficiency=efficiency, constants=constants
        )
    best: HybridPoint | None = None
    for point in points:
        if not respects_cap(point.power_w, power_cap_w):
            continue
        if best is None or point.performance > best.performance:
            best = point
    return best
