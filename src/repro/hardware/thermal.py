"""Thermal model and opportunistic overclocking (paper Section VI).

The paper's future-work list includes a hardware feature it deliberately
left out of the configuration space: "opportunistic overclocking.  This
feature allows the CPU to increase its frequency beyond user-selectable
levels, but only when there is enough thermal headroom; if the chip is
too hot, such frequency boosting will not engage."  (The real A10-5800K
boosts from 3.8 to 4.2 GHz.)

This module implements that feature as an optional machine capability:

* :class:`ThermalModel` — steady-state die temperature from total chip
  power via a lumped thermal resistance,
  :math:`T = T_{ambient} + R_{th} P`;
* :class:`BoostPolicy` — when enabled on the :class:`TrinityAPU`, CPU
  configurations at the top software P-state (3.7 GHz) opportunistically
  boost toward :attr:`BoostPolicy.boost_freq_ghz`.  The boost *duty
  cycle* is limited by thermal headroom: a kernel whose boosted power
  would keep the die under ``t_max_c`` boosts continuously; a hot kernel
  boosts only for the fraction of time that keeps the average die
  temperature at the limit; a kernel already at the limit gets no boost
  at all.

The effective frequency and power are duty-cycle blends of the base and
boosted operating points, which is how real boost governors average out
over kernel-scale intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import pstates

__all__ = ["ThermalModel", "BoostPolicy", "BoostOutcome"]


@dataclass(frozen=True)
class ThermalModel:
    """Lumped steady-state thermal model of the package.

    Attributes
    ----------
    ambient_c:
        Case/ambient temperature (deg C).
    r_th_c_per_w:
        Junction-to-ambient thermal resistance (deg C per watt).
    t_max_c:
        Maximum allowed die temperature; boost must keep the average
        temperature at or below this.
    """

    ambient_c: float = 40.0
    r_th_c_per_w: float = 0.9
    t_max_c: float = 75.0

    def __post_init__(self) -> None:
        if self.r_th_c_per_w <= 0:
            raise ValueError("r_th_c_per_w must be positive")
        if self.t_max_c <= self.ambient_c:
            raise ValueError("t_max_c must exceed ambient_c")

    def steady_temp_c(self, power_w: float) -> float:
        """Steady-state die temperature at a given total chip power."""
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        return self.ambient_c + self.r_th_c_per_w * power_w

    def headroom_w(self, power_w: float) -> float:
        """Additional watts sustainable before hitting ``t_max_c``
        (negative when already over the limit)."""
        return (self.t_max_c - self.steady_temp_c(power_w)) / self.r_th_c_per_w


@dataclass(frozen=True)
class BoostOutcome:
    """Result of applying opportunistic boost to one operating point.

    Attributes
    ----------
    duty_cycle:
        Fraction of time spent at the boosted frequency (0 = boost never
        engages, 1 = continuous boost).
    effective_freq_ghz:
        Duty-cycle-weighted CPU frequency.
    time_scale:
        Multiplier on the compute-bound portion's execution time
        (< 1 when boosting).
    power_delta_w:
        Additional average power drawn by boosting.
    """

    duty_cycle: float
    effective_freq_ghz: float
    time_scale: float
    power_delta_w: float


@dataclass(frozen=True)
class BoostPolicy:
    """Opportunistic-overclocking configuration.

    Attributes
    ----------
    boost_freq_ghz:
        The hardware boost frequency (A10-5800K: 4.2 GHz).
    thermal:
        The thermal model gating the boost.
    extra_power_w_at_full:
        Additional chip power at continuous boost with all cores active
        (scales with the active-core fraction).  A first-order stand-in
        for the voltage bump the boost P-state carries.
    """

    boost_freq_ghz: float = 4.2
    thermal: ThermalModel = ThermalModel()
    extra_power_w_at_full: float = 8.0

    def __post_init__(self) -> None:
        if self.boost_freq_ghz <= pstates.CPU_MAX_FREQ_GHZ:
            raise ValueError(
                "boost_freq_ghz must exceed the top software P-state "
                f"({pstates.CPU_MAX_FREQ_GHZ} GHz)"
            )
        if self.extra_power_w_at_full < 0:
            raise ValueError("extra_power_w_at_full must be non-negative")

    def evaluate(
        self,
        base_power_w: float,
        n_active_cores: int,
        compute_fraction: float,
    ) -> BoostOutcome:
        """Boost outcome for a kernel whose un-boosted operating point
        draws ``base_power_w`` with ``n_active_cores`` active and whose
        runtime is ``compute_fraction`` frequency-sensitive.

        The duty cycle is the largest fraction of time at boost that
        keeps the *average* die temperature at or below the thermal
        limit.
        """
        if not 0.0 <= compute_fraction <= 1.0:
            raise ValueError("compute_fraction must be in [0, 1]")
        if not 1 <= n_active_cores <= pstates.N_CORES:
            raise ValueError("n_active_cores out of range")

        extra = self.extra_power_w_at_full * n_active_cores / pstates.N_CORES
        headroom = self.thermal.headroom_w(base_power_w)
        if headroom <= 0 or extra == 0:
            duty = 0.0 if extra > 0 else (1.0 if headroom > 0 else 0.0)
        else:
            duty = min(1.0, headroom / extra)

        f_base = pstates.CPU_MAX_FREQ_GHZ
        f_eff = f_base + duty * (self.boost_freq_ghz - f_base)
        # Compute-bound time scales inversely with frequency; the
        # memory-bound remainder is unaffected.
        compute_scale = f_base / f_eff
        time_scale = compute_fraction * compute_scale + (1.0 - compute_fraction)
        return BoostOutcome(
            duty_cycle=duty,
            effective_freq_ghz=f_eff,
            time_scale=time_scale,
            power_delta_w=duty * extra,
        )
