"""Hardware configurations and the enumerable configuration space.

A *configuration* in the paper (Section I) is "a device selection (CPU
or GPU), number of cores, voltage and frequency for both the CPU and
GPU, and process/core mapping".  On the simulated Trinity APU this
reduces to:

* ``device`` — which device executes the kernel;
* ``cpu_freq_ghz`` — the CPU P-state.  On GPU configurations this is the
  *host* thread's P-state, which matters because kernel-launch/driver
  overhead runs on the CPU (Table I's GPU rows differ only in CPU
  frequency);
* ``n_threads`` — CPU thread count (1–4).  GPU configurations always use
  one host thread;
* ``gpu_freq_ghz`` — the GPU P-state.  On CPU configurations the GPU
  idles at its minimum P-state, exactly how the paper ran CPU
  experiments.

The full space enumerated by :class:`ConfigSpace` has
``6 freqs × 4 threads = 24`` CPU configurations plus
``3 GPU freqs × 6 host freqs = 18`` GPU configurations — 42 in total,
comparable to the per-kernel scatter of the paper's Figure 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.hardware import pstates

__all__ = ["Device", "Configuration", "ConfigSpace"]


class Device(enum.Enum):
    """Execution device for a kernel (one device at a time; the paper
    deliberately excludes hybrid CPU+GPU execution, Section III-A)."""

    CPU = "cpu"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


@dataclass(frozen=True, order=True)
class Configuration:
    """One point in the machine configuration space.

    Instances are immutable, hashable, and totally ordered (device, then
    CPU frequency, thread count, GPU frequency) so they can key
    dictionaries and be sorted deterministically.
    """

    device: Device
    cpu_freq_ghz: float
    n_threads: int
    gpu_freq_ghz: float

    def __post_init__(self) -> None:
        pstates.cpu_pstate_index(self.cpu_freq_ghz)  # validates
        pstates.gpu_pstate_index(self.gpu_freq_ghz)  # validates
        if not 1 <= self.n_threads <= pstates.N_CORES:
            raise ValueError(
                f"n_threads={self.n_threads} outside 1..{pstates.N_CORES}"
            )
        if self.device is Device.GPU and self.n_threads != 1:
            raise ValueError("GPU configurations use exactly one host thread")
        if (
            self.device is Device.CPU
            and abs(self.gpu_freq_ghz - pstates.GPU_MIN_FREQ_GHZ) > 1e-9
        ):
            raise ValueError(
                "CPU configurations idle the GPU at its minimum P-state"
            )
        # Configurations key every hot-path dict (ground-truth caches,
        # config-space indices, prediction views); the generated
        # dataclass hash rebuilds a field tuple per lookup, so cache it.
        object.__setattr__(
            self,
            "_hash",
            hash((self.device, self.cpu_freq_ghz, self.n_threads, self.gpu_freq_ghz)),
        )

    def __hash__(self) -> int:
        return self._hash

    # The cached hash is derived state: keep it out of the pickle
    # payload (byte-identical to pre-cache pickles) and rebuild it on
    # load, where ``__init__``/``__post_init__`` never run.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_hash"]
        return state

    def __setstate__(self, state: dict) -> None:
        for k, v in state.items():
            object.__setattr__(self, k, v)
        object.__setattr__(
            self,
            "_hash",
            hash((self.device, self.cpu_freq_ghz, self.n_threads, self.gpu_freq_ghz)),
        )

    # -- convenient constructors -------------------------------------------

    # Instances are immutable, so the factories memoize: the valid space
    # has only 42 points and hot paths (the frequency limiter, scheduler
    # fallbacks) rebuild the same configurations constantly.

    @staticmethod
    @lru_cache(maxsize=None)
    def cpu(freq_ghz: float, n_threads: int) -> "Configuration":
        """A CPU configuration (GPU idling at minimum frequency)."""
        return Configuration(
            device=Device.CPU,
            cpu_freq_ghz=freq_ghz,
            n_threads=n_threads,
            gpu_freq_ghz=pstates.GPU_MIN_FREQ_GHZ,
        )

    @staticmethod
    @lru_cache(maxsize=None)
    def gpu(gpu_freq_ghz: float, host_cpu_freq_ghz: float) -> "Configuration":
        """A GPU configuration with one host thread at the given P-state."""
        return Configuration(
            device=Device.GPU,
            cpu_freq_ghz=host_cpu_freq_ghz,
            n_threads=1,
            gpu_freq_ghz=gpu_freq_ghz,
        )

    # -- introspection -------------------------------------------------------

    @property
    def is_gpu(self) -> bool:
        """Whether this configuration executes on the GPU."""
        return self.device is Device.GPU

    def label(self) -> str:
        """Compact human-readable label, e.g. ``CPU 2.4GHz x3`` or
        ``GPU 649MHz (host 1.4GHz)``."""
        if self.is_gpu:
            return (
                f"GPU {self.gpu_freq_ghz * 1000:.0f}MHz "
                f"(host {self.cpu_freq_ghz:.1f}GHz)"
            )
        return f"CPU {self.cpu_freq_ghz:.1f}GHz x{self.n_threads}"


class ConfigSpace:
    """The enumerable set of valid configurations on the machine.

    Iteration order is deterministic: all CPU configurations (by
    frequency, then threads), then all GPU configurations (by GPU
    frequency, then host frequency).
    """

    def __init__(self) -> None:
        cpu_cfgs = [
            Configuration.cpu(f, n)
            for f in pstates.CPU_FREQS_GHZ
            for n in range(1, pstates.N_CORES + 1)
        ]
        gpu_cfgs = [
            Configuration.gpu(g, f)
            for g in pstates.GPU_FREQS_GHZ
            for f in pstates.CPU_FREQS_GHZ
        ]
        self._configs: tuple[Configuration, ...] = tuple(cpu_cfgs + gpu_cfgs)
        self._index = {cfg: i for i, cfg in enumerate(self._configs)}

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, cfg: Configuration) -> bool:
        return cfg in self._index

    def __getitem__(self, i: int) -> Configuration:
        return self._configs[i]

    def index(self, cfg: Configuration) -> int:
        """Position of ``cfg`` in the deterministic enumeration order."""
        try:
            return self._index[cfg]
        except KeyError:
            raise ValueError(f"{cfg} is not in the configuration space") from None

    @property
    def descriptor(self):
        """The Trinity backend descriptor, so ``ConfigSpace`` satisfies
        the same protocol as
        :class:`~repro.hardware.backend.BlockConfigSpace` (imported
        lazily: :mod:`repro.hardware.backend` imports this module)."""
        from repro.hardware.backend import TRINITY_DESCRIPTOR

        return TRINITY_DESCRIPTOR

    def cpu_configs(self) -> list[Configuration]:
        """All CPU-device configurations."""
        return [c for c in self._configs if not c.is_gpu]

    def gpu_configs(self) -> list[Configuration]:
        """All GPU-device configurations."""
        return [c for c in self._configs if c.is_gpu]

    def for_device(self, device: Device) -> list[Configuration]:
        """All configurations executing on ``device``."""
        return [c for c in self._configs if c.device is device]
