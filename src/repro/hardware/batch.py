"""Vectorized ground-truth evaluation over configuration *arrays*.

The analytical kernel models (:mod:`repro.hardware.kernelmodel`,
:mod:`repro.hardware.power`) are scalar: one ``(kernel, Configuration)``
pair per call.  That is the right shape for the simulator's measured
runs, and the wrong shape for design-space exploration
(:mod:`repro.search`), where a search engine asks for the (rate, power)
of *thousands* of candidate configurations per generation and the
candidate set never materializes ``Configuration`` objects at all.

This module is the batch path: every function takes parallel factor
arrays (CPU frequency, thread count, GPU frequency, a device mask) and
returns per-row results in one numpy pass.  The expressions mirror the
scalar models operation for operation — float64 elementwise arithmetic
is IEEE-identical to the Python-float scalar code — so batch results are
**bit-identical** to calling the scalar functions row by row
(``tests/test_search_space.py`` pins this against
:meth:`~repro.hardware.apu.TrinityAPU.true_table`).
"""

from __future__ import annotations

import numpy as np

from repro.hardware import pstates
from repro.hardware.kernelmodel import BW_CONTENTION, KernelCharacteristics
from repro.hardware.power import PowerModelConstants

__all__ = [
    "batch_amdahl_speedup",
    "batch_bandwidth_factor",
    "batch_cpu_time_s",
    "batch_gpu_time_s",
    "batch_total_power_w",
    "batch_true_rate_power",
]


def batch_amdahl_speedup(n_threads: np.ndarray, parallel_fraction: float) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.kernelmodel.amdahl_speedup`."""
    p = parallel_fraction
    return 1.0 / ((1.0 - p) + p / n_threads)


def batch_bandwidth_factor(n_threads: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.kernelmodel.memory_bandwidth_factor`."""
    return n_threads / (1.0 + BW_CONTENTION * (n_threads - 1))


def batch_cpu_time_s(
    k: KernelCharacteristics, cpu_freq_ghz: np.ndarray, n_threads: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.kernelmodel.cpu_time_s`."""
    s = cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
    compute = (1.0 - k.mem_fraction) / (
        batch_amdahl_speedup(n_threads, k.parallel_fraction) * s
    )
    memory = k.mem_fraction / batch_bandwidth_factor(n_threads)
    return k.work_s * (compute + memory)


def batch_gpu_time_s(
    k: KernelCharacteristics,
    gpu_freq_ghz: np.ndarray,
    host_cpu_freq_ghz: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.kernelmodel.gpu_time_s`."""
    fg = gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
    device = (k.work_s / k.gpu_affinity) * (
        (1.0 - k.gpu_mem_fraction) / fg + k.gpu_mem_fraction
    )
    launch = k.launch_overhead_s * (
        pstates.CPU_MAX_FREQ_GHZ / host_cpu_freq_ghz
    )
    return device + launch


def _batch_gpu_busy_fraction(
    k: KernelCharacteristics, gpu_freq_ghz: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.kernelmodel.gpu_busy_fraction`."""
    fg = gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
    compute = (1.0 - k.gpu_mem_fraction) / fg
    return compute / (compute + k.gpu_mem_fraction)


# The voltage curves are affine; read the coefficients once so the
# batch expressions below stay bit-identical to the scalar lookups
# (pstates.cpu_voltage / gpu_voltage validate per value, which the
# batch path cannot afford and does not need — genomes only ever decode
# to axis values drawn from the P-state tables).
_CPU_V0 = pstates._CPU_V0
_CPU_V1 = pstates._CPU_V1
_GPU_V0 = pstates._GPU_V0
_GPU_V1 = pstates._GPU_V1


def batch_total_power_w(
    k: KernelCharacteristics,
    is_gpu: np.ndarray,
    cpu_freq_ghz: np.ndarray,
    n_threads: np.ndarray,
    gpu_freq_ghz: np.ndarray,
    constants: PowerModelConstants | None = None,
) -> np.ndarray:
    """Vectorized whole-chip :func:`~repro.hardware.power.power_w`.

    ``is_gpu`` is the device mask (True rows execute on the GPU).  Both
    device branches are computed elementwise and joined with
    :func:`numpy.where`, so each row's value equals the scalar branch it
    would have taken.
    """
    c = constants if constants is not None else PowerModelConstants()
    v = _CPU_V0 + _CPU_V1 * cpu_freq_ghz
    static = c.cpu_static_base + c.cpu_static_v2 * v * v
    act_cpu = k.activity * (1.0 + 0.25 * k.vector_fraction)
    act = np.where(is_gpu, c.host_activity, act_cpu)
    n_active = np.where(is_gpu, 1.0, n_threads)
    cpu_plane = static + n_active * c.cpu_dyn_per_core * act * cpu_freq_ghz * v * v

    traffic_cpu = batch_bandwidth_factor(n_threads) / (
        pstates.N_CORES / (1.0 + BW_CONTENTION * (pstates.N_CORES - 1))
    )
    traffic = np.where(is_gpu, min(c.gpu_traffic_scale, 2.0), traffic_cpu)
    dram = c.dram_max_w * k.dram_intensity * traffic

    vg = _GPU_V0 + _GPU_V1 * gpu_freq_ghz
    gpu_static = c.gpu_static_base + c.gpu_static_v2 * vg * vg
    busy = _batch_gpu_busy_fraction(k, gpu_freq_ghz)
    gpu_dynamic = c.gpu_dyn * k.gpu_activity * gpu_freq_ghz * vg * vg * busy
    gpu = np.where(is_gpu, gpu_static + gpu_dynamic, c.gpu_idle_w)

    nbgpu = c.nb_static + dram + gpu
    return cpu_plane + nbgpu


def batch_true_rate_power(
    k: KernelCharacteristics,
    is_gpu: np.ndarray,
    cpu_freq_ghz: np.ndarray,
    n_threads: np.ndarray,
    gpu_freq_ghz: np.ndarray,
    constants: PowerModelConstants | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth ``(rate, total power)`` per row, in one numpy pass.

    Equivalent to calling :meth:`TrinityAPU.true_performance` and
    :meth:`TrinityAPU.true_total_power_w` per row (boost off), but
    without materializing any :class:`Configuration`.
    """
    t = np.where(
        is_gpu,
        batch_gpu_time_s(k, gpu_freq_ghz, cpu_freq_ghz),
        batch_cpu_time_s(k, cpu_freq_ghz, n_threads),
    )
    power = batch_total_power_w(
        k, is_gpu, cpu_freq_ghz, n_threads, gpu_freq_ghz, constants
    )
    return 1.0 / t, power
