"""The hardware-backend interface and registry.

The paper's method is machine-agnostic: nothing in the clustering,
regression, classification, or scheduling layers depends on *which*
machine produced the measurements — only on the protocol every machine
satisfies (an enumerable configuration space split into two device
blocks, ground-truth time/power per configuration, and noisy measured
``run``\\ s).  :class:`HardwareBackend` captures that protocol, extracted
from :class:`~repro.hardware.apu.TrinityAPU`, so the Trinity APU becomes
one of several registered backends rather than the hard-coded machine.

Three ingredients live here:

* :class:`HardwareBackend` — the abstract machine interface every
  backend implements (ground truth, measured runs, fault attach,
  vectorized batch evaluation);
* :class:`BackendDescriptor` / :class:`BlockDescriptor` — the static
  description of a machine's two device blocks (P-state ladders,
  thread counts, voltage curves, sample configurations, design-row
  features) that lets :mod:`repro.core` build design matrices and
  sample anchors without knowing the machine;
* the registry — ``register_backend`` / :func:`create_backend` /
  :func:`descriptor_for`, mapping names (``"trinity"``,
  ``"biglittle"``, ``"mpsoc"``) to factories so evaluation drivers and
  the CLI select machines by flag.

Every backend keeps the *two-block* shape of the paper's Trinity
machine: a primary block playing the CPU role (rows ``device=CPU``) and
a secondary block playing the GPU role (rows ``device=GPU``).  On the
big.LITTLE backend those are the LITTLE and big clusters; on the MPSoC
they are the serial core and the dim-silicon throughput cores.  Keeping
the role split means the entire modeling pipeline — per-device design
matrices, sample anchors, per-cluster regressions — applies unchanged,
which is precisely what makes cross-architecture transfer
(:mod:`repro.evaluation.transfer`) well-posed: coefficient vectors
carry across backends because every backend exposes feature rows of the
same width and normalization convention.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar, Iterator, Mapping, Sequence

import numpy as np

from repro.hardware import pstates
from repro.hardware.config import ConfigSpace, Configuration, Device
from repro.hardware.kernelmodel import KernelCharacteristics
from repro.hardware.noise import NoiseModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.power import PowerBreakdown

__all__ = [
    "Measurement",
    "BlockDescriptor",
    "BackendDescriptor",
    "BlockConfig",
    "BlockConfigSpace",
    "HardwareBackend",
    "AnalyticalBackend",
    "TRINITY_DESCRIPTOR",
    "register_backend",
    "create_backend",
    "descriptor_for",
    "backend_names",
    "characteristics_of",
]


@dataclass(frozen=True)
class Measurement:
    """One measured kernel execution.

    Attributes
    ----------
    config:
        The configuration the kernel executed on.
    time_s:
        Measured wall time of one kernel invocation (seconds).
    cpu_plane_w:
        Measured average power of the primary power domain (CPU cores
        on Trinity; LITTLE cluster on the HMP; serial core on the
        MPSoC), in watts.
    nbgpu_plane_w:
        Measured average power of the secondary domain (northbridge+GPU
        on Trinity; big cluster + uncore on the HMP; throughput cores +
        uncore on the MPSoC), in watts.
    counters:
        Normalized performance-counter metrics
        (see :data:`repro.hardware.counters.COUNTER_NAMES`).
    """

    config: Configuration
    time_s: float
    cpu_plane_w: float
    nbgpu_plane_w: float
    counters: Mapping[str, float] = field(default_factory=dict)

    @property
    def total_power_w(self) -> float:
        """Whole-chip average power (sum of both domains)."""
        return self.cpu_plane_w + self.nbgpu_plane_w

    @property
    def performance(self) -> float:
        """Throughput: kernel invocations per second."""
        return 1.0 / self.time_s

    @property
    def energy_j(self) -> float:
        """Energy of one invocation (joules)."""
        return self.total_power_w * self.time_s


def characteristics_of(kernel: object) -> KernelCharacteristics:
    """Accept either raw characteristics or any object exposing them via
    a ``characteristics`` attribute (e.g. :class:`repro.workloads.Kernel`)."""
    if isinstance(kernel, KernelCharacteristics):
        return kernel
    chars = getattr(kernel, "characteristics", None)
    if isinstance(chars, KernelCharacteristics):
        return chars
    raise TypeError(
        f"expected KernelCharacteristics or an object with a "
        f".characteristics attribute, got {type(kernel).__name__}"
    )


# -- static machine description ---------------------------------------------


@dataclass(frozen=True)
class BlockDescriptor:
    """One device block of a backend: its P-state ladder, allowed
    active-unit counts, and affine voltage curve ``v = v0 + v1 * f``.

    ``label`` names the block in human-readable output (``"cpu"``,
    ``"little"``, ``"serial"``, ...).
    """

    label: str
    freqs_ghz: tuple[float, ...]
    thread_counts: tuple[int, ...]
    v0: float
    v1: float

    def __post_init__(self) -> None:
        if not self.freqs_ghz or list(self.freqs_ghz) != sorted(self.freqs_ghz):
            raise ValueError(f"{self.label}: frequency ladder must ascend")
        if len(set(self.freqs_ghz)) != len(self.freqs_ghz):
            raise ValueError(f"{self.label}: duplicate ladder frequencies")
        if not self.thread_counts or list(self.thread_counts) != sorted(
            self.thread_counts
        ):
            raise ValueError(f"{self.label}: thread counts must ascend")
        if any(f <= 0 for f in self.freqs_ghz) or any(
            n < 1 for n in self.thread_counts
        ):
            raise ValueError(f"{self.label}: ladder values must be positive")

    @property
    def max_freq_ghz(self) -> float:
        return self.freqs_ghz[-1]

    @property
    def min_freq_ghz(self) -> float:
        return self.freqs_ghz[0]

    @property
    def max_threads(self) -> int:
        return self.thread_counts[-1]

    def voltage(self, freq_ghz: float) -> float:
        """Core voltage at a ladder frequency (affine curve)."""
        return self.v0 + self.v1 * freq_ghz

    def index(self, freq_ghz: float) -> int:
        """Position of a frequency in the ladder (1e-9 tolerance)."""
        for i, f in enumerate(self.freqs_ghz):
            if abs(f - freq_ghz) < 1e-9:
                return i
        raise ValueError(
            f"{freq_ghz} GHz is not on the {self.label} ladder {self.freqs_ghz}"
        )


@dataclass(frozen=True, order=True)
class BlockConfig:
    """A configuration of a non-Trinity backend.

    Duck-types :class:`~repro.hardware.config.Configuration`: the same
    field names with the same roles (``device`` selects the block;
    ``cpu_freq_ghz`` is the primary block's frequency domain — the
    *host* anchor on secondary-block rows; ``gpu_freq_ghz`` the
    secondary block's), so every container, cache, and design-matrix
    consumer downstream handles both classes uniformly.  ``arch`` (the
    owning backend's registry name) leads the field order so configs of
    different backends never compare equal and never collide in
    process-wide caches.
    """

    arch: str
    device: Device
    cpu_freq_ghz: float
    n_threads: int
    gpu_freq_ghz: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.arch,
                    self.device,
                    self.cpu_freq_ghz,
                    self.n_threads,
                    self.gpu_freq_ghz,
                )
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_hash"]
        return state

    def __setstate__(self, state: dict) -> None:
        for k, v in state.items():
            object.__setattr__(self, k, v)
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.arch,
                    self.device,
                    self.cpu_freq_ghz,
                    self.n_threads,
                    self.gpu_freq_ghz,
                )
            ),
        )

    @property
    def is_gpu(self) -> bool:
        """Whether this configuration runs on the secondary block."""
        return self.device is Device.GPU

    def label(self) -> str:
        desc = descriptor_for(self.arch)
        if self.is_gpu:
            block = desc.secondary
            return (
                f"{block.label} {self.gpu_freq_ghz:.2f}GHz "
                f"x{self.n_threads}"
            )
        return f"{desc.primary.label} {self.cpu_freq_ghz:.2f}GHz x{self.n_threads}"


@dataclass(frozen=True)
class BackendDescriptor:
    """Static description of a backend's two device blocks.

    Provides everything :mod:`repro.core` historically pulled from the
    Trinity modules directly: configuration enumeration, sample
    configurations (the paper's Table II anchors, generalized to "both
    blocks fully powered"), and the per-block design rows.  The design
    rows follow one shared convention so regression coefficients are
    portable across backends (the transfer harness's premise):

    * primary performance — ``[f, n, f*n]`` (frequency and active-unit
      count, normalized to block maxima);
    * primary power — ``[f, n, f*n, v^2, n*f*v^2]``;
    * secondary performance — ``[g, h, g*h]`` where ``h`` is the
      block's second factor (host frequency on Trinity, active-unit
      count elsewhere);
    * secondary power — ``[g, h, g*h, vg^2, g*vg^2, h*vh^2]``.
    """

    name: str
    primary: BlockDescriptor
    secondary: BlockDescriptor

    # -- configuration enumeration -----------------------------------------

    def enumerate_configs(self) -> tuple[BlockConfig, ...]:
        """All configurations in deterministic order: the primary block
        (by frequency, then unit count), then the secondary block."""
        primary = [
            BlockConfig(
                arch=self.name,
                device=Device.CPU,
                cpu_freq_ghz=f,
                n_threads=n,
                gpu_freq_ghz=self.secondary.min_freq_ghz,
            )
            for f in self.primary.freqs_ghz
            for n in self.primary.thread_counts
        ]
        secondary = [
            BlockConfig(
                arch=self.name,
                device=Device.GPU,
                cpu_freq_ghz=self.host_freq_ghz(),
                n_threads=m,
                gpu_freq_ghz=g,
            )
            for g in self.secondary.freqs_ghz
            for m in self.secondary.thread_counts
        ]
        return tuple(primary + secondary)

    def host_freq_ghz(self) -> float:
        """Primary-block frequency recorded on secondary-block rows (the
        host/orchestrating domain; its idle-governed maximum here)."""
        return self.primary.max_freq_ghz

    def sample_configs(self) -> tuple[BlockConfig, BlockConfig]:
        """The two online sample configurations, primary first: each
        block fully powered, matching the paper's "common execution
        configurations in environments without power constraints"."""
        space = self.enumerate_configs()
        primary = [c for c in space if not c.is_gpu]
        secondary = [c for c in space if c.is_gpu]
        return (primary[-1], secondary[-1])

    # -- design rows --------------------------------------------------------

    def perf_row(self, cfg) -> np.ndarray:
        """Performance regressors of one configuration (width 3)."""
        if cfg.is_gpu:
            g = cfg.gpu_freq_ghz / self.secondary.max_freq_ghz
            h = cfg.n_threads / self.secondary.max_threads
            return np.array([g, h, g * h])
        f = cfg.cpu_freq_ghz / self.primary.max_freq_ghz
        n = cfg.n_threads / self.primary.max_threads
        return np.array([f, n, f * n])

    def power_row(self, cfg) -> np.ndarray:
        """Power regressors of one configuration (width 5 primary /
        6 secondary, voltage-aware like the Trinity rows)."""
        if cfg.is_gpu:
            g = cfg.gpu_freq_ghz / self.secondary.max_freq_ghz
            h = cfg.n_threads / self.secondary.max_threads
            vg = self.secondary.voltage(cfg.gpu_freq_ghz) / self.secondary.voltage(
                self.secondary.max_freq_ghz
            )
            vg2 = vg * vg
            return np.array([g, h, g * h, vg2, g * vg2, h * vg2])
        f = cfg.cpu_freq_ghz / self.primary.max_freq_ghz
        n = cfg.n_threads / self.primary.max_threads
        v = self.primary.voltage(cfg.cpu_freq_ghz) / self.primary.voltage(
            self.primary.max_freq_ghz
        )
        v2 = v * v
        return np.array([f, n, f * n, v2, n * f * v2])

    # -- validation ---------------------------------------------------------

    def validate(self, cfg) -> None:
        """Raise if ``cfg`` is not a point of this backend's space."""
        if getattr(cfg, "arch", None) != self.name:
            raise ValueError(f"{cfg!r} does not belong to backend {self.name!r}")
        block = self.secondary if cfg.is_gpu else self.primary
        freq = cfg.gpu_freq_ghz if cfg.is_gpu else cfg.cpu_freq_ghz
        block.index(freq)  # validates the ladder frequency
        if cfg.n_threads not in block.thread_counts:
            raise ValueError(
                f"{cfg.n_threads} active units outside {block.label} "
                f"counts {block.thread_counts}"
            )


class _TrinityDescriptor(BackendDescriptor):
    """The Trinity APU expressed as a descriptor.

    Enumeration, samples, and design rows delegate to the original
    Trinity definitions so descriptor consumers see exactly the
    configurations (and float-identical feature rows) the pre-extraction
    code produced.  Trinity's secondary block varies the *host* CPU
    frequency rather than a unit count, so the generic second factor is
    overridden accordingly.
    """

    def enumerate_configs(self) -> tuple[Configuration, ...]:
        return tuple(ConfigSpace())

    def host_freq_ghz(self) -> float:
        return pstates.CPU_MAX_FREQ_GHZ

    def sample_configs(self) -> tuple[Configuration, Configuration]:
        return (
            Configuration.cpu(pstates.CPU_MAX_FREQ_GHZ, pstates.N_CORES),
            Configuration.gpu(pstates.GPU_MAX_FREQ_GHZ, pstates.CPU_MAX_FREQ_GHZ),
        )

    def perf_row(self, cfg) -> np.ndarray:
        if cfg.is_gpu:
            g = cfg.gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
            h = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
            return np.array([g, h, g * h])
        f = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
        n = cfg.n_threads / pstates.N_CORES
        return np.array([f, n, f * n])

    def power_row(self, cfg) -> np.ndarray:
        if cfg.is_gpu:
            g = cfg.gpu_freq_ghz / pstates.GPU_MAX_FREQ_GHZ
            h = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
            vg = pstates.gpu_voltage(cfg.gpu_freq_ghz) / pstates.gpu_voltage(
                pstates.GPU_MAX_FREQ_GHZ
            )
            vh = pstates.cpu_voltage(cfg.cpu_freq_ghz) / pstates.cpu_voltage(
                pstates.CPU_MAX_FREQ_GHZ
            )
            vg2, vh2 = vg * vg, vh * vh
            return np.array([g, h, g * h, vg2, g * vg2, h * vh2])
        f = cfg.cpu_freq_ghz / pstates.CPU_MAX_FREQ_GHZ
        n = cfg.n_threads / pstates.N_CORES
        v = pstates.cpu_voltage(cfg.cpu_freq_ghz) / pstates.cpu_voltage(
            pstates.CPU_MAX_FREQ_GHZ
        )
        v2 = v * v
        return np.array([f, n, f * n, v2, n * f * v2])

    def validate(self, cfg) -> None:
        if not isinstance(cfg, Configuration):
            raise ValueError(f"{cfg!r} does not belong to backend {self.name!r}")
        # Configuration.__post_init__ already validated the ladders.


#: Descriptor of the paper's machine (registered as ``"trinity"``).
TRINITY_DESCRIPTOR = _TrinityDescriptor(
    name="trinity",
    primary=BlockDescriptor(
        label="cpu",
        freqs_ghz=pstates.CPU_FREQS_GHZ,
        thread_counts=tuple(range(1, pstates.N_CORES + 1)),
        v0=pstates._CPU_V0,
        v1=pstates._CPU_V1,
    ),
    secondary=BlockDescriptor(
        label="gpu",
        freqs_ghz=pstates.GPU_FREQS_GHZ,
        thread_counts=(1,),
        v0=pstates._GPU_V0,
        v1=pstates._GPU_V1,
    ),
)


class BlockConfigSpace:
    """Enumerable configuration space of a descriptor-defined backend.

    Satisfies the same container protocol as
    :class:`~repro.hardware.config.ConfigSpace` (deterministic order:
    the primary block, then the secondary block) and carries its
    :attr:`descriptor` so downstream layers can recover sample
    configurations and ladders without backend-specific imports.
    """

    def __init__(self, descriptor: BackendDescriptor) -> None:
        self.descriptor = descriptor
        self._configs = descriptor.enumerate_configs()
        self._index = {cfg: i for i, cfg in enumerate(self._configs)}

    def __iter__(self) -> Iterator:
        return iter(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, cfg) -> bool:
        return cfg in self._index

    def __getitem__(self, i: int):
        return self._configs[i]

    def index(self, cfg) -> int:
        """Position of ``cfg`` in the deterministic enumeration order."""
        try:
            return self._index[cfg]
        except KeyError:
            raise ValueError(f"{cfg} is not in the configuration space") from None

    def cpu_configs(self) -> list:
        """All primary-block configurations."""
        return [c for c in self._configs if not c.is_gpu]

    def gpu_configs(self) -> list:
        """All secondary-block configurations."""
        return [c for c in self._configs if c.is_gpu]

    def for_device(self, device: Device) -> list:
        """All configurations executing on ``device``'s block."""
        return [c for c in self._configs if c.device is device]


# -- the machine interface ---------------------------------------------------


class HardwareBackend(abc.ABC):
    """Abstract machine interface of the reproduction.

    A backend exposes two views of its machine (the protocol extracted
    from :class:`~repro.hardware.apu.TrinityAPU`):

    * deterministic ground truth (:meth:`true_time_s`,
      :meth:`true_power`, :meth:`true_table`) — oracle-only;
    * noisy measured executions (:meth:`run`) — the only view the
      modeling pipeline sees.

    Instances carry ``config_space``, ``noise``, ``power_constants``
    (a frozen, hashable calibration record keying the process-wide
    memo caches), ``boost`` (``None`` when the machine has no
    opportunistic overclocking), and ``fault_injector``.
    """

    #: Registry name of the backend class (e.g. ``"trinity"``).
    name: ClassVar[str] = ""

    # -- ground truth -------------------------------------------------------

    @abc.abstractmethod
    def true_time_s(self, kernel: object, cfg) -> float:
        """Deterministic execution time (seconds) of one invocation."""

    @abc.abstractmethod
    def true_power(self, kernel: object, cfg) -> "PowerBreakdown":
        """Deterministic per-plane average power."""

    def true_total_power_w(self, kernel: object, cfg) -> float:
        """Deterministic whole-chip average power (watts)."""
        return self.true_power(kernel, cfg).total_w

    def true_performance(self, kernel: object, cfg) -> float:
        """Deterministic throughput (invocations per second)."""
        return 1.0 / self.true_time_s(kernel, cfg)

    def true_table(self, kernel: object) -> dict:
        """Per-configuration ground truth ``{config: (total power W,
        performance)}`` over the whole space."""
        chars = characteristics_of(kernel)
        return {
            cfg: (
                self.true_power(chars, cfg).total_w,
                1.0 / self.true_time_s(chars, cfg),
            )
            for cfg in self.config_space
        }

    # -- measurement --------------------------------------------------------

    @abc.abstractmethod
    def run(self, kernel: object, cfg, *, rng=None) -> Measurement:
        """Execute one kernel invocation and return a noisy measurement."""

    def run_all_configs(self, kernel: object, *, rng=None) -> list[Measurement]:
        """Measure a kernel on every configuration (the paper's offline
        exhaustive characterization of training kernels)."""
        return [self.run(kernel, cfg, rng=rng) for cfg in self.config_space]

    # -- batch evaluation ---------------------------------------------------

    @abc.abstractmethod
    def batch_rate_power(
        self,
        kernel: object,
        is_gpu: np.ndarray,
        cpu_freq_ghz: np.ndarray,
        n_threads: np.ndarray,
        gpu_freq_ghz: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ground-truth ``(rate, total power)`` per row.

        Row semantics mirror the configuration fields; results are
        bit-identical to the scalar ground-truth calls (the backend
        conformance suite pins this for every registered backend).
        """

    # -- fault injection ----------------------------------------------------

    def inject_faults(self, faults) -> object | None:
        """Attach (or detach, with ``None``) a fault plan to the machine.

        Only *measured* runs are perturbed; ground truth stays exact,
        so oracle baselines and harness judgments are unaffected.
        """
        if faults is None:
            self.fault_injector = None
            return None
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(faults, FaultInjector):
            self.fault_injector = faults
        elif isinstance(faults, FaultPlan):
            self.fault_injector = FaultInjector(faults)
        else:
            raise TypeError(
                f"expected FaultPlan or FaultInjector, got {type(faults).__name__}"
            )
        return self.fault_injector


# Process-wide ground-truth memo caches for descriptor-defined backends,
# keyed by each backend's frozen constants record — mirroring (and
# disjoint from) TrinityAPU's caches, which are keyed by
# PowerModelConstants.  Distinct constants types can never collide.
_BLOCK_TRUTH_CACHES: dict[object, tuple[dict, dict]] = {}
_BLOCK_TABLE_CACHES: dict[object, dict] = {}


class AnalyticalBackend(HardwareBackend):
    """Shared machinery for analytical (closed-form) backends.

    Subclasses provide the physics — :meth:`_model_time_s` and
    :meth:`_model_power` over ``(characteristics, config)`` — plus a
    ``descriptor`` and a frozen ``power_constants`` record; this base
    supplies memoized ground truth, the noisy measurement path
    (including fault-injection plumbing), and enumeration, so a new
    machine is only its model equations.
    """

    def __init__(
        self,
        descriptor: BackendDescriptor,
        constants,
        *,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> None:
        self.descriptor = descriptor
        self.noise = noise if noise is not None else NoiseModel()
        self.power_constants = constants
        self.boost = None
        self.config_space = BlockConfigSpace(descriptor)
        self.fault_injector = None
        self._rng = np.random.default_rng(seed)
        caches = _BLOCK_TRUTH_CACHES.get(constants)
        if caches is None:
            caches = ({}, {})
            _BLOCK_TRUTH_CACHES[constants] = caches
        self._time_cache, self._power_cache = caches

    # -- physics hooks ------------------------------------------------------

    @abc.abstractmethod
    def _model_time_s(self, chars: KernelCharacteristics, cfg) -> float:
        """Deterministic invocation time of the analytical model."""

    @abc.abstractmethod
    def _model_power(self, chars: KernelCharacteristics, cfg) -> "PowerBreakdown":
        """Deterministic per-plane power of the analytical model."""

    # -- ground truth -------------------------------------------------------

    def true_time_s(self, kernel: object, cfg) -> float:
        chars = characteristics_of(kernel)
        t = self._time_cache.get((chars, cfg))
        if t is None:
            t = self._model_time_s(chars, cfg)
            self._time_cache[(chars, cfg)] = t
        return t

    def true_power(self, kernel: object, cfg) -> "PowerBreakdown":
        chars = characteristics_of(kernel)
        pb = self._power_cache.get((chars, cfg))
        if pb is None:
            pb = self._model_power(chars, cfg)
            self._power_cache[(chars, cfg)] = pb
        return pb

    def true_table(self, kernel: object) -> dict:
        chars = characteristics_of(kernel)
        tables = _BLOCK_TABLE_CACHES.get(self.power_constants)
        if tables is None:
            tables = {}
            _BLOCK_TABLE_CACHES[self.power_constants] = tables
        table = tables.get(chars)
        if table is None:
            table = {
                cfg: (
                    self.true_power(chars, cfg).total_w,
                    1.0 / self.true_time_s(chars, cfg),
                )
                for cfg in self.config_space
            }
            tables[chars] = table
        return table

    # -- measurement --------------------------------------------------------

    def run(self, kernel: object, cfg, *, rng=None) -> Measurement:
        inj = self.fault_injector
        if inj is None:
            return self._run_clean(kernel, cfg, rng=rng)
        ctx = inj.begin_run(cfg)
        return ctx.apply(self._run_clean(kernel, ctx.config, rng=rng))

    def _run_clean(self, kernel: object, cfg, *, rng=None) -> Measurement:
        from repro.hardware.counters import synthesize_counters

        chars = characteristics_of(kernel)
        if cfg not in self.config_space:
            raise ValueError(
                f"{cfg} is not a valid configuration for this machine"
            )
        r = rng if rng is not None else self._rng
        t = self.noise.perturb_time(self.true_time_s(chars, cfg), r)
        pb = self.true_power(chars, cfg)
        cpu_w = self.noise.perturb_power(pb.cpu_plane_w, r)
        nbgpu_w = self.noise.perturb_power(pb.nbgpu_plane_w, r)
        counters = self.noise.perturb_counters(
            synthesize_counters(chars, cfg), r
        )
        return Measurement(
            config=cfg,
            time_s=t,
            cpu_plane_w=cpu_w,
            nbgpu_plane_w=nbgpu_w,
            counters=counters,
        )


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., HardwareBackend]] = {}
_DESCRIPTORS: dict[str, BackendDescriptor] = {}

#: Modules whose import registers the built-in backends.
_BUILTIN_MODULES: tuple[str, ...] = (
    "repro.hardware.apu",
    "repro.hardware.biglittle",
    "repro.hardware.mpsoc",
)


def register_backend(
    name: str,
    factory: Callable[..., HardwareBackend],
    descriptor: BackendDescriptor,
) -> None:
    """Register a backend factory (``factory(seed=..., noise=...)``)
    and its descriptor under ``name``."""
    _REGISTRY[name] = factory
    _DESCRIPTORS[name] = descriptor


def _ensure_builtins() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def create_backend(
    name: str, *, seed: int = 0, noise: NoiseModel | None = None
) -> HardwareBackend:
    """Instantiate a registered backend by name."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {backend_names()}"
        ) from None
    return factory(seed=seed, noise=noise)


def descriptor_for(name: str) -> BackendDescriptor:
    """The registered descriptor of a backend name."""
    _ensure_builtins()
    try:
        return _DESCRIPTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {backend_names()}"
        ) from None


def backend_names() -> list[str]:
    """Names of every registered backend, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def descriptor_of_config(cfg) -> BackendDescriptor:
    """The descriptor owning a configuration (Trinity for
    :class:`~repro.hardware.config.Configuration`, registry lookup for
    :class:`BlockConfig`)."""
    if isinstance(cfg, Configuration):
        return TRINITY_DESCRIPTOR
    return descriptor_for(cfg.arch)


def sample_configs_of_space(space) -> tuple:
    """The two sample configurations of any configuration space —
    Trinity's Table II anchors for :class:`ConfigSpace`, the
    descriptor's for :class:`BlockConfigSpace`."""
    descriptor = getattr(space, "descriptor", None)
    if descriptor is None and isinstance(space, ConfigSpace):
        descriptor = TRINITY_DESCRIPTOR
    if descriptor is None:
        raise TypeError(
            f"cannot derive sample configurations from {type(space).__name__}"
        )
    return descriptor.sample_configs()
