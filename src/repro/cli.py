"""Command-line interface for the reproduction.

Gives the paper's workflow a shell-level surface::

    repro suite                          # list the benchmark suite
    repro frontier LU/Small/LUDecomposition
    repro train -o model.json --exclude-benchmark LU
    repro predict -m model.json LU/Small/LUDecomposition --cap 20
    repro evaluate --seed 0              # Table III end to end
    repro eval --telemetry-out t.json    # ... plus the telemetry report
    repro search --space demo            # DSE over a 1.18M-point space
    repro evaluate --backend biglittle   # ... on another hardware backend
    repro transfer --eval-backend mpsoc  # cross-architecture model transfer
    repro serve --rate 20000             # the concurrent decision server
    repro serve --monitor-port 9109      # ... with live /metrics + SLO alerts
    repro bench-serve                    # offered-load admission benchmark
    repro telemetry t.json               # pretty-print a saved report
    repro telemetry --diff a.json b.json # compare two reports
    repro top 127.0.0.1:9109             # ops view of a running monitor

Every command is deterministic given ``--seed``.

Output discipline: stdout carries machine-readable results only
(tables, timelines, artifact listings); progress and diagnostics go
through the structured logger on stderr (``--log-level``,
``--log-json``, ``--quiet`` — see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

from repro.core import (
    OnlinePredictor,
    ParetoFrontier,
    Scheduler,
    load_model,
    save_model,
    train_model,
)
from repro.evaluation import (
    render_frontier_table,
    render_table3,
    run_loocv,
    summarize,
)
from repro.hardware import NoiseModel, TrinityAPU
from repro.profiling import ProfilingLibrary
from repro.telemetry import (
    configure_logging,
    get_logger,
    load_telemetry,
    log_event,
    render_telemetry,
    write_telemetry,
)
from repro.workloads import build_suite

__all__ = ["main", "build_parser"]

_log = get_logger(__name__)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Adaptive configuration selection for power-constrained "
            "heterogeneous systems (Bailey et al., ICPP 2014) - "
            "reproduction CLI"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed (default 0)"
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="stderr log verbosity (default info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of human-readable text",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress logging (errors only); "
        "stdout results are unaffected",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.hardware.backend import backend_names

    backends = backend_names()
    backend_help = (
        "hardware backend to run against (default trinity; "
        "see docs/HARDWARE_BACKENDS.md)"
    )

    sub.add_parser("suite", help="list the 65 benchmark/input kernels")

    p_frontier = sub.add_parser(
        "frontier", help="print a kernel's ground-truth Pareto frontier"
    )
    p_frontier.add_argument("kernel", help="kernel uid, e.g. LU/Small/LUDecomposition")

    p_train = sub.add_parser("train", help="run the offline stage, save the model")
    p_train.add_argument("-o", "--output", required=True, help="model JSON path")
    p_train.add_argument(
        "--exclude-benchmark",
        default=None,
        help="hold out one benchmark (for honest later prediction)",
    )
    p_train.add_argument(
        "--n-clusters", type=int, default=5, help="cluster count (paper: 5)"
    )
    p_train.add_argument(
        "--transform",
        choices=("none", "log"),
        default="none",
        help="variance-stabilizing transform (paper Section VI)",
    )

    p_predict = sub.add_parser(
        "predict", help="two sample runs, prediction, and cap scheduling"
    )
    p_predict.add_argument("-m", "--model", required=True, help="model JSON path")
    p_predict.add_argument("kernel", help="kernel uid")
    p_predict.add_argument(
        "--cap", type=float, default=None, help="power cap in watts"
    )
    p_predict.add_argument(
        "--goal",
        choices=("performance", "energy", "edp"),
        default="performance",
        help="scheduling goal (default: performance)",
    )

    telemetry_help = (
        "write the run's telemetry report (span tree + metrics) to this "
        "JSON path"
    )

    p_eval = sub.add_parser(
        "evaluate",
        aliases=["eval"],
        help="full leave-one-benchmark-out method comparison",
    )
    p_eval.add_argument(
        "--backend", choices=backends, default="trinity", help=backend_help
    )
    p_eval.add_argument(
        "--no-freq-limiting",
        action="store_true",
        help="skip the CPU+FL / GPU+FL baselines",
    )
    p_eval.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="folds to evaluate concurrently (-1 = one per CPU; "
        "default: $REPRO_NJOBS or 1); results are identical for any value",
    )
    p_eval.add_argument("--telemetry-out", default=None, help=telemetry_help)
    p_eval.add_argument(
        "--fault-plan",
        default=None,
        help="inject faults into the online measurement paths from this "
        "scenario JSON (see docs/ROBUSTNESS.md); forces serial folds",
    )

    p_acc = sub.add_parser(
        "accuracy", help="cross-validated prediction accuracy (MAPE, rank tau)"
    )
    p_acc.add_argument(
        "--backend", choices=backends, default="trinity", help=backend_help
    )
    p_acc.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="folds to evaluate concurrently (-1 = one per CPU; "
        "default: $REPRO_NJOBS or 1)",
    )
    p_acc.add_argument("--telemetry-out", default=None, help=telemetry_help)

    p_rt = sub.add_parser(
        "runtime", help="run one application under a power cap, print timeline"
    )
    p_rt.add_argument("group", help='benchmark/input group, e.g. "CoMD Small"')
    p_rt.add_argument("--cap", type=float, default=22.0, help="power cap (W)")
    p_rt.add_argument(
        "--timesteps", type=int, default=6, help="timesteps to execute"
    )
    p_rt.add_argument("--telemetry-out", default=None, help=telemetry_help)
    p_rt.add_argument(
        "--fault-plan",
        default=None,
        help="inject faults into the application's measured runs from "
        "this scenario JSON (training stays clean)",
    )

    p_report = sub.add_parser(
        "report",
        help="regenerate every paper table/figure into a directory",
    )
    p_report.add_argument(
        "-o", "--output-dir", required=True, help="artifact directory"
    )
    p_report.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="cross-validation folds to run concurrently (-1 = one per "
        "CPU; default: $REPRO_NJOBS or 1)",
    )
    p_report.add_argument("--telemetry-out", default=None, help=telemetry_help)

    p_cluster = sub.add_parser(
        "cluster",
        help="fleet-scale budget allocation over a synthesized node pool",
    )
    p_cluster.add_argument(
        "--policy",
        choices=("uniform", "greedy", "maxmin"),
        default="greedy",
        help="allocation policy (default greedy)",
    )
    p_cluster.add_argument(
        "--budget",
        type=float,
        default=None,
        help="datacenter budget in watts (default: 1.3x the fleet's floors)",
    )
    p_cluster.add_argument(
        "--n-nodes", type=int, default=1024, help="fleet size (default 1024)"
    )
    p_cluster.add_argument(
        "--epochs",
        type=int,
        default=3,
        help="allocation epochs to run (default 3)",
    )
    p_cluster.add_argument(
        "--churn",
        type=int,
        default=0,
        help="nodes that leave the fleet each epoch after the first "
        "(exercises dynamic membership; default 0)",
    )
    p_cluster.add_argument(
        "--tree",
        action="store_true",
        help="split the budget through a node->rack->row->datacenter "
        "BudgetTree instead of one flat allocation",
    )
    p_cluster.add_argument("--telemetry-out", default=None, help=telemetry_help)

    p_search = sub.add_parser(
        "search",
        help="discover a near-Pareto frontier of a combinatorial config "
        "space by multi-objective search (no enumeration)",
    )
    p_search.add_argument(
        "--space",
        choices=("paper", "demo"),
        default="demo",
        help="'paper': the 42-point Trinity space (validated against "
        "exact enumeration); 'demo': a generated 1.18M-point space "
        "where enumeration is infeasible (default demo)",
    )
    p_search.add_argument(
        "--backend",
        choices=[b for b in backends if b != "trinity"],
        default=None,
        help="search a registered backend's configuration space instead "
        "of --space (trinity is '--space paper'); validated against "
        "exact enumeration",
    )
    p_search.add_argument(
        "--kernel",
        default="LU/Small/LUDecomposition",
        help="kernel uid to search for (default LU/Small/LUDecomposition)",
    )
    p_search.add_argument(
        "--population",
        type=int,
        default=96,
        help="search population size (default 96)",
    )
    p_search.add_argument(
        "--generations",
        type=int,
        default=40,
        help="search generation budget (default 40)",
    )
    p_search.add_argument(
        "--epsilon",
        type=float,
        default=1e-4,
        help="archive epsilon-dominance resolution (default 1e-4; "
        "0 keeps the exact non-dominated set)",
    )
    p_search.add_argument(
        "--baseline-budget",
        type=int,
        default=0,
        metavar="N",
        help="also run a random-sampling baseline with N evaluations "
        "and report the comparison (default: off)",
    )
    p_search.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="evaluation parallelism (default: $REPRO_NJOBS or serial)",
    )
    p_search.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the discovered frontier and run summary to "
        "this JSON path",
    )
    p_search.add_argument("--telemetry-out", default=None, help=telemetry_help)

    batching_help = (
        "requests coalesced into one grouped sweep (default: "
        "$REPRO_SERVER_MAX_BATCH or 1024)"
    )
    delay_help = (
        "batching window in microseconds (default: "
        "$REPRO_SERVER_MAX_DELAY_US or 200)"
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the concurrent decision server over a Poisson "
        "request stream",
    )
    p_serve.add_argument(
        "--requests",
        type=int,
        default=20000,
        help="requests to stream through the server (default 20000)",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=20000.0,
        help="offered load in requests/s (default 20000)",
    )
    p_serve.add_argument(
        "--backend", choices=backends, default="trinity", help=backend_help
    )
    p_serve.add_argument("--max-batch", type=int, default=None, help=batching_help)
    p_serve.add_argument(
        "--max-delay-us", type=float, default=None, help=delay_help
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        help="inject faults into the serving machine's sample runs from "
        "this scenario JSON (training stays clean)",
    )
    p_serve.add_argument("--telemetry-out", default=None, help=telemetry_help)
    p_serve.add_argument(
        "--monitor-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live Prometheus /metrics, /monitor.json, and "
        "/healthz on this port (0 = ephemeral); implies continuous "
        "monitoring",
    )
    p_serve.add_argument(
        "--monitor-interval-ms",
        type=float,
        default=200.0,
        help="monitor sampling interval in milliseconds (default 200)",
    )
    p_serve.add_argument(
        "--monitor-dump",
        default=None,
        metavar="PATH",
        help="write the final monitor state (ring buffer, alerts, "
        "exemplar traces) to this JSON path; implies monitoring",
    )
    p_serve.add_argument(
        "--monitor-jsonl",
        default=None,
        metavar="PATH",
        help="append one JSON line per monitor sample to this path",
    )
    p_serve.add_argument(
        "--slo-file",
        default=None,
        metavar="PATH",
        help="JSON list of SLO specs to alert on (default: the server's "
        "built-in latency/shed/error/degradation objectives); implies "
        "monitoring",
    )

    p_bserve = sub.add_parser(
        "bench-serve",
        help="admission benchmark: offered load vs sustained "
        "throughput and latency",
    )
    p_bserve.add_argument(
        "--rates",
        default="2000,20000,60000",
        help="comma-separated offered loads in requests/s "
        "(default 2000,20000,60000)",
    )
    p_bserve.add_argument(
        "--duration",
        type=float,
        default=0.5,
        help="seconds per offered load (default 0.5)",
    )
    p_bserve.add_argument(
        "--max-batch", type=int, default=None, help=batching_help
    )
    p_bserve.add_argument(
        "--max-delay-us", type=float, default=None, help=delay_help
    )
    p_bserve.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the benchmark results as JSON to this path",
    )

    p_transfer = sub.add_parser(
        "transfer",
        help="train on one backend, apply to another with k-sample "
        "recalibration, report accuracy/scheduling vs native and oracle",
    )
    p_transfer.add_argument(
        "--train-backend",
        choices=backends,
        default="trinity",
        help="backend the model is trained on (default trinity)",
    )
    p_transfer.add_argument(
        "--eval-backend",
        choices=backends,
        default="biglittle",
        help="backend the model is transferred to (default biglittle)",
    )
    p_transfer.add_argument(
        "--ks",
        default="0,1,3,5",
        help="comma-separated recalibration budgets per device block "
        "(default 0,1,3,5)",
    )
    p_transfer.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the transfer report as JSON to this path",
    )
    p_transfer.add_argument("--telemetry-out", default=None, help=telemetry_help)

    p_tel = sub.add_parser(
        "telemetry", help="pretty-print or compare saved telemetry reports"
    )
    p_tel.add_argument(
        "path",
        nargs="?",
        default=None,
        help="telemetry JSON path (from --telemetry-out)",
    )
    p_tel.add_argument(
        "--diff",
        nargs=2,
        default=None,
        metavar=("A", "B"),
        help="compare two telemetry reports (counter deltas, gauge "
        "shifts, histogram percentile movement) instead of printing one",
    )
    p_tel.add_argument(
        "--all",
        action="store_true",
        help="with --diff: include unchanged rows too",
    )

    p_top = sub.add_parser(
        "top",
        help="ops view of a live monitor (scrape), a saved monitor "
        "dump, or a cluster epoch simulation",
    )
    p_top.add_argument(
        "target",
        nargs="?",
        default="127.0.0.1:9109",
        help="host:port or URL of a 'repro serve --monitor-port' "
        "process (default 127.0.0.1:9109)",
    )
    p_top.add_argument(
        "--dump",
        default=None,
        metavar="PATH",
        help="render a saved --monitor-dump JSON instead of scraping",
    )
    p_top.add_argument(
        "--cluster",
        action="store_true",
        help="run a small managed-cluster epoch simulation in-process "
        "(budget squeeze mid-run) and render its monitor instead of "
        "scraping",
    )
    p_top.add_argument(
        "--epochs",
        type=int,
        default=8,
        help="with --cluster: epochs to simulate (default 8)",
    )
    p_top.add_argument(
        "--frames",
        type=int,
        default=1,
        help="frames to render before exiting (default 1; scrape mode)",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between frames (default 1.0)",
    )
    p_top.add_argument(
        "--window",
        type=float,
        default=5.0,
        help="rate/percentile window in seconds (default 5.0)",
    )
    return parser


def _cmd_suite(args: argparse.Namespace) -> int:
    suite = build_suite()
    print(f"{len(suite)} benchmark/input kernels "
          f"({suite.distinct_kernel_count()} distinct):")
    for group in suite.groups():
        kernels = suite.for_group(group)
        print(f"\n{group} ({len(kernels)} kernels):")
        for k in kernels:
            print(f"  {k.uid}  (weight {k.time_weight:.3f})")
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    apu = TrinityAPU(noise=NoiseModel.exact(), seed=args.seed)
    kernel = build_suite().get(args.kernel)
    frontier = ParetoFrontier.from_measurements(apu.run_all_configs(kernel))
    print(render_frontier_table(frontier, title=f"Frontier of {args.kernel}"))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    apu = TrinityAPU(seed=args.seed)
    library = ProfilingLibrary(apu, seed=args.seed)
    suite = build_suite()
    kernels = [
        k for k in suite if k.benchmark != args.exclude_benchmark
    ]
    if not kernels:
        print("error: exclusion leaves no training kernels", file=sys.stderr)
        return 2
    log_event(
        _log,
        logging.INFO,
        "characterizing",
        kernels=len(kernels),
        excluded=args.exclude_benchmark,
    )
    model = train_model(
        library,
        kernels,
        n_clusters=args.n_clusters,
        transform=args.transform,
    )
    save_model(model, args.output)
    print(
        f"Model saved to {args.output} "
        f"(clusters {model.clustering.sizes()}, "
        f"silhouette {model.clustering.silhouette:.3f})"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    apu = TrinityAPU(seed=args.seed)
    library = ProfilingLibrary(apu, seed=args.seed)
    kernel = build_suite().get(args.kernel)
    prediction = OnlinePredictor(model, library).predict(kernel)
    print(f"{args.kernel} -> cluster {prediction.cluster}")

    frontier = prediction.predicted_frontier()
    print(render_frontier_table(frontier, title="Predicted frontier:"))

    if args.cap is not None:
        decision = Scheduler(args.goal).select(prediction, args.cap)
        print(
            f"\nAt {args.cap:.1f} W ({args.goal}): {decision.config.label()}  "
            f"predicted {decision.predicted_power_w:.1f} W, "
            f"perf {decision.predicted_performance:.3f}"
            + ("" if decision.predicted_feasible else "  [cap infeasible]")
        )
        true_p = apu.true_total_power_w(kernel, decision.config)
        print(f"  ground truth at that configuration: {true_p:.1f} W")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    log_event(
        _log,
        logging.INFO,
        "loocv-start",
        seed=args.seed,
        backend=args.backend,
        n_jobs=args.n_jobs,
        freq_limiting=not args.no_freq_limiting,
        fault_plan=args.fault_plan,
    )
    report = run_loocv(
        seed=args.seed,
        backend=args.backend,
        include_freq_limiting=not args.no_freq_limiting,
        n_jobs=args.n_jobs,
        telemetry_out=args.telemetry_out,
        fault_plan=args.fault_plan,
    )
    print(render_table3(summarize(report.records), title="Methods vs oracle:"))
    t = report.timings
    print(
        f"\ntiming: profile {t.profile_s:.1f} s, train {t.train_s:.1f} s, "
        f"evaluate {t.evaluate_s:.1f} s, wall {t.wall_s:.1f} s "
        f"(n_jobs={t.n_jobs})"
    )
    if args.telemetry_out is not None:
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.evaluation import evaluate_prediction_accuracy

    log_event(
        _log,
        logging.INFO,
        "accuracy-start",
        seed=args.seed,
        backend=args.backend,
        n_jobs=args.n_jobs,
    )
    report = evaluate_prediction_accuracy(
        seed=args.seed, n_jobs=args.n_jobs, backend=args.backend
    )
    print(report.summary())
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    from repro.runtime import AdaptiveRuntime, Application

    suite = build_suite()
    app = Application.from_suite(suite, args.group)
    benchmark = app.kernels[0].benchmark
    apu = TrinityAPU(seed=args.seed)
    library = ProfilingLibrary(apu, seed=args.seed)
    log_event(_log, logging.INFO, "training-model", excluded=benchmark)
    model = train_model(
        library, [k for k in suite if k.benchmark != benchmark]
    )
    if args.fault_plan is not None:
        # Attached after training so the offline campaign stays clean;
        # only the application's online runs see the faults.
        from repro.faults import FaultPlan

        plan = FaultPlan.from_file(args.fault_plan)
        apu.inject_faults(plan)
        log_event(
            _log,
            logging.INFO,
            "fault-plan-attached",
            plan=plan.name,
            events=len(plan),
        )
    runtime = AdaptiveRuntime(model, ProfilingLibrary(apu, seed=args.seed + 1))
    trace = runtime.run(app, args.timesteps, args.cap)
    print(trace.render_timeline())
    print(trace.summary())
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.evaluation import (
        experiment_fig2_table1_frontier,
        experiment_fig3_tree,
        experiment_fig7_lu_frontier,
        experiment_table3_and_figures,
    )

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    log_event(_log, logging.INFO, "report-start", output_dir=str(out))
    singles = [
        experiment_fig2_table1_frontier(seed=args.seed),
        experiment_fig3_tree(seed=args.seed),
        experiment_fig7_lu_frontier(seed=args.seed),
    ]
    for result in singles:
        (out / f"{result.experiment_id}.txt").write_text(
            result.text + "\n", encoding="utf-8"
        )
    for key, result in experiment_table3_and_figures(
        seed=args.seed, n_jobs=args.n_jobs
    ).items():
        (out / f"{key}.txt").write_text(result.text + "\n", encoding="utf-8")
    written = sorted(p.name for p in out.glob("*.txt"))
    print(f"Wrote {len(written)} artifacts to {out}/:")
    for name in written:
        print(f"  {name}")
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.cluster import (
        BudgetTree,
        FrontierPool,
        allocate_pool,
        pool_allocation_summary,
    )

    if args.n_nodes < 1:
        print("error: --n-nodes must be >= 1", file=sys.stderr)
        return 2
    if args.epochs < 1:
        print("error: --epochs must be >= 1", file=sys.stderr)
        return 2
    if args.churn < 0:
        print("error: --churn must be >= 0", file=sys.stderr)
        return 2
    pool = FrontierPool.synthesize(args.n_nodes, seed=args.seed)
    budget = (
        args.budget
        if args.budget is not None
        else float(np.sum(pool.floors())) * 1.3
    )
    tree = BudgetTree.regular(pool) if args.tree else None
    log_event(
        _log,
        logging.INFO,
        "cluster-start",
        n_nodes=args.n_nodes,
        policy=args.policy,
        budget_w=round(budget, 1),
        tree=args.tree,
    )
    print(
        f"fleet of {args.n_nodes} synthesized nodes, policy {args.policy}, "
        f"budget {budget:.1f} W"
        + (" (hierarchical split)" if args.tree else "")
    )
    print(f"{'epoch':>5} {'nodes':>7} {'rate':>12} {'power_w':>12} "
          f"{'slack_w':>10} {'alloc_ms':>9}")
    departed: list[str] = []
    for epoch in range(args.epochs):
        if epoch and args.churn:
            survivors = pool.active_names()
            leaving = survivors[: min(args.churn, max(0, len(survivors) - 1))]
            pool.deactivate(leaving)
            departed.extend(leaving)
        t0 = time.perf_counter()
        if tree is not None:
            caps = tree.allocate(budget, args.policy)
        else:
            caps = allocate_pool(pool, budget, args.policy)
        alloc_ms = (time.perf_counter() - t0) * 1e3
        s = pool_allocation_summary(pool, caps, budget)
        print(
            f"{epoch:>5} {pool.n_active:>7} {s['predicted_rate']:>12.2f} "
            f"{s['predicted_power_w']:>12.1f} {s['slack_w']:>10.1f} "
            f"{alloc_ms:>9.2f}"
        )
    if departed:
        print(f"{len(departed)} nodes departed over the run")
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import (
        DecisionServer,
        ServerConfig,
        build_default_service,
        request_pool,
        run_open_loop,
    )
    from repro.telemetry import counter

    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return 2
    if args.rate <= 0:
        print("error: --rate must be positive", file=sys.stderr)
        return 2
    log_event(
        _log,
        logging.INFO,
        "serve-start",
        requests=args.requests,
        rate=args.rate,
        backend=args.backend,
        fault_plan=args.fault_plan,
    )
    monitor = None
    if (
        args.monitor_port is not None
        or args.monitor_dump is not None
        or args.monitor_jsonl is not None
        or args.slo_file is not None
    ):
        from repro.telemetry.monitor import (
            Monitor,
            default_server_slos,
            load_slo_specs,
        )

        if args.monitor_interval_ms <= 0:
            print("error: --monitor-interval-ms must be positive",
                  file=sys.stderr)
            return 2
        slos = (
            load_slo_specs(args.slo_file)
            if args.slo_file is not None
            else default_server_slos()
        )
        monitor = Monitor(slos=slos, jsonl=args.monitor_jsonl)
        # Start before the service is built so the warm phase (where
        # fault-plan degradation happens) is observed too.
        monitor.start(interval_s=args.monitor_interval_ms / 1e3)
        if args.monitor_port is not None:
            port = monitor.serve(args.monitor_port)
            log_event(
                _log,
                logging.INFO,
                "monitor-listening",
                port=port,
                slos=len(slos),
            )
    service = build_default_service(
        seed=args.seed, fault_plan=args.fault_plan, backend=args.backend
    )
    warm_errors = service.warm()
    config = ServerConfig.resolve(
        max_batch=args.max_batch, max_delay_us=args.max_delay_us
    )
    pool = request_pool(service.kernel_uids, seed=args.seed)
    requests_before = counter("server.requests").value
    batches_before = counter("server.batches").value
    with DecisionServer(service, config) as server:
        report = run_open_loop(
            server,
            pool,
            args.rate,
            args.requests / args.rate,
            seed=args.seed,
        )
    requests_n = counter("server.requests").value - requests_before
    batches_n = counter("server.batches").value - batches_before
    print(
        f"served {report.completed:,} decisions at "
        f"{report.sustained_rps:,.0f}/s sustained "
        f"(offered {report.offered_rps:,.0f}/s)"
    )
    print(
        f"latency p50 {report.p50_us:,.0f} us, p99 {report.p99_us:,.0f} us, "
        f"p999 {report.p999_us:,.0f} us"
    )
    print(
        f"batching: {requests_n:,} requests in {batches_n:,} batches "
        f"(mean {requests_n / max(batches_n, 1):,.1f}/batch, "
        f"max_batch {config.max_batch}, window {config.max_delay_us:.0f} us)"
    )
    print(f"shed {report.shed:,}, per-request errors {report.errors:,}"
          + (f", unservable kernels {len(warm_errors)}" if warm_errors else ""))
    if monitor is not None:
        monitor.stop()
        monitor.tick()  # one final sample so the run's tail is captured
        fired = sum(a.fired for a in monitor.slo_engine.alerts)
        cleared = sum(a.cleared for a in monitor.slo_engine.alerts)
        firing = [
            a.spec.name
            for a in monitor.slo_engine.alerts
            if a.state == "firing"
        ]
        print(
            f"slo: {fired} alerts fired, {cleared} cleared over the run"
            + (f", still firing: {', '.join(firing)}" if firing else "")
        )
        if args.monitor_dump is not None:
            monitor.write_dump(args.monitor_dump)
            log_event(
                _log,
                logging.INFO,
                "monitor-dump-written",
                path=args.monitor_dump,
            )
        monitor.close()
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.server import (
        ServerConfig,
        admission_benchmark,
        build_default_service,
        render_reports,
        request_pool,
    )

    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"error: bad --rates {args.rates!r}", file=sys.stderr)
        return 2
    if not rates or any(r <= 0 for r in rates):
        print("error: --rates must be positive numbers", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    log_event(_log, logging.INFO, "bench-serve-start", rates=rates)
    service = build_default_service(seed=args.seed)
    service.warm()
    config = ServerConfig.resolve(
        max_batch=args.max_batch, max_delay_us=args.max_delay_us
    )
    pool = request_pool(service.kernel_uids, seed=args.seed)
    reports = admission_benchmark(
        service, pool, rates, args.duration, config=config, seed=args.seed
    )
    print(render_reports(reports))
    if args.output is not None:
        payload = {
            "config": {
                "max_batch": config.max_batch,
                "max_delay_us": config.max_delay_us,
            },
            "loads": [vars(r) for r in reports],
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import diff_telemetry, render_telemetry_diff

    if (args.path is None) == (args.diff is None):
        print(
            "error: give either a telemetry path or --diff A B",
            file=sys.stderr,
        )
        return 2
    try:
        if args.diff is not None:
            a, b = (load_telemetry(p) for p in args.diff)
            print(render_telemetry_diff(
                diff_telemetry(a, b), all_rows=args.all
            ))
        else:
            print(render_telemetry(load_telemetry(args.path)))
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time
    from pathlib import Path
    from urllib.error import URLError

    from repro.telemetry.monitor import fetch_monitor_dump, render_top

    if args.cluster:
        return _run_cluster_top(args)
    if args.dump is not None:
        try:
            dump = _json.loads(
                Path(args.dump).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(render_top(dump, window_s=args.window), end="")
        return 0
    if args.frames < 1:
        print("error: --frames must be >= 1", file=sys.stderr)
        return 2
    for frame in range(args.frames):
        if frame:
            _time.sleep(args.interval)
        try:
            dump = fetch_monitor_dump(args.target)
        except (URLError, OSError, ValueError) as e:
            print(f"error: cannot scrape {args.target}: {e}",
                  file=sys.stderr)
            return 2
        if frame:
            print()
        print(render_top(dump, window_s=args.window), end="")
    return 0


def _run_cluster_top(args: argparse.Namespace) -> int:
    """``repro top --cluster``: a managed epoch simulation with a
    mid-run budget squeeze, monitored per epoch and rendered at the
    end.  The squeeze drives the over-budget SLO through a full
    fire-then-clear cycle on the epoch clock."""
    from repro.cluster import ClusterNode, ClusterPowerManager
    from repro.runtime import Application
    from repro.telemetry.monitor import (
        Monitor,
        default_cluster_slos,
        render_top,
    )

    if args.epochs < 4:
        print("error: --epochs must be >= 4", file=sys.stderr)
        return 2
    suite = build_suite()
    apu = TrinityAPU(seed=args.seed)
    library = ProfilingLibrary(apu, seed=args.seed)
    log_event(_log, logging.INFO, "top-cluster-training")
    model = train_model(library, list(suite))
    nodes = [
        ClusterNode(
            f"n{i}",
            Application.from_suite(suite, group),
            model,
            seed=args.seed + 1 + i,
        )
        for i, group in enumerate(("LU Small", "LU Large", "CoMD Small"))
    ]
    manager = ClusterPowerManager(nodes, policy="greedy")
    floors = sum(
        f.points[0].expected_power_w
        for f in manager.frontiers().values()
    )
    # Generous budget, then a squeeze below the fleet's floor power for
    # two epochs (over-budget is then unavoidable), then generous again.
    squeeze = range(args.epochs // 2, args.epochs // 2 + 2)

    def budgets(epoch: int) -> float:
        return floors * (0.6 if epoch in squeeze else 1.5)

    monitor = Monitor(
        slos=default_cluster_slos(short_window_s=1.0, long_window_s=2.0)
    )
    try:
        report = manager.run(
            budgets,
            n_epochs=args.epochs,
            timesteps_per_epoch=2,
            monitor=monitor,
        )
        print(render_top(monitor.dump(), window_s=args.window), end="")
        print(
            f"\n{len(report.epochs)} epochs simulated, budget "
            f"compliance {report.budget_compliance():.0%}"
        )
    finally:
        monitor.close()
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    import json as _json

    from repro.search import (
        SearchConfig,
        nsga2_search,
        paper_space,
        random_search,
        validate_against_exact,
    )

    kernel = build_suite().get(args.kernel)
    if args.backend is not None:
        from repro.search import backend_space

        space = backend_space(args.backend)
    elif args.space == "paper":
        space = paper_space()
    else:
        from repro.search import demo_space

        space = demo_space()
    log_event(
        _log,
        logging.INFO,
        "search-start",
        space=space.name,
        size=space.size,
        kernel=args.kernel,
        population=args.population,
        generations=args.generations,
    )
    cfg = SearchConfig(
        population=args.population,
        generations=args.generations,
        seed=args.seed,
        epsilon=args.epsilon,
        n_jobs=args.n_jobs,
    )
    result = nsga2_search(space, kernel, cfg)
    archive = result.archive

    print(f"space {space.name}: {space.size} points, {space.n_axes} axes")
    print(
        f"search: {result.evaluations} evaluations over "
        f"{result.generations} generations in {result.elapsed_s:.2f}s "
        f"({result.evaluations / max(result.elapsed_s, 1e-9):,.0f} eval/s)"
    )
    print(
        f"archive: {len(archive)} points, power "
        f"[{archive.min_power_w:.2f}, {float(archive.powers[-1]):.2f}] W, "
        f"hypervolume {result.hypervolume:.4f} "
        f"(ref {result.hypervolume_ref_w:.2f} W)"
    )

    summary: dict = {
        "space": space.name,
        "size": space.size,
        "kernel": args.kernel,
        "seed": args.seed,
        "evaluations": result.evaluations,
        "generations": result.generations,
        "elapsed_s": result.elapsed_s,
        "hypervolume": result.hypervolume,
        "hypervolume_ref_w": result.hypervolume_ref_w,
        "frontier": [
            {"power_w": float(pw), "rate": float(rt)}
            for pw, rt in zip(archive.powers, archive.performances)
        ],
    }

    if args.space == "paper" or args.backend is not None:
        report = validate_against_exact(space, kernel, archive)
        print(
            f"vs exact enumeration: hypervolume ratio "
            f"{report.hypervolume_ratio:.4f}, max per-cap rate regret "
            f"{report.max_cap_regret:.4%} over {report.n_caps} caps"
        )
        summary["validation"] = {
            "hypervolume_ratio": report.hypervolume_ratio,
            "max_cap_regret": report.max_cap_regret,
            "mean_cap_regret": report.mean_cap_regret,
            "n_caps": report.n_caps,
        }

    if args.baseline_budget > 0:
        baseline = random_search(
            space,
            kernel,
            args.baseline_budget,
            seed=args.seed,
            epsilon=args.epsilon,
            n_jobs=args.n_jobs,
            hypervolume_ref_w=result.hypervolume_ref_w,
        )
        matched = next(
            (e for e, hv in result.history if hv >= baseline.hypervolume),
            None,
        )
        print(
            f"random baseline: {baseline.evaluations} evaluations, "
            f"hypervolume {baseline.hypervolume:.4f}; search matched it "
            + (
                f"after {matched} evaluations "
                f"({baseline.evaluations / matched:.1f}x fewer)"
                if matched
                else "never"
            )
        )
        summary["baseline"] = {
            "evaluations": baseline.evaluations,
            "hypervolume": baseline.hypervolume,
            "search_evals_to_match": matched,
        }

    if args.json is not None:
        with open(args.json, "w") as fh:
            _json.dump(summary, fh, indent=2)
        log_event(_log, logging.INFO, "search-json-written", path=args.json)
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    import json as _json

    from repro.evaluation.transfer import run_transfer

    if args.train_backend == args.eval_backend:
        print("error: --train-backend and --eval-backend must differ",
              file=sys.stderr)
        return 2
    try:
        ks = sorted({int(k) for k in args.ks.split(",") if k.strip()})
    except ValueError:
        print(f"error: bad --ks {args.ks!r}", file=sys.stderr)
        return 2
    if not ks or any(k < 0 for k in ks):
        print("error: --ks must be non-negative integers", file=sys.stderr)
        return 2
    log_event(
        _log,
        logging.INFO,
        "transfer-start",
        train_backend=args.train_backend,
        eval_backend=args.eval_backend,
        ks=ks,
        seed=args.seed,
    )
    report = run_transfer(
        args.train_backend, args.eval_backend, ks=ks, seed=args.seed
    )
    print(
        f"transfer {report.train_backend} -> {report.eval_backend} "
        f"({report.n_kernels} kernels, seed {report.seed})"
    )
    header = (
        f"{'model':>14} {'recal/blk':>9} {'pMAPE%':>7} {'fMAPE%':>7} "
        f"{'tau':>6} {'under%':>7} {'perf%':>6} {'energy%':>8}"
    )
    print(header)

    def row(label: str, p) -> str:
        return (
            f"{label:>14} {p.k if p.k is not None else '-':>9} "
            f"{100 * p.power_mape:>7.1f} {100 * p.perf_mape:>7.1f} "
            f"{p.perf_rank_tau:>6.2f} {p.pct_under_limit:>7.1f} "
            f"{p.under_perf_vs_oracle_pct:>6.1f} "
            f"{p.under_energy_vs_oracle_pct:>8.1f}"
        )

    for p in report.transferred:
        print(row(f"transfer k={p.k}", p))
    print(row("native", report.native))
    print(
        "(perf%/energy% are vs the oracle in cap-compliant cases; "
        "the oracle is 100 by definition)"
    )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report.to_dict(), fh, indent=2)
        log_event(_log, logging.INFO, "transfer-json-written", path=args.json)
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        log_event(_log, logging.INFO, "telemetry-written", path=args.telemetry_out)
    return 0


_COMMANDS = {
    "suite": _cmd_suite,
    "frontier": _cmd_frontier,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "evaluate": _cmd_evaluate,
    "eval": _cmd_evaluate,
    "accuracy": _cmd_accuracy,
    "runtime": _cmd_runtime,
    "report": _cmd_report,
    "cluster": _cmd_cluster,
    "search": _cmd_search,
    "serve": _cmd_serve,
    "transfer": _cmd_transfer,
    "bench-serve": _cmd_bench_serve,
    "telemetry": _cmd_telemetry,
    "top": _cmd_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(
        level=args.log_level, json_mode=args.log_json, quiet=args.quiet
    )
    try:
        return _COMMANDS[args.command](args)
    except KeyError as e:
        # Unknown kernel uid and similar lookup failures.
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
