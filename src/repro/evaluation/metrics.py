"""Under-/over-limit metrics, weighted the paper's way.

Table III reports five columns per method: % of cases under the limit;
performance and power vs the oracle in under-limit cases; power and
performance vs the oracle in over-limit cases.  "The values in our
method comparisons are averaged across all kernels that compose each
benchmark, weighted by how much of the benchmark time is spent in each
kernel" (Section V-D).

Aggregation therefore happens in two stages: first a per-kernel mean
over that kernel's caps, then a time-weighted mean over kernels.  For
the conditional columns (under-/over-limit subsets), kernels with no
cases in the subset are excluded and weights renormalized; a column
with no cases anywhere is NaN.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.evaluation.harness import CapEvaluation

__all__ = ["MethodSummary", "summarize", "summarize_by_group"]


@dataclass(frozen=True)
class MethodSummary:
    """Table III's row for one method (ratios as percentages).

    Attributes
    ----------
    method:
        Method name.
    pct_under_limit:
        Percentage of evaluated caps the method's true power respected.
    under_perf_pct, under_power_pct:
        Performance / power vs the oracle in under-limit cases (%).
    over_power_pct, over_perf_pct:
        Power / performance vs the oracle in over-limit cases (%).
    n_cases:
        Number of (kernel, cap) records aggregated.
    """

    method: str
    pct_under_limit: float
    under_perf_pct: float
    under_power_pct: float
    over_power_pct: float
    over_perf_pct: float
    n_cases: int


def _weighted_kernel_mean(
    per_kernel: dict[str, tuple[float, float]],
) -> float:
    """Weighted mean of per-kernel values given {uid: (value, weight)}."""
    total_w = sum(w for _, w in per_kernel.values())
    if total_w == 0:
        return float("nan")
    return sum(v * w for v, w in per_kernel.values()) / total_w


def _aggregate(
    records: Sequence[CapEvaluation],
    value,
    predicate=None,
) -> float:
    """Two-stage aggregate: per-kernel mean over (optionally filtered)
    caps, then time-weighted mean over kernels."""
    per_kernel: dict[str, tuple[float, float]] = {}
    by_kernel: dict[str, list[CapEvaluation]] = {}
    for r in records:
        by_kernel.setdefault(r.kernel_uid, []).append(r)
    for uid, recs in by_kernel.items():
        selected = [r for r in recs if predicate is None or predicate(r)]
        if not selected:
            continue
        mean = sum(value(r) for r in selected) / len(selected)
        per_kernel[uid] = (mean, recs[0].time_weight)
    if not per_kernel:
        return float("nan")
    return _weighted_kernel_mean(per_kernel)


def summarize(
    records: Iterable[CapEvaluation],
    *,
    method: str | None = None,
) -> list[MethodSummary]:
    """Summaries for each method present in ``records`` (or just one).

    Returns summaries sorted by method name for determinism.
    """
    records = list(records)
    methods = (
        [method]
        if method is not None
        else sorted({r.method for r in records})
    )
    out: list[MethodSummary] = []
    for name in methods:
        recs = [r for r in records if r.method == name]
        if not recs:
            raise ValueError(f"no records for method {name!r}")
        out.append(
            MethodSummary(
                method=name,
                pct_under_limit=100.0
                * _aggregate(recs, lambda r: 1.0 if r.under_limit else 0.0),
                under_perf_pct=100.0
                * _aggregate(
                    recs, lambda r: r.perf_vs_oracle, lambda r: r.under_limit
                ),
                under_power_pct=100.0
                * _aggregate(
                    recs, lambda r: r.power_vs_oracle, lambda r: r.under_limit
                ),
                over_power_pct=100.0
                * _aggregate(
                    recs, lambda r: r.power_vs_oracle, lambda r: not r.under_limit
                ),
                over_perf_pct=100.0
                * _aggregate(
                    recs, lambda r: r.perf_vs_oracle, lambda r: not r.under_limit
                ),
                n_cases=len(recs),
            )
        )
    return out


def summarize_by_group(
    records: Iterable[CapEvaluation],
) -> dict[str, list[MethodSummary]]:
    """Per benchmark/input group summaries (the by-benchmark figures).

    Group order follows first appearance in ``records``.
    """
    records = list(records)
    groups: list[str] = []
    for r in records:
        if r.group not in groups:
            groups.append(r.group)
    return {
        g: summarize([r for r in records if r.group == g]) for g in groups
    }


def is_nan(x: float) -> bool:
    """NaN check usable on plain floats (re-exported for reporting)."""
    return math.isnan(x)
