"""Experiment registry: one entry per paper table/figure.

Each experiment function regenerates one artifact of the paper's
evaluation section and returns an :class:`ExperimentResult` holding both
structured data and a rendered text form.  The per-experiment benchmark
files under ``benchmarks/`` call these functions; EXPERIMENTS.md records
paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.frontier import ParetoFrontier
from repro.core.model import train_model
from repro.evaluation.loocv import LOOCVReport, run_loocv
from repro.evaluation.metrics import MethodSummary, summarize, summarize_by_group
from repro.evaluation.reporting import (
    render_fig4_scatter,
    render_frontier_table,
    render_group_bars,
    render_table3,
)
from repro.hardware.apu import TrinityAPU
from repro.hardware.noise import NoiseModel
from repro.profiling.library import ProfilingLibrary
from repro.workloads.suite import build_suite

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_fig2_table1_frontier",
    "experiment_fig3_tree",
    "experiment_fig7_lu_frontier",
    "experiment_table3_and_figures",
]


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    text: str
    data: Any


def _true_frontier(kernel_uid: str, seed: int = 0) -> ParetoFrontier:
    apu = TrinityAPU(noise=NoiseModel.exact(), seed=seed)
    kernel = build_suite().get(kernel_uid)
    return ParetoFrontier.from_measurements(apu.run_all_configs(kernel))


def experiment_fig2_table1_frontier(seed: int = 0) -> ExperimentResult:
    """Figure 2 / Table I: the Pareto frontier of LULESH's
    CalcFBHourglassForce kernel."""
    frontier = _true_frontier("LULESH/Large/CalcFBHourglassForce", seed)
    text = render_frontier_table(
        frontier,
        title="Table I / Fig 2: frontier of LULESH CalcFBHourglassForce",
    )
    return ExperimentResult("fig2_table1", "LULESH frontier", text, frontier)


def experiment_fig7_lu_frontier(seed: int = 0) -> ExperimentResult:
    """Figure 7: the LU Small frontier with its CPU-to-GPU cliff."""
    frontier = _true_frontier("LU/Small/LUDecomposition", seed)
    text = render_frontier_table(
        frontier, title="Fig 7: power-performance frontier of LU Small"
    )
    return ExperimentResult("fig7", "LU Small frontier", text, frontier)


def experiment_fig3_tree(seed: int = 0) -> ExperimentResult:
    """Figure 3: an example trained cluster-classification tree."""
    apu = TrinityAPU(seed=seed)
    library = ProfilingLibrary(apu, seed=seed)
    suite = build_suite()
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_model(library, train)
    text = "Fig 3: cluster classification tree\n" + model.classifier.render()
    return ExperimentResult("fig3", "classification tree", text, model)


def experiment_table3_and_figures(
    seed: int = 0, report: LOOCVReport | None = None, n_jobs: int | None = None
) -> dict[str, ExperimentResult]:
    """Table III and Figures 4, 5, 6, 8, 9 from one cross-validated run.

    The five artifacts share the same underlying evaluation, exactly as
    in the paper, so they are produced together.  Pass a precomputed
    ``report`` to re-render without re-running; ``n_jobs`` is forwarded
    to :func:`run_loocv` (results are identical for any value).
    """
    if report is None:
        report = run_loocv(seed=seed, n_jobs=n_jobs)
    overall = summarize(report.records)
    by_group = summarize_by_group(report.records)

    def series(metric: Callable[[MethodSummary], float]):
        return {
            group: {s.method: metric(s) for s in summaries}
            for group, summaries in by_group.items()
        }

    results = {
        "table3": ExperimentResult(
            "table3",
            "method comparison vs oracle",
            render_table3(overall, title="Table III: methods vs oracle"),
            overall,
        ),
        "fig4": ExperimentResult(
            "fig4",
            "under-limit vs performance scatter",
            render_fig4_scatter(overall, title="Fig 4: methods vs oracle"),
            overall,
        ),
        "fig5": ExperimentResult(
            "fig5",
            "under-limit performance by benchmark",
            render_group_bars(
                series(lambda s: s.under_perf_pct),
                title="Fig 5: % of oracle performance (under-limit cases)",
            ),
            series(lambda s: s.under_perf_pct),
        ),
        "fig6": ExperimentResult(
            "fig6",
            "percent under-limit by benchmark",
            render_group_bars(
                series(lambda s: s.pct_under_limit),
                title="Fig 6: % of cases under limit",
            ),
            series(lambda s: s.pct_under_limit),
        ),
        "fig8": ExperimentResult(
            "fig8",
            "over-limit power by benchmark",
            render_group_bars(
                series(lambda s: s.over_power_pct),
                title="Fig 8: % of oracle power (over-limit cases)",
                bar_scale=150.0,
            ),
            series(lambda s: s.over_power_pct),
        ),
        "fig9": ExperimentResult(
            "fig9",
            "over-limit performance by benchmark",
            render_group_bars(
                series(lambda s: s.over_perf_pct),
                title="Fig 9: % of oracle performance (over-limit cases)",
                bar_scale=500.0,
            ),
            series(lambda s: s.over_perf_pct),
        ),
    }
    return results


#: Registry of every regenerable artifact; benchmark files iterate it.
EXPERIMENTS: dict[str, Callable[..., Any]] = {
    "fig2_table1": experiment_fig2_table1_frontier,
    "fig3": experiment_fig3_tree,
    "fig7": experiment_fig7_lu_frontier,
    "table3_figs": experiment_table3_and_figures,
}
