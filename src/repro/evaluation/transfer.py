"""Cross-architecture model transfer with k-sample recalibration.

The offline stage is the expensive part of the paper's pipeline: an
exhaustive characterization of the training suite on the target
machine.  When a *new* architecture arrives, the question is how much
of an already-trained model carries over.  Because every backend's
design rows follow the same width/normalization convention
(:mod:`repro.core.features`), a model's clustering, per-cluster
regression coefficients, and classification tree can be applied to a
different backend's configuration space verbatim — only the
:class:`~repro.core.model.AdaptiveModel.config_space` changes.  Two
mechanisms then adapt the transplanted model to the new machine:

* **Sample anchoring (zero-shot, k = 0).**  Predictions are anchored on
  the two online sample measurements taken *on the target machine*
  (paper Table II), so absolute scale partially corrects for free.
* **k-sample recalibration.**  For ``k > 0`` the harness measures ``k``
  extra configurations per device block on the target machine and fits
  one least-squares-through-origin gain per (block, quantity):
  ``g = sum(meas * pred) / sum(pred ** 2)``.  Predictions for that
  block are scaled by ``g`` — a one-parameter correction of the
  transplanted surface, purchasable with a handful of runs instead of
  a full re-characterization.

The harness reports prediction accuracy (power/performance MAPE,
performance rank correlation) and scheduling quality (cap compliance,
performance and energy vs the oracle at the oracle-frontier caps) for
the transferred model at each ``k``, next to a natively-trained model
and the oracle on the same machine.  Every recalibration run is
counted on the ``transfer.recalibration_samples`` telemetry counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.model import AdaptiveModel
from repro.core.predictor import KernelPrediction
from repro.core.sample_configs import sample_configs_for
from repro.core.scheduler import Scheduler
from repro.hardware.backend import HardwareBackend, create_backend
from repro.methods.oracle import Oracle
from repro.profiling.store import CharacterizationStore
from repro.stats.kendall import kendall_tau
import logging

from repro.telemetry import counter, get_logger, log_event, trace_span
from repro.workloads import build_suite

__all__ = [
    "TransferPoint",
    "TransferReport",
    "recalibration_configs",
    "recalibration_gains",
    "recalibrated_prediction",
    "residual_risk_margin",
    "run_transfer",
]

_log = get_logger(__name__)

#: Default recalibration budgets evaluated by :func:`run_transfer`
#: (``k`` extra measured configurations per device block).
DEFAULT_KS: tuple[int, ...] = (0, 1, 3, 5)

# Every configuration measured purely for recalibration (not a sample
# anchor) increments this counter — see docs/OBSERVABILITY.md.
_RECAL_SAMPLES = counter("transfer.recalibration_samples")


def _transplant(model: AdaptiveModel, space) -> AdaptiveModel:
    """The transferred model: source clustering/regressions/classifier
    re-seated on the target backend's configuration space."""
    return AdaptiveModel(
        clustering=model.clustering,
        cluster_models=model.cluster_models,
        classifier=model.classifier,
        config_space=space,
    )


def recalibration_configs(space, k: int) -> tuple[tuple, tuple]:
    """Deterministic per-block recalibration picks.

    Returns ``(primary_configs, secondary_configs)`` — up to ``k``
    configurations per device block, spread evenly across each block's
    enumeration order (which sweeps the frequency ladder), excluding
    the sample anchors (those are always measured anyway).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    configs = tuple(space)
    samples = set(sample_configs_for(space))
    blocks = (
        [c for c in configs if not c.is_gpu and c not in samples],
        [c for c in configs if c.is_gpu and c not in samples],
    )
    picked: list[tuple] = []
    for block in blocks:
        if k == 0 or not block:
            picked.append(())
            continue
        n = min(k, len(block))
        if n == 1:
            idx = [len(block) // 2]
        else:
            idx = sorted({
                round(i * (len(block) - 1) / (n - 1)) for i in range(n)
            })
        picked.append(tuple(block[i] for i in idx))
    return picked[0], picked[1]


def _lsq_gain(pred: Sequence[float], meas: Sequence[float]) -> float:
    """Least-squares-through-origin gain ``argmin_g sum((g*pred - meas)^2)``.

    Falls back to 1.0 (no correction) when the predictions carry no
    energy — an all-zero prediction cannot be rescaled into anything.
    """
    p = np.asarray(pred, dtype=float)
    m = np.asarray(meas, dtype=float)
    denom = float(np.dot(p, p))
    if denom <= 0.0 or not np.isfinite(denom):
        return 1.0
    g = float(np.dot(p, m) / denom)
    return g if np.isfinite(g) and g > 0.0 else 1.0


def recalibration_gains(
    prediction: KernelPrediction,
    measurements: Mapping,
) -> dict[str, float]:
    """Per-(block, quantity) gains from measured recalibration configs.

    ``measurements`` maps recalibration configurations to their
    :class:`~repro.hardware.backend.Measurement` on the target machine.
    Returns gains keyed ``"{cpu,gpu}_{power,perf}"``; blocks with no
    recalibration measurements keep gain 1.0.
    """
    gains = {
        "cpu_power": 1.0, "cpu_perf": 1.0,
        "gpu_power": 1.0, "gpu_perf": 1.0,
    }
    for is_gpu, label in ((False, "cpu"), (True, "gpu")):
        cfgs = [c for c in measurements if c.is_gpu == is_gpu]
        if not cfgs:
            continue
        pred_pw = [prediction.predictions[c][0] for c in cfgs]
        pred_pf = [prediction.predictions[c][1] for c in cfgs]
        meas_pw = [measurements[c].total_power_w for c in cfgs]
        meas_pf = [measurements[c].performance for c in cfgs]
        gains[f"{label}_power"] = _lsq_gain(pred_pw, meas_pw)
        gains[f"{label}_perf"] = _lsq_gain(pred_pf, meas_pf)
    return gains


def residual_risk_margin(
    prediction: KernelPrediction,
    gains: Mapping[str, float],
    measurements: Mapping,
    *,
    cap_fraction: float = 0.45,
) -> float:
    """A guard-band sized from recalibration residuals.

    The per-block gains fix the transplanted power surface's *scale*
    but not its *shape*; the leftover relative error is exactly what a
    scheduler should guard against when judging cap feasibility.  This
    returns the RMS relative power residual over the recalibration
    measurements (post-gain), clamped to ``[0, cap_fraction]`` —
    usable directly as ``Scheduler.select(..., risk_margin=...)``.
    Returns 0.0 with no (or perfectly fitted) measurements.
    """
    errs = []
    for cfg, m in measurements.items():
        g = gains["gpu_power" if cfg.is_gpu else "cpu_power"]
        pred = g * prediction.predictions[cfg][0]
        errs.append((pred - m.total_power_w) / m.total_power_w)
    if not errs:
        return 0.0
    rms = float(np.sqrt(np.mean(np.square(errs))))
    return min(max(rms, 0.0), cap_fraction)


def recalibrated_prediction(
    prediction: KernelPrediction, gains: Mapping[str, float]
) -> KernelPrediction:
    """Apply per-block gains to a prediction, preserving config order."""
    scaled = {
        cfg: (
            pw * gains["gpu_power" if cfg.is_gpu else "cpu_power"],
            pf * gains["gpu_perf" if cfg.is_gpu else "cpu_perf"],
        )
        for cfg, (pw, pf) in prediction.predictions.items()
    }
    return KernelPrediction(
        kernel_uid=prediction.kernel_uid,
        cluster=prediction.cluster,
        predictions=scaled,
        cpu_sample=prediction.cpu_sample,
        gpu_sample=prediction.gpu_sample,
    )


@dataclass(frozen=True)
class TransferPoint:
    """Aggregate quality of one model variant on the target machine.

    ``k`` is the per-block recalibration budget; ``None`` marks the
    natively-trained baseline (no transfer, no recalibration).
    Percentages follow Table III conventions; MAPE/tau are computed
    against the deterministic ground truth over the full space.
    """

    k: int | None
    power_mape: float
    perf_mape: float
    perf_rank_tau: float
    pct_under_limit: float
    under_perf_vs_oracle_pct: float
    under_energy_vs_oracle_pct: float
    recalibration_runs: int
    n_cases: int
    mean_risk_margin: float = 0.0


@dataclass(frozen=True)
class TransferReport:
    """Everything :func:`run_transfer` measured for one backend pair."""

    train_backend: str
    eval_backend: str
    seed: int
    n_kernels: int
    transferred: tuple[TransferPoint, ...]
    native: TransferPoint
    ks: tuple[int, ...] = field(default=DEFAULT_KS)

    def point(self, k: int) -> TransferPoint:
        """The transferred-model point for recalibration budget ``k``."""
        for p in self.transferred:
            if p.k == k:
                return p
        raise KeyError(f"no transfer point for k={k}")

    def to_dict(self) -> dict:
        """JSON-ready form (consumed by BENCH_backends.json)."""
        def row(p: TransferPoint) -> dict:
            return {
                "k": p.k,
                "power_mape": p.power_mape,
                "perf_mape": p.perf_mape,
                "perf_rank_tau": p.perf_rank_tau,
                "pct_under_limit": p.pct_under_limit,
                "under_perf_vs_oracle_pct": p.under_perf_vs_oracle_pct,
                "under_energy_vs_oracle_pct": p.under_energy_vs_oracle_pct,
                "recalibration_runs": p.recalibration_runs,
                "n_cases": p.n_cases,
                "mean_risk_margin": p.mean_risk_margin,
            }

        return {
            "train_backend": self.train_backend,
            "eval_backend": self.eval_backend,
            "seed": self.seed,
            "n_kernels": self.n_kernels,
            "transferred": [row(p) for p in self.transferred],
            "native": row(self.native),
        }


@dataclass
class _Accumulator:
    """Running sums for one model variant across kernels and caps."""

    power_err: list = field(default_factory=list)
    perf_err: list = field(default_factory=list)
    taus: list = field(default_factory=list)
    under: int = 0
    cases: int = 0
    under_perf: list = field(default_factory=list)
    under_energy: list = field(default_factory=list)
    recal_runs: int = 0
    margins: list = field(default_factory=list)

    def point(self, k: int | None) -> TransferPoint:
        return TransferPoint(
            k=k,
            power_mape=float(np.mean(self.power_err)),
            perf_mape=float(np.mean(self.perf_err)),
            perf_rank_tau=float(np.mean(self.taus)),
            pct_under_limit=100.0 * self.under / self.cases,
            under_perf_vs_oracle_pct=(
                100.0 * float(np.mean(self.under_perf))
                if self.under_perf else float("nan")
            ),
            under_energy_vs_oracle_pct=(
                100.0 * float(np.mean(self.under_energy))
                if self.under_energy else float("nan")
            ),
            recalibration_runs=self.recal_runs,
            n_cases=self.cases,
            mean_risk_margin=(
                float(np.mean(self.margins)) if self.margins else 0.0
            ),
        )


def _score(
    acc: _Accumulator,
    prediction: KernelPrediction,
    kernel,
    apu: HardwareBackend,
    oracle: Oracle,
    scheduler: Scheduler,
    caps: Sequence[float],
    risk_margin: float = 0.0,
) -> None:
    """Score one kernel's prediction against ground truth and oracle."""
    configs = prediction.config_tuple
    true_pw = np.array([apu.true_total_power_w(kernel, c) for c in configs])
    true_pf = np.array([apu.true_performance(kernel, c) for c in configs])
    acc.power_err.extend(
        np.abs(prediction.power_array - true_pw) / true_pw
    )
    acc.perf_err.extend(
        np.abs(prediction.performance_array - true_pf) / true_pf
    )
    acc.taus.append(
        kendall_tau(prediction.performance_array, true_pf, variant="b")
    )
    truth = {c: (float(p), float(f)) for c, p, f in zip(configs, true_pw, true_pf)}
    acc.margins.append(risk_margin)
    for cap in caps:
        decision = scheduler.select(prediction, cap, risk_margin=risk_margin)
        o_cfg = oracle.decide(kernel, cap).config
        pw, pf = truth[decision.config]
        o_pw, o_pf = truth[o_cfg]
        acc.cases += 1
        if pw <= cap * (1.0 + 1e-9):
            acc.under += 1
            acc.under_perf.append(pf / o_pf)
            # Energy per unit of work = power / performance; < 100%
            # means the pick spends less energy than the oracle's.
            acc.under_energy.append((pw / pf) / (o_pw / o_pf))


def run_transfer(
    train_backend: str = "trinity",
    eval_backend: str = "biglittle",
    *,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 0,
    suite=None,
) -> TransferReport:
    """Train on one backend, evaluate (with recalibration) on another.

    Parameters
    ----------
    train_backend, eval_backend:
        Registered backend names (:func:`repro.hardware.backend.backend_names`).
    ks:
        Recalibration budgets to evaluate (extra measured
        configurations per device block; 0 = zero-shot transfer).
    seed:
        Noise seed for both machines' characterizations.
    suite:
        Kernel suite (defaults to the paper suite); the source model is
        trained on it and the transfer is evaluated over it on the
        target machine.
    """
    if train_backend == eval_backend:
        raise ValueError("transfer needs two distinct backends")
    kernels = list(suite if suite is not None else build_suite())

    with trace_span("transfer/train"):
        apu_a = create_backend(train_backend, seed=seed)
        store_a = CharacterizationStore.shared(
            kernels, seed=seed, backend=train_backend
        )
        model_a = AdaptiveModel.train(
            store_a.characterize(kernels), config_space=apu_a.config_space
        )

        apu_b = create_backend(eval_backend, seed=seed)
        store_b = CharacterizationStore.shared(
            kernels, seed=seed, backend=eval_backend
        )
        model_native = AdaptiveModel.train(
            store_b.characterize(kernels), config_space=apu_b.config_space
        )

    transferred = _transplant(model_a, apu_b.config_space)
    oracle = Oracle(apu_b)
    scheduler = Scheduler()
    ks = tuple(ks)
    recal_blocks = {k: recalibration_configs(apu_b.config_space, k) for k in ks}

    accs = {k: _Accumulator() for k in ks}
    native_acc = _Accumulator()
    with trace_span("transfer/evaluate"):
        for kernel in kernels:
            chars = store_b.characterization(kernel)
            caps = oracle.caps_for(kernel)
            base = transferred.predict_kernel(
                chars.cpu_sample, chars.gpu_sample, kernel_uid=kernel.uid
            )
            s_cpu, s_gpu = sample_configs_for(apu_b.config_space)
            anchors = {s_cpu: chars.cpu_sample, s_gpu: chars.gpu_sample}
            for k in ks:
                cpu_cfgs, gpu_cfgs = recal_blocks[k]
                recal = {
                    c: chars.measurements[c] for c in (*cpu_cfgs, *gpu_cfgs)
                }
                margin = 0.0
                if recal:
                    _RECAL_SAMPLES.inc(len(recal))
                    accs[k].recal_runs += len(recal)
                    # The sample anchors are measured anyway (they are
                    # the online stage's two runs), so they join the fit
                    # for free — and regularize the gain toward 1 when a
                    # recalibration config's prediction is degenerate.
                    fit = {**anchors, **recal}
                    gains = recalibration_gains(base, fit)
                    margin = residual_risk_margin(base, gains, fit)
                    pred = recalibrated_prediction(base, gains)
                else:
                    pred = base
                _score(
                    accs[k], pred, kernel, apu_b, oracle, scheduler, caps,
                    risk_margin=margin,
                )
            native_pred = model_native.predict_kernel(
                chars.cpu_sample, chars.gpu_sample, kernel_uid=kernel.uid
            )
            _score(
                native_acc, native_pred, kernel, apu_b, oracle, scheduler, caps
            )

    report = TransferReport(
        train_backend=train_backend,
        eval_backend=eval_backend,
        seed=seed,
        n_kernels=len(kernels),
        transferred=tuple(accs[k].point(k) for k in ks),
        native=native_acc.point(None),
        ks=ks,
    )
    log_event(
        _log,
        logging.INFO,
        "transfer-report",
        train_backend=train_backend,
        eval_backend=eval_backend,
        seed=seed,
        zero_shot_under_pct=report.transferred[0].pct_under_limit
        if report.transferred
        else None,
        native_under_pct=report.native.pct_under_limit,
    )
    return report
