"""Prediction-accuracy evaluation.

The paper's abstract claims the model "accurately predicts power and
performance"; its scheduling results depend on two distinct accuracy
properties:

* **magnitude accuracy** — relative error of predicted power (watts)
  and performance, per configuration;
* **ranking accuracy** — whether the predicted ordering of
  configurations matches the true ordering (Section III-B: the linear
  models exist "to rank configurations in performance and power in a
  computationally efficient manner").

This module computes both, cross-validated at benchmark granularity
exactly like the method comparison, and is exercised by the
prediction-accuracy benchmark.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.model import AdaptiveModel
from repro.core.sample_configs import sample_configs_for
from repro.evaluation.loocv import resolve_n_jobs
from repro.profiling.library import ProfilingLibrary
from repro.profiling.store import CharacterizationStore
from repro.stats.kendall import kendall_tau
from repro.workloads.suite import Suite, build_suite

__all__ = ["KernelAccuracy", "AccuracyReport", "evaluate_prediction_accuracy"]

#: Entropy tag keeping the accuracy evaluation's online-sample streams
#: disjoint from run_loocv's fold streams under the same master seed.
_ACCURACY_STREAM_TAG: int = 0x7919


@dataclass(frozen=True)
class KernelAccuracy:
    """Prediction accuracy for one held-out kernel.

    Attributes
    ----------
    kernel_uid:
        The kernel.
    cluster:
        The cluster the classification tree assigned.
    power_mape, perf_mape:
        Mean absolute percentage error over all configurations.
    power_max_ape, perf_max_ape:
        Worst-case absolute percentage error.
    power_rank_tau, perf_rank_tau:
        Kendall correlation between the predicted and true orderings of
        all configurations (1.0 = identical ranking).
    """

    kernel_uid: str
    cluster: int
    power_mape: float
    perf_mape: float
    power_max_ape: float
    perf_max_ape: float
    power_rank_tau: float
    perf_rank_tau: float


@dataclass
class AccuracyReport:
    """Cross-validated prediction accuracy over the full suite."""

    kernels: list[KernelAccuracy]

    def mean(self, field: str) -> float:
        """Mean of one accuracy field over all kernels."""
        return float(np.mean([getattr(k, field) for k in self.kernels]))

    def worst(self, field: str) -> float:
        """Worst kernel's value (max for errors, min for taus)."""
        values = [getattr(k, field) for k in self.kernels]
        if field.endswith("tau"):
            return float(np.min(values))
        return float(np.max(values))

    def summary(self) -> str:
        """Human-readable accuracy summary."""
        return "\n".join(
            [
                f"Prediction accuracy over {len(self.kernels)} held-out kernels:",
                f"  power:       MAPE {100 * self.mean('power_mape'):5.1f}% "
                f"(worst kernel {100 * self.worst('power_mape'):5.1f}%), "
                f"rank tau {self.mean('power_rank_tau'):.3f}",
                f"  performance: MAPE {100 * self.mean('perf_mape'):5.1f}% "
                f"(worst kernel {100 * self.worst('perf_mape'):5.1f}%), "
                f"rank tau {self.mean('perf_rank_tau'):.3f}",
            ]
        )


def evaluate_prediction_accuracy(
    suite: Suite | None = None,
    *,
    seed: int = 0,
    n_clusters: int = 5,
    transform: str = "none",
    power_anchor: bool = True,
    n_jobs: int | None = None,
    store: CharacterizationStore | None = None,
    backend: str = "trinity",
) -> AccuracyReport:
    """Leave-one-benchmark-out prediction accuracy for every kernel.

    For each fold the model is trained on the other benchmarks, each
    held-out kernel runs its two sample iterations, and the model's
    whole-space predictions are scored against ground truth.  Training
    profiles come from the shared profile-once characterization store
    (or an explicit ``store``); ``n_jobs`` runs folds concurrently with
    results identical for any value (``None`` defers to ``REPRO_NJOBS``,
    falling back to serial).
    """
    suite = suite if suite is not None else build_suite()
    if store is None:
        store = CharacterizationStore.shared(suite, seed=seed, backend=backend)
    apu = store.apu
    # Table II anchors of whatever machine the store profiles on.
    cpu_sample, gpu_sample = sample_configs_for(apu.config_space)
    store.characterize(list(suite))
    benchmarks = list(suite.benchmarks())
    fold_streams = np.random.SeedSequence(
        [seed, _ACCURACY_STREAM_TAG]
    ).spawn(len(benchmarks))

    def run_fold(fold_i: int, benchmark: str) -> list[KernelAccuracy]:
        train_kernels = [k for k in suite if k.benchmark != benchmark]
        model = AdaptiveModel.train(
            store.characterize(train_kernels),
            n_clusters=n_clusters,
            transform=transform,
            power_anchor=power_anchor,
            dissimilarity=store.dissimilarity_submatrix(train_kernels),
            config_space=apu.config_space,
        )
        online = ProfilingLibrary(apu, seed=fold_streams[fold_i])
        fold_results: list[KernelAccuracy] = []
        for kernel in suite.for_benchmark(benchmark):
            cpu_m = online.profile(kernel, cpu_sample).measurement
            gpu_m = online.profile(kernel, gpu_sample).measurement
            prediction = model.predict_kernel(
                cpu_m, gpu_m, kernel_uid=kernel.uid
            )
            pred_p = prediction.power_array
            pred_f = prediction.performance_array
            configs = prediction.config_tuple
            true_p = np.array(
                [apu.true_total_power_w(kernel, c) for c in configs]
            )
            true_f = np.array([apu.true_performance(kernel, c) for c in configs])
            ape_p = np.abs(pred_p - true_p) / true_p
            ape_f = np.abs(pred_f - true_f) / true_f
            fold_results.append(
                KernelAccuracy(
                    kernel_uid=kernel.uid,
                    cluster=prediction.cluster,
                    power_mape=float(ape_p.mean()),
                    perf_mape=float(ape_f.mean()),
                    power_max_ape=float(ape_p.max()),
                    perf_max_ape=float(ape_f.max()),
                    power_rank_tau=kendall_tau(pred_p, true_p),
                    perf_rank_tau=kendall_tau(pred_f, true_f),
                )
            )
        return fold_results

    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1:
        per_fold = [run_fold(i, b) for i, b in enumerate(benchmarks)]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            per_fold = list(
                pool.map(run_fold, range(len(benchmarks)), benchmarks)
            )
    return AccuracyReport(kernels=[k for fold in per_fold for k in fold])
