"""Evaluation harness: methods x caps x kernels.

Implements the paper's protocol (Section V-B): for each kernel, the
tested power caps are the power levels of the configurations on the
kernel's oracle frontier; each method commits to a configuration per
cap; the committed configuration's *ground-truth* power and performance
are then compared to the oracle's choice at the same cap, split into
under-limit and over-limit cases.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constants import respects_cap
from repro.hardware.config import Configuration
from repro.methods.base import PowerLimitMethod
from repro.methods.oracle import Oracle
from repro.telemetry import counter, get_logger, log_event, trace_span
from repro.workloads.kernel import Kernel

__all__ = ["CapEvaluation", "evaluate_kernel", "evaluate_suite"]

_log = get_logger(__name__)


@dataclass(frozen=True)
class CapEvaluation:
    """One (kernel, power cap, method) evaluation record.

    Power and performance are ground truth at the committed
    configuration (the oracle is judged on ground truth, so methods are
    too).
    """

    kernel_uid: str
    benchmark: str
    group: str
    time_weight: float
    method: str
    power_cap_w: float
    config: Configuration
    power_w: float
    performance: float
    oracle_config: Configuration
    oracle_power_w: float
    oracle_performance: float
    online_runs: int = 0

    @property
    def under_limit(self) -> bool:
        """Whether the method's true power respects the cap (shared
        :data:`repro.constants.CAP_EPSILON` tolerance: a method that
        picks the oracle's own configuration measures power exactly
        equal to the cap and must count as under-limit)."""
        return respects_cap(self.power_w, self.power_cap_w)

    @property
    def perf_vs_oracle(self) -> float:
        """Performance relative to the oracle's (1.0 = parity)."""
        return self.performance / self.oracle_performance

    @property
    def power_vs_oracle(self) -> float:
        """Power relative to the oracle's (1.0 = parity)."""
        return self.power_w / self.oracle_power_w


def evaluate_kernel(
    apu,
    oracle: Oracle,
    methods: Sequence[PowerLimitMethod],
    kernel: Kernel,
    *,
    caps: Iterable[float] | None = None,
) -> list[CapEvaluation]:
    """Evaluate every method on every cap of one kernel.

    Parameters
    ----------
    apu:
        Machine providing ground truth for judging decisions.
    oracle:
        The reference; also supplies the caps when ``caps`` is ``None``.
    methods:
        Methods to evaluate (the oracle itself need not be included —
        its choices appear in every record).
    kernel:
        The kernel under evaluation.
    caps:
        Optional explicit cap list (defaults to the oracle-frontier
        power levels, the paper's protocol).
    """
    cap_list = list(caps) if caps is not None else oracle.caps_for(kernel)
    if not cap_list:
        raise ValueError("no power caps to evaluate")

    with trace_span("online/evaluate"):
        for method in methods:
            method.prepare(kernel)

        # Batched cap selection: each method answers the whole sweep at
        # once (model-based methods through the shared batched decision
        # kernel, repro.server.engine.decide_batch — the same path the
        # decision server takes — stateful baselines via their
        # sequential default).  Per-method decision sequences are
        # identical to the historical per-cap loop — each method still
        # sees its caps in order on its own noise stream — so the
        # records below are bit-identical, merely gathered per method
        # first and then laid out cap-major as before.
        oracle_decisions = oracle.decide_many(kernel, cap_list)
        method_decisions = [
            method.decide_many(kernel, cap_list) for method in methods
        ]

        truth = apu.true_table(kernel)
        records: list[CapEvaluation] = []
        violations: dict[str, int] = {m.name: 0 for m in methods}
        log_debug = _log.isEnabledFor(logging.DEBUG)
        for ci, cap in enumerate(cap_list):
            oracle_cfg = oracle_decisions[ci].config
            o_power, o_perf = truth[oracle_cfg]
            for method, decisions in zip(methods, method_decisions):
                decision = decisions[ci]
                cfg = decision.config
                power_w, performance = truth[cfg]
                if not respects_cap(power_w, cap):
                    violations[method.name] += 1
                    if log_debug:
                        log_event(
                            _log,
                            logging.DEBUG,
                            "cap-violation",
                            kernel=kernel.uid,
                            method=method.name,
                            cap_w=round(cap, 3),
                            power_w=round(power_w, 3),
                            config=cfg.label(),
                        )
                records.append(
                    CapEvaluation(
                        kernel_uid=kernel.uid,
                        benchmark=kernel.benchmark,
                        group=kernel.group,
                        time_weight=kernel.time_weight,
                        method=method.name,
                        power_cap_w=cap,
                        config=cfg,
                        power_w=power_w,
                        performance=performance,
                        oracle_config=oracle_cfg,
                        oracle_power_w=o_power,
                        oracle_performance=o_perf,
                        online_runs=decision.online_runs,
                    )
                )
        # Per-method selection and cap-violation accounting (the
        # telemetry view behind the paper's %-under-limit columns),
        # plus per-backend record labels so multi-backend sweeps are
        # attributable in telemetry.json (docs/OBSERVABILITY.md).
        backend_name = getattr(apu, "name", "") or "unknown"
        counter(f"harness.backend.{backend_name}.records").inc(
            len(cap_list) * len(methods)
        )
        for method in methods:
            counter(f"harness.records.{method.name}").inc(len(cap_list))
            over = violations[method.name]
            if over:
                counter(f"harness.cap_violations.{method.name}").inc(over)
    return records


def evaluate_suite(
    apu,
    oracle: Oracle,
    methods: Sequence[PowerLimitMethod],
    kernels: Iterable[Kernel],
) -> list[CapEvaluation]:
    """Evaluate methods over many kernels (caps per the paper's protocol)."""
    records: list[CapEvaluation] = []
    for kernel in kernels:
        records.extend(evaluate_kernel(apu, oracle, methods, kernel))
    return records
