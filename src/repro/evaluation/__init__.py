"""Experimental harness reproducing the paper's evaluation (Section V).

``harness`` runs methods over kernels under oracle-frontier power caps;
``metrics`` computes the paper's under-/over-limit columns with kernel-
time weighting; ``loocv`` drives leave-one-benchmark-out
cross-validation; ``reporting`` renders every table/figure as text;
``experiments`` is the per-artifact registry.
"""

from repro.evaluation.accuracy import (
    AccuracyReport,
    KernelAccuracy,
    evaluate_prediction_accuracy,
)
from repro.evaluation.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_fig2_table1_frontier,
    experiment_fig3_tree,
    experiment_fig7_lu_frontier,
    experiment_table3_and_figures,
)
from repro.evaluation.golden import (
    canonical_record,
    record_lines,
    records_digest,
)
from repro.evaluation.harness import CapEvaluation, evaluate_kernel, evaluate_suite
from repro.evaluation.loocv import (
    LOOCVReport,
    LOOCVTimings,
    resolve_n_jobs,
    run_loocv,
)
from repro.evaluation.metrics import MethodSummary, summarize, summarize_by_group
from repro.evaluation.transfer import (
    TransferPoint,
    TransferReport,
    run_transfer,
)
from repro.evaluation.sensitivity import (
    SensitivityPoint,
    render_sweep,
    sweep_hyperparameter,
)
from repro.evaluation.reporting import (
    render_fig4_scatter,
    render_frontier_table,
    render_group_bars,
    render_table3,
)

__all__ = [
    "AccuracyReport",
    "CapEvaluation",
    "KernelAccuracy",
    "evaluate_prediction_accuracy",
    "EXPERIMENTS",
    "ExperimentResult",
    "LOOCVReport",
    "LOOCVTimings",
    "MethodSummary",
    "canonical_record",
    "evaluate_kernel",
    "evaluate_suite",
    "record_lines",
    "records_digest",
    "experiment_fig2_table1_frontier",
    "experiment_fig3_tree",
    "experiment_fig7_lu_frontier",
    "experiment_table3_and_figures",
    "render_fig4_scatter",
    "render_frontier_table",
    "render_group_bars",
    "render_sweep",
    "render_table3",
    "resolve_n_jobs",
    "run_loocv",
    "SensitivityPoint",
    "TransferPoint",
    "TransferReport",
    "run_transfer",
    "sweep_hyperparameter",
    "summarize",
    "summarize_by_group",
]
