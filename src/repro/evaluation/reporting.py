"""Text renderers for the paper's tables and figures.

Every table and figure in the paper's evaluation has a renderer here
producing the same rows/series as monospaced text, so benchmark runs
print directly comparable artifacts (the harness does not attempt to
match absolute numbers — the substrate is a simulator — only the
shape: who wins, by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.frontier import ParetoFrontier
from repro.evaluation.metrics import MethodSummary

__all__ = [
    "render_frontier_table",
    "render_table3",
    "render_fig4_scatter",
    "render_group_bars",
]


def _fmt(x: float, width: int = 6, decimals: int = 0) -> str:
    if math.isnan(x):
        return "-".rjust(width)
    return f"{x:.{decimals}f}".rjust(width)


def render_frontier_table(frontier: ParetoFrontier, title: str = "") -> str:
    """Table I-style rendering of a Pareto frontier: device, GPU
    frequency, threads, CPU frequency, power, normalized performance."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'Device':<7} {'GPU f.':>8} {'Threads':>8} {'CPU f.':>8} "
        f"{'Power':>8} {'Perf.*':>7}"
    )
    for cfg, power, norm in frontier.normalized():
        lines.append(
            f"{str(cfg.device):<7} "
            f"{cfg.gpu_freq_ghz:>6.3f}G "
            f"{cfg.n_threads:>8d} "
            f"{cfg.cpu_freq_ghz:>6.1f}G "
            f"{power:>6.1f} w "
            f"{norm:>7.2f}"
        )
    lines.append("*Normalized performance")
    return "\n".join(lines)


def render_table3(summaries: Sequence[MethodSummary], title: str = "") -> str:
    """Table III: the five-column method comparison vs the oracle."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'Method':<10} {'% Under':>8} "
        f"{'U %Perf':>8} {'U %Power':>9} "
        f"{'O %Power':>9} {'O %Perf':>8}"
    )
    # Paper's row order where present.
    order = {"Model": 0, "Model+FL": 1, "GPU+FL": 2, "CPU+FL": 3}
    for s in sorted(summaries, key=lambda s: order.get(s.method, 99)):
        lines.append(
            f"{s.method:<10} {_fmt(s.pct_under_limit, 8)} "
            f"{_fmt(s.under_perf_pct, 8)} {_fmt(s.under_power_pct, 9)} "
            f"{_fmt(s.over_power_pct, 9)} {_fmt(s.over_perf_pct, 8)}"
        )
    return "\n".join(lines)


def render_fig4_scatter(
    summaries: Sequence[MethodSummary], title: str = ""
) -> str:
    """Figure 4: each method as a point (% under limit, % oracle perf in
    under-limit cases), rendered as a labelled list plus an ASCII grid."""
    lines = []
    if title:
        lines.append(title)
    for s in sorted(summaries, key=lambda s: s.method):
        lines.append(
            f"  {s.method:<10} under-limit {_fmt(s.pct_under_limit, 5, 1)}%  "
            f"perf {_fmt(s.under_perf_pct, 5, 1)}% of oracle"
        )
    # Small ASCII scatter: x = % under limit, y = % oracle perf.
    width, height = 52, 12
    grid = [[" "] * width for _ in range(height)]
    for s in summaries:
        if math.isnan(s.pct_under_limit) or math.isnan(s.under_perf_pct):
            continue
        x = min(width - 1, max(0, int(s.pct_under_limit / 100 * (width - 1))))
        y = min(
            height - 1, max(0, int((100 - min(s.under_perf_pct, 100)) / 100 * (height - 1)))
        )
        grid[y][x] = s.method[0]  # first letter marks the method
    lines.append("  perf^")
    for row in grid:
        lines.append("      |" + "".join(row))
    lines.append("      +" + "-" * width + "> % under limit")
    return "\n".join(lines)


def render_group_bars(
    values: Mapping[str, Mapping[str, float]],
    *,
    title: str = "",
    unit: str = "%",
    bar_scale: float = 100.0,
    bar_width: int = 40,
) -> str:
    """Figures 5/6/8/9: grouped per-benchmark bars as text.

    Parameters
    ----------
    values:
        ``{group: {method: value}}`` (NaN values render as ``-``).
    bar_scale:
        Value corresponding to a full-width bar (values beyond it are
        clipped with a ``+`` marker, like the paper's clipped GPU+FL
        bars in Figure 9).
    """
    lines = []
    if title:
        lines.append(title)
    for group, per_method in values.items():
        lines.append(f"{group}:")
        for method in sorted(per_method):
            v = per_method[method]
            if math.isnan(v):
                lines.append(f"  {method:<10} {'-':>8}")
                continue
            filled = int(min(v, bar_scale) / bar_scale * bar_width)
            clipped = "+" if v > bar_scale else ""
            lines.append(
                f"  {method:<10} {v:>7.1f}{unit} "
                f"|{'#' * filled}{clipped}"
            )
    return "\n".join(lines)
