"""Leave-one-benchmark-out cross-validated evaluation.

Paper Section V-C: "for each benchmark, we form a training set that
consists of kernels from other benchmarks.  From kernels in the
training set, we compute clusters, cluster models, and a classification
tree, then apply them to kernels from the benchmark under validation.
In doing so, we ensure that the model is always applied to as-yet-unseen
benchmarks."

:func:`run_loocv` is the package's top-level experiment driver: it
produces the :class:`~repro.evaluation.harness.CapEvaluation` records
behind Table III and Figures 4-9.

The driver follows the paper's profile-once economy (Section III-D):
the suite is characterized exactly once through a shared
:class:`~repro.profiling.store.CharacterizationStore`, and every fold
slices its training subset (characterizations and dissimilarity
submatrix) from the store instead of re-profiling.  Folds are
independent and can run concurrently (``n_jobs``); results are
deterministic for a fixed seed regardless of parallelism because every
noise stream is spawned per fold from one :class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.clustering import cluster_kernels, resolve_warm_medoids
from repro.core.model import AdaptiveModel
from repro.core.scheduler import Scheduler
from repro.evaluation.harness import CapEvaluation, evaluate_suite
from repro.hardware.apu import TrinityAPU
from repro.methods.freq_limit import CpuFrequencyLimiting, GpuFrequencyLimiting
from repro.methods.model_method import ModelMethod, ModelPlusFL
from repro.methods.oracle import Oracle
from repro.profiling.library import ProfilingLibrary
from repro.profiling.store import CharacterizationStore
from repro.telemetry import (
    get_logger,
    get_tracer,
    histogram,
    log_event,
    trace_span,
    write_telemetry,
)
from repro.workloads.suite import Suite, build_suite

__all__ = ["LOOCVReport", "LOOCVTimings", "run_loocv", "resolve_n_jobs"]

_log = get_logger(__name__)


#: Environment default for ``n_jobs`` when callers leave it unset.
NJOBS_ENV_VAR = "REPRO_NJOBS"


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: ``-1`` means one worker per CPU.

    ``None`` (the unset default) consults the ``REPRO_NJOBS``
    environment variable — itself accepting ``-1`` — and falls back to
    serial execution when that is absent or empty.
    """
    if n_jobs is None:
        raw = os.environ.get(NJOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{NJOBS_ENV_VAR} must be an integer (>= 1 or -1), got {raw!r}"
            ) from None
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


@dataclass
class LOOCVTimings:
    """Wall-clock breakdown of one :func:`run_loocv` call.

    ``profile_s`` is the exhaustive characterization cost of this call
    (near zero when the shared store is already warm); ``train_s`` and
    ``evaluate_s`` are summed across folds, so under ``n_jobs > 1`` they
    can exceed ``wall_s``.

    This is the legacy numeric view; the telemetry span tree
    (:func:`repro.telemetry.telemetry_snapshot`, written by
    ``telemetry_out=``) subsumes it with the full per-phase hierarchy —
    see ``docs/OBSERVABILITY.md``.
    """

    profile_s: float = 0.0
    train_s: float = 0.0
    evaluate_s: float = 0.0
    wall_s: float = 0.0
    n_jobs: int = 1


@dataclass
class LOOCVReport:
    """Everything a cross-validated evaluation produced.

    Attributes
    ----------
    records:
        All (kernel, cap, method) evaluations across folds.
    fold_models:
        The model trained for each held-out benchmark.
    timings:
        Per-phase wall-clock breakdown of the run.
    """

    records: list[CapEvaluation] = field(default_factory=list)
    fold_models: dict[str, AdaptiveModel] = field(default_factory=dict)
    timings: LOOCVTimings = field(default_factory=LOOCVTimings)


def run_loocv(
    suite: Suite | None = None,
    *,
    seed: int = 0,
    n_clusters: int = 5,
    transform: str = "none",
    power_anchor: bool = True,
    composition_weight: float | None = None,
    ridge: float = 0.0,
    tree_max_depth: int = 4,
    risk_margin: float = 0.0,
    include_freq_limiting: bool = True,
    n_jobs: int | None = None,
    store: CharacterizationStore | None = None,
    telemetry_out: str | Path | None = None,
    fault_plan: "FaultPlan | str | Path | None" = None,
    backend: str = "trinity",
) -> LOOCVReport:
    """Run the paper's full cross-validated method comparison.

    Parameters
    ----------
    suite:
        Benchmark suite (defaults to the paper's 36-kernel/65-combo
        suite).
    seed:
        Master seed for the machine and every profiling stream.
        Per-fold streams are spawned from one
        :class:`numpy.random.SeedSequence`, so folds never share or
        collide streams across master seeds.
    n_clusters, transform, power_anchor, composition_weight, ridge,
    tree_max_depth:
        Offline-training knobs forwarded to
        :meth:`AdaptiveModel.train` (paper defaults).
    risk_margin:
        Scheduler risk margin for the model methods (Section VI
        extension; 0 reproduces the paper).
    include_freq_limiting:
        Also evaluate the CPU+FL / GPU+FL baselines (they are
        model-independent, so ablation callers may skip them).
    n_jobs:
        Folds to evaluate concurrently (``-1`` = one per CPU).  Results
        are identical for any value.  ``None`` (the default) defers to
        the ``REPRO_NJOBS`` environment variable, falling back to
        serial execution.
    store:
        Characterization store to draw training profiles from; defaults
        to the process-wide shared store for ``(suite, seed)``, which
        makes repeated calls (ablations, sweeps) profile the suite only
        once.
    telemetry_out:
        Optional path: write the process's ``telemetry.json`` snapshot
        (span tree + metrics) after the run.  Telemetry only observes —
        records are bit-identical with it enabled, disabled, or written.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` (or path to a scenario
        JSON) injected into the *online* measurement paths — sample
        runs, limiter control loops — while offline training profiles
        and the oracle's ground truth stay clean (see
        ``docs/ROBUSTNESS.md``).  An empty plan reproduces the
        fault-free records bit-for-bit.  Forces serial fold execution:
        the injector's run clock is shared, so parallel folds would
        make which run draws which fault nondeterministic.
    backend:
        Hardware backend to evaluate on (default ``"trinity"``, the
        paper's machine — its records are bit-identical to the
        pre-backend driver).  Non-Trinity backends skip the
        frequency-limiting baselines and the Model+FL hybrid (both are
        built on Trinity's P-state tables), evaluating ModelMethod
        against the oracle.

    Returns
    -------
    LOOCVReport
    """
    suite = suite if suite is not None else build_suite()
    if backend == "trinity":
        apu = TrinityAPU(seed=seed)
    else:
        from repro.hardware.backend import create_backend

        apu = create_backend(backend, seed=seed)
        include_freq_limiting = False
    oracle = Oracle(apu)
    if fault_plan is not None:
        from repro.faults import FaultPlan

        if isinstance(fault_plan, (str, Path)):
            fault_plan = FaultPlan.from_file(fault_plan)
        # Online paths only: the shared store profiles on its own
        # machine, so offline characterization stays clean — matching a
        # deployment whose training campaign predates the faults.
        apu.inject_faults(fault_plan)
    if store is None:
        store = CharacterizationStore.shared(suite, seed=seed, backend=backend)
    report = LOOCVReport()
    wall_start = time.perf_counter()
    fold_hist = histogram("loocv.fold_s")

    benchmarks = list(suite.benchmarks())
    fold_streams = np.random.SeedSequence(seed).spawn(len(benchmarks))

    all_kernels = list(suite)
    all_uids = [k.uid for k in all_kernels]
    # Populated once before folds run (see the warm-start block below);
    # folds only read these.
    warm: dict[str, object] = {"clustering": None, "D": None, "pool": None}

    def run_fold(fold_i: int, benchmark: str):
        with trace_span("fold"), fold_hist.time():
            online_ss, mfl_ss, cpufl_ss, gpufl_ss = fold_streams[fold_i].spawn(4)
            train_kernels = [k for k in suite if k.benchmark != benchmark]
            test_kernels = suite.for_benchmark(benchmark)

            t0 = time.perf_counter()
            characterizations = store.characterize(train_kernels)
            dissimilarity = store.dissimilarity_submatrix(
                train_kernels, composition_weight=composition_weight
            )
            init_uids = None
            if warm["clustering"] is not None:
                init_uids = resolve_warm_medoids(
                    warm["clustering"],
                    all_uids,
                    warm["D"],
                    {k.uid for k in train_kernels},
                )
            with trace_span("offline/train"):
                model = AdaptiveModel.train(
                    characterizations,
                    n_clusters=n_clusters,
                    transform=transform,
                    power_anchor=power_anchor,
                    composition_weight=composition_weight,
                    ridge=ridge,
                    tree_max_depth=tree_max_depth,
                    dissimilarity=dissimilarity,
                    initial_medoid_uids=init_uids,
                    gram_pool=warm["pool"],
                    config_space=apu.config_space,
                )
            train_s = time.perf_counter() - t0

            online_library = ProfilingLibrary(apu, seed=online_ss)
            scheduler = Scheduler(risk_margin=risk_margin)
            methods = [
                ModelMethod(model, online_library, scheduler=scheduler),
            ]
            if backend == "trinity":
                # The FL fallback walks Trinity's P-state ladders; on
                # other backends the hybrid is undefined.
                methods.append(
                    ModelPlusFL(
                        model, online_library, scheduler=scheduler, seed=mfl_ss
                    )
                )
            if include_freq_limiting:
                methods.append(CpuFrequencyLimiting(apu, seed=cpufl_ss))
                methods.append(GpuFrequencyLimiting(apu, seed=gpufl_ss))

            t0 = time.perf_counter()
            records = evaluate_suite(apu, oracle, methods, test_kernels)
            evaluate_s = time.perf_counter() - t0
            log_event(
                _log,
                logging.INFO,
                "fold-complete",
                fold=fold_i,
                benchmark=benchmark,
                test_kernels=len(test_kernels),
                records=len(records),
                train_s=round(train_s, 3),
                evaluate_s=round(evaluate_s, 3),
            )
        return benchmark, model, records, train_s, evaluate_s

    tracer = get_tracer()
    with trace_span("loocv") as loocv_node:
        # Profile-once: the full suite is characterized up front (a warm
        # shared store makes this free); folds only slice from it.
        t0 = time.perf_counter()
        full_chars = store.characterize(all_kernels)
        report.timings.profile_s = time.perf_counter() - t0

        # Training-engine warm start (docs/TRAINING_ENGINE.md): cluster
        # the *full* suite once, seed the regression Gram pool with the
        # reference cluster sums, and let each fold (a) seed its PAM
        # from the reference medoids projected onto its training subset
        # and (b) fit regressions by downdating the seeded sums.  Both
        # accelerators are result-preserving; seeding happens before
        # fold workers start so served statistics are deterministic for
        # any ``n_jobs``.
        if n_clusters <= len(all_kernels):
            full_D = store.dissimilarity_submatrix(
                all_kernels, composition_weight=composition_weight
            )
            with trace_span("offline/cluster"):
                full_clustering = cluster_kernels(
                    all_uids, n_clusters=n_clusters, dissimilarity=full_D
                )
            pool = store.gram_pool(
                transform=transform, power_anchor=power_anchor
            )
            pool.seed_cluster_sums(
                (
                    full_clustering.members(c)
                    for c in range(full_clustering.n_clusters)
                ),
                {c.kernel_uid: c for c in full_chars},
            )
            warm.update(clustering=full_clustering, D=full_D, pool=pool)

        jobs = resolve_n_jobs(n_jobs)
        if fault_plan is not None and jobs != 1:
            log_event(
                _log,
                logging.WARNING,
                "loocv-fault-plan-serial",
                requested_n_jobs=jobs,
                reason="fault injection shares one run clock across folds",
            )
            jobs = 1
        report.timings.n_jobs = jobs
        if jobs == 1:
            fold_results = [run_fold(i, b) for i, b in enumerate(benchmarks)]
        else:
            # Worker threads open their fold spans on empty span stacks;
            # the fallback parent hangs them under this run's loocv node.
            tracer.set_fallback(loocv_node)
            try:
                with ThreadPoolExecutor(max_workers=jobs) as pool:
                    fold_results = list(
                        pool.map(run_fold, range(len(benchmarks)), benchmarks)
                    )
            finally:
                tracer.set_fallback(None)

    for benchmark, model, records, train_s, evaluate_s in fold_results:
        report.fold_models[benchmark] = model
        report.records.extend(records)
        report.timings.train_s += train_s
        report.timings.evaluate_s += evaluate_s
    report.timings.wall_s = time.perf_counter() - wall_start
    log_event(
        _log,
        logging.INFO,
        "loocv-complete",
        folds=len(benchmarks),
        records=len(report.records),
        wall_s=round(report.timings.wall_s, 3),
        n_jobs=report.timings.n_jobs,
    )
    if telemetry_out is not None:
        write_telemetry(telemetry_out)
    return report
