"""Leave-one-benchmark-out cross-validated evaluation.

Paper Section V-C: "for each benchmark, we form a training set that
consists of kernels from other benchmarks.  From kernels in the
training set, we compute clusters, cluster models, and a classification
tree, then apply them to kernels from the benchmark under validation.
In doing so, we ensure that the model is always applied to as-yet-unseen
benchmarks."

:func:`run_loocv` is the package's top-level experiment driver: it
produces the :class:`~repro.evaluation.harness.CapEvaluation` records
behind Table III and Figures 4-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import AdaptiveModel, train_model
from repro.core.scheduler import Scheduler
from repro.evaluation.harness import CapEvaluation, evaluate_suite
from repro.hardware.apu import TrinityAPU
from repro.methods.freq_limit import CpuFrequencyLimiting, GpuFrequencyLimiting
from repro.methods.model_method import ModelMethod, ModelPlusFL
from repro.methods.oracle import Oracle
from repro.profiling.library import ProfilingLibrary
from repro.workloads.suite import Suite, build_suite

__all__ = ["LOOCVReport", "run_loocv"]


@dataclass
class LOOCVReport:
    """Everything a cross-validated evaluation produced.

    Attributes
    ----------
    records:
        All (kernel, cap, method) evaluations across folds.
    fold_models:
        The model trained for each held-out benchmark.
    """

    records: list[CapEvaluation] = field(default_factory=list)
    fold_models: dict[str, AdaptiveModel] = field(default_factory=dict)


def run_loocv(
    suite: Suite | None = None,
    *,
    seed: int = 0,
    n_clusters: int = 5,
    transform: str = "none",
    power_anchor: bool = True,
    composition_weight: float | None = None,
    ridge: float = 0.0,
    tree_max_depth: int = 4,
    risk_margin: float = 0.0,
    include_freq_limiting: bool = True,
) -> LOOCVReport:
    """Run the paper's full cross-validated method comparison.

    Parameters
    ----------
    suite:
        Benchmark suite (defaults to the paper's 36-kernel/65-combo
        suite).
    seed:
        Master seed for the machine and every profiling library.
    n_clusters, transform, power_anchor, composition_weight, ridge,
    tree_max_depth:
        Offline-training knobs forwarded to
        :meth:`AdaptiveModel.train` (paper defaults).
    risk_margin:
        Scheduler risk margin for the model methods (Section VI
        extension; 0 reproduces the paper).
    include_freq_limiting:
        Also evaluate the CPU+FL / GPU+FL baselines (they are
        model-independent, so ablation callers may skip them).

    Returns
    -------
    LOOCVReport
    """
    suite = suite if suite is not None else build_suite()
    apu = TrinityAPU(seed=seed)
    oracle = Oracle(apu)
    report = LOOCVReport()

    for fold_i, benchmark in enumerate(suite.benchmarks()):
        train_kernels = [k for k in suite if k.benchmark != benchmark]
        test_kernels = suite.for_benchmark(benchmark)

        train_library = ProfilingLibrary(apu, seed=seed * 1000 + fold_i)
        model = train_model(
            train_library,
            train_kernels,
            n_clusters=n_clusters,
            transform=transform,
            power_anchor=power_anchor,
            composition_weight=composition_weight,
            ridge=ridge,
            tree_max_depth=tree_max_depth,
        )
        report.fold_models[benchmark] = model

        online_library = ProfilingLibrary(apu, seed=seed * 1000 + 500 + fold_i)
        scheduler = Scheduler(risk_margin=risk_margin)
        methods = [
            ModelMethod(model, online_library, scheduler=scheduler),
            ModelPlusFL(
                model, online_library, scheduler=scheduler, seed=seed + fold_i
            ),
        ]
        if include_freq_limiting:
            methods.append(CpuFrequencyLimiting(apu, seed=seed + fold_i))
            methods.append(GpuFrequencyLimiting(apu, seed=seed + fold_i))

        report.records.extend(
            evaluate_suite(apu, oracle, methods, test_kernels)
        )
    return report
