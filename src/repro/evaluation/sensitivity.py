"""Hyperparameter sensitivity sweeps.

The individual ablation benchmarks probe single design choices; this
module generalizes them into one API: sweep any offline-training knob
over a value list, run the cross-validated Model-only evaluation at each
value, and collect the headline metrics.  Useful both for tuning on a
new machine and for the sensitivity benchmark's end-to-end grid.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.evaluation.loocv import resolve_n_jobs, run_loocv
from repro.evaluation.metrics import summarize
from repro.workloads.suite import Suite

__all__ = ["SensitivityPoint", "sweep_hyperparameter", "render_sweep"]

#: Offline-training knobs the sweep accepts.
_SWEEPABLE = {
    "n_clusters",
    "transform",
    "power_anchor",
    "composition_weight",
    "ridge",
    "tree_max_depth",
    "risk_margin",
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One point of a hyperparameter sweep (Model method only).

    Attributes
    ----------
    parameter, value:
        The knob and its setting.
    pct_under_limit, under_perf_pct:
        The headline metrics at that setting (see
        :class:`~repro.evaluation.metrics.MethodSummary`).
    """

    parameter: str
    value: Any
    pct_under_limit: float
    under_perf_pct: float


def sweep_hyperparameter(
    parameter: str,
    values: Sequence[Any],
    *,
    suite: Suite | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
    **fixed: Any,
) -> list[SensitivityPoint]:
    """Evaluate the Model method at each value of one training knob.

    Parameters
    ----------
    parameter:
        Knob name (one of ``n_clusters``, ``transform``,
        ``power_anchor``, ``composition_weight``, ``ridge``,
        ``tree_max_depth``, ``risk_margin``).
    values:
        The settings to evaluate.
    n_jobs:
        Sweep variants to evaluate concurrently (``-1`` = one per CPU).
        Every variant draws its training profiles from the same shared
        characterization store, so parallel variants do not repeat the
        exhaustive sweep; results are identical for any ``n_jobs``
        (``None`` defers to ``REPRO_NJOBS``, falling back to serial).
    fixed:
        Other knobs held constant across the sweep.
    """
    if parameter not in _SWEEPABLE:
        raise ValueError(
            f"unknown parameter {parameter!r}; sweepable: {sorted(_SWEEPABLE)}"
        )
    if not values:
        raise ValueError("values must be non-empty")
    bad_fixed = set(fixed) - _SWEEPABLE
    if bad_fixed:
        raise ValueError(f"unknown fixed parameters: {sorted(bad_fixed)}")
    if parameter in fixed:
        raise ValueError(f"{parameter!r} is both swept and fixed")

    def run_point(value: Any) -> SensitivityPoint:
        kwargs = dict(fixed)
        kwargs[parameter] = value
        report = run_loocv(
            suite, seed=seed, include_freq_limiting=False, **kwargs
        )
        summary = summarize(report.records, method="Model")[0]
        return SensitivityPoint(
            parameter=parameter,
            value=value,
            pct_under_limit=summary.pct_under_limit,
            under_perf_pct=summary.under_perf_pct,
        )

    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1:
        return [run_point(v) for v in values]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(run_point, values))


def render_sweep(points: Sequence[SensitivityPoint], title: str = "") -> str:
    """Text table of a sweep's results."""
    if not points:
        raise ValueError("no sweep points to render")
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"  {points[0].parameter:<20} {'% under':>8} {'U %perf':>8}"
    )
    for p in points:
        lines.append(
            f"  {str(p.value):<20} {p.pct_under_limit:8.1f} "
            f"{p.under_perf_pct:8.1f}"
        )
    return "\n".join(lines)
