"""Golden-record digests: the machine-checked bit-identity invariant.

Earlier PRs repeatedly claimed "``run_loocv(seed=0)`` records are
bit-identical" after each refactor, verified by ad-hoc manual diffs.
This module makes the claim a committed artifact: every
:class:`~repro.evaluation.harness.CapEvaluation` record canonicalizes to
a JSON line whose floats are rendered with :meth:`float.hex` (exact —
two digests match iff every bit of every float matches), and the suite's
records hash to one SHA-256 digest.  The frozen digest for
``run_loocv(seed=0)`` lives at ``tests/golden/loocv_seed0.sha256``;
``tests/test_golden_record.py`` asserts it on every run, so any change
that perturbs results — however slightly — fails CI instead of slipping
through a commit message.

Record order matters (it is part of the protocol: folds in benchmark
order, kernels in suite order, caps ascending per kernel, methods in
evaluation order), so the digest covers the sequence, not a set.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from repro.evaluation.harness import CapEvaluation

__all__ = ["canonical_record", "record_lines", "records_digest"]


def _canon_float(value: float) -> str:
    """Exact, locale-independent float rendering (bit-for-bit)."""
    return float(value).hex()


def canonical_record(record: CapEvaluation) -> dict[str, object]:
    """The canonical plain-data form of one evaluation record.

    Configurations render via :meth:`Configuration.label` (stable and
    human-readable); floats via :func:`float.hex` so equality of the
    canonical form is exactly bitwise equality of the record.
    """
    return {
        "kernel_uid": record.kernel_uid,
        "benchmark": record.benchmark,
        "group": record.group,
        "time_weight": _canon_float(record.time_weight),
        "method": record.method,
        "power_cap_w": _canon_float(record.power_cap_w),
        "config": record.config.label(),
        "power_w": _canon_float(record.power_w),
        "performance": _canon_float(record.performance),
        "oracle_config": record.oracle_config.label(),
        "oracle_power_w": _canon_float(record.oracle_power_w),
        "oracle_performance": _canon_float(record.oracle_performance),
        "online_runs": record.online_runs,
    }


def record_lines(records: Iterable[CapEvaluation]) -> list[str]:
    """One canonical JSON line per record, in input order."""
    return [
        json.dumps(canonical_record(r), sort_keys=True, separators=(",", ":"))
        for r in records
    ]


def records_digest(records: Iterable[CapEvaluation]) -> str:
    """SHA-256 hex digest of the canonicalized record sequence."""
    h = hashlib.sha256()
    for line in record_lines(records):
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()
