"""Deterministic fault injection and graceful degradation.

The paper's online protocol assumes every sample run, counter read, and
power measurement succeeds; production heterogeneous systems do not.
This package makes measurement unreliability first-class:

* :class:`FaultPlan` / :class:`FaultEvent` — seed-driven, replayable
  schedules of sensor dropouts, reading bias, counter corruption, stuck
  or unavailable P-states, thermal-throttle episodes, and failed runs
  (:mod:`repro.faults.plan`);
* :class:`FaultInjector` — wraps the machine's measurement paths and
  perturbs them per plan, leaving ground truth untouched
  (:mod:`repro.faults.injector`);
* :class:`SampleRunError` plus measurement-hygiene helpers — what the
  online pipeline catches and sanitizes when it degrades gracefully
  (retry with capped backoff, conservative-cluster fallback, P-state
  quarantine, worst-case limiter readings).

Attach a plan to a machine with ``apu.inject_faults(plan)``, or replay a
scenario end to end with ``run_loocv(..., fault_plan=...)`` / the CLI's
``--fault-plan``.  See ``docs/ROBUSTNESS.md`` for the taxonomy and the
degradation semantics.
"""

from repro.faults.errors import SampleRunError
from repro.faults.injector import (
    FALLBACK_CPU_PLANE_W,
    FALLBACK_NBGPU_PLANE_W,
    FALLBACK_TIME_S,
    FaultInjector,
    RunContext,
    conservative_measurement,
    measurement_is_finite,
    sanitize_measurement,
)
from repro.faults.plan import (
    FAULT_KINDS,
    PSTATE_FAULT_KINDS,
    SENSOR_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
)

#: Counters the degradation paths bump when they absorb a fault; any of
#: these increasing means the pipeline is running degraded.  The monitor
#: builds its default zero-tolerance burn-rate SLOs from this list
#: (:func:`repro.telemetry.monitor.slo.default_fault_slos`).
DEGRADATION_COUNTER_NAMES = (
    "faults.retries",
    "faults.sample_fallbacks",
    "faults.failed_invocations",
    "faults.corrupt_samples",
    "faults.stuck_executions",
    "faults.quarantined_configs",
)

__all__ = [
    "DEGRADATION_COUNTER_NAMES",
    "FALLBACK_CPU_PLANE_W",
    "FALLBACK_NBGPU_PLANE_W",
    "FALLBACK_TIME_S",
    "FAULT_KINDS",
    "PSTATE_FAULT_KINDS",
    "SENSOR_FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RunContext",
    "SampleRunError",
    "conservative_measurement",
    "measurement_is_finite",
    "sanitize_measurement",
]
