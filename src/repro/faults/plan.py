"""Deterministic fault schedules (the scenario files of the chaos suite).

A :class:`FaultPlan` is an immutable list of :class:`FaultEvent`\\ s,
each active over a half-open window of the machine's *measured-run
clock*: run ``i`` is the ``i``-th execution started through any injected
measurement path (``TrinityAPU.run`` or ``ProfilingLibrary.profile``),
counted per :class:`~repro.faults.injector.FaultInjector`.  Scheduling
on the run clock — not wall time — keeps scenarios perfectly
reproducible: the same seed and plan perturb exactly the same runs on
every replay, regardless of host speed.

Plans serialize to a small versioned JSON format (see
``docs/ROBUSTNESS.md``) so scenarios can be committed, replayed from the
CLI (``--fault-plan``), and swept in CI.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from math import isfinite
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.hardware import pstates

__all__ = ["FAULT_KINDS", "SENSOR_FAULT_KINDS", "PSTATE_FAULT_KINDS", "FaultEvent", "FaultPlan"]

#: Schema version of the fault-plan JSON format.
PLAN_FORMAT_VERSION = 1

#: Every supported fault kind (the taxonomy of docs/ROBUSTNESS.md).
FAULT_KINDS: tuple[str, ...] = (
    "power_dropout",
    "power_bias",
    "counter_nan",
    "counter_corrupt",
    "pstate_stuck",
    "pstate_unavailable",
    "thermal_throttle",
    "run_failure",
)

#: Kinds that corrupt the *readings* of an otherwise completed run.
SENSOR_FAULT_KINDS: frozenset[str] = frozenset(
    {"power_dropout", "power_bias", "counter_nan", "counter_corrupt"}
)

#: Kinds that change which P-state the hardware actually executes.
PSTATE_FAULT_KINDS: frozenset[str] = frozenset(
    {"pstate_stuck", "pstate_unavailable", "thermal_throttle"}
)

_DEVICES = (None, "cpu", "gpu")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault episode.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start, duration:
        The event is active for measured runs ``start <= i < start +
        duration`` on the injector's run clock.
    device:
        Scope: ``"cpu"`` targets the CPU frequency domain (including the
        host CPU of GPU configurations for P-state kinds, and the CPU
        power plane for sensor kinds), ``"gpu"`` the GPU domain, and
        ``None`` the run's own primary domain (sensor kinds: both
        planes).
    magnitude:
        Multiplicative factor for ``power_bias`` / ``counter_corrupt``
        (e.g. ``0.5`` halves the reading); ignored by other kinds.
    pstate_index:
        Ladder index for the P-state kinds: the index the domain is
        stuck at, unavailable at, or throttled down to.  Clamped to the
        targeted ladder's depth at apply time.
    """

    kind: str
    start: int
    duration: int = 1
    device: str | None = None
    magnitude: float = 1.0
    pstate_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.device not in _DEVICES:
            raise ValueError(f"device must be one of {_DEVICES}, got {self.device!r}")
        if not isfinite(self.magnitude) or self.magnitude <= 0:
            raise ValueError("magnitude must be finite and positive")
        max_depth = len(pstates.CPU_FREQS_GHZ)
        if not 0 <= self.pstate_index < max_depth:
            raise ValueError(f"pstate_index must be in [0, {max_depth})")

    @property
    def stop(self) -> int:
        """First run index the event is no longer active at."""
        return self.start + self.duration

    def active_at(self, run_index: int) -> bool:
        """Whether the event covers measured run ``run_index``."""
        return self.start <= run_index < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable schedule of fault events.

    Build one directly from events, deterministically with
    :meth:`random`, or load a committed scenario with :meth:`from_file`.
    """

    events: tuple[FaultEvent, ...] = ()
    name: str = "unnamed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"expected FaultEvent, got {type(ev).__name__}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def empty(self) -> bool:
        """Whether the plan schedules no events at all."""
        return not self.events

    @property
    def horizon(self) -> int:
        """First run index after which no event is ever active."""
        return max((ev.stop for ev in self.events), default=0)

    def active_events(self, run_index: int) -> tuple[FaultEvent, ...]:
        """Events covering measured run ``run_index``, in plan order."""
        return tuple(ev for ev in self.events if ev.active_at(run_index))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form of the plan (the JSON file's payload)."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "name": self.name,
            "events": [asdict(ev) for ev in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (validates the schema version)."""
        version = payload.get("version")
        if version != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported fault-plan version {version!r} "
                f"(expected {PLAN_FORMAT_VERSION})"
            )
        events = tuple(FaultEvent(**ev) for ev in payload.get("events", ()))
        return cls(events=events, name=str(payload.get("name", "unnamed")))

    def to_file(self, path: str | Path) -> Path:
        """Write the plan as committed-scenario JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a scenario file written by :meth:`to_file`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- generators --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        n_events: int = 8,
        horizon: int = 2000,
        max_duration: int = 50,
        kinds: Iterable[str] = FAULT_KINDS,
        name: str | None = None,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan (chaos-test generator).

        Pure function of its arguments: the same seed always yields the
        same plan, so any failure a chaos sweep finds is replayable from
        the seed alone.
        """
        kinds = tuple(kinds)
        if not kinds:
            raise ValueError("kinds must be non-empty")
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if n_events < 0:
            raise ValueError("n_events must be >= 0")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            device = _DEVICES[int(rng.integers(len(_DEVICES)))]
            max_index = (
                len(pstates.GPU_FREQS_GHZ)
                if device == "gpu"
                else len(pstates.CPU_FREQS_GHZ)
            )
            events.append(
                FaultEvent(
                    kind=kind,
                    start=int(rng.integers(max(1, horizon))),
                    duration=int(rng.integers(1, max(2, max_duration + 1))),
                    device=device,
                    # Log-uniform in [1/4, 4): covers both optimistic and
                    # pessimistic sensor bias.
                    magnitude=float(4.0 ** rng.uniform(-1.0, 1.0)),
                    pstate_index=int(rng.integers(max_index)),
                )
            )
        return cls(
            events=tuple(events),
            name=name if name is not None else f"random-{seed}",
        )
