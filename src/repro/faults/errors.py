"""Fault-injection error types.

Kept in a leaf module with no intra-package imports so that low-level
hardware modules (e.g. :mod:`repro.hardware.rapl`) can catch
:class:`SampleRunError` without creating an import cycle through the
rest of :mod:`repro.faults`.
"""

from __future__ import annotations

__all__ = ["SampleRunError"]


class SampleRunError(RuntimeError):
    """A measured kernel execution failed outright.

    Raised by :meth:`repro.faults.FaultInjector.begin_run` when an
    active ``run_failure`` event covers the run: the invocation produced
    no measurement at all (crashed process, lost sensor packet, evicted
    co-tenant).  Consumers are expected to retry with backoff or degrade
    gracefully — never to treat it as a programming error.
    """
