"""The fault injector: deterministic perturbation of measurement paths.

A :class:`FaultInjector` owns a :class:`~repro.faults.plan.FaultPlan`
and a thread-safe *measured-run clock*.  Measurement paths
(:meth:`repro.hardware.apu.TrinityAPU.run`,
:meth:`repro.profiling.library.ProfilingLibrary.profile`) call
:meth:`FaultInjector.begin_run` once per execution; the injector
advances the clock, resolves which plan events cover the run, and
returns a :class:`RunContext` describing

* the configuration the hardware *actually* executes (P-state faults:
  stuck, unavailable, thermally throttled), and
* the sensor faults to apply to the resulting readings
  (:meth:`RunContext.apply`: power dropout/bias, counter NaN/corruption).

``run_failure`` events abort the run by raising
:class:`~repro.faults.errors.SampleRunError` instead.

The injector never touches ground truth: oracle baselines and the
evaluation harness keep judging on :meth:`TrinityAPU.true_table`, which
is exactly what lets the chaos suite assert that injected faults never
*improve* reported results.

Every event activation increments ``faults.injected.total`` and
``faults.injected.<kind>`` in the telemetry registry, so a scenario's
telemetry.json shows at least as many injections as scheduled events
whose windows were reached.
"""

from __future__ import annotations

import math
import threading
from dataclasses import replace
from typing import Mapping

from repro.faults.errors import SampleRunError
from repro.faults.plan import (
    PSTATE_FAULT_KINDS,
    SENSOR_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
)
from repro.hardware import pstates
from repro.hardware.config import Configuration, Device
from repro.telemetry import counter

__all__ = [
    "FaultInjector",
    "RunContext",
    "conservative_measurement",
    "measurement_is_finite",
    "sanitize_measurement",
]

_INJECTED_TOTAL = counter("faults.injected.total")
_INJECTED_BY_KIND = {
    kind: counter(f"faults.injected.{kind}") for kind in (
        "power_dropout",
        "power_bias",
        "counter_nan",
        "counter_corrupt",
        "pstate_stuck",
        "pstate_unavailable",
        "thermal_throttle",
        "run_failure",
    )
}

#: Conservative fallback readings used when a sample measurement is
#: missing or corrupt beyond repair: a slow, mid-power observation that
#: biases downstream predictions toward caution rather than optimism.
FALLBACK_TIME_S: float = 1.0
FALLBACK_CPU_PLANE_W: float = 12.0
FALLBACK_NBGPU_PLANE_W: float = 8.0


def _event_targets_run(event: FaultEvent, cfg: Configuration) -> bool:
    """Whether an event's device scope covers a run on ``cfg``."""
    if event.device is None:
        return True
    if event.device == "cpu":
        # Every configuration has a CPU frequency domain (GPU configs
        # carry the host CPU's P-state).
        return True
    return cfg.device is Device.GPU


def _substitute_pstates(
    cfg: Configuration, events: tuple[FaultEvent, ...]
) -> Configuration:
    """The configuration the hardware executes under P-state faults.

    Events apply in plan order.  ``device`` scoping: ``"cpu"`` targets
    the CPU frequency ladder (host CPU for GPU configurations),
    ``"gpu"`` the GPU ladder of GPU configurations, ``None`` the run's
    primary domain.  Indices are clamped to the targeted ladder.
    """
    ci = pstates.cpu_pstate_index(cfg.cpu_freq_ghz)
    gi = (
        pstates.gpu_pstate_index(cfg.gpu_freq_ghz)
        if cfg.device is Device.GPU
        else None
    )
    for ev in events:
        if ev.kind not in PSTATE_FAULT_KINDS:
            continue
        target_gpu = ev.device == "gpu" or (
            ev.device is None and cfg.device is Device.GPU
        )
        if target_gpu:
            if gi is None:
                continue  # CPU run: no GPU ladder to perturb
            idx = min(ev.pstate_index, len(pstates.GPU_FREQS_GHZ) - 1)
            gi = _apply_pstate_fault(ev.kind, gi, idx, len(pstates.GPU_FREQS_GHZ))
        else:
            idx = min(ev.pstate_index, len(pstates.CPU_FREQS_GHZ) - 1)
            ci = _apply_pstate_fault(ev.kind, ci, idx, len(pstates.CPU_FREQS_GHZ))
    if cfg.device is Device.GPU:
        return Configuration.gpu(
            pstates.GPU_FREQS_GHZ[gi], pstates.CPU_FREQS_GHZ[ci]
        )
    return Configuration.cpu(pstates.CPU_FREQS_GHZ[ci], cfg.n_threads)


def _apply_pstate_fault(kind: str, current: int, idx: int, depth: int) -> int:
    if kind == "pstate_stuck":
        return idx
    if kind == "thermal_throttle":
        return min(current, idx)
    # pstate_unavailable: the requested state cannot be entered; the
    # governor falls back to the next lower state (next higher at the
    # ladder floor).
    if current == idx:
        return current - 1 if current > 0 else min(current + 1, depth - 1)
    return current


class RunContext:
    """Resolved faults of one measured run (returned by
    :meth:`FaultInjector.begin_run`).

    Attributes
    ----------
    config:
        Configuration the hardware actually executes (equals the
        requested one unless a P-state fault intervened).
    requested:
        The configuration the caller asked for.
    """

    __slots__ = ("config", "requested", "_sensor_events")

    def __init__(
        self,
        config: Configuration,
        requested: Configuration,
        sensor_events: tuple[FaultEvent, ...],
    ) -> None:
        self.config = config
        self.requested = requested
        self._sensor_events = sensor_events

    @property
    def clean(self) -> bool:
        """Whether this run is entirely unaffected by the plan."""
        return self.config is self.requested and not self._sensor_events

    def apply(self, measurement):
        """Perturb a completed measurement with this run's sensor faults.

        Returns the measurement unchanged (same object) when no sensor
        event covers the run — the empty-plan path is bit-identical.
        """
        if not self._sensor_events:
            return measurement
        cpu_w = measurement.cpu_plane_w
        nbgpu_w = measurement.nbgpu_plane_w
        counters: Mapping[str, float] = measurement.counters
        for ev in self._sensor_events:
            on_cpu_plane = ev.device in (None, "cpu")
            on_gpu_plane = ev.device in (None, "gpu")
            if ev.kind == "power_dropout":
                if on_cpu_plane:
                    cpu_w = math.nan
                if on_gpu_plane:
                    nbgpu_w = math.nan
            elif ev.kind == "power_bias":
                if on_cpu_plane:
                    cpu_w *= ev.magnitude
                if on_gpu_plane:
                    nbgpu_w *= ev.magnitude
            elif ev.kind == "counter_nan":
                counters = {name: math.nan for name in counters}
            elif ev.kind == "counter_corrupt":
                counters = {
                    name: value * ev.magnitude for name, value in counters.items()
                }
        return replace(
            measurement,
            cpu_plane_w=cpu_w,
            nbgpu_plane_w=nbgpu_w,
            counters=counters,
        )


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` over the run clock.

    Thread-safe: the clock advances under a lock, so concurrent
    measurement paths each observe a unique run index.  (Concurrency
    still makes *which* run draws which index nondeterministic — fault
    replays should run serially, which :func:`repro.evaluation.run_loocv`
    enforces when a plan is active.)
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"expected FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self._lock = threading.Lock()
        self._runs = 0

    @property
    def runs_started(self) -> int:
        """Measured runs begun so far (the clock's current value)."""
        return self._runs

    def begin_run(self, cfg: Configuration) -> RunContext:
        """Advance the run clock and resolve this run's faults.

        Raises :class:`SampleRunError` if an active ``run_failure``
        event covers the run; otherwise returns the :class:`RunContext`
        whose :attr:`~RunContext.config` the caller must execute and
        whose :meth:`~RunContext.apply` it must pass the readings
        through.
        """
        with self._lock:
            run_index = self._runs
            self._runs += 1
        if self.plan.empty:
            return RunContext(cfg, cfg, ())
        active = [
            ev
            for ev in self.plan.active_events(run_index)
            if _event_targets_run(ev, cfg)
        ]
        if not active:
            return RunContext(cfg, cfg, ())
        for ev in active:
            _INJECTED_TOTAL.inc()
            _INJECTED_BY_KIND[ev.kind].inc()
        if any(ev.kind == "run_failure" for ev in active):
            raise SampleRunError(
                f"injected run failure at run {run_index} on {cfg.label()} "
                f"(plan {self.plan.name!r})"
            )
        executed = _substitute_pstates(
            cfg, tuple(ev for ev in active if ev.kind in PSTATE_FAULT_KINDS)
        )
        sensor = tuple(ev for ev in active if ev.kind in SENSOR_FAULT_KINDS)
        if executed == cfg:
            executed = cfg  # preserve identity for the clean fast path
        return RunContext(executed, cfg, sensor)


# -- measurement hygiene ----------------------------------------------------


def measurement_is_finite(measurement) -> bool:
    """Whether every field a consumer might trust is finite and usable
    (positive time, finite non-negative powers, finite counters)."""
    return (
        math.isfinite(measurement.time_s)
        and measurement.time_s > 0
        and math.isfinite(measurement.cpu_plane_w)
        and math.isfinite(measurement.nbgpu_plane_w)
        and all(math.isfinite(v) for v in measurement.counters.values())
    )


def sanitize_measurement(measurement, config: Configuration | None = None):
    """A finite stand-in for a corrupt (or missing) measurement.

    Non-finite fields are replaced by the conservative fallback
    readings; finite fields pass through untouched.  ``measurement`` may
    be ``None`` (a run that never succeeded), in which case ``config``
    names the configuration of the synthesized observation.
    """
    if measurement is None:
        if config is None:
            raise ValueError("config is required to synthesize a measurement")
        return conservative_measurement(config)
    time_s = (
        measurement.time_s
        if math.isfinite(measurement.time_s) and measurement.time_s > 0
        else FALLBACK_TIME_S
    )
    cpu_w = (
        measurement.cpu_plane_w
        if math.isfinite(measurement.cpu_plane_w)
        else FALLBACK_CPU_PLANE_W
    )
    nbgpu_w = (
        measurement.nbgpu_plane_w
        if math.isfinite(measurement.nbgpu_plane_w)
        else FALLBACK_NBGPU_PLANE_W
    )
    counters = {
        name: (value if math.isfinite(value) else 0.0)
        for name, value in measurement.counters.items()
    }
    return replace(
        measurement,
        time_s=time_s,
        cpu_plane_w=cpu_w,
        nbgpu_plane_w=nbgpu_w,
        counters=counters,
    )


def conservative_measurement(config: Configuration):
    """A wholly synthetic conservative observation at ``config``."""
    from repro.hardware.apu import Measurement

    return Measurement(
        config=config,
        time_s=FALLBACK_TIME_S,
        cpu_plane_w=FALLBACK_CPU_PLANE_W,
        nbgpu_plane_w=FALLBACK_NBGPU_PLANE_W,
        counters={},
    )
