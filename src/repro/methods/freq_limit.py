"""State-of-the-practice baselines: CPU+FL and GPU+FL.

Paper Section V-A: RAPL-style frequency limiting, simulated on both
devices (the test system has no RAPL):

* **CPU+FL** — "we enable all available cores, set the GPU to minimum
  frequency, and let the frequency limiter set CPU P-states in response
  to power constraints."
* **GPU+FL** — "we initially set CPU frequency to its minimum and GPU
  frequency to its maximum during kernel execution, then let the
  frequency limiter control GPU P-states in response to power
  constraints.  If there is power headroom after setting the GPU
  P-state, we increase the CPU frequency as much as is possible without
  violating the power constraint."

Neither baseline can change device or core count — the structural
limitation the paper's model overcomes.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.apu import TrinityAPU
from repro.hardware.rapl import FrequencyLimiter
from repro.methods.base import MethodDecision, PowerLimitMethod

__all__ = ["CpuFrequencyLimiting", "GpuFrequencyLimiting"]


class CpuFrequencyLimiting(PowerLimitMethod):
    """The paper's ``CPU+FL`` baseline."""

    name = "CPU+FL"

    def __init__(self, apu: TrinityAPU, *, seed: int | np.random.SeedSequence = 0) -> None:
        self.limiter = FrequencyLimiter(apu)
        self._rng = np.random.default_rng(seed)

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """All cores on, CPU P-state limited to the cap."""
        result = self.limiter.limit_cpu_all_cores(
            kernel, power_cap_w, rng=self._rng
        )
        return MethodDecision(
            config=result.final_config, online_runs=len(result.trace)
        )


class GpuFrequencyLimiting(PowerLimitMethod):
    """The paper's ``GPU+FL`` baseline."""

    name = "GPU+FL"

    def __init__(self, apu: TrinityAPU, *, seed: int | np.random.SeedSequence = 0) -> None:
        self.limiter = FrequencyLimiter(apu)
        self._rng = np.random.default_rng(seed)

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """GPU maxed then limited; host CPU raised into headroom."""
        result = self.limiter.limit_gpu_with_headroom(
            kernel, power_cap_w, rng=self._rng
        )
        return MethodDecision(
            config=result.final_config, online_runs=len(result.trace)
        )
