"""Interface shared by all power-limiting methods.

The paper compares four strategies against an oracle (Section V):
``CPU+FL``, ``GPU+FL``, ``Model``, and ``Model+FL``.  Each is a policy
that, given a kernel and a power cap, commits to a configuration.  The
harness then judges the *ground-truth* power and performance of that
configuration against the oracle's choice at the same cap.

A method may carry per-kernel state (the model methods run their two
sample iterations once per kernel, not once per cap), managed through
:meth:`PowerLimitMethod.prepare`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.hardware.config import Configuration

__all__ = ["MethodDecision", "PowerLimitMethod"]


@dataclass(frozen=True)
class MethodDecision:
    """A method's committed configuration for one (kernel, cap) pair.

    ``online_runs`` counts kernel executions the method spent reaching
    the decision (sample iterations, limiter steps) — the adaptation
    cost the paper argues must stay small.
    """

    config: Configuration
    online_runs: int = 0


class PowerLimitMethod(abc.ABC):
    """A policy selecting a configuration under a power cap."""

    #: Display name, e.g. ``"Model+FL"`` (matches the paper's tables).
    name: str = "abstract"

    def prepare(self, kernel) -> None:
        """Per-kernel setup before any cap is evaluated (default: none).

        Model-based methods run the kernel's two sample iterations here,
        mirroring the paper's "first two iterations" protocol — the
        samples are reused across all caps tested on the kernel.
        """

    @abc.abstractmethod
    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Commit to a configuration for ``kernel`` under ``power_cap_w``."""

    def decide_many(
        self, kernel, power_caps_w: Sequence[float]
    ) -> list[MethodDecision]:
        """Commit to a configuration per cap of a sweep, in cap order.

        Semantically identical to calling :meth:`decide` per cap in the
        given order (the default does exactly that, so stateful methods
        — e.g. the frequency-limiting baselines' measurement-noise
        streams — observe the same call sequence).  Model-based methods
        override this to answer the whole sweep from one pass over
        their cached prediction arrays.
        """
        return [self.decide(kernel, cap) for cap in power_caps_w]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
