"""The paper's methods: ``Model`` and ``Model+FL``.

* **Model** — the adaptive model alone: two sample iterations, tree
  classification, whole-space prediction, and scheduler selection of
  the best *predicted*-feasible configuration.
* **Model+FL** — the model's selection followed by hardware frequency
  limiting (Section V-A: "the combination of our model with a
  frequency-limiting system").  The model chooses device and thread
  count — the dimensions frequency limiting cannot reach — and the
  limiter then walks frequency down if the measured power still
  violates the cap.  Table III shows this combination dominating the
  trade-off between cap compliance and performance.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import AdaptiveModel
from repro.core.predictor import KernelPrediction, OnlinePredictor
from repro.core.scheduler import Scheduler
from repro.hardware.rapl import FrequencyLimiter
from repro.methods.base import MethodDecision, PowerLimitMethod
from repro.profiling.library import ProfilingLibrary

__all__ = ["ModelMethod", "ModelPlusFL"]


class ModelMethod(PowerLimitMethod):
    """Configuration selection from the adaptive model's predictions.

    Parameters
    ----------
    model:
        A trained :class:`AdaptiveModel` (the kernel under evaluation
        must not have contributed to its training — the harness
        enforces this through leave-one-benchmark-out CV).
    library:
        Profiling library used for the two sample iterations.
    scheduler:
        Selection policy (defaults to maximize-performance, the paper's
        goal).
    """

    name = "Model"

    def __init__(
        self,
        model: AdaptiveModel,
        library: ProfilingLibrary,
        *,
        scheduler: Scheduler | None = None,
    ) -> None:
        self.predictor = OnlinePredictor(model, library)
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._predictions: dict[str, KernelPrediction] = {}

    def prepare(self, kernel) -> None:
        """Run the kernel's two sample iterations and cache the
        whole-space prediction (once per kernel, reused for every cap)."""
        uid = kernel.uid
        if uid not in self._predictions:
            self._predictions[uid] = self.predictor.predict(kernel)

    def prediction_for(self, kernel) -> KernelPrediction:
        """The kernel's cached whole-space prediction."""
        self.prepare(kernel)
        return self._predictions[kernel.uid]

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Scheduler selection from the cached prediction."""
        prediction = self.prediction_for(kernel)
        decision = self.scheduler.select(prediction, power_cap_w)
        # Two sample iterations amortized across caps; model application
        # itself costs no kernel runs.
        return MethodDecision(config=decision.config, online_runs=2)

    def decide_many(self, kernel, power_caps_w) -> list[MethodDecision]:
        """Whole cap sweep answered through the shared batched decision
        kernel (:func:`repro.server.engine.decide_batch`) — the same
        path the decision server takes, so harness and server decisions
        cannot drift."""
        from repro.server.engine import decide_batch

        prediction = self.prediction_for(kernel)
        caps = np.asarray(power_caps_w, dtype=np.float64)
        batch = decide_batch(
            self.scheduler,
            {kernel.uid: prediction},
            [kernel.uid] * caps.size,
            caps,
        )
        return [
            MethodDecision(config=config, online_runs=2)
            for config in batch.configs()
        ]


class ModelPlusFL(PowerLimitMethod):
    """Model selection refined by RAPL-style frequency limiting."""

    name = "Model+FL"

    def __init__(
        self,
        model: AdaptiveModel,
        library: ProfilingLibrary,
        *,
        scheduler: Scheduler | None = None,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        self._model_method = ModelMethod(model, library, scheduler=scheduler)
        self.limiter = FrequencyLimiter(library.apu)
        self._rng = np.random.default_rng(seed)

    def prepare(self, kernel) -> None:
        """Run/caches the underlying model method's sample iterations."""
        self._model_method.prepare(kernel)

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Model selection refined by the frequency limiter."""
        start = self._model_method.decide(kernel, power_cap_w).config
        result = self.limiter.limit(kernel, start, power_cap_w, rng=self._rng)
        return MethodDecision(
            config=result.final_config,
            online_runs=2 + len(result.trace),
        )

    def decide_many(self, kernel, power_caps_w) -> list[MethodDecision]:
        """Batched model selection, then the limiter walk per cap (the
        limiter is a measurement feedback loop and stays sequential;
        caps are visited in order so its noise stream is unchanged)."""
        starts = self._model_method.decide_many(kernel, power_caps_w)
        decisions = []
        for cap, start in zip(power_caps_w, starts):
            result = self.limiter.limit(kernel, start.config, cap, rng=self._rng)
            decisions.append(
                MethodDecision(
                    config=result.final_config,
                    online_runs=2 + len(result.trace),
                )
            )
        return decisions
