"""Online search-based baselines: exhaustive and hill climbing.

The paper's abstract claims its two-iteration model "provides a
significant advantage over exhaustive search-based strategies".  These
baselines make the comparison concrete:

* :class:`ExhaustiveSearch` — measure the kernel on *every*
  configuration, then pick the best measured configuration under the
  cap.  Decision quality approaches the oracle's (limited only by
  measurement noise), but each kernel pays 42 online iterations at
  mostly suboptimal (sometimes cap-violating) operating points before
  the decision lands.
* :class:`HillClimbing` — greedy local search over the configuration
  neighbourhood graph (change one knob at a time: device, CPU P-state,
  thread count, GPU P-state), starting from the CPU sample
  configuration.  Far fewer iterations than exhaustive, but it gets
  stuck in local optima — notably on kernels whose frontier jumps
  devices (LU Small's cliff).

Both respect the measurement-only discipline: they see the machine
through :meth:`TrinityAPU.run`, never ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.constants import respects_cap
from repro.core.sample_configs import CPU_SAMPLE
from repro.hardware import pstates
from repro.hardware.apu import TrinityAPU
from repro.hardware.config import Configuration, Device
from repro.methods.base import MethodDecision, PowerLimitMethod

__all__ = ["ExhaustiveSearch", "HillClimbing"]


class ExhaustiveSearch(PowerLimitMethod):
    """Measure everything once per kernel, then look decisions up.

    The 42 measurement iterations are charged to the *first* cap
    evaluated for a kernel; subsequent caps reuse the table (the most
    favourable possible accounting for this baseline).
    """

    name = "Exhaustive"

    def __init__(self, apu: TrinityAPU, *, seed: int = 0) -> None:
        self.apu = apu
        self._rng = np.random.default_rng(seed)
        self._tables: dict[str, dict[Configuration, tuple[float, float]]] = {}

    def prepare(self, kernel) -> None:
        """Measure the kernel on every configuration (once)."""
        uid = kernel.uid
        if uid in self._tables:
            return
        table = {}
        for cfg in self.apu.config_space:
            m = self.apu.run(kernel, cfg, rng=self._rng)
            table[cfg] = (m.total_power_w, m.performance)
        self._tables[uid] = table

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Best measured-feasible configuration under the cap."""
        first_time = kernel.uid not in self._tables
        self.prepare(kernel)
        table = self._tables[kernel.uid]
        feasible = {
            cfg: perf
            for cfg, (pw, perf) in table.items()
            if respects_cap(pw, power_cap_w)
        }
        if feasible:
            cfg = max(feasible, key=feasible.get)
        else:
            cfg = min(table, key=lambda c: table[c][0])
        return MethodDecision(
            config=cfg, online_runs=len(table) if first_time else 0
        )


def _neighbours(cfg: Configuration) -> list[Configuration]:
    """Single-knob moves from a configuration (the search graph)."""
    out: list[Configuration] = []
    ci = pstates.cpu_pstate_index(cfg.cpu_freq_ghz)
    if cfg.device is Device.CPU:
        for di in (-1, 1):
            if 0 <= ci + di < len(pstates.CPU_FREQS_GHZ):
                out.append(
                    Configuration.cpu(
                        pstates.CPU_FREQS_GHZ[ci + di], cfg.n_threads
                    )
                )
        for dn in (-1, 1):
            n = cfg.n_threads + dn
            if 1 <= n <= pstates.N_CORES:
                out.append(Configuration.cpu(cfg.cpu_freq_ghz, n))
        # Device switch: hop to the GPU at its lowest P-state.
        out.append(
            Configuration.gpu(pstates.GPU_MIN_FREQ_GHZ, cfg.cpu_freq_ghz)
        )
    else:
        gi = pstates.gpu_pstate_index(cfg.gpu_freq_ghz)
        for dg in (-1, 1):
            if 0 <= gi + dg < len(pstates.GPU_FREQS_GHZ):
                out.append(
                    Configuration.gpu(
                        pstates.GPU_FREQS_GHZ[gi + dg], cfg.cpu_freq_ghz
                    )
                )
        for di in (-1, 1):
            if 0 <= ci + di < len(pstates.CPU_FREQS_GHZ):
                out.append(
                    Configuration.gpu(
                        cfg.gpu_freq_ghz, pstates.CPU_FREQS_GHZ[ci + di]
                    )
                )
        # Device switch: hop back to the CPU at one thread.
        out.append(Configuration.cpu(cfg.cpu_freq_ghz, 1))
    return out


class HillClimbing(PowerLimitMethod):
    """Greedy neighbourhood search from the CPU sample configuration.

    At each step, measure all unvisited neighbours of the current
    configuration and move to the best cap-feasible one; stop when no
    neighbour improves.  Measurements are cached per kernel, but the
    search restarts per cap (feasibility depends on the cap).
    """

    name = "HillClimb"

    def __init__(
        self, apu: TrinityAPU, *, seed: int = 0, max_steps: int = 12
    ) -> None:
        self.apu = apu
        self.max_steps = max_steps
        self._rng = np.random.default_rng(seed)
        self._measured: dict[str, dict[Configuration, tuple[float, float]]] = {}

    def _measure(self, kernel, cfg: Configuration) -> tuple[tuple[float, float], bool]:
        cache = self._measured.setdefault(kernel.uid, {})
        if cfg in cache:
            return cache[cfg], False
        m = self.apu.run(kernel, cfg, rng=self._rng)
        cache[cfg] = (m.total_power_w, m.performance)
        return cache[cfg], True

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Greedy ascent on measured performance within the cap."""
        runs = 0
        (pw, perf), fresh = self._measure(kernel, CPU_SAMPLE)
        runs += fresh
        current, current_perf = CPU_SAMPLE, perf
        current_feasible = respects_cap(pw, power_cap_w)

        best_feasible: tuple[Configuration, float] | None = (
            (current, current_perf) if current_feasible else None
        )
        fallback: tuple[Configuration, float] = (current, pw)

        for _ in range(self.max_steps):
            best_move = None
            for nb in _neighbours(current):
                (npw, nperf), fresh = self._measure(kernel, nb)
                runs += fresh
                if npw < fallback[1]:
                    fallback = (nb, npw)
                if not respects_cap(npw, power_cap_w):
                    continue
                if best_feasible is None or nperf > best_feasible[1]:
                    best_feasible = (nb, nperf)
                if best_move is None or nperf > best_move[1]:
                    best_move = (nb, nperf)
            if best_move is None:
                # No feasible neighbour: walk toward lower power.
                cheaper = min(
                    _neighbours(current),
                    key=lambda c: self._measured[kernel.uid].get(
                        c, (float("inf"),)
                    )[0],
                )
                if cheaper == current:
                    break
                current = cheaper
                continue
            if best_move[1] <= current_perf and current_feasible:
                break  # local optimum
            current, current_perf = best_move
            current_feasible = True

        if best_feasible is not None:
            return MethodDecision(config=best_feasible[0], online_runs=runs)
        return MethodDecision(config=fallback[0], online_runs=runs)
