"""The oracle: exhaustive ground-truth configuration selection.

Paper Section V-B: every method is compared "against an oracle with
perfect knowledge".  The oracle sees the simulator's deterministic
ground truth for every configuration and picks the highest-performance
configuration whose true power respects the cap.  It also supplies the
per-kernel power caps used throughout the evaluation: "the specific
power constraints correspond to the power consumption levels at the
configurations on the oracle-selected power-performance frontier".
"""

from __future__ import annotations

from repro.core.frontier import FrontierPoint, ParetoFrontier
from repro.hardware.apu import TrinityAPU
from repro.methods.base import MethodDecision, PowerLimitMethod

__all__ = ["Oracle"]


class Oracle(PowerLimitMethod):
    """Perfect-knowledge selection from ground truth.

    Parameters
    ----------
    apu:
        The machine; the oracle reads its ``true_*`` interfaces.
    """

    name = "Oracle"

    def __init__(self, apu: TrinityAPU) -> None:
        self.apu = apu
        self._frontiers: dict[int, ParetoFrontier] = {}

    def true_frontier(self, kernel) -> ParetoFrontier:
        """The kernel's ground-truth Pareto frontier (cached)."""
        key = id(kernel)
        if key not in self._frontiers:
            points = [
                FrontierPoint(
                    config=cfg,
                    power_w=self.apu.true_total_power_w(kernel, cfg),
                    performance=self.apu.true_performance(kernel, cfg),
                )
                for cfg in self.apu.config_space
            ]
            self._frontiers[key] = ParetoFrontier(points)
        return self._frontiers[key]

    def caps_for(self, kernel) -> list[float]:
        """The evaluation's power caps for a kernel: the power levels of
        its oracle-frontier configurations (Section V-B)."""
        return [p.power_w for p in self.true_frontier(kernel)]

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Best true-performance configuration whose true power fits."""
        best = self.true_frontier(kernel).best_under_cap(power_cap_w)
        if best is None:
            # Even an oracle must run the kernel somewhere: the
            # lowest-power configuration is the least-bad violation.
            best = self.true_frontier(kernel)[0]
        return MethodDecision(config=best.config, online_runs=0)
