"""The oracle: exhaustive ground-truth configuration selection.

Paper Section V-B: every method is compared "against an oracle with
perfect knowledge".  The oracle sees the simulator's deterministic
ground truth for every configuration and picks the highest-performance
configuration whose true power respects the cap.  It also supplies the
per-kernel power caps used throughout the evaluation: "the specific
power constraints correspond to the power consumption levels at the
configurations on the oracle-selected power-performance frontier".
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import ParetoFrontier
from repro.hardware.apu import TrinityAPU
from repro.methods.base import MethodDecision, PowerLimitMethod
from repro.telemetry import counter, gauge

__all__ = ["Oracle"]

#: Process-wide frontier memo: a kernel's ground-truth frontier is a
#: pure function of its characteristics and the machine's power
#: constants (boost off).  Fresh Oracles are built for every evaluation
#: run; sharing the memo keeps repeated runs from re-deriving identical
#: frontiers.
_FRONTIER_CACHE: dict[tuple, ParetoFrontier] = {}

# Hit/miss accounting for the frontier memo (see docs/OBSERVABILITY.md).
_FRONTIER_HITS = counter("cache.oracle_frontier.hits")
_FRONTIER_MISSES = counter("cache.oracle_frontier.misses")
_FRONTIER_SIZE = gauge("cache.oracle_frontier.size")


class Oracle(PowerLimitMethod):
    """Perfect-knowledge selection from ground truth.

    Parameters
    ----------
    apu:
        The machine; the oracle reads its ``true_*`` interfaces.
    """

    name = "Oracle"

    def __init__(self, apu: TrinityAPU) -> None:
        self.apu = apu
        self._frontiers: dict[int, ParetoFrontier] = {}

    def true_frontier(self, kernel) -> ParetoFrontier:
        """The kernel's ground-truth Pareto frontier (cached)."""
        chars = getattr(kernel, "characteristics", None)
        if self.apu.boost is None and chars is not None:
            key = (self.apu.power_constants, chars)
            frontier = _FRONTIER_CACHE.get(key)
            if frontier is None:
                _FRONTIER_MISSES.inc()
                frontier = self._build_frontier(kernel)
                _FRONTIER_CACHE[key] = frontier
                _FRONTIER_SIZE.set(len(_FRONTIER_CACHE))
            else:
                _FRONTIER_HITS.inc()
            return frontier
        key = id(kernel)
        if key not in self._frontiers:
            self._frontiers[key] = self._build_frontier(kernel)
        return self._frontiers[key]

    def _build_frontier(self, kernel) -> ParetoFrontier:
        configs = list(self.apu.config_space)
        return ParetoFrontier.from_arrays(
            configs,
            np.array(
                [self.apu.true_total_power_w(kernel, c) for c in configs]
            ),
            np.array(
                [self.apu.true_performance(kernel, c) for c in configs]
            ),
        )

    def caps_for(self, kernel) -> list[float]:
        """The evaluation's power caps for a kernel: the power levels of
        its oracle-frontier configurations (Section V-B)."""
        return [float(pw) for pw in self.true_frontier(kernel).powers]

    def decide(self, kernel, power_cap_w: float) -> MethodDecision:
        """Best true-performance configuration whose true power fits."""
        best = self.true_frontier(kernel).best_under_cap(power_cap_w)
        if best is None:
            # Even an oracle must run the kernel somewhere: the
            # lowest-power configuration is the least-bad violation.
            best = self.true_frontier(kernel)[0]
        return MethodDecision(config=best.config, online_runs=0)

    def decide_many(self, kernel, power_caps_w) -> list[MethodDecision]:
        """Whole cap sweep in one binary-search pass over the frontier
        (infeasible caps fall back to the lowest-power configuration)."""
        frontier = self.true_frontier(kernel)
        configs = frontier.configs()
        idx = frontier.indices_under_caps(np.asarray(power_caps_w, dtype=float))
        return [
            MethodDecision(config=configs[max(int(i), 0)], online_runs=0)
            for i in idx
        ]
