"""Power-limiting methods under comparison (paper Section V).

``Model`` and ``Model+FL`` are the paper's contribution;
``CPU+FL``/``GPU+FL`` are the state-of-the-practice frequency-limiting
baselines; the ``Oracle`` is the perfect-knowledge reference all metrics
are normalized to.
"""

from repro.methods.base import MethodDecision, PowerLimitMethod
from repro.methods.freq_limit import CpuFrequencyLimiting, GpuFrequencyLimiting
from repro.methods.model_method import ModelMethod, ModelPlusFL
from repro.methods.oracle import Oracle
from repro.methods.search import ExhaustiveSearch, HillClimbing

__all__ = [
    "CpuFrequencyLimiting",
    "ExhaustiveSearch",
    "GpuFrequencyLimiting",
    "HillClimbing",
    "MethodDecision",
    "ModelMethod",
    "ModelPlusFL",
    "Oracle",
    "PowerLimitMethod",
]
