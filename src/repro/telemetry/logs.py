"""Structured logging for the pipeline.

Every module logs through a child of the ``repro`` logger
(:func:`get_logger`), attaching machine-readable fields via
:func:`log_event`.  Uncofigured, the stdlib default applies (warnings
and errors reach stderr; info/debug are silent) — importing the library
never hijacks the host application's logging.

The CLI calls :func:`configure_logging` once: human-readable lines or
JSON (``--log-json``) on **stderr**, so stdout stays reserved for
machine-readable results (tables, timelines, artifact lists).
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

__all__ = ["get_logger", "log_event", "configure_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro`` hierarchy.

    Pass a module's ``__name__`` (already rooted at ``repro``) or any
    dotted suffix (``"telemetry"`` -> ``repro.telemetry``).
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def log_event(
    logger: logging.Logger, level: int, event: str, **fields
) -> None:
    """Emit one structured event if ``level`` is enabled.

    ``event`` is a short machine-stable identifier (``"fold-complete"``,
    ``"cap-violation"``); ``fields`` are its key=value payload.  The
    human formatter renders ``event key=value ...``; the JSON formatter
    emits the fields verbatim.
    """
    if not logger.isEnabledFor(level):
        return
    logger.log(level, event, extra={"event_fields": fields})


class _HumanFormatter(logging.Formatter):
    """``LEVEL logger: event key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname.lower():7s} {record.name}: {record.getMessage()}"
        fields = getattr(record, "event_fields", None)
        if fields:
            payload = " ".join(f"{k}={v}" for k, v in fields.items())
            return f"{base} {payload}"
        return base


class _JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(time.time(), 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "event_fields", None)
        if fields:
            out.update(fields)
        return json.dumps(out, default=str, sort_keys=False)


def configure_logging(
    level: str = "info",
    *,
    json_mode: bool = False,
    quiet: bool = False,
    stream: IO[str] | None = None,
) -> None:
    """Install the pipeline's logging configuration (CLI entry point).

    Parameters
    ----------
    level:
        Threshold name (``"debug"``, ``"info"``, ``"warning"``,
        ``"error"``).
    json_mode:
        Emit one JSON object per line instead of human-readable text.
    quiet:
        Raise the threshold to errors only, regardless of ``level``.
    stream:
        Destination (defaults to ``sys.stderr`` — stdout is reserved
        for machine-readable results).
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if quiet:
        numeric = logging.ERROR
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_JsonFormatter() if json_mode else _HumanFormatter())
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
