"""Exemplar tracing: keep the K requests worth explaining per window.

Aggregated histograms say *that* a p99 outlier exists; exemplars say
*why*.  Every monitor window, the store keeps a bounded sample of
notable requests — the K **slowest**, the first K **shed** at
admission, the first K answered with an **error** — each carrying a
per-request :class:`~repro.telemetry.spans.PhaseTrace` (queue wait vs
batch decide time, batch size, error code), so one ring-buffer dump
explains its own latency tail.

The server's hot paths call the module-level :func:`record_slow` /
:func:`record_shed` / :func:`record_error` hooks.  With no monitor
attached (or telemetry disabled) the hooks are one global read and a
flag check; attachment happens per-process via :func:`activate`, the
same pattern as the registry's enable switch.  Recording is
lock-protected but per-*event*, and the server only records per batch
(slow) or per rare event (shed/error), never per request.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import Iterator

from repro.telemetry.registry import _STATE, counter
from repro.telemetry.spans import PhaseTrace

__all__ = [
    "ExemplarStore",
    "RequestExemplar",
    "activate",
    "active_store",
    "deactivate",
    "record_error",
    "record_shed",
    "record_slow",
]

KIND_SLOW = "slow"
KIND_SHED = "shed"
KIND_ERROR = "error"
KINDS = (KIND_SLOW, KIND_SHED, KIND_ERROR)

_CAPTURED = {
    kind: counter(f"monitor.exemplars.{kind}") for kind in KINDS
}


class RequestExemplar:
    """One captured request: identity, outcome, and its phase trace."""

    __slots__ = (
        "kind",
        "kernel_uid",
        "power_cap_w",
        "latency_s",
        "batch_size",
        "error",
        "trace",
        "seq",
    )

    def __init__(
        self,
        kind: str,
        *,
        kernel_uid: str,
        power_cap_w: float,
        latency_s: float = 0.0,
        batch_size: int = 0,
        error: str | None = None,
        trace: PhaseTrace | None = None,
        seq: int = 0,
    ) -> None:
        self.kind = kind
        self.kernel_uid = kernel_uid
        self.power_cap_w = power_cap_w
        self.latency_s = latency_s
        self.batch_size = batch_size
        self.error = error
        self.trace = trace
        self.seq = seq

    def __lt__(self, other: "RequestExemplar") -> bool:
        # Heap ordering for the slow top-K: strictly by latency, ties
        # by capture order so comparisons never fall through to object
        # identity.
        if self.latency_s != other.latency_s:
            return self.latency_s < other.latency_s
        return self.seq < other.seq

    def to_dict(self) -> dict:
        out: dict = {
            "kind": self.kind,
            "kernel_uid": self.kernel_uid,
            "power_cap_w": self.power_cap_w,
            "latency_s": self.latency_s,
            "batch_size": self.batch_size,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out


class _Window:
    """One capture window's bounded accumulators."""

    __slots__ = ("slow", "shed", "error", "dropped")

    def __init__(self) -> None:
        self.slow: list[RequestExemplar] = []  # min-heap of the top-K
        self.shed: list[RequestExemplar] = []
        self.error: list[RequestExemplar] = []
        self.dropped = 0

    def to_dict(self, t: float | None = None) -> dict:
        out: dict = {
            "slow": [
                e.to_dict()
                for e in sorted(
                    self.slow, key=lambda e: -e.latency_s
                )
            ],
            "shed": [e.to_dict() for e in self.shed],
            "error": [e.to_dict() for e in self.error],
        }
        if t is not None:
            out["t"] = t
        if self.dropped:
            out["dropped"] = self.dropped
        return out


class ExemplarStore:
    """Per-window bounded exemplar capture with a bounded history.

    ``k_per_kind`` bounds each kind per window; ``max_windows`` bounds
    the closed-window history; total memory is therefore
    ``O(max_windows * 3 * k_per_kind)`` small records regardless of
    traffic.
    """

    def __init__(
        self, *, k_per_kind: int = 4, max_windows: int = 32
    ) -> None:
        if k_per_kind < 1 or max_windows < 1:
            raise ValueError("k_per_kind and max_windows must be >= 1")
        self.k_per_kind = k_per_kind
        self._lock = threading.Lock()
        self._current = _Window()
        self._history: deque[tuple[float | None, _Window]] = deque(
            maxlen=max_windows
        )
        self._seq = 0

    # -- capture -------------------------------------------------------------

    def record(self, exemplar: RequestExemplar) -> bool:
        """Offer one exemplar to the current window; returns whether it
        was kept (slow exemplars displace the fastest of the top-K)."""
        with self._lock:
            self._seq += 1
            exemplar.seq = self._seq
            window = self._current
            if exemplar.kind == KIND_SLOW:
                if len(window.slow) < self.k_per_kind:
                    heapq.heappush(window.slow, exemplar)
                elif window.slow[0].latency_s < exemplar.latency_s:
                    heapq.heapreplace(window.slow, exemplar)
                else:
                    window.dropped += 1
                    return False
            else:
                bucket = (
                    window.shed
                    if exemplar.kind == KIND_SHED
                    else window.error
                )
                if len(bucket) >= self.k_per_kind:
                    window.dropped += 1
                    return False
                bucket.append(exemplar)
        _CAPTURED[exemplar.kind].inc()
        return True

    def rotate(self, t: float | None = None) -> None:
        """Close the current window into history (monitor tick hook).

        Empty windows are skipped so an idle server does not fill the
        history with nothing.
        """
        with self._lock:
            window = self._current
            if not (window.slow or window.shed or window.error):
                return
            self._history.append((t, window))
            self._current = _Window()

    # -- views ---------------------------------------------------------------

    def __iter__(self) -> Iterator[RequestExemplar]:
        with self._lock:
            windows = [w for _, w in self._history] + [self._current]
            for w in windows:
                yield from sorted(w.slow, key=lambda e: -e.latency_s)
                yield from w.shed
                yield from w.error

    def count(self, kind: str | None = None) -> int:
        """Captured exemplars currently retained (optionally one kind)."""
        return sum(
            1 for e in self if kind is None or e.kind == kind
        )

    def snapshot(self) -> dict:
        """Deterministic dict view: history oldest-first + open window."""
        with self._lock:
            history = [(t, w) for t, w in self._history]
            current = self._current
        return {
            "k_per_kind": self.k_per_kind,
            "windows": [w.to_dict(t) for t, w in history],
            "current": current.to_dict(),
        }


# -- process-wide attachment hooks ------------------------------------------

_ACTIVE_STORE: ExemplarStore | None = None


def activate(store: ExemplarStore) -> None:
    """Attach a store to the process-wide capture hooks."""
    global _ACTIVE_STORE
    _ACTIVE_STORE = store


def deactivate(store: ExemplarStore | None = None) -> None:
    """Detach the capture hooks (or only ``store``, if it is attached)."""
    global _ACTIVE_STORE
    if store is None or _ACTIVE_STORE is store:
        _ACTIVE_STORE = None


def active_store() -> ExemplarStore | None:
    """The attached store, or ``None`` when detached or telemetry is
    disabled — hot paths branch on this one read."""
    if not _STATE.enabled:
        return None
    return _ACTIVE_STORE


def record_slow(
    kernel_uid: str,
    power_cap_w: float,
    latency_s: float,
    *,
    batch_size: int = 0,
    trace: PhaseTrace | None = None,
) -> None:
    """Offer a slow-request exemplar (kept only if it makes the top-K)."""
    store = active_store()
    if store is None:
        return
    store.record(
        RequestExemplar(
            KIND_SLOW,
            kernel_uid=kernel_uid,
            power_cap_w=power_cap_w,
            latency_s=latency_s,
            batch_size=batch_size,
            trace=trace,
        )
    )


def record_shed(kernel_uid: str, power_cap_w: float) -> None:
    """Record an admission shed (first K per window)."""
    store = active_store()
    if store is None:
        return
    store.record(
        RequestExemplar(
            KIND_SHED, kernel_uid=kernel_uid, power_cap_w=power_cap_w
        )
    )


def record_error(
    kernel_uid: str,
    power_cap_w: float,
    error: str,
    *,
    latency_s: float = 0.0,
    batch_size: int = 0,
    trace: PhaseTrace | None = None,
) -> None:
    """Record an error-result exemplar (first K per window)."""
    store = active_store()
    if store is None:
        return
    store.record(
        RequestExemplar(
            KIND_ERROR,
            kernel_uid=kernel_uid,
            power_cap_w=power_cap_w,
            latency_s=latency_s,
            batch_size=batch_size,
            error=error,
            trace=trace,
        )
    )
