"""Exporters: Prometheus text exposition, JSON-lines, and the HTTP thread.

Two wire formats over the same registry/ring state:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4) rendered from one registry snapshot.  Metric names
  map ``server.latency_s`` → ``repro_server_latency_s`` (counters gain
  the conventional ``_total`` suffix); histograms expose cumulative
  ``_bucket{le="..."}`` series plus ``_sum`` / ``_count``.  The output
  is deterministic for a given snapshot — a golden fixture pins it.
* :func:`sample_to_jsonl` — one compact JSON object per monitor tick,
  appended to a stream for offline analysis (``--monitor-jsonl``).

:func:`serve_monitor_http` runs a stdlib :class:`ThreadingHTTPServer`
on a daemon thread with three endpoints: ``/metrics`` (Prometheus
scrape), ``/monitor.json`` (the full monitor dump: ring + alerts +
exemplars, what ``repro top`` polls), and ``/healthz``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.telemetry.registry import BUCKET_BOUNDS, BUCKET_INDEX

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.telemetry.monitor.service import Monitor
    from repro.telemetry.monitor.timeseries import MetricSample

__all__ = [
    "prometheus_name",
    "render_prometheus",
    "sample_to_jsonl",
    "serve_monitor_http",
]

_PREFIX = "repro_"


def prometheus_name(name: str, *, suffix: str = "") -> str:
    """Sanitize a registry metric name into a Prometheus series name."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{_PREFIX}{safe}{suffix}"


def _fmt(value: float) -> str:
    """Prometheus sample value formatting (shortest faithful form)."""
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """One registry snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        series = prometheus_name(name, suffix="_total")
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        series = prometheus_name(name)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_fmt(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        series = prometheus_name(name)
        lines.append(f"# TYPE {series} histogram")
        dense = [0] * (len(BUCKET_BOUNDS) + 1)
        for label, n in summary.get("buckets", {}).items():
            i = BUCKET_INDEX.get(label)
            if i is not None:
                dense[i] = int(n)
        cum = 0
        for i, bound in enumerate(BUCKET_BOUNDS):
            cum += dense[i]
            if dense[i] or i == len(BUCKET_BOUNDS) - 1:
                lines.append(
                    f'{series}_bucket{{le="{bound:.6g}"}} {cum}'
                )
        cum += dense[-1]
        lines.append(f'{series}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{series}_sum {_fmt(summary.get('sum', 0.0))}")
        lines.append(f"{series}_count {summary.get('count', 0)}")
    return "\n".join(lines) + "\n"


def sample_to_jsonl(sample: "MetricSample") -> str:
    """One ring sample as a compact JSON line (no trailing newline)."""
    return json.dumps(sample.to_dict(), separators=(",", ":"))


class _MonitorHandler(BaseHTTPRequestHandler):
    """Read-only monitor endpoints; logging silenced (stderr is the
    structured logger's channel, not the scrape log's)."""

    server: "_MonitorServer"

    def log_message(self, *args) -> None:  # pragma: no cover - silence
        return

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        monitor = self.server.monitor
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_prometheus(monitor.registry_snapshot())
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    body.encode("utf-8"),
                )
            elif path == "/monitor.json":
                body = json.dumps(monitor.dump(), indent=2)
                self._send(
                    200, "application/json", body.encode("utf-8")
                )
            elif path == "/healthz":
                self._send(200, "text/plain", b"ok\n")
            else:
                self._send(404, "text/plain", b"not found\n")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass


class _MonitorServer(ThreadingHTTPServer):
    daemon_threads = True
    monitor: "Monitor"


def serve_monitor_http(
    monitor: "Monitor", port: int, *, host: str = "127.0.0.1"
) -> _MonitorServer:
    """Start the monitor's HTTP endpoints on a daemon thread.

    ``port=0`` binds an ephemeral port; read the chosen one from the
    returned server's ``server_port``.  Call ``shutdown()`` +
    ``server_close()`` (or :meth:`Monitor.close`) to stop.
    """
    httpd = _MonitorServer((host, port), _MonitorHandler)
    httpd.monitor = monitor
    thread = threading.Thread(
        target=httpd.serve_forever,
        name="repro-monitor-http",
        daemon=True,
    )
    thread.start()
    return httpd
