"""The ring buffer under the continuous monitor: metric time series.

PR 3's registry answers "what happened since the process started";
a *continuously running* decision server or cluster epoch loop needs
"what is happening **now**".  :class:`TimeSeriesStore` bridges the two:
on every tick (an injected clock — nothing here reads the wall clock on
its own, so tests and epoch simulations drive time explicitly) it takes
one full registry snapshot and appends it to a bounded ring.  All
derived signals — counter rates, histogram window percentiles, gauge
values — are computed *from the ring*, never from extra hot-path
instrumentation, so monitoring adds zero cost to the code being
monitored beyond the per-interval snapshot.

Counter semantics follow Prometheus ``increase``: counters are
cumulative and may reset to zero (``MetricsRegistry.reset``), so window
deltas are accumulated per adjacent sample pair, treating a decrease as
a restart (the later sample's cumulative value *is* that pair's
increase).  Histogram windows difference the cumulative bucket counts
the same way, which is what lets the SLO engine compute a p99 over
"the last 5 seconds" from two ring entries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.telemetry.registry import (
    BUCKET_BOUNDS,
    BUCKET_INDEX,
    MetricsRegistry,
    _STATE,
    estimate_percentiles,
    get_registry,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "MetricSample",
    "TimeSeriesStore",
    "WindowDelta",
]

#: Default ring capacity: ten minutes of one-second samples, or two
#: minutes at the serve CLI's 200 ms default interval.
DEFAULT_CAPACITY = 600


@dataclass(frozen=True)
class MetricSample:
    """One ring entry: a timestamped full registry snapshot."""

    index: int
    t: float
    counters: Mapping[str, int]
    gauges: Mapping[str, float]
    histograms: Mapping[str, dict]

    def to_dict(self) -> dict:
        """Deterministic dict view (snapshot maps are already sorted)."""
        return {
            "index": self.index,
            "t": self.t,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


@dataclass(frozen=True)
class WindowDelta:
    """A histogram's increase over a ring window."""

    count: int
    sum: float
    buckets: tuple[int, ...]  # dense, bucket order (incl. overflow)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def _bucket_vector(summary: Mapping) -> list[int]:
    """Dense per-bucket counts from a sparse snapshot summary."""
    dense = [0] * (len(BUCKET_BOUNDS) + 1)
    for label, n in summary.get("buckets", {}).items():
        i = BUCKET_INDEX.get(label)
        if i is not None:
            dense[i] = int(n)
    return dense


class TimeSeriesStore:
    """Bounded ring of registry snapshots with rate/percentile views.

    Parameters
    ----------
    capacity:
        Ring length; the oldest sample falls off when full (memory is
        bounded by ``capacity`` x registry size).
    registry:
        Registry to snapshot (default: the process-wide one).
    clock:
        Injected time source (default ``time.monotonic``).  Hot paths
        never call it — only :meth:`sample` does, once per tick, and an
        explicit ``t=`` wins over the clock entirely.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._ring: deque[MetricSample] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_index = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- ingestion -----------------------------------------------------------

    def sample(self, t: float | None = None) -> MetricSample | None:
        """Snapshot the registry into the ring; returns the new sample.

        A flag-check no-op returning ``None`` while telemetry is
        disabled, like every other collection path.
        """
        if not _STATE.enabled:
            return None
        snap = self._registry.snapshot()
        with self._lock:
            entry = MetricSample(
                index=self._next_index,
                t=float(self._clock() if t is None else t),
                counters=snap["counters"],
                gauges=snap["gauges"],
                histograms=snap["histograms"],
            )
            self._next_index += 1
            self._ring.append(entry)
        return entry

    def append(self, entry: MetricSample) -> None:
        """Append a pre-built sample (dump reconstruction path)."""
        with self._lock:
            self._ring.append(entry)
            self._next_index = entry.index + 1

    # -- window selection ----------------------------------------------------

    def samples(
        self, window_s: float | None = None, now: float | None = None
    ) -> list[MetricSample]:
        """Ring entries within the trailing window (oldest first).

        ``window_s=None`` returns the whole ring.  ``now`` defaults to
        the newest sample's timestamp, so windows are judged on the
        ring's own clock, not the caller's.
        """
        with self._lock:
            entries = list(self._ring)
        if not entries or window_s is None:
            return entries
        cutoff = (entries[-1].t if now is None else now) - window_s
        return [e for e in entries if e.t >= cutoff]

    def latest(self) -> MetricSample | None:
        """The newest ring entry, if any."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    # -- derived signals -----------------------------------------------------

    def counter_increase(
        self, name: str, window_s: float | None = None
    ) -> int | None:
        """Reset-aware counter increase over the window.

        Accumulates per-pair deltas; a decrease between adjacent
        samples means the counter restarted, and the later cumulative
        value is that pair's increase (Prometheus ``increase``
        semantics).  ``None`` with fewer than two samples in window.
        """
        entries = self.samples(window_s)
        if len(entries) < 2:
            return None
        total = 0
        prev = entries[0].counters.get(name, 0)
        for entry in entries[1:]:
            cur = entry.counters.get(name, 0)
            total += cur - prev if cur >= prev else cur
            prev = cur
        return total

    def counter_rate(
        self, name: str, window_s: float | None = None
    ) -> float | None:
        """Reset-aware counter rate (increase / window span) per second."""
        entries = self.samples(window_s)
        if len(entries) < 2:
            return None
        span = entries[-1].t - entries[0].t
        if span <= 0:
            return None
        increase = self.counter_increase(name, window_s)
        return None if increase is None else increase / span

    def gauge_value(self, name: str) -> float | None:
        """The gauge's value at the newest sample."""
        last = self.latest()
        if last is None:
            return None
        return last.gauges.get(name)

    def histogram_window(
        self, name: str, window_s: float | None = None
    ) -> WindowDelta | None:
        """The histogram's increase (count, sum, buckets) over the
        window, reset-aware per adjacent pair like counters."""
        entries = self.samples(window_s)
        if len(entries) < 2:
            return None
        d_count, d_sum = 0, 0.0
        d_buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        prev = entries[0].histograms.get(name)
        for entry in entries[1:]:
            cur = entry.histograms.get(name)
            if cur is not None:
                cur_count = cur.get("count", 0)
                prev_count = prev.get("count", 0) if prev is not None else 0
                if prev is None or cur_count < prev_count:
                    # Restart: the later cumulative state is the increase.
                    d_count += cur_count
                    d_sum += cur.get("sum", 0.0)
                    for i, n in enumerate(_bucket_vector(cur)):
                        d_buckets[i] += n
                elif cur_count > prev_count:
                    d_count += cur_count - prev_count
                    d_sum += cur.get("sum", 0.0) - prev.get("sum", 0.0)
                    prev_vec = _bucket_vector(prev)
                    for i, n in enumerate(_bucket_vector(cur)):
                        d_buckets[i] += max(0, n - prev_vec[i])
            prev = cur
        return WindowDelta(
            count=d_count, sum=d_sum, buckets=tuple(d_buckets)
        )

    def percentile(
        self,
        name: str,
        q: float,
        window_s: float | None = None,
    ) -> float | None:
        """Interpolated percentile of a histogram over the window
        (``None`` when the window holds no new observations)."""
        delta = self.histogram_window(name, window_s)
        if delta is None or delta.count == 0:
            return None
        return estimate_percentiles(delta.buckets, (q,))[0]

    # -- persistence ---------------------------------------------------------

    def dump(self) -> dict:
        """Deterministic dict view of the whole ring."""
        with self._lock:
            entries = list(self._ring)
        return {
            "capacity": self.capacity,
            "next_index": self._next_index,
            "samples": [e.to_dict() for e in entries],
        }

    @classmethod
    def from_dump(cls, data: Mapping) -> "TimeSeriesStore":
        """Rebuild a read-only store from :meth:`dump` output (used by
        ``repro top`` to derive rates from a scraped ring)."""
        store = cls(capacity=max(2, int(data.get("capacity", 2))))
        for entry in data.get("samples", ()):
            store.append(
                MetricSample(
                    index=int(entry.get("index", 0)),
                    t=float(entry["t"]),
                    counters=dict(entry.get("counters", {})),
                    gauges=dict(entry.get("gauges", {})),
                    histograms={
                        k: dict(v)
                        for k, v in entry.get("histograms", {}).items()
                    },
                )
            )
        return store
